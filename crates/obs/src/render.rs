//! Reusable text rendering for timelines and queue-depth series.
//!
//! The serving and front-end examples each grew their own ad-hoc lane
//! renderer; this module is the single shared implementation. Inputs
//! are plain `(start, end, glyph)` / `(time, depth)` tuples, so the
//! renderer has no dependency on the serving report types — callers
//! map their data in.

/// Default character width of a rendered lane.
pub const DEFAULT_WIDTH: usize = 100;

/// Render a set of `(start_ms, end_ms, glyph)` spans into a
/// fixed-width character lane covering `[0, span_ms]`. Empty slots are
/// `'.'`; later spans overwrite earlier ones where they overlap.
#[must_use]
pub fn lane_row(spans: &[(f64, f64, char)], span_ms: f64, width: usize) -> String {
    let mut lane = vec!['.'; width];
    if span_ms <= 0.0 || width == 0 {
        return lane.iter().collect();
    }
    for &(start, end, glyph) in spans {
        let a = ((start / span_ms) * width as f64) as usize;
        let b = (((end / span_ms) * width as f64).ceil() as usize).min(width);
        for slot in lane.iter_mut().take(b).skip(a.min(width)) {
            *slot = glyph;
        }
    }
    lane.iter().collect()
}

/// Render a step series of `(time_ms, value)` points into a
/// fixed-width digit lane covering `[0, span_ms]`: each column shows
/// the last value at or before that column's time, clamped to 9.
#[must_use]
pub fn depth_row(series: &[(f64, usize)], span_ms: f64, width: usize) -> String {
    let mut lane = vec!['0'; width];
    if span_ms <= 0.0 || width == 0 {
        return lane.iter().collect();
    }
    let mut points = series.iter().peekable();
    let mut depth = 0usize;
    for (slot, glyph) in lane.iter_mut().enumerate() {
        let t = (slot as f64 + 1.0) / width as f64 * span_ms;
        while let Some(&&(at, d)) = points.peek() {
            if at <= t {
                depth = d;
                points.next();
            } else {
                break;
            }
        }
        *glyph = char::from_digit(depth.min(9) as u32, 10).unwrap_or('#');
    }
    lane.iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_row_fills_buckets() {
        let row = lane_row(&[(0.0, 5.0, 'a'), (5.0, 10.0, 'b')], 10.0, 10);
        assert_eq!(row, "aaaaabbbbb");
    }

    #[test]
    fn lane_row_overlap_last_wins_and_clamps() {
        let row = lane_row(&[(0.0, 10.0, 'a'), (8.0, 20.0, 'b')], 10.0, 10);
        assert_eq!(row, "aaaaaaaabb");
    }

    #[test]
    fn lane_row_degenerate_inputs() {
        assert_eq!(lane_row(&[], 10.0, 5), ".....");
        assert_eq!(lane_row(&[(0.0, 1.0, 'x')], 0.0, 5), ".....");
        assert_eq!(lane_row(&[(0.0, 1.0, 'x')], 1.0, 0), "");
    }

    #[test]
    fn depth_row_steps_and_clamps() {
        let row = depth_row(&[(0.0, 2), (5.0, 12), (8.0, 0)], 10.0, 10);
        assert_eq!(row, "2222999000");
    }

    #[test]
    fn depth_row_empty_series_is_flat_zero() {
        assert_eq!(depth_row(&[], 10.0, 4), "0000");
    }
}
