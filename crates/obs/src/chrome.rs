//! Chrome trace-event JSON export + shape validation, and the
//! canonical deterministic "modeled" export.
//!
//! The wall export ([`chrome_trace_json`]) targets the [trace-event
//! format] consumed by Perfetto and `chrome://tracing`: one process,
//! one thread (track) per lane, complete `X` slices for every span
//! with wall timestamps, per-request async `b`/`e` envelopes, flow
//! arrows (`s`/`t`/`f`) stitching each request's spans across lanes,
//! and instant `i` events for the discrete event stream.
//!
//! The modeled export ([`modeled_trace_json`]) is a different artifact
//! with a different contract: it contains only plan-determined fields
//! (no wall timestamps, no Exec-plane events), spans are canonically
//! sorted, and numbers are fixed-width formatted — so two runs of the
//! same seeded workload emit byte-identical files regardless of worker
//! count or scheduling jitter. The determinism proptests pin this.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Json};
use crate::trace::{Plane, TraceLog};

const US_PER_MS: f64 = 1000.0;

/// One record in the emitted trace, pre-rendered; kept so records can
/// be sorted by timestamp before serialization.
struct Record {
    ts_us: f64,
    order: usize,
    body: String,
}

fn push(records: &mut Vec<Record>, ts_us: f64, body: String) {
    let order = records.len();
    records.push(Record { ts_us, order, body });
}

/// Render the full wall-clock trace as a Chrome trace-event JSON array.
///
/// Spans without wall timestamps (numeric-plane emissions) are skipped;
/// events without wall timestamps are pinned at ts 0.
#[must_use]
pub fn chrome_trace_json(log: &TraceLog) -> String {
    // Lane -> tid, sorted for stable numbering. tid 0 is the event /
    // request-envelope track.
    let mut lanes: Vec<&str> = log
        .spans
        .iter()
        .filter(|s| s.wall_start_ms.is_some())
        .map(|s| s.lane.as_str())
        .collect();
    lanes.sort_unstable();
    lanes.dedup();
    let tid_of: BTreeMap<&str, usize> =
        lanes.iter().enumerate().map(|(i, &l)| (l, i + 1)).collect();

    let mut records: Vec<Record> = Vec::new();

    // Metadata: process + per-track names. Always first (ts sorts at
    // -inf via the metadata flag below).
    let mut meta = String::new();
    let _ = write!(
        meta,
        r#"{{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{{"name":"llmnpu"}}}}"#
    );
    push(&mut records, f64::NEG_INFINITY, meta);
    let mut ev_track = String::new();
    let _ = write!(
        ev_track,
        r#"{{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{{"name":"events"}}}}"#
    );
    push(&mut records, f64::NEG_INFINITY, ev_track);
    for (&lane, &tid) in &tid_of {
        let mut m = String::new();
        let _ = write!(
            m,
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{tid},"args":{{"name":"#
        );
        json::write_str(&mut m, &format!("lane {lane}"));
        m.push_str("}}");
        push(&mut records, f64::NEG_INFINITY, m);
    }

    // Complete X slices per span, plus request envelope bookkeeping.
    struct ReqSpan {
        start_us: f64,
        end_us: f64,
        tid: usize,
    }
    let mut per_request: BTreeMap<usize, Vec<ReqSpan>> = BTreeMap::new();
    for span in &log.spans {
        let (Some(w0), Some(w1)) = (span.wall_start_ms, span.wall_end_ms) else {
            continue;
        };
        let tid = tid_of[span.lane.as_str()];
        let ts = w0 * US_PER_MS;
        let dur = ((w1 - w0) * US_PER_MS).max(0.0);
        let mut body = String::new();
        body.push_str("{\"name\":");
        json::write_str(&mut body, &span.name);
        body.push_str(",\"cat\":");
        json::write_str(&mut body, &span.class);
        let _ = write!(
            body,
            ",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{"
        );
        if let Some(r) = span.request {
            let _ = write!(body, "\"request\":{r},");
        }
        let _ = write!(
            body,
            "\"attempt\":{},\"modeled_ms\":{:.3},\"run_start_ms\":{:.3},\"run_end_ms\":{:.3}}}}}",
            span.attempt, span.modeled_ms, span.start_ms, span.end_ms
        );
        push(&mut records, ts, body);
        if let Some(r) = span.request {
            per_request.entry(r).or_default().push(ReqSpan {
                start_us: ts,
                end_us: ts + dur,
                tid,
            });
        }
    }

    // Per-request async envelope (b/e on the event track) and flow
    // arrows stitching the request's slices in wall order.
    for (&req, spans) in &mut per_request {
        let first = spans
            .iter()
            .map(|s| s.start_us)
            .fold(f64::INFINITY, f64::min);
        let last = spans.iter().map(|s| s.end_us).fold(0.0f64, f64::max);
        let mut b = String::new();
        let _ = write!(
            b,
            r#"{{"name":"R{req}","cat":"request","ph":"b","id":{req},"pid":1,"tid":0,"ts":{first:.3}}}"#
        );
        push(&mut records, first, b);
        let mut e = String::new();
        let _ = write!(
            e,
            r#"{{"name":"R{req}","cat":"request","ph":"e","id":{req},"pid":1,"tid":0,"ts":{last:.3}}}"#
        );
        push(&mut records, last, e);

        spans.sort_by(|a, b| {
            a.start_us
                .partial_cmp(&b.start_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (i, s) in spans.iter().enumerate() {
            let ph = if i == 0 {
                "s"
            } else if i + 1 == spans.len() {
                "f"
            } else {
                "t"
            };
            if spans.len() < 2 {
                break; // a single-slice request needs no arrow
            }
            let mut body = String::new();
            let _ = write!(
                body,
                r#"{{"name":"R{req}-flow","cat":"flow","ph":"{ph}","id":{req},"pid":1,"tid":{},"ts":{:.3}"#,
                s.tid, s.start_us
            );
            if ph == "f" {
                body.push_str(r#","bp":"e""#);
            }
            body.push('}');
            push(&mut records, s.start_us, body);
        }
    }

    // Discrete events as instants on the event track.
    for ev in &log.events {
        let ts = ev.wall_ms.unwrap_or(0.0) * US_PER_MS;
        let mut body = String::new();
        body.push_str("{\"name\":");
        json::write_str(&mut body, ev.kind.name());
        let _ = write!(
            body,
            r#","cat":"event","ph":"i","s":"g","pid":1,"tid":0,"ts":{ts:.3},"args":{{"#
        );
        if let Some(r) = ev.request {
            let _ = write!(body, "\"request\":{r},");
        }
        body.push_str("\"detail\":");
        json::write_str(&mut body, &ev.detail);
        body.push_str("}}");
        push(&mut records, ts, body);
    }

    // Chrome tolerates any order, but monotonic-per-track files are
    // kinder to viewers and lets the validator check ts sanity.
    records.sort_by(|a, b| {
        a.ts_us
            .partial_cmp(&b.ts_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.order.cmp(&b.order))
    });

    let mut out = String::with_capacity(records.len() * 96 + 2);
    out.push_str("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&r.body);
        if i + 1 != records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Render the canonical deterministic export: spans with modeled
/// fields only — `start_ms`/`end_ms` are *measured* executor times and
/// are deliberately absent — sorted on plan-determined keys, plus
/// Plan-plane events in recorded order. Byte-identical across runs and
/// worker counts for the same seeded workload.
#[must_use]
pub fn modeled_trace_json(log: &TraceLog) -> String {
    let mut spans: Vec<_> = log.spans.iter().collect();
    spans.sort_by(|a, b| {
        // None-request (infrastructure) spans sort last; ties broken
        // on plan-determined fields only (task labels are unique per
        // attempt), never on measured timestamps.
        let ka = (a.request.is_none(), a.request, a.attempt, &a.name, &a.lane);
        let kb = (b.request.is_none(), b.request, b.attempt, &b.name, &b.lane);
        ka.cmp(&kb)
    });

    let mut out = String::new();
    out.push_str("{\"schema\":\"llmnpu-modeled-trace/v1\",\"spans\":[\n");
    for (i, s) in spans.iter().enumerate() {
        out.push_str("{\"request\":");
        match s.request {
            Some(r) => {
                let _ = write!(out, "{r}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"attempt\":{},\"lane\":", s.attempt);
        json::write_str(&mut out, &s.lane);
        out.push_str(",\"name\":");
        json::write_str(&mut out, &s.name);
        out.push_str(",\"class\":");
        json::write_str(&mut out, &s.class);
        out.push_str(",\"modeled_ms\":");
        json::write_ms(&mut out, s.modeled_ms);
        out.push('}');
        if i + 1 != spans.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"events\":[\n");
    let plan_events: Vec<_> = log
        .events
        .iter()
        .filter(|e| e.plane == Plane::Plan)
        .collect();
    for (i, e) in plan_events.iter().enumerate() {
        out.push_str("{\"kind\":");
        json::write_str(&mut out, e.kind.name());
        out.push_str(",\"request\":");
        match e.request {
            Some(r) => {
                let _ = write!(out, "{r}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"detail\":");
        json::write_str(&mut out, &e.detail);
        out.push('}');
        if i + 1 != plan_events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}");
    out
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total records in the array.
    pub records: usize,
    /// Complete `X` slices.
    pub slices: usize,
    /// Distinct `(pid, tid)` tracks carrying slices.
    pub tracks: usize,
    /// Async `b`/`e` envelope pairs.
    pub async_pairs: usize,
}

/// Parse `text` as a trace-event array and check the shape guarantees
/// the exporter promises: every record has `name`/`ph`/`pid`/`tid`,
/// `B`/`E` pairs balance per track, `X` slices carry non-negative
/// `dur`, `b`/`e` async pairs balance per id, and `ts` is
/// non-decreasing per track in file order.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = Json::parse(text)?;
    let records = doc.as_arr().ok_or("top level is not an array")?;
    let mut check = TraceCheck {
        records: records.len(),
        ..TraceCheck::default()
    };
    let mut last_ts: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    let mut slice_tracks: BTreeMap<(i64, i64), usize> = BTreeMap::new();
    let mut be_depth: BTreeMap<(i64, i64), i64> = BTreeMap::new();
    let mut async_open: BTreeMap<i64, i64> = BTreeMap::new();

    for (i, rec) in records.iter().enumerate() {
        let ph = rec
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {i}: missing ph"))?;
        rec.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {i}: missing name"))?;
        let pid = rec
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("record {i}: missing pid"))? as i64;
        let tid = rec
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("record {i}: missing tid"))? as i64;
        if ph == "M" {
            continue; // metadata carries no ts
        }
        let ts = rec
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("record {i}: missing ts"))?;
        let track = (pid, tid);
        if let Some(&prev) = last_ts.get(&track) {
            if ts < prev {
                return Err(format!(
                    "record {i}: ts {ts} < {prev} on track {track:?} (non-monotonic)"
                ));
            }
        }
        last_ts.insert(track, ts);
        match ph {
            "X" => {
                let dur = rec
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("record {i}: X without dur"))?;
                if dur < 0.0 {
                    return Err(format!("record {i}: negative dur {dur}"));
                }
                check.slices += 1;
                *slice_tracks.entry(track).or_insert(0) += 1;
            }
            "B" => *be_depth.entry(track).or_insert(0) += 1,
            "E" => {
                let d = be_depth.entry(track).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("record {i}: E without matching B on {track:?}"));
                }
            }
            "b" => {
                let id = rec
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("record {i}: async b without id"))?
                    as i64;
                *async_open.entry(id).or_insert(0) += 1;
            }
            "e" => {
                let id = rec
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("record {i}: async e without id"))?
                    as i64;
                let d = async_open.entry(id).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("record {i}: async e without b for id {id}"));
                }
                check.async_pairs += 1;
            }
            "i" | "s" | "t" | "f" => {}
            other => return Err(format!("record {i}: unknown ph '{other}'")),
        }
    }
    if let Some((track, depth)) = be_depth.iter().find(|(_, &d)| d != 0) {
        return Err(format!("unbalanced B/E on track {track:?} (depth {depth})"));
    }
    if let Some((id, depth)) = async_open.iter().find(|(_, &d)| d != 0) {
        return Err(format!("unbalanced async b/e for id {id} (depth {depth})"));
    }
    check.tracks = slice_tracks.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, TraceSink, TraceSpan};

    fn sample_log() -> TraceLog {
        let sink = TraceSink::enabled();
        for (req, lane, name, w0) in [
            (0usize, "Npu", "R0-C0", 0.0f64),
            (0, "Cpu", "R0-D0", 2.0),
            (1, "Npu", "R1-C0", 1.0),
        ] {
            sink.span(|| TraceSpan {
                request: Some(req),
                attempt: 0,
                lane: lane.to_owned(),
                name: name.to_owned(),
                class: "prefill".to_owned(),
                start_ms: w0,
                end_ms: w0 + 1.0,
                modeled_ms: 1.0,
                wall_start_ms: Some(w0),
                wall_end_ms: Some(w0 + 1.5),
            });
        }
        sink.event_at(Plane::Exec, EventKind::Dispatch, Some(0), 0.1, || {
            "R0-C0 on Npu".to_owned()
        });
        sink.event(Plane::Plan, EventKind::Admission, Some(1), || {
            "attempt 0".to_owned()
        });
        sink.snapshot()
    }

    #[test]
    fn chrome_export_validates() {
        let text = chrome_trace_json(&sample_log());
        let check = validate_chrome_trace(&text).unwrap();
        assert_eq!(check.slices, 3);
        assert_eq!(check.tracks, 2); // Npu + Cpu
        assert_eq!(check.async_pairs, 2); // R0, R1 envelopes
    }

    #[test]
    fn modeled_export_is_stable_under_reordering() {
        let log = sample_log();
        let mut shuffled = log.clone();
        shuffled.spans.reverse();
        // Exec events are excluded, so dropping them changes nothing.
        shuffled.events.retain(|e| e.plane == Plane::Plan);
        assert_eq!(modeled_trace_json(&log), modeled_trace_json(&shuffled));
        assert!(modeled_trace_json(&log).contains("llmnpu-modeled-trace/v1"));
    }

    #[test]
    fn modeled_export_excludes_wall_and_measured_fields() {
        let text = modeled_trace_json(&sample_log());
        assert!(!text.contains("wall"));
        assert!(!text.contains("start_ms"), "measured times leaked");
        Json::parse(&text).unwrap();
    }

    #[test]
    fn validator_rejects_bad_shapes() {
        assert!(validate_chrome_trace("{}").is_err());
        let neg = r#"[{"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":-1}]"#;
        assert!(validate_chrome_trace(neg).unwrap_err().contains("negative"));
        let unbalanced = r#"[{"name":"a","ph":"B","pid":1,"tid":1,"ts":0}]"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("unbalanced"));
        let backwards = r#"[{"name":"a","ph":"i","s":"g","pid":1,"tid":1,"ts":5},
                            {"name":"b","ph":"i","s":"g","pid":1,"tid":1,"ts":1}]"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("non-monotonic"));
    }
}
