//! Kernel calibration: per-(site, shape) wall-time samples aggregated
//! into percentile rows, serializable to JSON.
//!
//! This is the measurement half of the ROADMAP's SLO-aware-scheduling
//! item: the analytical `DecodeSim`/latency-model C-values can only be
//! *calibrated* against real per-host kernel timings, and those come
//! from the opt-in probes this module defines. The tensor kernel plane
//! never reads a clock itself (the workspace lint forbids it there);
//! instead it calls through the [`KernelProbe`] trait with opaque
//! tokens, and the only clock reads live in [`WallProbe`] below, on
//! this side of the plane boundary, each justified under the lint's
//! `wall-clock` rule.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Cap on retained samples per (site, shape): enough for stable p99s
/// without unbounded growth on long soaks (later samples are dropped;
/// counts keep accumulating).
const MAX_SAMPLES: usize = 4096;

#[derive(Debug, Default)]
struct SiteSamples {
    /// Shape key `(m, n, k)` → retained ms samples + total count.
    shapes: BTreeMap<(usize, usize, usize), (Vec<f32>, u64)>,
}

/// Aggregated per-(site, shape) latency samples.
#[derive(Debug, Default)]
pub struct CalibrationTable {
    sites: Mutex<BTreeMap<String, SiteSamples>>,
}

/// One aggregated row of the table.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationRow {
    /// Instrumented site (e.g. `"gemm.i8.prepacked"`, `"stage.Attn.Float"`).
    pub site: String,
    /// Shape key: rows (or batch width) of the operation.
    pub m: usize,
    /// Shape key: output columns (0 where not applicable).
    pub n: usize,
    /// Shape key: inner dimension (0 where not applicable).
    pub k: usize,
    /// Total observations (including ones past the retention cap).
    pub count: u64,
    /// Minimum retained sample, ms.
    pub min_ms: f64,
    /// 50th percentile, ms.
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Maximum retained sample, ms.
    pub max_ms: f64,
}

fn percentile(sorted: &[f32], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    f64::from(sorted[idx.min(sorted.len() - 1)])
}

impl CalibrationTable {
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, SiteSamples>> {
        // Sample maps hold plain data; poison is safely ignored.
        match self.sites.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Record one `ms` observation for `(site, m, n, k)`.
    pub fn record(&self, site: &str, m: usize, n: usize, k: usize, ms: f64) {
        let mut sites = self.lock();
        let entry = sites
            .entry(site.to_owned())
            .or_default()
            .shapes
            .entry((m, n, k))
            .or_insert_with(|| (Vec::new(), 0));
        entry.1 += 1;
        if entry.0.len() < MAX_SAMPLES {
            entry.0.push(ms as f32);
        }
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Number of (site, shape) rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().values().map(|s| s.shapes.len()).sum()
    }

    /// Aggregate every (site, shape) into percentile rows, sorted by
    /// site then shape.
    #[must_use]
    pub fn rows(&self) -> Vec<CalibrationRow> {
        let sites = self.lock();
        let mut rows = Vec::new();
        for (site, samples) in sites.iter() {
            for (&(m, n, k), (values, count)) in &samples.shapes {
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                rows.push(CalibrationRow {
                    site: site.clone(),
                    m,
                    n,
                    k,
                    count: *count,
                    min_ms: sorted.first().copied().map_or(0.0, f64::from),
                    p50_ms: percentile(&sorted, 0.50),
                    p90_ms: percentile(&sorted, 0.90),
                    p99_ms: percentile(&sorted, 0.99),
                    max_ms: sorted.last().copied().map_or(0.0, f64::from),
                });
            }
        }
        rows
    }

    /// Serialize the aggregated table to JSON
    /// (`llmnpu-calibration/v1`), ready to feed a future calibrated
    /// latency model.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = self.rows();
        let mut out = String::new();
        out.push_str("{\"schema\":\"llmnpu-calibration/v1\",\"entries\":[\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str("{\"site\":");
            crate::json::write_str(&mut out, &r.site);
            let _ = write!(
                out,
                ",\"m\":{},\"n\":{},\"k\":{},\"count\":{},\"min_ms\":{:.6},\"p50_ms\":{:.6},\"p90_ms\":{:.6},\"p99_ms\":{:.6},\"max_ms\":{:.6}}}",
                r.m, r.n, r.k, r.count, r.min_ms, r.p50_ms, r.p90_ms, r.p99_ms, r.max_ms
            );
            if i + 1 != rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}");
        out
    }
}

/// The probe interface the tensor kernel plane calls through. `begin`
/// returns an opaque token; `end` attributes the elapsed interval to
/// `(site, m, n, k)`. Implementations own the clock so instrumented
/// crates never read one.
pub trait KernelProbe: Send + Sync {
    /// Start a measurement; the returned token is passed to `end`.
    fn begin(&self) -> u64;
    /// Finish the measurement started at `token`, attributing it to
    /// the given site and shape.
    fn end(&self, token: u64, site: &str, m: usize, n: usize, k: usize);
}

/// The standard wall-clock probe: tokens are nanoseconds since the
/// probe's construction, intervals land in a [`CalibrationTable`].
#[derive(Debug)]
pub struct WallProbe {
    table: std::sync::Arc<CalibrationTable>,
    origin: Instant,
}

impl WallProbe {
    /// A probe feeding `table`.
    #[must_use]
    pub fn new(table: std::sync::Arc<CalibrationTable>) -> Self {
        WallProbe {
            table,
            // The probe IS the timing side of the kernel-profiling
            // boundary; this origin anchors its opaque tokens.
            // lint: allow(wall-clock) — probe implementation owns the clock
            origin: Instant::now(),
        }
    }
}

impl KernelProbe for WallProbe {
    fn begin(&self) -> u64 {
        // lint: allow(wall-clock) — probe implementation; numeric-plane
        // callers only handle the opaque token.
        self.origin.elapsed().as_nanos() as u64
    }

    fn end(&self, token: u64, site: &str, m: usize, n: usize, k: usize) {
        // lint: allow(wall-clock) — probe implementation, see `begin`.
        let now = self.origin.elapsed().as_nanos() as u64;
        let ms = now.saturating_sub(token) as f64 / 1.0e6;
        self.table.record(site, m, n, k, ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_aggregate_into_sorted_rows() {
        let t = CalibrationTable::default();
        for i in 0..100 {
            t.record("gemm.f32", 8, 64, 64, f64::from(i));
        }
        t.record("decode.token", 2, 0, 0, 1.0);
        assert_eq!(t.len(), 2);
        let rows = t.rows();
        assert_eq!(rows[0].site, "decode.token");
        let gemm = &rows[1];
        assert_eq!(gemm.count, 100);
        assert_eq!(gemm.min_ms, 0.0);
        assert_eq!(gemm.max_ms, 99.0);
        assert!((gemm.p50_ms - 50.0).abs() <= 1.0);
        assert!((gemm.p99_ms - 98.0).abs() <= 1.0);
    }

    #[test]
    fn json_parses_and_carries_schema() {
        let t = CalibrationTable::default();
        t.record("lut.i4.prepacked", 1, 96, 96, 0.25);
        let text = t.to_json();
        let doc = crate::json::Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            "llmnpu-calibration/v1"
        );
        let entries = doc.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("n").unwrap().as_f64().unwrap(), 96.0);
    }

    #[test]
    fn wall_probe_feeds_the_table() {
        let table = Arc::new(CalibrationTable::default());
        let probe = WallProbe::new(Arc::clone(&table));
        let token = probe.begin();
        probe.end(token, "gemm.f32", 4, 8, 8);
        assert!(!table.is_empty());
        let rows = table.rows();
        assert_eq!(rows[0].count, 1);
        assert!(rows[0].p50_ms >= 0.0);
    }

    #[test]
    fn retention_cap_keeps_counting() {
        let t = CalibrationTable::default();
        for _ in 0..(MAX_SAMPLES + 10) {
            t.record("s", 1, 1, 1, 1.0);
        }
        assert_eq!(t.rows()[0].count, (MAX_SAMPLES + 10) as u64);
    }
}
