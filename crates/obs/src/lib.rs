//! Observability plane for the llm.npu serving stack.
//!
//! Everything the engine does — admission, pressure-ladder eviction,
//! prefix-cache hits, retries, per-task execution, kernel dispatches —
//! happens behind a report struct today; this crate turns it into
//! *live, exportable* telemetry without perturbing the determinism
//! contract the rest of the workspace is built on:
//!
//! * [`trace::TraceSink`] — a thread-safe span/event recorder. Spans
//!   carry the request id, attempt, lane, task class, and **modeled**
//!   duration everywhere; **wall** timestamps only where the timing
//!   plane is allowed to read clocks. A disabled sink is a
//!   near-zero-cost no-op (one relaxed atomic load), so tracing-off
//!   runs are bit-identical to tracing-on runs.
//! * [`metrics::MetricsRegistry`] — named counters, gauges, and
//!   fixed-bucket histograms (TTFT, queue wait, decode ms/token, cache
//!   hit ratio), snapshotable at any time from a live session.
//! * [`chrome`] — Chrome trace-event JSON export (loads directly in
//!   Perfetto / `chrome://tracing`): one track per pool lane, complete
//!   `X` slices per task, per-request async spans and flow arrows. The
//!   companion [`chrome::modeled_trace_json`] export contains *only*
//!   plan-determined fields in a canonical order, so two runs of the
//!   same seeded workload produce byte-identical bytes regardless of
//!   worker count — pinned by the determinism proptests.
//! * [`flight`] — a plain-text flight recorder: the N most recent
//!   requests with their spans and events, for postmortems without a
//!   trace viewer.
//! * [`calib::CalibrationTable`] — per-(site, shape) kernel latency
//!   percentiles aggregated from opt-in probes around the GEMM/GEMV/
//!   LUT drivers and DAG stage functions, serializable to JSON. This
//!   is the measurement artifact the ROADMAP's SLO-aware scheduler
//!   calibrates against.
//! * [`render`] — the reusable text Gantt / queue-depth lane renderer
//!   shared by the serving and front-end examples.
//!
//! # The two event planes
//!
//! The workspace's core invariant is that served streams — and now
//! trace exports — are deterministic functions of the workload, not of
//! thread interleaving. Records therefore declare which plane they
//! belong to ([`trace::Plane`]):
//!
//! * **Plan** — emitted from single-threaded planner/round code, in
//!   deterministic order with deterministic content (admissions,
//!   pressure-ladder steps, retries, plan-verify results).
//! * **Exec** — emitted from concurrent executor/pool/cache code;
//!   order and wall content vary run-to-run (task dispatch/completion,
//!   live cache traffic).
//!
//! The canonical modeled export keeps spans (sorted on plan-determined
//! keys) plus Plan events only; the Chrome export keeps everything.
//!
//! This crate is dependency-free (std only) and sits below the tensor /
//! kv / sched / core crates, which call into it. The only wall-clock
//! reads live in [`calib::WallProbe`] and are justified per-site under
//! the workspace lint's `wall-clock` rule.

#![forbid(unsafe_code)]

pub mod calib;
pub mod chrome;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod render;
pub mod trace;

use std::sync::Arc;

pub use calib::{CalibrationTable, KernelProbe, WallProbe};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use trace::{EventKind, Plane, TraceEvent, TraceLog, TraceSink, TraceSpan};

/// The bundle a serving session or front-end owns: one tracing sink,
/// one metrics registry, one calibration table. Cloning is cheap (all
/// `Arc`s) and clones share the same underlying state, so a caller can
/// keep a handle while the engine writes.
#[derive(Clone, Debug, Default)]
pub struct Observability {
    /// Span/event recorder. Disabled by default.
    pub sink: Arc<TraceSink>,
    /// Live counters/gauges/histograms.
    pub registry: Arc<MetricsRegistry>,
    /// Per-(site, shape) kernel latency samples.
    pub calibration: Arc<CalibrationTable>,
}

impl Observability {
    /// A bundle with tracing enabled (metrics and calibration are
    /// always live; only span/event recording is gated).
    #[must_use]
    pub fn enabled() -> Self {
        let obs = Self::default();
        obs.sink.set_enabled(true);
        obs
    }

    /// A wall-clock kernel probe feeding this bundle's calibration
    /// table, ready to install into the tensor kernel plane.
    #[must_use]
    pub fn kernel_probe(&self) -> Arc<dyn KernelProbe> {
        Arc::new(WallProbe::new(Arc::clone(&self.calibration)))
    }
}
