//! Plain-text flight recorder: a postmortem dump of the N most recent
//! requests, readable without a trace viewer.
//!
//! "Recent" is by last appearance in the recorded stream, so the
//! requests that were active when something went wrong sort last and
//! survive truncation. Each request's spans and events are merged and
//! printed in recording order with modeled and (when present) wall
//! timings; records not tied to any request land in a shared
//! `engine` section at the top.

use std::fmt::Write as _;

use crate::trace::TraceLog;

enum Line<'a> {
    Span(&'a crate::trace::TraceSpan),
    Event(&'a crate::trace::TraceEvent),
}

fn format_line(out: &mut String, line: &Line<'_>) {
    match line {
        Line::Span(s) => {
            let _ = write!(
                out,
                "  span  {:<24} {:<8} lane {:<4} attempt {}  run {:.3}..{:.3}ms (modeled {:.3}ms)",
                s.name, s.class, s.lane, s.attempt, s.start_ms, s.end_ms, s.modeled_ms
            );
            if let (Some(w0), Some(w1)) = (s.wall_start_ms, s.wall_end_ms) {
                let _ = write!(out, "  wall {w0:.3}..{w1:.3}ms");
            }
            out.push('\n');
        }
        Line::Event(e) => {
            let _ = write!(out, "  event {:<24} {}", e.kind.name(), e.detail);
            if let Some(w) = e.wall_ms {
                let _ = write!(out, "  [wall {w:.3}ms]");
            }
            out.push('\n');
        }
    }
}

/// Render the flight-recorder dump for the `last_n` most recent
/// requests in `log` (plus the request-less `engine` section).
#[must_use]
pub fn flight_recorder(log: &TraceLog, last_n: usize) -> String {
    // Merge spans and events into one stream in recording order,
    // tagging each with its request.
    let mut stream: Vec<(Option<usize>, Line<'_>)> = Vec::new();
    stream.extend(log.spans.iter().map(|s| (s.request, Line::Span(s))));
    stream.extend(log.events.iter().map(|e| (e.request, Line::Event(e))));

    // Requests ordered by last appearance; keep the trailing `last_n`.
    let mut order: Vec<usize> = Vec::new();
    for (req, _) in &stream {
        if let Some(r) = *req {
            order.retain(|&x| x != r);
            order.push(r);
        }
    }
    let kept: Vec<usize> = order
        .iter()
        .copied()
        .skip(order.len().saturating_sub(last_n))
        .collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder: {} of {} request(s), {} span(s), {} event(s)",
        kept.len(),
        order.len(),
        log.spans.len(),
        log.events.len()
    );

    let engine_lines: Vec<&Line<'_>> = stream
        .iter()
        .filter(|(r, _)| r.is_none())
        .map(|(_, l)| l)
        .collect();
    if !engine_lines.is_empty() {
        let _ = writeln!(out, "\n== engine ==");
        for line in engine_lines {
            format_line(&mut out, line);
        }
    }

    for r in kept {
        let _ = writeln!(out, "\n== request R{r} ==");
        for (req, line) in &stream {
            if *req == Some(r) {
                format_line(&mut out, line);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, Plane, TraceSink, TraceSpan};

    #[test]
    fn keeps_most_recent_requests_and_engine_section() {
        let sink = TraceSink::enabled();
        for req in 0..4usize {
            sink.span(|| TraceSpan {
                request: Some(req),
                attempt: 0,
                lane: "Npu".to_owned(),
                name: format!("R{req}-C0"),
                class: "prefill".to_owned(),
                start_ms: req as f64,
                end_ms: req as f64 + 1.0,
                modeled_ms: 1.0,
                wall_start_ms: None,
                wall_end_ms: None,
            });
        }
        sink.event(Plane::Exec, EventKind::PoolReserve, None, || {
            "3 pages".to_owned()
        });
        // Request 0 reappears last, so it must survive a keep-2 cut.
        sink.event(Plane::Plan, EventKind::Retry, Some(0), || {
            "attempt 1".to_owned()
        });

        let text = flight_recorder(&sink.snapshot(), 2);
        assert!(text.contains("== engine =="));
        assert!(text.contains("== request R0 =="));
        assert!(text.contains("== request R3 =="));
        assert!(!text.contains("== request R1 =="));
        assert!(text.contains("pool-reserve"));
        assert!(text.contains("2 of 4 request(s)"));
    }
}
