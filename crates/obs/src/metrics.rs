//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, snapshotable at any time.
//!
//! Instruments are interned once (`counter()` / `gauge()` /
//! `histogram()` return `Arc` handles callers may cache) and updated
//! lock-free; only interning and snapshotting take the registry lock.
//! Snapshots iterate `BTreeMap`s, so rendering order — and therefore
//! any text/JSON derived from a snapshot — is deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, ms. Shared by the TTFT, queue
/// wait, and per-token histograms so snapshots line up column-for-column.
pub const LATENCY_BUCKETS_MS: [f64; 12] = [
    0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0, 5000.0,
];

/// Fixed-bucket histogram over `f64` observations (typically ms).
///
/// `counts` has one slot per bound plus a final overflow slot. The sum
/// is kept in microsecond integer resolution so it can live in an
/// atomic without a CAS loop; at ms-scale observations the rounding is
/// far below measurement noise.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let us = (v.max(0.0) * 1000.0).round() as u64;
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum_ms: self.sum_us.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }
}

/// Frozen histogram state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final slot is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations, ms.
    pub sum_ms: f64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// Bucket-upper-bound estimate of quantile `q` in `[0, 1]`.
    /// Observations in the overflow bucket report the last bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| self.bounds.last().copied().unwrap_or(f64::INFINITY));
            }
        }
        self.bounds.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Frozen registry state: every instrument by name, in sorted order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, defaulting to 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Compact single-line-per-instrument text rendering (reports,
    /// flight-recorder footers).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name}: n={} mean={:.3}ms p50={:.3}ms p90={:.3}ms p99={:.3}ms\n",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
        }
        out
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The instrument registry. Interning returns shared handles; updates
/// through handles never touch the registry lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // Registry maps hold plain handles; poison is safely ignored.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Get or create the counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .counters
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Get or create the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .gauges
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Get or create the histogram `name`. The bounds of the first
    /// interning win; later callers share the existing instrument.
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .histograms
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Freeze every instrument's current value.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("serve.requests");
        let b = reg.counter("serve.requests");
        a.add(3);
        b.inc();
        assert_eq!(reg.snapshot().counter("serve.requests"), 4);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::default();
        let g = reg.gauge("pool.free_blocks");
        g.set(10);
        g.add(-3);
        assert_eq!(reg.snapshot().gauges["pool.free_blocks"], 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 0.7, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum_ms - 556.2).abs() < 0.01);
        assert_eq!(s.quantile(0.5), 10.0); // 3rd of 5 lands in the ≤10 bucket
        assert_eq!(s.quantile(1.0), 100.0); // overflow reports the last bound
        assert!(s.mean() > 100.0);
    }

    #[test]
    fn snapshot_order_is_sorted_and_render_is_deterministic() {
        let reg = MetricsRegistry::default();
        reg.counter("zz").inc();
        reg.counter("aa").inc();
        reg.histogram("lat", &LATENCY_BUCKETS_MS).observe(3.0);
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1, s2);
        let names: Vec<_> = s1.counters.keys().cloned().collect();
        assert_eq!(names, vec!["aa".to_owned(), "zz".to_owned()]);
        assert!(s1.render().contains("histogram lat: n=1"));
    }
}
