//! A minimal self-contained JSON value, writer, and parser.
//!
//! The workspace's vendored `serde_json` stand-in only *serializes*;
//! the trace-viewer example and the CI `obs` job need to parse the
//! Chrome trace back to validate its shape. Rather than grow the
//! vendored crate, this module carries the ~150 lines of recursive-
//! descent JSON the exporters and validators need. It is not a
//! general-purpose JSON library: numbers are `f64`, no `\u` surrogate
//! pairing beyond the BMP, and input depth is bounded by recursion.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse `text` as a single JSON document.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this
                // boundary walk cannot split a codepoint).
                let rest = &b[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` with fixed 3-decimal formatting — enough for
/// microsecond resolution on ms fields, and byte-stable across runs.
pub fn write_ms(out: &mut String, v: f64) {
    let _ = write!(out, "{v:.3}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_document() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": "x\"y\n", "c": null, "d": true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\"y\n");
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_f64().unwrap(), -300.0);
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn writer_escapes_and_parses_back() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str().unwrap(), "a\"b\\c\nd\u{1}");
    }

    #[test]
    fn unicode_escape_parses() {
        let v = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé");
    }
}
