//! The span/event tracing core.
//!
//! [`TraceSink`] is the single recorder the whole stack writes into.
//! It is deliberately simple — one mutex around two vectors — because
//! the write rate is bounded by the serving planner (hundreds of
//! records per batch, not per token-byte), and because a lock-free
//! design would buy nothing for the disabled path, which is the one
//! that matters: `is_enabled()` is a single relaxed atomic load, and
//! every emission helper takes closures so argument formatting is
//! never paid when tracing is off.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Which determinism plane a record belongs to. See the crate docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Plane {
    /// Emitted from single-threaded planner/round code: deterministic
    /// order and content for a given workload. Included in the
    /// canonical modeled export.
    Plan,
    /// Emitted from concurrent executor/pool/cache code: order and
    /// content may vary run-to-run. Chrome/flight exports only.
    Exec,
}

/// Typed discrete events the stack emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Planner admitted a segment this round.
    Admission,
    /// A pressure-ladder step (cache evict / retained reclaim / live
    /// preemption) freed pages to admit a request.
    Pressure,
    /// Prefix-cache lookup matched a prefix.
    CacheHit,
    /// Prefix-cache lookup matched nothing.
    CacheMiss,
    /// Prefix-cache inserted newly computed blocks.
    CacheInsert,
    /// Prefix-cache evicted cold blocks.
    CacheEvict,
    /// Pool allocated pages.
    PoolReserve,
    /// Pool released pages.
    PoolRelease,
    /// Copy-on-write divergence copied a shared page.
    PoolCow,
    /// A failed request was re-queued for another attempt.
    Retry,
    /// A request was cancelled.
    Cancel,
    /// A request exceeded its deadline.
    Deadline,
    /// Static plan verification passed for a round's graph.
    PlanVerified,
    /// Executor dispatched a task to a lane.
    Dispatch,
    /// A task completed.
    TaskDone,
    /// A task panicked or returned an error.
    TaskFailed,
    /// The dispatch gate skipped a task (cancelled/dead request).
    TaskSkipped,
    /// A request entered the front-end queue.
    Submit,
    /// The front-end formed a batch from queued requests.
    Batch,
}

impl EventKind {
    /// Stable lowercase-kebab name used by every exporter.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admission => "admission",
            EventKind::Pressure => "pressure",
            EventKind::CacheHit => "cache-hit",
            EventKind::CacheMiss => "cache-miss",
            EventKind::CacheInsert => "cache-insert",
            EventKind::CacheEvict => "cache-evict",
            EventKind::PoolReserve => "pool-reserve",
            EventKind::PoolRelease => "pool-release",
            EventKind::PoolCow => "pool-cow",
            EventKind::Retry => "retry",
            EventKind::Cancel => "cancel",
            EventKind::Deadline => "deadline",
            EventKind::PlanVerified => "plan-verified",
            EventKind::Dispatch => "dispatch",
            EventKind::TaskDone => "task-done",
            EventKind::TaskFailed => "task-failed",
            EventKind::TaskSkipped => "task-skipped",
            EventKind::Submit => "submit",
            EventKind::Batch => "batch",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One traced span: a unit of scheduled work on a lane.
///
/// `modeled_ms` is plan-determined and present on every span; the wall
/// fields are `None` for spans recorded outside the timing plane and
/// are **excluded** from the canonical modeled export.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Originating request id, if the span belongs to one.
    pub request: Option<usize>,
    /// Retry attempt (0 = first).
    pub attempt: usize,
    /// Lane / processor the span ran on (e.g. `"Npu"`, `"Cpu"`).
    pub lane: String,
    /// Task label, unique within a round (e.g. `"R3.1-C0-L2-Qkv"`).
    pub name: String,
    /// Task class (e.g. `"prefill"`, `"decode"`, `"admit"`).
    pub class: String,
    /// Executed start on the run's timeline, ms. Measured, so it may
    /// vary run-to-run; excluded from the canonical modeled export.
    pub start_ms: f64,
    /// Executed end on the run's timeline, ms (measured; see
    /// `start_ms`).
    pub end_ms: f64,
    /// Modeled task duration, ms — the plan's cost for the task, fully
    /// determined by the workload.
    pub modeled_ms: f64,
    /// Wall-clock start relative to the sink's epoch, ms (timing plane
    /// only).
    pub wall_start_ms: Option<f64>,
    /// Wall-clock end relative to the sink's epoch, ms (timing plane
    /// only).
    pub wall_end_ms: Option<f64>,
}

/// One discrete traced event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Determinism plane the emission site lives on.
    pub plane: Plane,
    /// What happened.
    pub kind: EventKind,
    /// Request the event concerns, if any.
    pub request: Option<usize>,
    /// Human-readable detail (deterministic for `Plan` events).
    pub detail: String,
    /// Wall-clock timestamp, ms (timing plane only).
    pub wall_ms: Option<f64>,
}

/// A point-in-time copy of everything a sink has recorded.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// All spans, in recording order.
    pub spans: Vec<TraceSpan>,
    /// All events, in recording order.
    pub events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Request ids appearing on any span or event, sorted + deduped.
    #[must_use]
    pub fn request_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .spans
            .iter()
            .filter_map(|s| s.request)
            .chain(self.events.iter().filter_map(|e| e.request))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[derive(Debug, Default)]
struct TraceBuf {
    spans: Vec<TraceSpan>,
    events: Vec<TraceEvent>,
}

/// Thread-safe span/event recorder. Disabled by default; a disabled
/// sink rejects every record with one relaxed atomic load and no lock.
#[derive(Debug, Default)]
pub struct TraceSink {
    enabled: AtomicBool,
    buf: Mutex<TraceBuf>,
}

impl TraceSink {
    /// A sink that records.
    #[must_use]
    pub fn enabled() -> Self {
        let sink = Self::default();
        sink.set_enabled(true);
        sink
    }

    /// Whether records are currently accepted.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceBuf> {
        // Trace buffers hold plain data; a panicking recorder cannot
        // leave them logically torn, so poison is safely ignored.
        match self.buf.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Record a span. The closure runs only when the sink is enabled.
    pub fn span(&self, f: impl FnOnce() -> TraceSpan) {
        if self.is_enabled() {
            self.lock().spans.push(f());
        }
    }

    /// Record an event with no wall timestamp (numeric-plane sites).
    /// The detail closure runs only when the sink is enabled.
    pub fn event(
        &self,
        plane: Plane,
        kind: EventKind,
        request: Option<usize>,
        detail: impl FnOnce() -> String,
    ) {
        if self.is_enabled() {
            self.lock().events.push(TraceEvent {
                plane,
                kind,
                request,
                detail: detail(),
                wall_ms: None,
            });
        }
    }

    /// Record an event carrying a wall timestamp (timing-plane sites).
    pub fn event_at(
        &self,
        plane: Plane,
        kind: EventKind,
        request: Option<usize>,
        wall_ms: f64,
        detail: impl FnOnce() -> String,
    ) {
        if self.is_enabled() {
            self.lock().events.push(TraceEvent {
                plane,
                kind,
                request,
                detail: detail(),
                wall_ms: Some(wall_ms),
            });
        }
    }

    /// Copy out everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> TraceLog {
        let buf = self.lock();
        TraceLog {
            spans: buf.spans.clone(),
            events: buf.events.clone(),
        }
    }

    /// Number of spans recorded so far.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.lock().spans.len()
    }

    /// Drop everything recorded so far (the enabled flag is kept).
    pub fn clear(&self) {
        let mut buf = self.lock();
        buf.spans.clear();
        buf.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(request: usize, name: &str) -> TraceSpan {
        TraceSpan {
            request: Some(request),
            attempt: 0,
            lane: "Npu".to_owned(),
            name: name.to_owned(),
            class: "prefill".to_owned(),
            start_ms: 0.0,
            end_ms: 1.0,
            modeled_ms: 1.0,
            wall_start_ms: None,
            wall_end_ms: None,
        }
    }

    #[test]
    fn disabled_sink_records_nothing_and_skips_closures() {
        let sink = TraceSink::default();
        assert!(!sink.is_enabled());
        sink.span(|| unreachable!("span closure must not run when disabled"));
        sink.event(Plane::Plan, EventKind::Admission, Some(0), || {
            unreachable!("event closure must not run when disabled")
        });
        let log = sink.snapshot();
        assert!(log.spans.is_empty() && log.events.is_empty());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let sink = TraceSink::enabled();
        sink.span(|| span(0, "a"));
        sink.span(|| span(1, "b"));
        sink.event(Plane::Plan, EventKind::Retry, Some(1), || {
            "again".to_owned()
        });
        let log = sink.snapshot();
        assert_eq!(log.spans.len(), 2);
        assert_eq!(log.spans[1].name, "b");
        assert_eq!(log.events[0].kind, EventKind::Retry);
        assert_eq!(log.request_ids(), vec![0, 1]);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let sink = std::sync::Arc::new(TraceSink::enabled());
        std::thread::scope(|s| {
            for t in 0..4 {
                let sink = std::sync::Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..100 {
                        sink.span(|| span(t, &format!("t{t}-{i}")));
                    }
                });
            }
        });
        assert_eq!(sink.span_count(), 400);
    }

    #[test]
    fn clear_keeps_enabled() {
        let sink = TraceSink::enabled();
        sink.span(|| span(0, "a"));
        sink.clear();
        assert!(sink.is_enabled());
        assert_eq!(sink.span_count(), 0);
    }
}
