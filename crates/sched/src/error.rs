use std::fmt;

/// Error type for scheduling.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The simulator rejected a task.
    Soc(llmnpu_soc::Error),
    /// The DAG could not make progress (cycle or unreachable dependency).
    Deadlock {
        /// Tasks still unscheduled when progress stopped.
        remaining: usize,
    },
    /// The DAG is too large for exhaustive optimal search.
    TooLargeForOptimal {
        /// Number of tasks in the DAG.
        tasks: usize,
        /// Maximum supported size.
        limit: usize,
    },
    /// The numeric DAG executor failed (plan/model mismatch, a stage
    /// error, or a cross-check violation).
    Exec {
        /// Description of the failure.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Soc(e) => write!(f, "simulator error: {e}"),
            Error::Deadlock { remaining } => {
                write!(f, "schedule deadlocked with {remaining} tasks remaining")
            }
            Error::TooLargeForOptimal { tasks, limit } => {
                write!(
                    f,
                    "dag of {tasks} tasks exceeds optimal-search limit {limit}"
                )
            }
            Error::Exec { what } => write!(f, "numeric execution error: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Soc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<llmnpu_soc::Error> for Error {
    fn from(e: llmnpu_soc::Error) -> Self {
        Error::Soc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Deadlock { remaining: 3 }.to_string().contains('3'));
        assert!(Error::TooLargeForOptimal {
            tasks: 20,
            limit: 12
        }
        .to_string()
        .contains("20"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
