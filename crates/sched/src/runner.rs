//! The numeric out-of-order task executor: runs chunked-prefill DAGs —
//! and, since the serving layer landed, *any* lane-structured task graph
//! (prefill chunks and decode steps of many concurrent requests) —
//! **for real** on the transformer, not just analytically.
//!
//! This is the other half of the unified planes (§3.4): the same
//! [`PrefillDag`] that `crate::exec::schedule` prices on the simulated
//! SoC is executed here with one closure per task over the
//! `Transformer`'s stage functions — quantized main-path projections,
//! shadow-outlier float MatMuls, and the merge/rope/attention stages in
//! between. Tasks are dispatched out-of-order as their dependencies
//! resolve, across one serial *lane* per processor (Equation 4: one task
//! per processor at a time), with the lane loops running on the
//! persistent [`WorkerPool`] so the CPU shadow lane genuinely overlaps
//! the NPU main lane in wall-clock time.
//!
//! # The generic layer
//!
//! The dispatcher itself knows nothing about prefill. It executes a
//! [`LaneGraph`] — tasks with a processor lane, a modeled duration (for
//! the Equation 5 C-value priority), an optional *release time* (a
//! request's arrival: the task may not start earlier), and dependency
//! edges — against one boxed closure per task ([`execute_lane_graph`]).
//! [`execute_chunked_prefill`] is the prefill instantiation;
//! `llmnpu-core`'s continuous-batching scheduler builds a combined
//! graph holding several requests' prefill DAGs *plus their decode
//! chains* and runs it through the same dispatcher, which is how decode
//! steps become first-class tasks on the same lanes as prefill chunks.
//!
//! # Determinism
//!
//! Executed outputs are **bit-identical** to the sequential
//! [`Transformer::prefill_chunked`] at every worker count, every policy,
//! and across repeated runs: each task closure *is* the corresponding
//! stage call of the sequential forward (the sequential path is composed
//! from the same functions), task inputs are fixed by the dependency
//! edges, and the kernel layer is thread-count-invariant. Scheduling
//! order changes only the wall-clock interleaving recorded in the
//! [`ExecutedTimeline`], never a float.
//!
//! # Failure containment
//!
//! Two execution modes share the dispatcher:
//!
//! * [`execute_lane_graph`] is **fail-fast**: the first task failure (or
//!   panic) aborts the whole run and surfaces as [`Error::Exec`] — the
//!   right contract for a single request's prefill, where partial
//!   results are useless.
//! * [`execute_lane_graph_isolated`] is **fault-contained**: a failing
//!   or panicking task becomes a per-task [`TaskOutcome::Failed`] that
//!   poisons only its *dependents* ([`TaskOutcome::Skipped`] with
//!   [`SkipReason::PoisonedDep`]) — every task not downstream of the
//!   failure keeps executing. Tasks flagged as containment *barriers*
//!   ([`LaneTask::barrier`]) absorb the poison: they run even when a
//!   dependency failed, which is how a request's page-release task is
//!   guaranteed on every path. An optional dispatch [`GateFn`] is
//!   consulted under the dispatch lock before each task is handed to a
//!   lane, so work whose request was cancelled or is past deadline is
//!   skipped ([`SkipReason::Gated`]), not run.
//!
//! Because a task may panic mid-stage in isolated mode, the data-plane
//! locks here (stage hand-off slots, contiguous KV buffers, paged-KV
//! write slots) recover from poisoning via
//! [`PoisonError::into_inner`](std::sync::PoisonError::into_inner): each
//! guards a plain value slab that a panicking *reader or whole-value
//! writer* cannot leave half-mutated, and a truly torn write only
//! poisons the chain the failed task already poisoned logically. The one
//! lock where poisoning stays fatal is the dispatcher's own bookkeeping
//! mutex — see the field doc on `Dispatcher::state`.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{PrefillDag, Task, TaskRole};
use llmnpu_graph::layer::Stage;
use llmnpu_model::forward::{FfnMains, FfnShadows, QkvMains, QkvShadows, Transformer};
use llmnpu_model::kv::{KvCache, PagedKvCache};
use llmnpu_obs::{EventKind, Plane, TraceSink};
use llmnpu_soc::Processor;
use llmnpu_tensor::kernel::parallel::Job;
use llmnpu_tensor::Tensor;

use crate::pool::WorkerPool;
use crate::{Error, Policy, Result};

const EPS: f64 = 1e-9;

/// One executed task, with wall-clock timestamps relative to the start
/// of the run (milliseconds).
#[derive(Debug, Clone)]
pub struct ExecutedTask {
    /// The DAG task's label (matches the simulated timeline's labels).
    pub label: String,
    /// Chunk index.
    pub chunk: usize,
    /// Decoder layer.
    pub layer: usize,
    /// Host stage.
    pub stage: Stage,
    /// Pipeline role (main / shadow / merge).
    pub role: TaskRole,
    /// Lane (processor) the task ran on.
    pub processor: Processor,
    /// Wall-clock start, ms from run start.
    pub start_ms: f64,
    /// Wall-clock end, ms from run start.
    pub end_ms: f64,
}

/// The executed (wall-clock) timeline of one numeric prefill — the
/// measured counterpart of the simulator's analytic timeline.
#[derive(Debug, Clone, Default)]
pub struct ExecutedTimeline {
    tasks: Vec<ExecutedTask>,
}

impl ExecutedTimeline {
    /// All executed tasks, in completion order.
    #[must_use]
    pub fn entries(&self) -> &[ExecutedTask] {
        &self.tasks
    }

    /// Wall-clock completion time of the last task (ms from run start).
    #[must_use]
    pub fn makespan_ms(&self) -> f64 {
        self.tasks.iter().map(|t| t.end_ms).fold(0.0, f64::max)
    }

    /// Total busy time of one lane.
    #[must_use]
    pub fn lane_busy_ms(&self, p: Processor) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.processor == p)
            .map(|t| t.end_ms - t.start_ms)
            .sum()
    }

    /// Total wall-clock overlap between tasks selected by `a` and tasks
    /// selected by `b` — the direct measurement of "these really ran
    /// concurrently" (e.g. shadow-outlier tasks vs NPU main tasks).
    #[must_use]
    pub fn overlap_ms(
        &self,
        a: impl Fn(&ExecutedTask) -> bool,
        b: impl Fn(&ExecutedTask) -> bool,
    ) -> f64 {
        let xs: Vec<&ExecutedTask> = self.tasks.iter().filter(|t| a(t)).collect();
        let ys: Vec<&ExecutedTask> = self.tasks.iter().filter(|t| b(t)).collect();
        let mut total = 0.0;
        for x in &xs {
            for y in &ys {
                if std::ptr::eq(*x, *y) {
                    continue;
                }
                let lo = x.start_ms.max(y.start_ms);
                let hi = x.end_ms.min(y.end_ms);
                if hi > lo {
                    total += hi - lo;
                }
            }
        }
        total
    }

    /// Cross-checks this executed timeline against the DAG both planes
    /// share: every DAG task ran exactly once, every dependency finished
    /// before its dependent started, and every lane ran one task at a
    /// time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Exec`] describing the first violation.
    pub fn validate_against(&self, dag: &PrefillDag) -> Result<()> {
        if self.tasks.len() != dag.len() {
            return Err(Error::Exec {
                what: format!("executed {} of {} dag tasks", self.tasks.len(), dag.len()),
            });
        }
        let mut by_label = std::collections::HashMap::new();
        for t in &self.tasks {
            if by_label.insert(t.label.as_str(), t).is_some() {
                return Err(Error::Exec {
                    what: format!("task {} executed twice", t.label),
                });
            }
        }
        for (i, task) in dag.tasks().iter().enumerate() {
            let e = by_label
                .get(task.label.as_str())
                .ok_or_else(|| Error::Exec {
                    what: format!("dag task {} never executed", task.label),
                })?;
            for &d in dag.deps(i) {
                let de = by_label[dag.tasks()[d].label.as_str()];
                if de.end_ms > e.start_ms + EPS {
                    return Err(Error::Exec {
                        what: format!(
                            "{} started at {:.4} before dep {} ended at {:.4}",
                            e.label, e.start_ms, de.label, de.end_ms
                        ),
                    });
                }
            }
        }
        for p in Processor::ALL {
            let mut spans: Vec<(f64, f64)> = self
                .tasks
                .iter()
                .filter(|t| t.processor == p)
                .map(|t| (t.start_ms, t.end_ms))
                .collect();
            // lint: allow(panic) — timestamps come from the validated timeline; NaN is a checker bug
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timestamps"));
            for w in spans.windows(2) {
                if w[0].1 > w[1].0 + EPS {
                    return Err(Error::Exec {
                        what: format!("lane {p} ran two tasks at once: {w:?}"),
                    });
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The generic lane graph
// ---------------------------------------------------------------------------

/// One schedulable unit of a [`LaneGraph`]: the dispatcher-facing facts
/// about a task (its numeric body lives in the parallel closure vector).
#[derive(Debug, Clone)]
pub struct LaneTask {
    /// Display label (diagnostics only; need not be unique).
    pub label: String,
    /// The serial lane (processor) this task must run on (Equation 4).
    pub processor: Processor,
    /// Modeled duration, used by the out-of-order policy's Equation 5
    /// C-value — the executor prioritizes with the timing plane's
    /// predictions, exactly as the paper's online scheduler does.
    pub duration_ms: f64,
    /// Earliest wall-clock start, ms from run start (a request's arrival
    /// time in the serving scheduler; 0 for always-available work).
    pub release_ms: f64,
    /// Containment barrier (isolated mode only): the task still runs
    /// when a dependency failed or was skipped, instead of being
    /// poisoned along with the rest of the chain. Bookkeeping tasks that
    /// must execute on every path — page releases, evictions, admission
    /// gates of *other* requests — are barriers; numeric tasks, whose
    /// inputs genuinely do not exist after an upstream failure, are not.
    /// Ignored by the fail-fast [`execute_lane_graph`].
    pub barrier: bool,
}

/// A dependency-structured batch of lane tasks — the generic input of
/// [`execute_lane_graph`]. Construction is topological: a task may only
/// depend on already-pushed tasks, which makes cycles unrepresentable.
#[derive(Debug, Clone, Default)]
pub struct LaneGraph {
    tasks: Vec<LaneTask>,
    deps: Vec<Vec<usize>>,
}

impl LaneGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        LaneGraph::default()
    }

    /// Appends a task depending on the given earlier task ids; returns
    /// the new task's id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Exec`] if a dependency references this task or a
    /// not-yet-pushed one.
    pub fn push(&mut self, task: LaneTask, deps: Vec<usize>) -> Result<usize> {
        let id = self.tasks.len();
        if let Some(&bad) = deps.iter().find(|&&d| d >= id) {
            return Err(Error::Exec {
                what: format!(
                    "task {id} ({}) depends on non-earlier task {bad}",
                    task.label
                ),
            });
        }
        self.tasks.push(task);
        self.deps.push(deps);
        Ok(id)
    }

    /// All tasks, indexed by id.
    #[must_use]
    pub fn tasks(&self) -> &[LaneTask] {
        &self.tasks
    }

    /// Prerequisites of task `t`.
    #[must_use]
    pub fn deps(&self, t: usize) -> &[usize] {
        &self.deps[t]
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The distinct lanes present, in fixed NPU/CPU/GPU order.
    #[must_use]
    pub fn lanes(&self) -> Vec<Processor> {
        let mut lanes = Vec::new();
        for p in [Processor::Npu, Processor::Cpu, Processor::Gpu] {
            if self.tasks.iter().any(|t| t.processor == p) {
                lanes.push(p);
            }
        }
        lanes
    }

    /// Translates the graph into the static verifier's structural IR:
    /// same task ids, lanes numbered in the fixed NPU/CPU/GPU order,
    /// every task classified neutrally (no serve-level metadata — the
    /// serving layer enriches its own translation with task classes,
    /// page segments, and KV write sets).
    ///
    /// Structural verification of the result catches dependency damage,
    /// cycles, and infeasible timings; it cannot (by construction)
    /// produce barrier/gate or page findings.
    #[must_use]
    pub fn verify_plan(&self) -> llmnpu_verify::Plan {
        const LANE_ORDER: [Processor; 3] = [Processor::Npu, Processor::Cpu, Processor::Gpu];
        let mut plan = llmnpu_verify::Plan {
            lane_names: LANE_ORDER.iter().map(ToString::to_string).collect(),
            ..llmnpu_verify::Plan::default()
        };
        for (i, task) in self.tasks.iter().enumerate() {
            let lane = LANE_ORDER
                .iter()
                .position(|&p| p == task.processor)
                .unwrap_or(LANE_ORDER.len());
            let mut vt =
                llmnpu_verify::PlanTask::new(task.label.clone(), lane, self.deps[i].clone());
            vt.release_ms = task.release_ms;
            vt.duration_ms = task.duration_ms;
            vt.barrier = task.barrier;
            plan.tasks.push(vt);
        }
        plan
    }

    /// Mirrors a [`PrefillDag`]'s structure (same task ids) with zero
    /// release times.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Exec`] if the DAG is not topologically ordered.
    pub fn from_prefill_dag(dag: &PrefillDag) -> Result<Self> {
        let mut graph = LaneGraph::new();
        for (i, task) in dag.tasks().iter().enumerate() {
            graph.push(
                LaneTask {
                    label: task.label.clone(),
                    processor: task.processor,
                    duration_ms: task.duration_ms,
                    release_ms: 0.0,
                    barrier: false,
                },
                dag.deps(i).to_vec(),
            )?;
        }
        Ok(graph)
    }
}

/// Result of executing a chunked prefill through the DAG runner.
#[derive(Debug)]
pub struct NumericPrefill {
    /// Final hidden states `[prompt_len, hidden]`, row-concatenated in
    /// chunk order — bit-identical to `Transformer::prefill_chunked`.
    pub hidden: Tensor<f32>,
    /// The populated KV cache, ready for decode.
    pub cache: KvCache,
    /// The measured execution timeline.
    pub timeline: ExecutedTimeline,
}

/// Per-chunk activation slots flowing between stage tasks. A chunk's
/// stages form a dependency chain, so at most one task touches a slot
/// at a time; the mutexes exist for `Sync`, not for contention.
struct ChunkSlots {
    h: Mutex<Tensor<f32>>,
    a_in: Mutex<Option<std::sync::Arc<Tensor<f32>>>>,
    q: Mutex<Option<Tensor<f32>>>,
    attn: Mutex<Option<Tensor<f32>>>,
    f_in: Mutex<Option<std::sync::Arc<Tensor<f32>>>>,
    qkv_mains: Mutex<Option<QkvMains>>,
    qkv_shadows: Mutex<Option<QkvShadows>>,
    ffn_mains: Mutex<Option<FfnMains>>,
    ffn_shadows: Mutex<Option<FfnShadows>>,
}

/// Position-addressed K/V storage for one layer: chunk `c` writes rows
/// `[c·chunk_len, c·chunk_len + len_c)`, so append *order* across
/// out-of-order chunks cannot matter — the dependency edges only have to
/// guarantee the rows are present before attention reads them, which is
/// exactly Equation 2.
struct LayerKvBuf {
    k: Mutex<Vec<f32>>,
    v: Mutex<Vec<f32>>,
}

/// Where a prefill program's K/V rows go (and attention reads from).
///
/// `Buffered` is the classic single-request path: private per-layer
/// buffers, later assembled into a contiguous [`KvCache`]. `Paged`
/// writes straight into a request's [`PagedKvCache`] — shared-pool
/// pages behind a block table — which is how the serving scheduler
/// runs prefill: the slot is `None` until the request's admission task
/// reserves its pages, and the dependency edges guarantee admission
/// precedes every write. Both paths address **absolute** positions, so
/// out-of-order chunk completion cannot reorder either cache.
pub enum KvSink<'t> {
    /// Private per-layer buffers; `assemble_cache` is available.
    Buffered,
    /// A request's paged cache, reserved at admission time by the
    /// serving scheduler.
    Paged(&'t Mutex<Option<PagedKvCache>>),
}

enum KvStore<'t> {
    Buffered(Vec<LayerKvBuf>),
    Paged(&'t Mutex<Option<PagedKvCache>>),
}

struct ExecCtx<'t, 'w> {
    t: &'t Transformer<'w>,
    chunks: Vec<ChunkSlots>,
    store: KvStore<'t>,
    /// `(token_start, token_len)` per chunk, **absolute** positions
    /// (token_start includes `base_pos`; last chunk may be short).
    bounds: Vec<(usize, usize)>,
    kv_dim: usize,
    /// Tokens this program computes (the suffix length when resuming
    /// after a shared prefix; `bounds` already folds the base offset
    /// into every start position).
    prompt_len: usize,
}

impl ExecCtx<'_, '_> {
    fn write_kv(
        &self,
        layer: usize,
        chunk: usize,
        k: &Tensor<f32>,
        v: &Tensor<f32>,
    ) -> std::result::Result<(), String> {
        let (start, len) = self.bounds[chunk];
        match &self.store {
            KvStore::Buffered(bufs) => {
                let lo = start * self.kv_dim;
                let hi = (start + len) * self.kv_dim;
                bufs[layer].k.lock().unwrap_or_else(PoisonError::into_inner)[lo..hi]
                    .copy_from_slice(k.as_slice());
                bufs[layer].v.lock().unwrap_or_else(PoisonError::into_inner)[lo..hi]
                    .copy_from_slice(v.as_slice());
            }
            KvStore::Paged(slot) => {
                let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
                let cache = guard.as_mut().ok_or("kv pages not reserved before write")?;
                for r in 0..len {
                    cache
                        .write_position(layer, start + r, k.row(r), v.row(r))
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        Ok(())
    }

    fn read_kv(
        &self,
        bufs: &[LayerKvBuf],
        layer: usize,
        visible_rows: usize,
    ) -> std::result::Result<(Tensor<f32>, Tensor<f32>), String> {
        let hi = visible_rows * self.kv_dim;
        let k = Tensor::from_vec(
            bufs[layer].k.lock().unwrap_or_else(PoisonError::into_inner)[..hi].to_vec(),
            [visible_rows, self.kv_dim],
        )
        .map_err(|e| format!("kv key shape: {e}"))?;
        let v = Tensor::from_vec(
            bufs[layer].v.lock().unwrap_or_else(PoisonError::into_inner)[..hi].to_vec(),
            [visible_rows, self.kv_dim],
        )
        .map_err(|e| format!("kv value shape: {e}"))?;
        Ok((k, v))
    }

    /// Attention over everything visible to `chunk` (Equation 2: all
    /// positions through the chunk's end), from whichever store holds
    /// the rows.
    fn attention(
        &self,
        layer: usize,
        chunk: usize,
        q: &Tensor<f32>,
    ) -> std::result::Result<Tensor<f32>, String> {
        let (start, len) = self.bounds[chunk];
        let visible = start + len;
        let start_pos = start;
        match &self.store {
            KvStore::Buffered(bufs) => {
                let (keys, values) = self.read_kv(bufs, layer, visible)?;
                self.t
                    .stage_attention(q, &keys, &values, start_pos)
                    .map_err(|e| e.to_string())
            }
            KvStore::Paged(slot) => {
                // Snapshot the block table and drop the slot lock
                // before the page walk: attention is the long pole, and
                // holding the owner's mutex across it would serialize
                // this request's independent stage tasks.
                let reader = {
                    let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
                    guard
                        .as_ref()
                        .ok_or("kv pages not reserved before read")?
                        .reader()
                };
                self.t
                    .stage_attention_reader(layer, q, &reader, visible, start_pos)
                    .map_err(|e| e.to_string())
            }
        }
    }
}

/// The executable body of one lane task. The returned error string is
/// surfaced as [`Error::Exec`] by the dispatcher.
pub type TaskFn<'run> = Box<dyn FnOnce() -> std::result::Result<(), String> + Send + 'run>;

fn take<T>(slot: &Mutex<Option<T>>, what: &str) -> std::result::Result<T, String> {
    slot.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .ok_or_else(|| format!("missing {what} input"))
}

/// Builds the executable closure for one DAG task.
fn task_closure<'run>(ctx: &'run ExecCtx<'_, '_>, task: &Task, split: bool) -> TaskFn<'run> {
    let chunk = task.chunk;
    let layer = task.layer;
    let stage = task.stage;
    let role = task.role;
    Box::new(move || {
        let t = ctx.t;
        let slots = &ctx.chunks[chunk];
        let (start_pos, _len) = ctx.bounds[chunk];
        let err = |e: llmnpu_model::Error| e.to_string();
        match (role, stage) {
            (TaskRole::Main, Stage::AttnPre) => {
                let a_in = {
                    let h = slots.h.lock().unwrap_or_else(PoisonError::into_inner);
                    t.stage_attn_pre(layer, &h).map_err(err)?
                };
                *slots.a_in.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(std::sync::Arc::new(a_in));
            }
            (TaskRole::Main, Stage::QkvLinear) => {
                let a_in = slots
                    .a_in
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
                    .ok_or("missing a_in input")?;
                if split {
                    // Shadow task attached: compute the quantized mains
                    // only; the merge task finishes the stage.
                    let mains = t.stage_qkv_main(layer, &a_in).map_err(err)?;
                    *slots
                        .qkv_mains
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(mains);
                } else {
                    let (q, k, v) = t.stage_qkv(layer, &a_in, start_pos).map_err(err)?;
                    *slots.a_in.lock().unwrap_or_else(PoisonError::into_inner) = None;
                    ctx.write_kv(layer, chunk, &k, &v)?;
                    *slots.q.lock().unwrap_or_else(PoisonError::into_inner) = Some(q);
                }
            }
            (TaskRole::Shadow, Stage::QkvLinear) => {
                let a_in = slots
                    .a_in
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
                    .ok_or("missing a_in input")?;
                let shadows = t.stage_qkv_shadow(layer, &a_in).map_err(err)?;
                *slots
                    .qkv_shadows
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(shadows);
            }
            (TaskRole::MergeSync, Stage::QkvLinear) => {
                let mains = take(&slots.qkv_mains, "qkv mains")?;
                let shadows = take(&slots.qkv_shadows, "qkv shadows")?;
                let (q, k, v) = t.stage_qkv_finish(mains, shadows, start_pos).map_err(err)?;
                *slots.a_in.lock().unwrap_or_else(PoisonError::into_inner) = None;
                ctx.write_kv(layer, chunk, &k, &v)?;
                *slots.q.lock().unwrap_or_else(PoisonError::into_inner) = Some(q);
            }
            (TaskRole::Main, Stage::Attention) => {
                let q = take(&slots.q, "q")?;
                // Equation 2's visibility: all positions through this
                // chunk's end (including any shared prefix before
                // base_pos), from whichever store holds the rows.
                let attn = ctx.attention(layer, chunk, &q)?;
                *slots.attn.lock().unwrap_or_else(PoisonError::into_inner) = Some(attn);
            }
            (TaskRole::Main, Stage::OProj) => {
                let attn = take(&slots.attn, "attention output")?;
                let mut h = slots.h.lock().unwrap_or_else(PoisonError::into_inner);
                *h = t.stage_attn_out(layer, &h, &attn).map_err(err)?;
            }
            (TaskRole::Main, Stage::FfnPre) => {
                let f_in = {
                    let h = slots.h.lock().unwrap_or_else(PoisonError::into_inner);
                    t.stage_ffn_pre(layer, &h).map_err(err)?
                };
                *slots.f_in.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(std::sync::Arc::new(f_in));
            }
            (TaskRole::Main, Stage::Ffn) => {
                let f_in = slots
                    .f_in
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
                    .ok_or("missing f_in input")?;
                if split {
                    let mains = t.stage_ffn_mid_main(layer, &f_in).map_err(err)?;
                    *slots
                        .ffn_mains
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(mains);
                } else {
                    let mid = t.stage_ffn_mid(layer, &f_in).map_err(err)?;
                    *slots.f_in.lock().unwrap_or_else(PoisonError::into_inner) = None;
                    let mut h = slots.h.lock().unwrap_or_else(PoisonError::into_inner);
                    *h = t.stage_ffn_down(layer, &h, &mid).map_err(err)?;
                }
            }
            (TaskRole::Shadow, Stage::Ffn) => {
                let f_in = slots
                    .f_in
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
                    .ok_or("missing f_in input")?;
                let shadows = t.stage_ffn_mid_shadow(layer, &f_in).map_err(err)?;
                *slots
                    .ffn_shadows
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(shadows);
            }
            (TaskRole::MergeSync, Stage::Ffn) => {
                let mains = take(&slots.ffn_mains, "ffn mains")?;
                let shadows = take(&slots.ffn_shadows, "ffn shadows")?;
                let mid = t.stage_ffn_mid_finish(mains, shadows).map_err(err)?;
                *slots.f_in.lock().unwrap_or_else(PoisonError::into_inner) = None;
                let mut h = slots.h.lock().unwrap_or_else(PoisonError::into_inner);
                *h = t.stage_ffn_down(layer, &h, &mid).map_err(err)?;
            }
            (role, stage) => {
                return Err(format!("unexecutable task: {role:?} on {stage:?}"));
            }
        }
        Ok(())
    })
}

/// One request's prefill, prepared for execution: the per-chunk
/// activation slots, position-addressed KV buffers, and the mapping from
/// DAG tasks to stage closures.
///
/// [`execute_chunked_prefill`] drives one of these through the
/// dispatcher on its own; the serving scheduler in `llmnpu-core`
/// prepares one per admitted request and splices all their closures into
/// a single combined [`LaneGraph`] together with decode tasks.
pub struct PrefillProgram<'t, 'w> {
    ctx: ExecCtx<'t, 'w>,
    /// (layer, stage) pairs with a shadow task attached: their main
    /// tasks compute pre-merge halves only.
    split: std::collections::HashSet<(usize, Stage)>,
}

impl<'t, 'w> PrefillProgram<'t, 'w> {
    /// Validates the DAG/plan/model agreement and seeds the per-chunk
    /// slots with the embedded hidden states. K/V rows go to private
    /// buffers ([`PrefillProgram::assemble_cache`] is available).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Exec`] on a plan/DAG/model mismatch.
    pub fn new(
        t: &'t Transformer<'w>,
        tokens: &[u32],
        dag: &PrefillDag,
        plan: &ChunkPlan,
    ) -> Result<Self> {
        Self::with_sink(t, tokens, dag, plan, 0, KvSink::Buffered)
    }

    /// A prefill program writing K/V into a **paged** cache slot,
    /// starting at absolute position `base_pos` (non-zero when `tokens`
    /// is the suffix after a shared, already-cached prompt prefix). The
    /// slot is filled by the serving scheduler's admission task; every
    /// DAG task that touches K/V must depend (transitively) on it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Exec`] on a plan/DAG/model mismatch.
    pub fn new_paged(
        t: &'t Transformer<'w>,
        tokens: &[u32],
        dag: &PrefillDag,
        plan: &ChunkPlan,
        base_pos: usize,
        slot: &'t Mutex<Option<PagedKvCache>>,
    ) -> Result<Self> {
        Self::with_sink(t, tokens, dag, plan, base_pos, KvSink::Paged(slot))
    }

    /// Shared constructor body behind the two public entry points.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Exec`] on a plan/DAG/model mismatch.
    pub fn with_sink(
        t: &'t Transformer<'w>,
        tokens: &[u32],
        dag: &PrefillDag,
        plan: &ChunkPlan,
        base_pos: usize,
        sink: KvSink<'t>,
    ) -> Result<Self> {
        if base_pos != 0 && matches!(sink, KvSink::Buffered) {
            return Err(Error::Exec {
                what: "buffered prefill cannot resume at a non-zero base position".to_owned(),
            });
        }
        if tokens.len() != plan.prompt_len {
            return Err(Error::Exec {
                what: format!(
                    "plan is for {} tokens, got {}",
                    plan.prompt_len,
                    tokens.len()
                ),
            });
        }
        let cfg = t.config();
        if let Some(bad) = dag.tasks().iter().find(|task| task.layer >= cfg.layers) {
            return Err(Error::Exec {
                what: format!(
                    "dag task {} references layer {} of a {}-layer model",
                    bad.label, bad.layer, cfg.layers
                ),
            });
        }
        dag.validate().map_err(|e| Error::Exec {
            what: format!("invalid dag: {e}"),
        })?;

        let split: std::collections::HashSet<(usize, Stage)> = dag
            .tasks()
            .iter()
            .filter(|task| task.role == TaskRole::Shadow)
            .map(|task| (task.layer, task.stage))
            .collect();

        let chunk_len = plan.chunk_len;
        let mut bounds = Vec::with_capacity(plan.chunks);
        let mut chunks = Vec::with_capacity(plan.chunks);
        for (c, chunk_tokens) in tokens.chunks(chunk_len).enumerate() {
            bounds.push((base_pos + c * chunk_len, chunk_tokens.len()));
            chunks.push(ChunkSlots {
                h: Mutex::new(t.embed(chunk_tokens).map_err(exec_err)?),
                a_in: Mutex::new(None),
                q: Mutex::new(None),
                attn: Mutex::new(None),
                f_in: Mutex::new(None),
                qkv_mains: Mutex::new(None),
                qkv_shadows: Mutex::new(None),
                ffn_mains: Mutex::new(None),
                ffn_shadows: Mutex::new(None),
            });
        }
        if bounds.len() != plan.chunks {
            return Err(Error::Exec {
                what: format!(
                    "plan expects {} chunks, tokens produce {}",
                    plan.chunks,
                    bounds.len()
                ),
            });
        }
        let kv_dim = cfg.kv_dim();
        let store = match sink {
            KvSink::Buffered => KvStore::Buffered(
                (0..cfg.layers)
                    .map(|_| LayerKvBuf {
                        k: Mutex::new(vec![0.0; tokens.len() * kv_dim]),
                        v: Mutex::new(vec![0.0; tokens.len() * kv_dim]),
                    })
                    .collect(),
            ),
            KvSink::Paged(slot) => KvStore::Paged(slot),
        };
        Ok(PrefillProgram {
            ctx: ExecCtx {
                t,
                chunks,
                store,
                bounds,
                kv_dim,
                prompt_len: tokens.len(),
            },
            split,
        })
    }

    /// Builds one executable closure per DAG task (same indices as
    /// `dag.tasks()`). The closures borrow this program, so it must
    /// outlive the execution.
    #[must_use]
    pub fn closures<'run>(&'run self, dag: &PrefillDag) -> Vec<TaskFn<'run>> {
        dag.tasks()
            .iter()
            .map(|task| {
                let is_split = self.split.contains(&(task.layer, task.stage));
                task_closure(&self.ctx, task, is_split)
            })
            .collect()
    }

    /// Assembles the final hidden states `[prompt_len, hidden]` in chunk
    /// order (valid once every task has run).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Exec`] on a shape inconsistency.
    pub fn assemble_hidden(&self) -> Result<Tensor<f32>> {
        let hidden_w = self.ctx.t.config().hidden;
        let mut out = Vec::with_capacity(self.ctx.prompt_len * hidden_w);
        for slots in &self.ctx.chunks {
            out.extend_from_slice(
                slots
                    .h
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .as_slice(),
            );
        }
        Tensor::from_vec(out, [self.ctx.prompt_len, hidden_w]).map_err(|e| Error::Exec {
            what: format!("hidden assembly: {e}"),
        })
    }

    /// The last token's hidden state as a `[1, hidden]` tensor — the
    /// LM-head input of the first decode step.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Exec`] on a shape inconsistency.
    pub fn last_hidden_row(&self) -> Result<Tensor<f32>> {
        let hidden_w = self.ctx.t.config().hidden;
        let last = self.ctx.chunks.last().ok_or(Error::Exec {
            what: "empty prefill program".to_owned(),
        })?;
        let h = last.h.lock().unwrap_or_else(PoisonError::into_inner);
        let (rows, _) = h.matrix_dims();
        Tensor::from_vec(h.row(rows - 1).to_vec(), [1, hidden_w]).map_err(|e| Error::Exec {
            what: format!("last hidden row: {e}"),
        })
    }

    /// Assembles the populated KV cache (valid once every task has run)
    /// — bit-identical to the cache `Transformer::prefill_chunked`
    /// produces.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Exec`] on a shape inconsistency.
    pub fn assemble_cache(&self) -> Result<KvCache> {
        let cfg = self.ctx.t.config();
        let KvStore::Buffered(bufs) = &self.ctx.store else {
            return Err(Error::Exec {
                what: "paged prefill keeps its cache in the pool; nothing to assemble".to_owned(),
            });
        };
        let mut cache = KvCache::new(cfg.layers);
        for (layer, buf) in bufs.iter().enumerate() {
            let k = Tensor::from_vec(
                buf.k.lock().unwrap_or_else(PoisonError::into_inner).clone(),
                [self.ctx.prompt_len, self.ctx.kv_dim],
            )
            .map_err(|e| Error::Exec {
                what: format!("kv assembly: {e}"),
            })?;
            let v = Tensor::from_vec(
                buf.v.lock().unwrap_or_else(PoisonError::into_inner).clone(),
                [self.ctx.prompt_len, self.ctx.kv_dim],
            )
            .map_err(|e| Error::Exec {
                what: format!("kv assembly: {e}"),
            })?;
            cache
                .layer_mut(layer)
                .map_err(exec_err)?
                .append(&k, &v)
                .map_err(exec_err)?;
        }
        Ok(cache)
    }
}

/// Why an isolated run skipped a task without executing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// A (transitive) dependency failed or was itself skipped, so the
    /// task's inputs will never exist.
    PoisonedDep,
    /// The dispatch gate refused the task — its request was cancelled or
    /// past its deadline at dispatch time.
    Gated,
}

/// Terminal state of one task after [`execute_lane_graph_isolated`].
#[derive(Debug, Clone)]
pub enum TaskOutcome {
    /// Ran to completion; timestamps are ms from run start.
    Completed {
        /// Wall-clock start.
        start_ms: f64,
        /// Wall-clock end.
        end_ms: f64,
    },
    /// Ran and failed — the closure returned an error or panicked. Only
    /// the task's non-barrier dependents were poisoned; everything else
    /// kept executing.
    Failed {
        /// Wall-clock start.
        start_ms: f64,
        /// Wall-clock end (when the failure was recorded).
        end_ms: f64,
        /// The closure's error string (or a panic notice).
        error: String,
    },
    /// Never ran.
    Skipped {
        /// When the skip was decided, ms from run start.
        at_ms: f64,
        /// Why the dispatcher refused it.
        reason: SkipReason,
    },
}

impl TaskOutcome {
    /// The executed wall-clock span, if the task actually ran.
    #[must_use]
    pub fn span(&self) -> Option<(f64, f64)> {
        match *self {
            TaskOutcome::Completed { start_ms, end_ms }
            | TaskOutcome::Failed {
                start_ms, end_ms, ..
            } => Some((start_ms, end_ms)),
            TaskOutcome::Skipped { .. } => None,
        }
    }

    /// Whether the task ran to completion.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, TaskOutcome::Completed { .. })
    }

    /// The failure message, if the task failed.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        match self {
            TaskOutcome::Failed { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A dispatch-time gate for isolated runs, consulted under the dispatch
/// lock for every dependency-ready task before it can be handed to a
/// lane: `gate(task_id, now_ms)` returning `true` skips the task
/// ([`SkipReason::Gated`]) and poisons its non-barrier dependents. The
/// serving layer uses this for release-aware cancellation and deadline
/// checks — a task whose request is already terminal is never run. Must
/// be cheap: it runs with the dispatch lock held.
pub type GateFn<'run> = Box<dyn Fn(usize, f64) -> bool + Send + Sync + 'run>;

/// Shared dispatch state for the lane loops.
struct DispatchState {
    scheduled: Vec<bool>,
    done: Vec<bool>,
    remaining: usize,
    in_flight: usize,
    aborted: bool,
    error: Option<String>,
    outcomes: Vec<Option<TaskOutcome>>,
}

struct Dispatcher<'d> {
    graph: &'d LaneGraph,
    successors: Vec<Vec<usize>>,
    policy: Policy,
    /// Fault-contained mode: task failures poison dependents instead of
    /// aborting the run.
    isolate: bool,
    gate: Option<GateFn<'d>>,
    /// The dispatcher's own bookkeeping mutex (`state`) is the one lock
    /// in this module where poisoning IS fatal: closures run *outside*
    /// it, so it can only be poisoned by a panic inside the dispatcher's
    /// own accounting — and `scheduled`/`remaining`/`in_flight`
    /// invariants cannot be re-validated after a partial update. Every
    /// `.expect("dispatch mutex")` below is deliberate.
    state: Mutex<DispatchState>,
    cv: Condvar,
    started: Instant,
    /// Optional trace recorder for dispatch/completion/skip events
    /// (Exec plane: emission order follows the live interleaving).
    sink: Option<&'d TraceSink>,
}

impl<'d> Dispatcher<'d> {
    fn new(
        graph: &'d LaneGraph,
        policy: Policy,
        isolate: bool,
        gate: Option<GateFn<'d>>,
        sink: Option<&'d TraceSink>,
    ) -> Self {
        let n = graph.len();
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in 0..n {
            for &d in graph.deps(t) {
                successors[d].push(t);
            }
        }
        Dispatcher {
            graph,
            successors,
            policy,
            isolate,
            gate,
            state: Mutex::new(DispatchState {
                scheduled: vec![false; n],
                done: vec![false; n],
                remaining: n,
                in_flight: 0,
                aborted: false,
                error: None,
                outcomes: vec![None; n],
            }),
            cv: Condvar::new(),
            started: Instant::now(),
            sink,
        }
    }

    /// Emit an Exec-plane event for task `t` when tracing is on.
    fn trace_task(&self, kind: EventKind, t: usize, wall_ms: f64, note: &str) {
        if let Some(sink) = self.sink {
            let task = &self.graph.tasks()[t];
            sink.event_at(Plane::Exec, kind, None, wall_ms, || {
                if note.is_empty() {
                    format!("{} on {}", task.label, task.processor)
                } else {
                    format!("{} on {} ({note})", task.label, task.processor)
                }
            });
        }
    }

    /// Dependency-readiness (release times not considered).
    fn deps_done(&self, st: &DispatchState, t: usize) -> bool {
        self.graph.deps(t).iter().all(|&d| st.done[d])
    }

    /// Dispatchability at wall-clock `now`: deps done *and* released.
    fn ready(&self, st: &DispatchState, t: usize, now: f64) -> bool {
        self.graph.tasks()[t].release_ms <= now + EPS && self.deps_done(st, t)
    }

    /// Any task dep-ready on any lane (released or not)?
    fn any_deps_done(&self, st: &DispatchState) -> bool {
        (0..self.graph.len()).any(|t| !st.scheduled[t] && self.deps_done(st, t))
    }

    /// Milliseconds until the earliest pending release among dep-ready
    /// tasks, or `None` when every dep-ready task is already released.
    fn next_release_in(&self, st: &DispatchState, now: f64) -> Option<f64> {
        (0..self.graph.len())
            .filter(|&t| !st.scheduled[t] && self.deps_done(st, t))
            .map(|t| self.graph.tasks()[t].release_ms - now)
            .filter(|&dt| dt > EPS)
            .fold(None, |acc, dt| Some(acc.map_or(dt, |a: f64| a.min(dt))))
    }

    /// Equation 5's C-value over boolean completion state: successors
    /// that become ready once `g` completes, weighted by their *modeled*
    /// duration (the executor prioritizes with the timing plane's
    /// predictions, exactly as the paper's online scheduler does).
    fn c_value(&self, st: &DispatchState, g: usize) -> f64 {
        let tasks = self.graph.tasks();
        let mut total = 0.0;
        for &s in &self.successors[g] {
            if st.scheduled[s] {
                continue;
            }
            let others_ready = self.graph.deps(s).iter().all(|&d| d == g || st.done[d]);
            if others_ready {
                total += tasks[s].duration_ms;
            }
        }
        if tasks[g].processor == Processor::Npu {
            -total
        } else {
            total
        }
    }

    /// Picks the next task for lane `p` under the policy, or `None`.
    fn pick(&self, st: &DispatchState, p: Processor, now: f64) -> Option<usize> {
        let tasks = self.graph.tasks();
        match self.policy {
            Policy::Serial => {
                let next = st.scheduled.iter().position(|&s| !s)?;
                (tasks[next].processor == p && self.ready(st, next, now) && st.in_flight == 0)
                    .then_some(next)
            }
            Policy::FifoQueues => {
                let head =
                    (0..tasks.len()).find(|&t| !st.scheduled[t] && tasks[t].processor == p)?;
                self.ready(st, head, now).then_some(head)
            }
            Policy::OutOfOrder => {
                let mut best: Option<(f64, usize)> = None;
                for (t, task) in tasks.iter().enumerate() {
                    if st.scheduled[t] || task.processor != p || !self.ready(st, t, now) {
                        continue;
                    }
                    let c = self.c_value(st, t);
                    let better = match best {
                        None => true,
                        Some((bc, bt)) => c > bc + EPS || ((c - bc).abs() <= EPS && t < bt),
                    };
                    if better {
                        best = Some((c, t));
                    }
                }
                best.map(|(_, t)| t)
            }
        }
    }

    fn now_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Marks every not-yet-scheduled, non-barrier transitive dependent
    /// of `t` as skipped ([`SkipReason::PoisonedDep`]). Barrier tasks
    /// stop the cascade: they still run (cleanup paths must execute even
    /// when the work they clean up after failed), and their own
    /// dependents are reached through them only if they fail too.
    fn poison_dependents(&self, st: &mut DispatchState, t: usize, at_ms: f64) {
        let tasks = self.graph.tasks();
        let mut stack: Vec<usize> = self.successors[t].clone();
        while let Some(s) = stack.pop() {
            if st.scheduled[s] || tasks[s].barrier {
                continue;
            }
            st.scheduled[s] = true;
            st.done[s] = true;
            st.remaining -= 1;
            st.outcomes[s] = Some(TaskOutcome::Skipped {
                at_ms,
                reason: SkipReason::PoisonedDep,
            });
            self.trace_task(EventKind::TaskSkipped, s, at_ms, "poisoned dep");
            stack.extend(self.successors[s].iter().copied());
        }
    }

    /// Applies the dispatch gate (isolated mode only): every unscheduled
    /// task whose dependencies are settled is offered to the gate; a
    /// `true` verdict skips it ([`SkipReason::Gated`]) — regardless of
    /// its release time, so cancelled queued work is retired immediately
    /// — and poisons its non-barrier dependents. Returns whether
    /// anything changed, in which case the caller must wake the other
    /// lanes (a barrier may have become ready elsewhere).
    fn apply_gate(&self, st: &mut DispatchState, now: f64) -> bool {
        let Some(gate) = self.gate.as_deref() else {
            return false;
        };
        let mut changed = false;
        let mut t = 0;
        while t < self.graph.len() {
            if !st.scheduled[t] && self.deps_done(st, t) && gate(t, now) {
                st.scheduled[t] = true;
                st.done[t] = true;
                st.remaining -= 1;
                st.outcomes[t] = Some(TaskOutcome::Skipped {
                    at_ms: now,
                    reason: SkipReason::Gated,
                });
                self.trace_task(EventKind::TaskSkipped, t, now, "gated");
                self.poison_dependents(st, t, now);
                changed = true;
                // A skip settles deps, which can expose earlier-indexed
                // tasks to the gate: rescan from the top.
                t = 0;
            } else {
                t += 1;
            }
        }
        changed
    }

    /// Runs one task inline, recording timestamps and completion. A
    /// panicking closure is converted into a task failure; in fail-fast
    /// mode that aborts the whole run (the other lane loops drain
    /// instead of waiting forever), in isolated mode it poisons only the
    /// task's non-barrier dependency chain and everything else keeps
    /// executing.
    fn run_task(&self, closures: &[Mutex<Option<TaskFn<'_>>>], t: usize) {
        let closure = closures[t]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            // lint: allow(panic) — `scheduled[t]` under the dispatch lock makes double dispatch unreachable
            .expect("task dispatched twice");
        let t0 = self.now_ms();
        self.trace_task(EventKind::Dispatch, t, t0, "");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(closure))
            .unwrap_or_else(|payload| {
                // Preserve the payload text (fault injection and asserts
                // carry their diagnosis there) — `task N panicked` alone
                // is useless to the caller attributing the failure.
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque payload".to_string());
                Err(format!("task {t} panicked: {msg}"))
            });
        let t1 = self.now_ms();
        // lint: allow(panic) — task panics are caught before this lock, so poisoning is unreachable
        let mut st = self.state.lock().expect("dispatch mutex");
        st.done[t] = true;
        st.remaining -= 1;
        st.in_flight -= 1;
        match result {
            Ok(()) => {
                st.outcomes[t] = Some(TaskOutcome::Completed {
                    start_ms: t0,
                    end_ms: t1,
                });
                self.trace_task(EventKind::TaskDone, t, t1, "");
            }
            Err(e) => {
                st.outcomes[t] = Some(TaskOutcome::Failed {
                    start_ms: t0,
                    end_ms: t1,
                    error: e.clone(),
                });
                self.trace_task(EventKind::TaskFailed, t, t1, &e);
                if self.isolate {
                    self.poison_dependents(&mut st, t, t1);
                } else {
                    st.aborted = true;
                    st.error.get_or_insert(e);
                }
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// The blocking lane loop for processor `p` (one OS thread per lane).
    fn lane_loop(&self, closures: &[Mutex<Option<TaskFn<'_>>>], p: Processor) {
        loop {
            let picked = {
                // lint: allow(panic) — task panics are caught before this lock, so poisoning is unreachable
                let mut st = self.state.lock().expect("dispatch mutex");
                loop {
                    if st.aborted || st.remaining == 0 {
                        return;
                    }
                    let now = self.now_ms();
                    if self.apply_gate(&mut st, now) {
                        self.cv.notify_all();
                        continue;
                    }
                    if let Some(t) = self.pick(&st, p, now) {
                        st.scheduled[t] = true;
                        st.in_flight += 1;
                        break t;
                    }
                    // A dep-ready task may just be awaiting its release
                    // (request arrival): sleep until then, not forever.
                    let pending_release = self.next_release_in(&st, now);
                    if st.in_flight == 0 && !self.any_deps_done(&st) && pending_release.is_none() {
                        st.aborted = true;
                        st.error
                            .get_or_insert_with(|| "dispatch deadlock".to_owned());
                        drop(st);
                        self.cv.notify_all();
                        return;
                    }
                    st = match pending_release {
                        Some(wait_ms) => {
                            let timeout = Duration::from_secs_f64((wait_ms / 1e3).max(1e-5));
                            // lint: allow(panic) — condvar wait only errs on a poisoned lock, unreachable here
                            self.cv.wait_timeout(st, timeout).expect("dispatch mutex").0
                        }
                        // lint: allow(panic) — condvar wait only errs on a poisoned lock, unreachable here
                        None => self.cv.wait(st).expect("dispatch mutex"),
                    };
                }
            };
            self.run_task(closures, picked);
        }
    }

    /// Single-threaded fallback: interleaves the lanes in NPU-first
    /// order on the calling thread. Numerically identical to the
    /// concurrent dispatcher; only the wall-clock overlap is lost.
    fn sequential(&self, closures: &[Mutex<Option<TaskFn<'_>>>], lanes: &[Processor]) -> bool {
        loop {
            let picked = {
                // lint: allow(panic) — task panics are caught before this lock, so poisoning is unreachable
                let mut st = self.state.lock().expect("dispatch mutex");
                if st.aborted || st.remaining == 0 {
                    return true;
                }
                let now = self.now_ms();
                if self.apply_gate(&mut st, now) {
                    continue;
                }
                let mut found = None;
                for &p in lanes {
                    if let Some(t) = self.pick(&st, p, now) {
                        st.scheduled[t] = true;
                        st.in_flight += 1;
                        found = Some(t);
                        break;
                    }
                }
                match found {
                    Some(found) => found,
                    None => {
                        // Nothing dispatchable right now: if something is
                        // only waiting on its release time, sleep it in;
                        // otherwise the graph is stuck.
                        let Some(wait_ms) = self.next_release_in(&st, now) else {
                            st.aborted = true;
                            st.error
                                .get_or_insert_with(|| "dispatch deadlock".to_owned());
                            return false;
                        };
                        drop(st);
                        std::thread::sleep(Duration::from_secs_f64((wait_ms / 1e3).max(1e-5)));
                        continue;
                    }
                }
            };
            self.run_task(closures, picked);
        }
    }
}

/// The shared dispatch core under both execution modes: builds the
/// dispatcher, drives the lane loops on the pool (or the sequential
/// fallback), and returns every task's outcome.
fn run_lane_graph<'run>(
    graph: &LaneGraph,
    closures: Vec<TaskFn<'run>>,
    policy: Policy,
    pool: &WorkerPool,
    isolate: bool,
    gate: Option<GateFn<'run>>,
    sink: Option<&TraceSink>,
) -> Result<Vec<TaskOutcome>> {
    if closures.len() != graph.len() {
        return Err(Error::Exec {
            what: format!(
                "graph has {} tasks but {} closures",
                graph.len(),
                closures.len()
            ),
        });
    }
    if graph.is_empty() {
        return Ok(Vec::new());
    }
    // Debug builds statically verify every graph they execute: the
    // structural half of the plan checks (dependency sanity, cycles,
    // timing feasibility) runs before a single task is dispatched, so
    // every integration test doubles as a verifier fixture.
    #[cfg(debug_assertions)]
    {
        let report = llmnpu_verify::verify(&graph.verify_plan());
        debug_assert!(
            report.is_clean(),
            "lane graph failed static verification:\n{}",
            report
                .findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    let closures: Vec<Mutex<Option<TaskFn<'_>>>> =
        closures.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let lanes = graph.lanes();
    let dispatcher = Dispatcher::new(graph, policy, isolate, gate, sink);
    let concurrent = {
        let mut jobs: Vec<Job<'_>> = lanes
            .iter()
            .map(|&p| {
                let dispatcher = &dispatcher;
                let closures = &closures;
                Job::new(move || dispatcher.lane_loop(closures, p))
            })
            .collect();
        pool.run_concurrent(&mut jobs)
    };
    if !concurrent {
        dispatcher.sequential(&closures, &lanes);
    }

    // lint: allow(panic) — all lane threads have joined; nothing can hold or poison the lock
    let st = dispatcher.state.into_inner().expect("dispatch mutex");
    if let Some(e) = st.error {
        return Err(Error::Exec { what: e });
    }
    Ok(st
        .outcomes
        .into_iter()
        // lint: allow(panic) — `remaining == 0` implies every outcome slot was filled
        .map(|o| o.expect("all tasks accounted for"))
        .collect())
}

/// Executes a [`LaneGraph`] — one closure per task — out-of-order across
/// per-processor serial lanes on the persistent pool, honoring release
/// times and the scheduling policy. Returns each task's measured
/// `(start_ms, end_ms)` wall-clock span, indexed like the graph.
///
/// This is the fail-fast mode: the first task failure (or panic) aborts
/// the whole run. It is the generic engine under
/// [`execute_chunked_prefill`]; the continuous-batching serving
/// scheduler in `llmnpu-core` uses the fault-contained
/// [`execute_lane_graph_isolated`] instead.
///
/// # Errors
///
/// Returns [`Error::Exec`] when closure and task counts disagree, when a
/// task body fails or panics, or when dispatch cannot make progress.
pub fn execute_lane_graph(
    graph: &LaneGraph,
    closures: Vec<TaskFn<'_>>,
    policy: Policy,
    pool: &WorkerPool,
) -> Result<Vec<(f64, f64)>> {
    let outcomes = run_lane_graph(graph, closures, policy, pool, false, None, None)?;
    // Fail-fast: an error would have surfaced above, so every task ran.
    Ok(outcomes
        .into_iter()
        // lint: allow(panic) — fail-fast mode errored above unless every task completed with a span
        .map(|o| o.span().expect("all tasks traced"))
        .collect())
}

/// Executes a [`LaneGraph`] with request-level fault containment: a task
/// body that fails or panics produces [`TaskOutcome::Failed`] and
/// poisons only its own non-barrier dependency chain
/// ([`TaskOutcome::Skipped`]) — every other task keeps executing. Tasks
/// with [`LaneTask::barrier`] set still run after a failed dependency
/// (cleanup must happen on all paths). The optional `gate` is consulted
/// under the dispatch lock before any dependency-ready task is handed to
/// a lane; returning `true` skips the task ([`SkipReason::Gated`]) —
/// this is how the serving layer retires cancelled and past-deadline
/// requests without running them.
///
/// Returns one [`TaskOutcome`] per task, indexed like the graph.
///
/// # Errors
///
/// Returns [`Error::Exec`] only for structural problems: closure and
/// task counts disagreeing, or dispatch unable to make progress. Task
/// failures are reported in the outcomes, not as errors.
pub fn execute_lane_graph_isolated<'run>(
    graph: &LaneGraph,
    closures: Vec<TaskFn<'run>>,
    policy: Policy,
    pool: &WorkerPool,
    gate: Option<GateFn<'run>>,
) -> Result<Vec<TaskOutcome>> {
    run_lane_graph(graph, closures, policy, pool, true, gate, None)
}

/// [`execute_lane_graph_isolated`] with an observability sink: the
/// dispatcher emits Exec-plane dispatch / completion / failure / skip
/// events (with wall timestamps) into `sink` as tasks move through the
/// lanes. Numerically identical to the untraced run — emission happens
/// strictly outside task bodies, and a disabled sink short-circuits to
/// one atomic load per site.
///
/// # Errors
///
/// As [`execute_lane_graph_isolated`].
pub fn execute_lane_graph_isolated_traced<'run>(
    graph: &LaneGraph,
    closures: Vec<TaskFn<'run>>,
    policy: Policy,
    pool: &WorkerPool,
    gate: Option<GateFn<'run>>,
    sink: Option<&TraceSink>,
) -> Result<Vec<TaskOutcome>> {
    run_lane_graph(graph, closures, policy, pool, true, gate, sink)
}

/// Executes a chunked prefill by running the DAG's tasks out-of-order
/// across per-processor lanes on the persistent pool.
///
/// The DAG must have been built (`llmnpu_graph::dag::build_prefill_dag`)
/// for `t.config()` and for `plan` (`plan.prompt_len == tokens.len()`).
/// Returns the final hidden states — bit-identical to
/// [`Transformer::prefill_chunked`] with the same chunk length — plus
/// the populated KV cache and the measured execution timeline.
///
/// # Errors
///
/// Returns [`Error::Exec`] on a plan/DAG/model mismatch or a stage
/// failure, and [`Error::Deadlock`] never (the DAG's topological
/// validation precedes execution).
pub fn execute_chunked_prefill(
    t: &Transformer<'_>,
    tokens: &[u32],
    dag: &PrefillDag,
    plan: &ChunkPlan,
    policy: Policy,
    pool: &WorkerPool,
) -> Result<NumericPrefill> {
    let program = PrefillProgram::new(t, tokens, dag, plan)?;
    let graph = LaneGraph::from_prefill_dag(dag)?;
    let spans = execute_lane_graph(&graph, program.closures(dag), policy, pool)?;

    // Assemble the timeline in completion order.
    let mut timeline = ExecutedTimeline::default();
    let mut order: Vec<usize> = (0..dag.len()).collect();
    order.sort_by(|&a, &b| {
        spans[a]
            .1
            .partial_cmp(&spans[b].1)
            // lint: allow(panic) — spans are measured monotonic-clock readings, never NaN
            .expect("finite timestamps")
    });
    for i in order {
        let task = &dag.tasks()[i];
        let (start_ms, end_ms) = spans[i];
        timeline.tasks.push(ExecutedTask {
            label: task.label.clone(),
            chunk: task.chunk,
            layer: task.layer,
            stage: task.stage,
            role: task.role,
            processor: task.processor,
            start_ms,
            end_ms,
        });
    }

    Ok(NumericPrefill {
        hidden: program.assemble_hidden()?,
        cache: program.assemble_cache()?,
        timeline,
    })
}

fn exec_err(e: llmnpu_model::Error) -> Error {
    Error::Exec {
        what: e.to_string(),
    }
}
