//! Dependency-aware subgraph schedulers (§3.4).
//!
//! Given a prefill DAG from `llmnpu-graph`, this crate produces execution
//! timelines on the simulated SoC under four policies:
//!
//! * [`Policy::Serial`] — no heterogeneous overlap at all: every task
//!   waits for everything before it (the fully sequential lower baseline),
//! * [`Policy::FifoQueues`] — *naive overlapping* (Figure 13a): each
//!   processor consumes its own FIFO queue in chunk-sequence order and
//!   stalls whenever the head task's dependencies are unmet — the design
//!   with a 37% NPU bubble rate in the paper,
//! * [`Policy::OutOfOrder`] — llm.npu's online heuristic (Figure 13b):
//!   any input-ready subgraph may run, chosen by the C-value of
//!   Equation 5 (prioritize work that most reduces NPU stalls),
//! * [`optimal_makespan`] — exhaustive search over dispatch orders, viable
//!   only for small DAGs, used to validate that the heuristic is close to
//!   optimal (the scheduling problem itself is NP-hard, §3.4).
//!
//! The scheduling constraint is Equation 4: one task per processor at any
//! time; the simulator in `llmnpu-soc` enforces it.
//!
//! Since the timing/numeric unification, this crate also owns the *real*
//! execution resources:
//!
//! * [`pool`] — the persistent, deterministically-partitioned
//!   [`WorkerPool`] that replaces per-call `std::thread::scope` spawning
//!   in `llmnpu_tensor::kernel::parallel` (created once per engine,
//!   installable as the kernel layer's parallel backend),
//! * [`runner`] — the numeric out-of-order task executor: a generic
//!   lane-graph dispatcher ([`execute_lane_graph`]) over tasks with
//!   processor lanes, modeled durations, release times (request
//!   arrivals), and dependency edges. [`execute_chunked_prefill`] is the
//!   prefill instantiation — the same [`PrefillDag`] the policies above
//!   price analytically, executed for real against a `Transformer`,
//!   with shadow-outlier tasks genuinely overlapping the quantized main
//!   path and an [`ExecutedTimeline`] measured for cross-checking
//!   against the simulated one. The continuous-batching serving loop in
//!   `llmnpu-core` feeds the same dispatcher a combined graph of many
//!   requests' prefill chunks and decode steps.
//!
//! [`PrefillDag`]: llmnpu_graph::dag::PrefillDag

// The pool performs one narrowly-scoped lifetime erasure (see
// `pool`'s module docs); everything else stays compiler-checked.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exec;
mod optimal;
pub mod pool;
pub mod runner;

pub use error::Error;
pub use exec::{schedule, ScheduleOutcome};
pub use optimal::{optimal_makespan, OPTIMAL_LIMIT};
pub use pool::WorkerPool;
pub use runner::{
    execute_chunked_prefill, execute_lane_graph, execute_lane_graph_isolated,
    execute_lane_graph_isolated_traced, ExecutedTask, ExecutedTimeline, GateFn, KvSink, LaneGraph,
    LaneTask, NumericPrefill, PrefillProgram, SkipReason, TaskFn, TaskOutcome,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Fully sequential execution (no CPU/NPU overlap).
    Serial,
    /// Per-processor FIFO queues in chunk-sequence order (naive overlap).
    FifoQueues,
    /// Out-of-order dispatch with the Equation 5 C-value heuristic.
    OutOfOrder,
}

impl Policy {
    /// All policies, cheapest-to-best expected makespan.
    pub const ALL: [Policy; 3] = [Policy::Serial, Policy::FifoQueues, Policy::OutOfOrder];

    /// Label for experiment tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Serial => "serial",
            Policy::FifoQueues => "naive-overlap",
            Policy::OutOfOrder => "out-of-order",
        }
    }
}
