//! The event-driven scheduling executor.

use llmnpu_graph::dag::PrefillDag;
use llmnpu_soc::des::{Simulator, Timeline};
use llmnpu_soc::{Millis, Processor};

use crate::{Error, Policy, Result};

const EPS: f64 = 1e-9;

/// Result of scheduling one DAG.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The executed trace.
    pub timeline: Timeline,
    /// Completion time of the last task.
    pub makespan_ms: Millis,
    /// NPU stall fraction measured over the whole makespan (Figure 13's
    /// "bubble rate in critical path").
    pub npu_bubble_rate: f64,
}

/// Schedules a DAG under a policy and returns the executed timeline.
///
/// # Errors
///
/// Returns [`Error::Deadlock`] if the DAG cannot make progress (should be
/// impossible for DAGs built by `llmnpu-graph`, whose validation enforces
/// topological order).
pub fn schedule(dag: &PrefillDag, policy: Policy) -> Result<ScheduleOutcome> {
    let n = dag.len();
    let tasks = dag.tasks();

    // Reverse adjacency for the C-value heuristic.
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in 0..n {
        for &d in dag.deps(t) {
            successors[d].push(t);
        }
    }

    // Per-processor FIFO queues in construction (chunk-sequence) order.
    let mut fifo: std::collections::BTreeMap<Processor, std::collections::VecDeque<usize>> =
        std::collections::BTreeMap::new();
    for (t, task) in tasks.iter().enumerate() {
        fifo.entry(task.processor).or_default().push_back(t);
    }

    let mut sim = Simulator::new();
    let mut done: Vec<Option<f64>> = vec![None; n];
    let mut scheduled = vec![false; n];
    let mut remaining = n;
    let mut time = 0.0_f64;

    while remaining > 0 {
        let mut progressed = false;

        // NPU first: it is the critical-path processor (§3.4).
        for p in [Processor::Npu, Processor::Cpu, Processor::Gpu] {
            if sim.free_at(p) > time + EPS {
                continue;
            }
            let pick = match policy {
                Policy::Serial => pick_serial(tasks, &done, &scheduled, time, p),
                Policy::FifoQueues => pick_fifo(&fifo, dag, &done, &scheduled, time, p),
                Policy::OutOfOrder => {
                    pick_out_of_order(dag, &successors, &done, &scheduled, time, p)
                }
            };
            // At most one pick per processor per step: it is busy afterwards.
            if let Some(t) = pick {
                let end = sim.run(tasks[t].label.clone(), p, time, tasks[t].duration_ms)?;
                done[t] = Some(end);
                scheduled[t] = true;
                remaining -= 1;
                progressed = true;
            }
        }

        if remaining == 0 {
            break;
        }

        // Advance to the next event: the earliest processor-free or task
        // completion strictly after `time`.
        let mut next = f64::INFINITY;
        for p in Processor::ALL {
            let f = sim.free_at(p);
            if f > time + EPS {
                next = next.min(f);
            }
        }
        for d in done.iter().flatten() {
            if *d > time + EPS {
                next = next.min(*d);
            }
        }
        if !next.is_finite() {
            if !progressed {
                return Err(Error::Deadlock { remaining });
            }
            // All processors free at `time` and nothing ready: impossible
            // for a valid DAG, but guard anyway.
            return Err(Error::Deadlock { remaining });
        }
        time = next;
    }

    let timeline = sim.into_timeline();
    let makespan_ms = timeline.makespan();
    let npu_bubble_rate = timeline.bubble_rate_vs_makespan(Processor::Npu);
    Ok(ScheduleOutcome {
        timeline,
        makespan_ms,
        npu_bubble_rate,
    })
}

fn ready(dag: &PrefillDag, done: &[Option<f64>], t: usize, time: f64) -> bool {
    dag.deps(t)
        .iter()
        .all(|&d| done[d].is_some_and(|end| end <= time + EPS))
}

/// Serial: the lowest-id unscheduled task, and only if *every* earlier
/// task has completed (no overlap across processors).
fn pick_serial(
    tasks: &[llmnpu_graph::dag::Task],
    done: &[Option<f64>],
    scheduled: &[bool],
    time: f64,
    p: Processor,
) -> Option<usize> {
    let next = scheduled.iter().position(|&s| !s)?;
    if tasks[next].processor != p {
        return None;
    }
    let all_before_done = (0..next).all(|t| done[t].is_some_and(|end| end <= time + EPS));
    all_before_done.then_some(next)
}

/// FIFO queues: each processor only ever considers the head of its own
/// queue; if the head's dependencies are unmet, the processor stalls —
/// Figure 13(a)'s bubbles.
fn pick_fifo(
    fifo: &std::collections::BTreeMap<Processor, std::collections::VecDeque<usize>>,
    dag: &PrefillDag,
    done: &[Option<f64>],
    scheduled: &[bool],
    time: f64,
    p: Processor,
) -> Option<usize> {
    let queue = fifo.get(&p)?;
    let head = queue.iter().find(|&&t| !scheduled[t])?;
    ready(dag, done, *head, time).then_some(*head)
}

/// Out-of-order: any ready task for `p`, ranked by the Equation 5 C-value;
/// ties broken by chunk-sequence order (lowest id).
fn pick_out_of_order(
    dag: &PrefillDag,
    successors: &[Vec<usize>],
    done: &[Option<f64>],
    scheduled: &[bool],
    time: f64,
    p: Processor,
) -> Option<usize> {
    let tasks = dag.tasks();
    let mut best: Option<(f64, usize)> = None;
    for t in 0..tasks.len() {
        if scheduled[t] || tasks[t].processor != p || !ready(dag, done, t, time) {
            continue;
        }
        let c = c_value(dag, successors, done, scheduled, t);
        let better = match best {
            None => true,
            Some((bc, bt)) => c > bc + EPS || ((c - bc).abs() <= EPS && t < bt),
        };
        if better {
            best = Some((c, t));
        }
    }
    best.map(|(_, t)| t)
}

/// Equation 5: let `S` be the successors of `g` that become ready once `g`
/// completes (all their other dependencies already scheduled). If `g` runs
/// on the CPU/GPU, C = Σ duration of `S` (it unlocks NPU work — bigger is
/// better); if `g` runs on the NPU, C = −Σ duration of `S` (prefer NPU
/// subgraphs whose float follow-up is short, keeping the CPU from becoming
/// the bottleneck).
fn c_value(
    dag: &PrefillDag,
    successors: &[Vec<usize>],
    done: &[Option<f64>],
    scheduled: &[bool],
    g: usize,
) -> f64 {
    let tasks = dag.tasks();
    let mut total = 0.0;
    for &s in &successors[g] {
        if scheduled[s] {
            continue;
        }
        let others_ready = dag.deps(s).iter().all(|&d| d == g || done[d].is_some());
        if others_ready {
            total += tasks[s].duration_ms;
        }
    }
    if tasks[g].processor == Processor::Npu {
        -total
    } else {
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmnpu_graph::dag::{build_prefill_dag, DagConfig};
    use llmnpu_model::config::ModelConfig;
    use llmnpu_soc::latency::LatencyModel;
    use llmnpu_soc::spec::SocSpec;

    fn qwen_dag(prompt: usize, chunk: usize) -> PrefillDag {
        let cfg = ModelConfig::qwen15_18b();
        let lat = LatencyModel::new(&SocSpec::snapdragon_8gen3());
        let dc = DagConfig::llmnpu_default(prompt, chunk).unwrap();
        build_prefill_dag(&cfg, &dc, &lat).unwrap()
    }

    fn assert_valid_schedule(dag: &PrefillDag, outcome: &ScheduleOutcome) {
        let entries = outcome.timeline.entries();
        assert_eq!(entries.len(), dag.len());
        // Map label → entry (labels are unique by construction).
        let by_label: std::collections::HashMap<&str, &llmnpu_soc::des::TimelineEntry> =
            entries.iter().map(|e| (e.label.as_str(), e)).collect();
        // Dependencies respected.
        for (t, task) in dag.tasks().iter().enumerate() {
            let e = by_label[task.label.as_str()];
            for &d in dag.deps(t) {
                let de = by_label[dag.tasks()[d].label.as_str()];
                assert!(
                    de.end <= e.start + 1e-6,
                    "{} starts at {} before dep {} ends at {}",
                    task.label,
                    e.start,
                    dag.tasks()[d].label,
                    de.end
                );
            }
        }
        // Per-processor exclusivity (Equation 4).
        for p in Processor::ALL {
            let mut intervals: Vec<(f64, f64)> = entries
                .iter()
                .filter(|e| e.processor == p)
                .map(|e| (e.start, e.end))
                .collect();
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in intervals.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-6, "overlap on {p}: {w:?}");
            }
        }
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let dag = qwen_dag(512, 256);
        for policy in Policy::ALL {
            let outcome = schedule(&dag, policy).unwrap();
            assert_valid_schedule(&dag, &outcome);
        }
    }

    #[test]
    fn overlap_beats_serial_and_ooo_beats_fifo() {
        let dag = qwen_dag(1024, 256);
        let serial = schedule(&dag, Policy::Serial).unwrap().makespan_ms;
        let fifo = schedule(&dag, Policy::FifoQueues).unwrap().makespan_ms;
        let ooo = schedule(&dag, Policy::OutOfOrder).unwrap().makespan_ms;
        assert!(fifo < serial, "fifo {fifo} < serial {serial}");
        assert!(ooo <= fifo + 1e-6, "ooo {ooo} <= fifo {fifo}");
    }

    #[test]
    fn ooo_cuts_npu_bubbles() {
        // Figure 13: naive overlapping leaves large NPU bubbles; OOO
        // reduces them dramatically (37% → 0.7% in the paper; we check
        // "multi-chunk prompts more than halve the stall fraction").
        let dag = qwen_dag(1024, 256);
        let fifo = schedule(&dag, Policy::FifoQueues).unwrap();
        let ooo = schedule(&dag, Policy::OutOfOrder).unwrap();
        assert!(
            ooo.npu_bubble_rate < fifo.npu_bubble_rate,
            "ooo {} vs fifo {}",
            ooo.npu_bubble_rate,
            fifo.npu_bubble_rate
        );
        assert!(
            ooo.npu_bubble_rate < 0.25,
            "ooo bubble rate {} should be small",
            ooo.npu_bubble_rate
        );
    }

    #[test]
    fn makespan_at_least_critical_path_and_npu_work() {
        let dag = qwen_dag(512, 256);
        let ooo = schedule(&dag, Policy::OutOfOrder).unwrap();
        assert!(ooo.makespan_ms + 1e-6 >= dag.critical_path_ms());
        assert!(ooo.makespan_ms + 1e-6 >= dag.total_work_ms(Processor::Npu));
    }

    #[test]
    fn serial_makespan_equals_total_work() {
        let dag = qwen_dag(256, 256);
        let serial = schedule(&dag, Policy::Serial).unwrap();
        let total: f64 = dag.tasks().iter().map(|t| t.duration_ms).sum();
        assert!((serial.makespan_ms - total).abs() < 1e-6);
    }

    #[test]
    fn single_chunk_fifo_equals_ooo() {
        // With one chunk there is nothing to reorder: both policies follow
        // the intra-chunk chain.
        let dag = qwen_dag(128, 256);
        let fifo = schedule(&dag, Policy::FifoQueues).unwrap().makespan_ms;
        let ooo = schedule(&dag, Policy::OutOfOrder).unwrap().makespan_ms;
        assert!((fifo - ooo).abs() < 1e-6);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(Policy::OutOfOrder.label(), "out-of-order");
        assert_eq!(Policy::ALL.len(), 3);
    }
}
