//! The persistent worker pool: engine-lifetime threads replacing the
//! per-call `std::thread::scope` spawning in
//! `llmnpu_tensor::kernel::parallel`.
//!
//! # Design
//!
//! A [`WorkerPool`] owns `workers - 1` parked OS threads plus the
//! calling thread, for `workers` total lanes. Work arrives as batches of
//! [`Job`]s and is **deterministically partitioned**: job `i` always
//! runs on lane `i % workers` (the last lane is the submitting thread),
//! so repeated forward passes send the same band of the same GEMM to the
//! same worker — which keeps that worker's thread-local A-panel scratch
//! arena exactly warm. Numeric results never depend on the assignment
//! (band contents are assignment-invariant); determinism here is purely
//! a cache/allocation property.
//!
//! Two dispatch modes share the broadcast machinery:
//!
//! * [`WorkerPool::run_jobs`] (the [`ParallelBackend`] impl) is the
//!   fork-join mode for GEMM bands: non-blocking jobs, any count. When
//!   the pool cannot take a batch (nested submission, a worker thread
//!   itself, or a concurrent batch in flight) the jobs run inline on the
//!   caller — correct because band results are placement-invariant.
//! * [`WorkerPool::run_concurrent`] is the lane mode for the DAG
//!   executor: each job is a *lane loop* that may block on a condition
//!   variable waiting for tasks, so it must be guaranteed its own
//!   thread. The call returns `false` (running nothing) when that
//!   guarantee cannot be given, and the executor falls back to its
//!   sequential dispatcher.
//!
//! Workers install `InlineBackend` on themselves at startup: a GEMM
//! issued from inside a pool-run task never re-enters the pool — at
//! task level the lanes are the parallelism, exactly the paper's
//! one-task-per-processor constraint (Equation 4).
//!
//! # Why the one `unsafe` impl
//!
//! Jobs borrow the caller's stack (`&mut` output bands), so their
//! lifetime is shorter than the worker threads'. The pool erases that
//! lifetime by passing a raw pointer to the job slice. Soundness rests
//! on two invariants, both local to this module: (1) the submitting
//! thread does not return from a broadcast until every worker has
//! checked in for the batch, so the borrow outlives every access; and
//! (2) lane `l` touches only indices `i ≡ l (mod workers)`, so no two
//! threads ever touch the same job. This is the same argument every
//! scoped-pool implementation (rayon, crossbeam) makes; the rest of the
//! crate stays `unsafe`-free and the compiler enforces it
//! (`#![deny(unsafe_code)]` with a scoped allow here).

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, TryLockError};
use std::thread::JoinHandle;

use llmnpu_obs::metrics::Counter;
use llmnpu_obs::MetricsRegistry;
use llmnpu_tensor::kernel::parallel::{self, InlineBackend, Job, ParallelBackend};

thread_local! {
    /// Set on pool worker threads: nested dispatch from a worker always
    /// runs inline (the worker *is* the parallelism).
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is a pool worker.
#[must_use]
pub fn on_pool_worker() -> bool {
    IN_POOL_WORKER.with(std::cell::Cell::get)
}

/// A lifetime-erased view of the submitted job slice.
///
/// Safety: see the module docs — the submitter blocks until all workers
/// check in, and lane partitioning keeps element access disjoint.
struct JobsPtr {
    ptr: *mut Job<'static>,
    len: usize,
}

// SAFETY: `JobsPtr` erases the borrow of the `&mut [Job<'run>]` slice a
// `broadcast` call publishes, so sending it to worker threads is sound
// only under the module's two invariants:
//
//   1. Jobs outlive the batch — the submitting thread blocks in
//      `broadcast` until `done_workers` reports every spawned worker
//      checked in for this epoch, so the pointed-to slice (borrowed from
//      the submitter's stack) is live for every dereference. The pointer
//      is additionally cleared (`jobs: None`) before `broadcast`
//      returns, so no worker can observe it after the borrow ends.
//   2. Accesses are disjoint — lane `l` touches only indices
//      `i ≡ l (mod workers)`, so no two threads alias a `Job`, and the
//      submitting thread only touches its own lane while the batch runs.
//
// The regression test `jobs_outlive_the_batch` pins invariant 1: every
// borrowed slot is observably written the moment `run_concurrent`
// returns.
unsafe impl Send for JobsPtr {}

/// Per-batch broadcast state. Guarded by `Shared::batch`; every field is
/// plain slab state that `broadcast` fully resets when it publishes a new
/// epoch, so a poisoned guard is always recovered via
/// [`PoisonError::into_inner`] — there is no cross-batch invariant a
/// panicking holder could have torn.
struct Batch {
    /// Monotonically increasing batch id; workers run each id once.
    epoch: u64,
    jobs: Option<JobsPtr>,
    /// Spawned workers that have finished their lane for this epoch.
    done_workers: usize,
    /// Set (under the batch lock, at check-in) when a job panicked on a
    /// worker during *this* epoch; the submitting thread re-raises after
    /// the batch completes (a silently swallowed panic would hide kernel
    /// assertion failures). Living inside `Batch` — reset when each
    /// epoch is published, written in the same critical section as the
    /// worker's check-in — makes it per-batch by construction: a late
    /// store from batch N can never leak into batch N + 1.
    worker_panicked: bool,
}

struct Shared {
    batch: Mutex<Batch>,
    work: Condvar,
    done: Condvar,
    shutdown: AtomicBool,
}

/// Cached counter handles for the pool's dispatch metrics — interned
/// once at [`WorkerPool::install_metrics`] so the hot submission paths
/// never do a registry name lookup.
struct PoolMeters {
    /// Lane-mode batches accepted by [`WorkerPool::run_concurrent`].
    lane_batches: Arc<Counter>,
    /// Jobs carried by those batches.
    lane_jobs: Arc<Counter>,
    /// Fork-join kernel batches broadcast to the workers.
    kernel_batches: Arc<Counter>,
    /// Kernel jobs that ran inline (pool busy, nested, or single-job).
    kernel_jobs_inline: Arc<Counter>,
}

/// A persistent, deterministically-partitioned worker pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes broadcasts; `try_lock` failure means "pool busy" and
    /// the submission degrades gracefully (inline / `false`).
    submit: Mutex<()>,
    /// Total lanes, spawned threads plus the submitting thread.
    workers: usize,
    handles: Vec<JoinHandle<()>>,
    /// Fast flag for the metering slot below: the hot paths pay one
    /// relaxed load when no registry is installed.
    metered: AtomicBool,
    meters: Mutex<Option<PoolMeters>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("spawned", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` total lanes (`workers - 1` spawned
    /// threads; the submitting thread is the last lane). `workers = 1`
    /// spawns nothing and runs everything inline.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            batch: Mutex::new(Batch {
                epoch: 0,
                jobs: None,
                done_workers: 0,
                worker_panicked: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers - 1)
            .map(|lane| {
                // Pool construction is the only spawn site; forwards
                // against a live pool spawn nothing (counter-pinned).
                parallel::note_thread_spawn();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("llmnpu-pool-{lane}"))
                    .spawn(move || worker_loop(&shared, lane, workers))
                    // lint: allow(panic) — construction-time only; a host that cannot spawn threads cannot serve
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            submit: Mutex::new(()),
            workers,
            handles,
            metered: AtomicBool::new(false),
            meters: Mutex::new(None),
        }
    }

    /// Wires the pool's dispatch counters (`pool.lane_batches`,
    /// `pool.lane_jobs`, `pool.kernel_batches`,
    /// `pool.kernel_jobs_inline`) into `registry`. Counter handles are
    /// interned once here; until this is called the metering sites cost
    /// one relaxed atomic load each.
    pub fn install_metrics(&self, registry: &MetricsRegistry) {
        let meters = PoolMeters {
            lane_batches: registry.counter("pool.lane_batches"),
            lane_jobs: registry.counter("pool.lane_jobs"),
            kernel_batches: registry.counter("pool.kernel_batches"),
            kernel_jobs_inline: registry.counter("pool.kernel_jobs_inline"),
        };
        *self.meters.lock().unwrap_or_else(PoisonError::into_inner) = Some(meters);
        self.metered.store(true, Ordering::Release);
    }

    /// Runs `f` against the installed meters, if any.
    fn meter(&self, f: impl FnOnce(&PoolMeters)) {
        if !self.metered.load(Ordering::Acquire) {
            return;
        }
        if let Some(m) = self
            .meters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            f(m);
        }
    }

    /// Pool size from the `LLMNPU_POOL_WORKERS` environment variable,
    /// falling back to `default`. The CI matrix uses this to force
    /// multi-worker execution on any host.
    #[must_use]
    pub fn env_workers(default: usize) -> usize {
        std::env::var("LLMNPU_POOL_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(default)
    }

    /// Total lanes (spawned threads + the submitting thread).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Installs this pool as the current thread's kernel parallel
    /// backend for the duration of `f` — every GEMM band dispatched on
    /// this thread then runs on the pool with zero thread spawns.
    pub fn install_scope<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        let backend: Arc<dyn ParallelBackend> = Arc::clone(self) as Arc<dyn ParallelBackend>;
        parallel::with_backend(backend, f)
    }

    /// Runs `jobs` with each job guaranteed **its own thread** for the
    /// whole batch (lane mode, for job bodies that block on each other).
    /// Returns `false` without running anything when that guarantee is
    /// unavailable: more jobs than lanes, called from a pool worker, or
    /// a batch already in flight.
    pub fn run_concurrent(&self, jobs: &mut [Job<'_>]) -> bool {
        if jobs.len() > self.workers || on_pool_worker() {
            return false;
        }
        if jobs.len() <= 1 {
            // A single blocking lane needs no concurrency guarantee.
            for job in jobs.iter_mut() {
                job.run();
            }
            self.meter(|m| {
                m.lane_batches.inc();
                m.lane_jobs.add(jobs.len() as u64);
            });
            return true;
        }
        let guard = match self.submit.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => return false,
            // A propagated job panic unwound through `broadcast` and
            // poisoned the lock; the `()` payload guards no invariants
            // (batch state is reset at every broadcast), so recover —
            // treating poison as permanent would silently demote every
            // later batch for the pool's whole lifetime.
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        };
        self.broadcast(jobs);
        drop(guard);
        self.meter(|m| {
            m.lane_batches.inc();
            m.lane_jobs.add(jobs.len() as u64);
        });
        true
    }

    /// Broadcasts a batch: workers take lanes `i % workers`, the caller
    /// takes lane `workers - 1`, and the call returns once every spawned
    /// worker has checked in. Caller must hold `submit`.
    fn broadcast(&self, jobs: &mut [Job<'_>]) {
        let lanes = self.workers;
        // SAFETY (lifetime erasure): `broadcast` blocks below until all
        // spawned workers have checked in for this epoch, so `jobs`
        // outlives every worker access; lane partitioning makes the
        // element accesses disjoint (module docs).
        let ptr = jobs.as_mut_ptr().cast::<Job<'static>>();
        let len = jobs.len();
        {
            let mut batch = lock_batch(&self.shared.batch);
            batch.epoch += 1;
            batch.jobs = Some(JobsPtr { ptr, len });
            batch.done_workers = 0;
            batch.worker_panicked = false;
            self.shared.work.notify_all();
        }
        // The caller is lane `lanes - 1`. Its panic (like a worker's) is
        // caught so the wait below always happens — unwinding out of
        // this frame while workers still hold the erased borrow would be
        // a use-after-free, and it is exactly what the SAFETY argument
        // forbids.
        let caller_panic = run_lane(ptr, len, lanes - 1, lanes);
        // The panic flag is read in the same critical section that saw
        // the final check-in, so it is exactly this batch's verdict —
        // every epoch publishes a fresh `false` above.
        let worker_panicked = {
            let mut batch = lock_batch(&self.shared.batch);
            while batch.done_workers != lanes - 1 {
                batch = self
                    .shared
                    .done
                    .wait(batch)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            batch.jobs = None;
            batch.worker_panicked
        };
        if let Some(payload) = caller_panic {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a pool worker panicked while running a batch");
        }
    }
}

/// Locks the batch mutex, recovering from poisoning: `Batch` is plain
/// per-epoch slab state (see its doc), fully reset at every broadcast,
/// so there is nothing a panicking holder could have left torn.
fn lock_batch(m: &Mutex<Batch>) -> std::sync::MutexGuard<'_, Batch> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs the jobs of one lane: indices `lane, lane + lanes, …`.
/// A panicking job is caught and returned so the lane can still check
/// in (the batch protocol must complete even on failure).
fn run_lane(
    ptr: *mut Job<'static>,
    len: usize,
    lane: usize,
    lanes: usize,
) -> Option<Box<dyn std::any::Any + Send>> {
    let mut first_panic = None;
    let mut i = lane;
    while i < len {
        // SAFETY: disjoint lane indices; slice alive until all workers
        // check in (module docs).
        let job = unsafe { &mut *ptr.add(i) };
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run())) {
            first_panic.get_or_insert(payload);
        }
        i += lanes;
    }
    first_panic
}

fn worker_loop(shared: &Shared, lane: usize, lanes: usize) {
    IN_POOL_WORKER.with(|f| f.set(true));
    // Nested GEMMs inside pool-run tasks stay inline: at task level the
    // lanes are the parallelism.
    parallel::install_backend(Some(Arc::new(InlineBackend)));
    let mut seen_epoch = 0u64;
    loop {
        let (ptr, len) = {
            let mut batch = lock_batch(&shared.batch);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if batch.epoch != seen_epoch {
                    if let Some(jobs) = batch.jobs.as_ref() {
                        seen_epoch = batch.epoch;
                        break (jobs.ptr, jobs.len);
                    }
                }
                batch = shared
                    .work
                    .wait(batch)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let panicked = run_lane(ptr, len, lane, lanes).is_some();
        // Flag and check-in are one critical section: the submitter is
        // still blocked waiting for this check-in, so the flag provably
        // lands in the epoch this lane just ran.
        let mut batch = lock_batch(&shared.batch);
        if panicked {
            batch.worker_panicked = true;
        }
        batch.done_workers += 1;
        if batch.done_workers == lanes - 1 {
            shared.done.notify_all();
        }
    }
}

impl ParallelBackend for WorkerPool {
    /// Fork-join mode for GEMM bands. Jobs must not block on each other
    /// (kernel bands never do); when the pool cannot take the batch the
    /// jobs run inline on the caller, which is always numerically
    /// equivalent.
    fn run_jobs(&self, jobs: &mut [Job<'_>]) {
        if jobs.is_empty() {
            return;
        }
        if self.handles.is_empty() || jobs.len() == 1 || on_pool_worker() {
            for job in jobs.iter_mut() {
                job.run();
            }
            self.meter(|m| m.kernel_jobs_inline.add(jobs.len() as u64));
            return;
        }
        match self.submit.try_lock() {
            // Poison only means an earlier batch's panic unwound through
            // `broadcast`; the batch state is reset per broadcast, so
            // recover rather than permanently degrading to inline.
            Ok(guard) => {
                self.broadcast(jobs);
                drop(guard);
                self.meter(|m| m.kernel_batches.inc());
            }
            Err(TryLockError::Poisoned(p)) => {
                let guard = p.into_inner();
                self.broadcast(jobs);
                drop(guard);
                self.meter(|m| m.kernel_batches.inc());
            }
            // Busy (nested or concurrent submission): inline.
            Err(TryLockError::WouldBlock) => {
                for job in jobs.iter_mut() {
                    job.run();
                }
                self.meter(|m| m.kernel_jobs_inline.add(jobs.len() as u64));
            }
        }
    }

    fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(4);
        for jobs_n in [1usize, 2, 3, 4, 7, 16, 33] {
            let mut hits = vec![0u32; jobs_n];
            {
                let mut jobs: Vec<Job<'_>> =
                    hits.iter_mut().map(|h| Job::new(move || *h += 1)).collect();
                pool.run_jobs(&mut jobs);
            }
            assert!(hits.iter().all(|&h| h == 1), "{jobs_n} jobs: {hits:?}");
        }
    }

    #[test]
    fn pool_of_one_is_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let mut hit = false;
        let caller = std::thread::current().id();
        let mut jobs = vec![Job::new(|| {
            hit = std::thread::current().id() == caller;
        })];
        pool.run_jobs(&mut jobs);
        drop(jobs);
        assert!(hit, "single-lane pool must run on the caller");
    }

    #[test]
    fn deterministic_lane_assignment() {
        // Job i must land on the same thread in every batch.
        let pool = WorkerPool::new(3);
        let observe = || {
            let mut ids = vec![None; 6];
            {
                let mut jobs: Vec<Job<'_>> = ids
                    .iter_mut()
                    .map(|slot| {
                        Job::new(move || {
                            *slot = Some(std::thread::current().id());
                        })
                    })
                    .collect();
                pool.run_jobs(&mut jobs);
            }
            ids
        };
        let first = observe();
        for _ in 0..5 {
            assert_eq!(observe(), first);
        }
        // Lanes i and i + workers share a thread.
        assert_eq!(first[0], first[3]);
        assert_eq!(first[1], first[4]);
        assert!(first.iter().all(Option::is_some));
    }

    #[test]
    fn run_concurrent_gives_each_job_its_own_thread() {
        use std::sync::mpsc;
        let pool = WorkerPool::new(2);
        // Two jobs that must be alive simultaneously: each sends, then
        // waits for the other's message. Deadlocks unless truly
        // concurrent (a 10 s timeout turns that into a failure).
        let (ta, ra) = mpsc::channel::<()>();
        let (tb, rb) = mpsc::channel::<()>();
        let mut jobs = vec![
            Job::new(move || {
                ta.send(()).unwrap();
                rb.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
            }),
            Job::new(move || {
                tb.send(()).unwrap();
                ra.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
            }),
        ];
        assert!(pool.run_concurrent(&mut jobs));
    }

    #[test]
    fn jobs_outlive_the_batch() {
        // Pins the lifetime-erasure contract behind `unsafe impl Send
        // for JobsPtr` (invariant 1 of its SAFETY block): the submitter
        // does not return from a batch until every worker finished, so
        // slots borrowed from the caller's stack are observably written
        // the instant `run_jobs`/`run_concurrent` returns, and the
        // erased pointer is cleared before the borrow ends.
        let pool = WorkerPool::new(4);
        for round in 0..200 {
            let mut slots = [0u64; 8];
            {
                let mut jobs: Vec<Job<'_>> = slots
                    .iter_mut()
                    .enumerate()
                    .map(|(i, s)| Job::new(move || *s = (round * 100 + i) as u64 + 1))
                    .collect();
                pool.run_jobs(&mut jobs);
            }
            // The borrow of `slots` has ended; every write must already
            // be visible (a worker still running here would be a
            // use-after-free of the caller's stack).
            for (i, &s) in slots.iter().enumerate() {
                assert_eq!(s, (round * 100 + i) as u64 + 1, "round {round} slot {i}");
            }
            // The pool has dropped the erased pointer: no worker can
            // reach the dead borrow between batches.
            let batch = pool.shared.batch.lock().unwrap();
            assert!(batch.jobs.is_none(), "JobsPtr must not outlive its batch");
        }
    }

    #[test]
    fn run_concurrent_refuses_oversized_batches() {
        let pool = WorkerPool::new(2);
        let mut ran = [false; 3];
        {
            let mut jobs: Vec<Job<'_>> = ran
                .iter_mut()
                .map(|r| Job::new(move || *r = true))
                .collect();
            assert!(!pool.run_concurrent(&mut jobs));
        }
        assert!(ran.iter().all(|&r| !r), "refused batch must not run");
    }

    #[test]
    fn nested_submission_runs_inline() {
        let pool = Arc::new(WorkerPool::new(2));
        let inner = Arc::clone(&pool);
        let mut ok = false;
        {
            let ok = &mut ok;
            let mut outer = vec![Job::new(move || {
                // From a worker (or mid-batch caller), nested batches
                // must degrade to inline execution, not deadlock.
                let mut hits = [0u32; 4];
                {
                    let mut jobs: Vec<Job<'_>> =
                        hits.iter_mut().map(|h| Job::new(move || *h += 1)).collect();
                    inner.run_jobs(&mut jobs);
                }
                *ok = hits.iter().all(|&h| h == 1);
            })];
            pool.run_jobs(&mut outer);
        }
        assert!(ok);
    }

    #[test]
    fn pool_as_installed_backend_spawns_nothing() {
        let pool = Arc::new(WorkerPool::new(4));
        let before = parallel::thread_spawns();
        pool.install_scope(|| {
            let mut c = vec![0u32; 64];
            parallel::run_row_partitioned(4, 8, 8, &mut c, |row0, rows, band| {
                for r in 0..rows {
                    for x in &mut band[r * 8..(r + 1) * 8] {
                        *x = (row0 + r) as u32;
                    }
                }
            });
            for r in 0..8 {
                assert!(c[r * 8..(r + 1) * 8].iter().all(|&x| x == r as u32));
            }
            assert_eq!(parallel::effective_threads(16), 4, "pool caps at lanes");
        });
        assert_eq!(parallel::thread_spawns(), before, "no spawns per call");
    }

    #[test]
    fn worker_panic_is_propagated_not_deadlocked() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut jobs: Vec<Job<'_>> = (0..6)
                .map(|i| {
                    Job::new(move || {
                        if i == 1 {
                            panic!("boom");
                        }
                    })
                })
                .collect();
            pool.run_jobs(&mut jobs);
        }));
        assert!(result.is_err(), "worker panic must surface to the caller");
        // The pool must still *parallelize* afterwards — the panic
        // poisons the submit mutex, and treating poison as permanent
        // would silently demote every later batch to inline execution.
        let caller = std::thread::current().id();
        let mut ids = [None; 4];
        {
            let mut jobs: Vec<Job<'_>> = ids
                .iter_mut()
                .map(|slot| {
                    Job::new(move || {
                        *slot = Some(std::thread::current().id());
                    })
                })
                .collect();
            pool.run_jobs(&mut jobs);
        }
        assert!(ids.iter().all(Option::is_some));
        assert!(
            ids.iter().any(|id| *id != Some(caller)),
            "post-panic batches must still reach the workers"
        );
    }

    #[test]
    fn panic_flag_is_per_batch() {
        // Both the caller's lane AND a worker lane panic in batch N;
        // batch N + 1 is clean and must not inherit the verdict. With 2
        // lanes and 2 jobs, job 1 runs on the caller and job 0 on the
        // worker.
        let pool = WorkerPool::new(2);
        for _ in 0..8 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut jobs: Vec<Job<'_>> =
                    (0..2).map(|_| Job::new(move || panic!("boom"))).collect();
                pool.run_jobs(&mut jobs);
            }));
            assert!(result.is_err(), "panic must surface");
            // The very next batch is clean: a stale flag from the
            // previous epoch would make this panic.
            let mut hits = [0u32; 2];
            {
                let mut jobs: Vec<Job<'_>> =
                    hits.iter_mut().map(|h| Job::new(move || *h += 1)).collect();
                pool.run_jobs(&mut jobs);
            }
            assert_eq!(hits, [1, 1]);
        }
    }

    #[test]
    fn env_workers_parses_and_falls_back() {
        // Only the fallback path is exercised hermetically (setting env
        // vars is racy under the multithreaded test harness).
        let w = WorkerPool::env_workers(3);
        assert!(w >= 1);
    }
}
