//! Exhaustive optimal scheduling for small DAGs.
//!
//! §3.4 reduces the subgraph-ordering problem to the (NP-hard) traveling
//! salesman problem, which is why llm.npu uses an online heuristic. This
//! module provides the ground truth for tiny instances so tests can bound
//! the heuristic's optimality gap.

use llmnpu_graph::dag::PrefillDag;
use llmnpu_soc::Processor;

use crate::{Error, Result};

/// Maximum DAG size for exhaustive search.
pub const OPTIMAL_LIMIT: usize = 12;

/// Finds the minimum makespan over all dependency-respecting dispatch
/// orders (with greedy time assignment, which is optimal for list
/// schedules of this form).
///
/// # Errors
///
/// Returns [`Error::TooLargeForOptimal`] for DAGs above [`OPTIMAL_LIMIT`]
/// tasks.
pub fn optimal_makespan(dag: &PrefillDag) -> Result<f64> {
    let n = dag.len();
    if n > OPTIMAL_LIMIT {
        return Err(Error::TooLargeForOptimal {
            tasks: n,
            limit: OPTIMAL_LIMIT,
        });
    }
    if n == 0 {
        return Ok(0.0);
    }
    let mut best = f64::INFINITY;
    let mut done_time = vec![0.0_f64; n];
    let mut scheduled = vec![false; n];
    let mut free = std::collections::BTreeMap::new();
    for p in Processor::ALL {
        free.insert(p, 0.0_f64);
    }
    branch(
        dag,
        &mut scheduled,
        &mut done_time,
        &mut free,
        0.0,
        &mut best,
        0,
    );
    Ok(best)
}

fn branch(
    dag: &PrefillDag,
    scheduled: &mut [bool],
    done_time: &mut [f64],
    free: &mut std::collections::BTreeMap<Processor, f64>,
    current_max: f64,
    best: &mut f64,
    count: usize,
) {
    if current_max >= *best {
        return; // prune
    }
    if count == dag.len() {
        *best = best.min(current_max);
        return;
    }
    let tasks = dag.tasks();
    for t in 0..tasks.len() {
        if scheduled[t] {
            continue;
        }
        if !dag.deps(t).iter().all(|&d| scheduled[d]) {
            continue;
        }
        let p = tasks[t].processor;
        let ready = dag
            .deps(t)
            .iter()
            .map(|&d| done_time[d])
            .fold(0.0, f64::max);
        let start = ready.max(free[&p]);
        let end = start + tasks[t].duration_ms;

        let old_free = free[&p];
        scheduled[t] = true;
        done_time[t] = end;
        free.insert(p, end);
        branch(
            dag,
            scheduled,
            done_time,
            free,
            current_max.max(end),
            best,
            count + 1,
        );
        scheduled[t] = false;
        done_time[t] = 0.0;
        free.insert(p, old_free);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule, Policy};
    use llmnpu_graph::dag::{build_prefill_dag, DagConfig};
    use llmnpu_model::config::ModelConfig;
    use llmnpu_soc::latency::LatencyModel;
    use llmnpu_soc::spec::SocSpec;

    /// A one-layer model keeps the DAG tiny enough for exhaustive search.
    fn tiny_dag(chunks: usize) -> PrefillDag {
        let mut cfg = ModelConfig::tiny();
        cfg.layers = 1;
        let lat = LatencyModel::new(&SocSpec::snapdragon_8gen3());
        let mut dc = DagConfig::llmnpu_default(chunks * 16, 16).unwrap();
        dc.shadow_fraction = 0.0;
        build_prefill_dag(&cfg, &dc, &lat).unwrap()
    }

    #[test]
    fn rejects_large_dags() {
        let dag = tiny_dag(3); // 18 tasks > limit
        assert!(matches!(
            optimal_makespan(&dag),
            Err(Error::TooLargeForOptimal { .. })
        ));
    }

    #[test]
    fn heuristic_close_to_optimal_on_small_instances() {
        for chunks in [1usize, 2] {
            let dag = tiny_dag(chunks);
            assert!(dag.len() <= OPTIMAL_LIMIT, "dag has {} tasks", dag.len());
            let opt = optimal_makespan(&dag).unwrap();
            let ooo = schedule(&dag, Policy::OutOfOrder).unwrap().makespan_ms;
            assert!(ooo + 1e-9 >= opt, "heuristic {ooo} beats optimal {opt}?");
            assert!(
                ooo <= opt * 1.3 + 1e-6,
                "heuristic {ooo} too far from optimal {opt}"
            );
        }
    }

    #[test]
    fn optimal_no_worse_than_any_policy() {
        let dag = tiny_dag(2);
        let opt = optimal_makespan(&dag).unwrap();
        for policy in Policy::ALL {
            let m = schedule(&dag, policy).unwrap().makespan_ms;
            assert!(opt <= m + 1e-9, "{policy:?} beat optimal: {m} < {opt}");
        }
    }

    #[test]
    fn empty_dag_is_zero() {
        let dag = PrefillDag::default();
        assert_eq!(optimal_makespan(&dag).unwrap(), 0.0);
    }
}
