//! The comparison engines of §4.1.
//!
//! Three industrial engines (llama.cpp, MNN, TFLite), one research
//! compiler (MLC-LLM), the NPU-offloading research prototype
//! (PowerInfer-v2), and the naive direct-NPU port of §2.3 — all behind the
//! [`Engine`] trait so experiments can sweep them uniformly.
//!
//! CPU/GPU engines use a closed-form model (whole-prompt execution on one
//! processor, all ops serialized) with a per-engine **efficiency factor**
//! calibrated against Table 5's measured prefill latencies; the NPU-based
//! baselines reuse the full DAG/scheduler machinery with their respective
//! handicaps (per-group quantization, FIFO scheduling, per-prompt graph
//! rebuilds). Each factor is documented where it is defined and recorded
//! in `EXPERIMENTS.md`.
//!
//! The CPU engines' closed-form `matmul_ms` terms model a host GEMM of
//! llama.cpp/MNN quality; this repo's own host-side equivalent is the
//! blocked, packed, multi-threaded kernel subsystem in
//! `llmnpu_tensor::kernel` (measured in `BENCH_kernels.json`), so the
//! numeric plane and these analytic baselines now assume comparable
//! kernel engineering rather than a scalar triple loop.

use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, DagConfig};
use llmnpu_graph::memory::graph_profile;
use llmnpu_model::config::ModelConfig;
use llmnpu_sched::{schedule, Policy};
use llmnpu_soc::des::{Timeline, TimelineEntry};
use llmnpu_soc::latency::LatencyModel;
use llmnpu_soc::lifecycle::{lifecycle_cost, LifecycleParams};
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::{DataType, Millis, Processor};
use llmnpu_workloads::suites::WorkloadSample;

use crate::decode::DecodeSim;
use crate::engine::{EngineConfig, LlmNpuEngine};
use crate::report::{E2eReport, PrefillReport};
use crate::{Error, Result};

/// A mobile LLM inference engine under evaluation.
pub trait Engine {
    /// Engine name as the paper abbreviates it.
    fn name(&self) -> &'static str;

    /// Whether this engine supports the model (baselines "often support
    /// only a subset of 5 LLMs we evaluated", §4.1).
    fn supports(&self, model: &ModelConfig) -> bool;

    /// Simulates one prefill.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported models or invalid prompts.
    fn prefill(&self, prompt_len: usize) -> Result<PrefillReport>;

    /// The engine's decode-latency model — every engine shares the one
    /// context-aware [`DecodeSim`] (differing only in the decode
    /// processor), so no engine can quietly drop the KV-attention term
    /// again.
    fn decode_sim(&self) -> DecodeSim;

    /// Decode latency of the first generated token (context ≈ 1, the
    /// weight-streaming floor). Context-aware totals come from
    /// [`Engine::decode_sim`].
    fn decode_ms_per_token(&self) -> Millis {
        self.decode_sim().token_ms(1)
    }

    /// Simulates one end-to-end request, with decode priced by the
    /// shared context-aware model over the growing KV cache.
    ///
    /// # Errors
    ///
    /// Returns an error on prefill failure.
    fn e2e(&self, sample: &WorkloadSample) -> Result<E2eReport> {
        let prefill = self.prefill(sample.prompt_len)?;
        let decode_ms = self
            .decode_sim()
            .total_ms(sample.prompt_len, sample.output_len);
        Ok(E2eReport {
            prompt_len: sample.prompt_len,
            output_len: sample.output_len,
            prefill_ms: prefill.latency_ms,
            decode_ms,
            prefill_energy_j: prefill.energy_j,
        })
    }
}

/// Which analytic baseline an [`AnalyticEngine`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// llama.cpp on mobile CPU (K-Quant-family, INT8 dot products).
    LlamaCppCpu,
    /// Alibaba MNN on mobile CPU (heavily hand-optimized kernels).
    MnnCpu,
    /// TFLite with the GPU delegate (FP16).
    TfliteGpu,
    /// MLC-LLM compiled for the mobile GPU (FP16).
    MlcGpu,
}

impl BaselineKind {
    /// Processor and compute dtype of the engine.
    #[must_use]
    pub fn placement(&self) -> (Processor, DataType) {
        match self {
            BaselineKind::LlamaCppCpu | BaselineKind::MnnCpu => (Processor::Cpu, DataType::Int8),
            BaselineKind::TfliteGpu | BaselineKind::MlcGpu => (Processor::Gpu, DataType::Fp16),
        }
    }

    /// Engine efficiency relative to the raw kernel-level latency model.
    ///
    /// Calibrated against Table 5 (Qwen1.5-1.8B / Gemma-2B prefill at
    /// ~1561 tokens on the Redmi K70 Pro): llama.cpp 26.4 s, MNN 10.0 s,
    /// MLC 45.4 s, TFLite-Gemma 2.40 s. TFLite sits slightly below its
    /// Table 5 calibration point so that the ours-vs-TFLite ratio stays
    /// inside the paper's 1.27–2.34× band across prompt lengths.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        match self {
            BaselineKind::LlamaCppCpu => 0.55,
            BaselineKind::MnnCpu => 1.44,
            BaselineKind::TfliteGpu => 4.5,
            BaselineKind::MlcGpu => 0.225,
        }
    }

    /// Support matrix from Table 5's populated cells.
    #[must_use]
    pub fn supports_model(&self, model: &ModelConfig) -> bool {
        match self {
            BaselineKind::LlamaCppCpu | BaselineKind::MlcGpu => true,
            BaselineKind::MnnCpu => {
                matches!(model.name, "Qwen1.5-1.8B" | "Phi-2-2.7B" | "LLaMA-2-7B")
            }
            BaselineKind::TfliteGpu => matches!(model.name, "Gemma-2B" | "Phi-2-2.7B"),
        }
    }

    /// Display name.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::LlamaCppCpu => "llama.cpp-CPU",
            BaselineKind::MnnCpu => "MNN-CPU",
            BaselineKind::TfliteGpu => "TFLite-GPU",
            BaselineKind::MlcGpu => "MLC-GPU",
        }
    }
}

/// Closed-form CPU/GPU baseline engine.
#[derive(Debug, Clone)]
pub struct AnalyticEngine {
    kind: BaselineKind,
    model: ModelConfig,
    soc: SocSpec,
    lat: LatencyModel,
}

impl AnalyticEngine {
    /// Creates an analytic engine.
    #[must_use]
    pub fn new(kind: BaselineKind, model: ModelConfig, soc: SocSpec) -> Self {
        let lat = LatencyModel::new(&soc);
        AnalyticEngine {
            kind,
            model,
            soc,
            lat,
        }
    }

    /// The baseline kind.
    #[must_use]
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    fn check_support(&self) -> Result<()> {
        if !self.kind.supports_model(&self.model) {
            return Err(Error::Unsupported {
                engine: self.kind.label(),
                model: self.model.name,
            });
        }
        Ok(())
    }
}

impl Engine for AnalyticEngine {
    fn name(&self) -> &'static str {
        self.kind.label()
    }

    fn supports(&self, model: &ModelConfig) -> bool {
        self.kind.supports_model(model)
    }

    fn prefill(&self, prompt_len: usize) -> Result<PrefillReport> {
        self.check_support()?;
        if prompt_len == 0 {
            return Err(Error::InvalidConfig {
                what: "empty prompt".to_owned(),
            });
        }
        let (proc, dtype) = self.kind.placement();
        let m = prompt_len;
        let cfg = &self.model;

        // Linear layers over the whole prompt.
        let mut total = 0.0;
        for &(k, n) in &cfg.layer_linear_shapes() {
            total += self.lat.matmul_ms(proc, dtype, m, k, n) * cfg.layers as f64;
        }
        // Float attention (always FP16 on these engines).
        total += self
            .lat
            .attention_ms(proc, DataType::Fp16, m, m, cfg.q_dim())
            * cfg.layers as f64;
        // Norms and activation functions.
        total += self
            .lat
            .streaming_ms(proc, DataType::Fp16, m * cfg.hidden, 8.0)
            * 2.0
            * cfg.layers as f64;
        total += self
            .lat
            .streaming_ms(proc, DataType::Fp16, m * cfg.ffn_hidden, 6.0)
            * cfg.layers as f64;

        let latency = total / self.kind.efficiency();

        // Single-processor busy block for energy integration.
        let mut tl = Timeline::new();
        tl.record(TimelineEntry {
            label: format!("{}-prefill", self.name()),
            processor: proc,
            start: 0.0,
            end: latency,
        });
        let energy = tl.energy(&self.soc);
        Ok(PrefillReport::new(
            prompt_len,
            latency,
            energy,
            0.0,
            Some(tl),
        ))
    }

    fn decode_sim(&self) -> DecodeSim {
        let (proc, _) = self.kind.placement();
        DecodeSim::new(self.model.clone(), self.soc.clone(), proc)
    }
}

/// PowerInfer-v2-style NPU baseline: NPU offloading with per-group INT
/// quantization and coarse (FIFO) pipeline scheduling — the paper's
/// closest competitor, which llm.npu beats 3.28–5.32× on prefill by
/// using NPU-friendly per-tensor MatMul and fine-grained OOO scheduling.
#[derive(Debug, Clone)]
pub struct PowerInferV2 {
    model: ModelConfig,
    soc: SocSpec,
    lat: LatencyModel,
}

impl PowerInferV2 {
    /// Group size modeling PowerInfer-v2's quantization granularity.
    pub const GROUP_SIZE: usize = 256;

    /// Creates the engine.
    #[must_use]
    pub fn new(model: ModelConfig, soc: SocSpec) -> Self {
        let lat = LatencyModel::new(&soc);
        PowerInferV2 { model, soc, lat }
    }
}

impl Engine for PowerInferV2 {
    fn name(&self) -> &'static str {
        "PowerInfer-V2-NPU"
    }

    fn supports(&self, model: &ModelConfig) -> bool {
        // Table 5 reports PowerInfer-v2 numbers only for the 7B models.
        matches!(model.name, "LLaMA-2-7B" | "Mistral-7B")
    }

    fn prefill(&self, prompt_len: usize) -> Result<PrefillReport> {
        let dag_cfg = DagConfig {
            plan: ChunkPlan::new(prompt_len, 256)?,
            float_processor: Processor::Cpu,
            shadow_fraction: 0.0, // no outlier machinery
            outlier_channels: 0,
            shape_optimized: false,
            npu_group_size: Some(Self::GROUP_SIZE),
        };
        let dag = build_prefill_dag(&self.model, &dag_cfg, &self.lat)?;
        let outcome = schedule(&dag, Policy::FifoQueues)?;
        let energy = outcome.timeline.energy(&self.soc);
        Ok(PrefillReport::new(
            prompt_len,
            outcome.makespan_ms,
            energy,
            outcome.npu_bubble_rate,
            Some(outcome.timeline),
        ))
    }

    fn decode_sim(&self) -> DecodeSim {
        DecodeSim::new(self.model.clone(), self.soc.clone(), Processor::Cpu)
    }
}

/// The naive direct-NPU port of §2.3: a monolithic per-prompt graph that
/// must be re-built and re-optimized for every prompt shape, runs
/// per-group MatMuls without the shape optimization, and serializes with
/// the CPU — "using mobile NPUs in this scenario offers no performance
/// benefit and is often slower than using a CPU".
#[derive(Debug, Clone)]
pub struct NaiveNpu {
    model: ModelConfig,
    soc: SocSpec,
    lat: LatencyModel,
}

impl NaiveNpu {
    /// Group size of the naive port's quantization.
    pub const GROUP_SIZE: usize = 64;

    /// Creates the engine.
    #[must_use]
    pub fn new(model: ModelConfig, soc: SocSpec) -> Self {
        let lat = LatencyModel::new(&soc);
        NaiveNpu { model, soc, lat }
    }

    /// Per-prompt graph preparation cost: the Figure 2 lifecycle, with the
    /// optimize phase scaled by the prompt-sized activation buffers
    /// (optimization cost grows with tensor shapes).
    #[must_use]
    pub fn rebuild_ms(&self, prompt_len: usize) -> Millis {
        let profile = graph_profile(&self.model, prompt_len.max(1));
        let cost = lifecycle_cost(&LifecycleParams::default(), &profile);
        let shape_scale = (prompt_len as f64 / 256.0).max(1.0);
        cost.build_ms + cost.optimize_ms * shape_scale.sqrt()
    }
}

impl Engine for NaiveNpu {
    fn name(&self) -> &'static str {
        "Naive-NPU"
    }

    fn supports(&self, _model: &ModelConfig) -> bool {
        true
    }

    fn prefill(&self, prompt_len: usize) -> Result<PrefillReport> {
        // One monolithic graph at the full prompt length, serial schedule.
        let dag_cfg = DagConfig {
            plan: ChunkPlan::new(prompt_len, prompt_len)?,
            float_processor: Processor::Cpu,
            shadow_fraction: 0.0,
            outlier_channels: 0,
            shape_optimized: false,
            npu_group_size: Some(Self::GROUP_SIZE),
        };
        let dag = build_prefill_dag(&self.model, &dag_cfg, &self.lat)?;
        let outcome = schedule(&dag, Policy::Serial)?;
        let rebuild = self.rebuild_ms(prompt_len);
        let latency = rebuild + outcome.makespan_ms;

        // The rebuild burns CPU time ahead of execution.
        let mut tl = Timeline::new();
        tl.record(TimelineEntry {
            label: "graph-rebuild".to_owned(),
            processor: Processor::Cpu,
            start: 0.0,
            end: rebuild,
        });
        for e in outcome.timeline.entries() {
            tl.record(TimelineEntry {
                label: e.label.clone(),
                processor: e.processor,
                start: e.start + rebuild,
                end: e.end + rebuild,
            });
        }
        let energy = tl.energy(&self.soc);
        Ok(PrefillReport::new(
            prompt_len,
            latency,
            energy,
            0.0,
            Some(tl),
        ))
    }

    fn decode_sim(&self) -> DecodeSim {
        DecodeSim::new(self.model.clone(), self.soc.clone(), Processor::Cpu)
    }
}

/// llm.npu wrapped in the [`Engine`] trait for uniform sweeps.
#[derive(Debug, Clone)]
pub struct LlmNpuAsEngine {
    inner: LlmNpuEngine,
}

impl LlmNpuAsEngine {
    /// Wraps a prepared engine.
    #[must_use]
    pub fn new(inner: LlmNpuEngine) -> Self {
        LlmNpuAsEngine { inner }
    }

    /// Builds the default llm.npu engine for a model/device.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid configuration.
    pub fn with_defaults(model: ModelConfig, soc: SocSpec) -> Result<Self> {
        Ok(Self::new(LlmNpuEngine::new(EngineConfig::llmnpu(
            model, soc,
        ))?))
    }

    /// The wrapped engine.
    #[must_use]
    pub fn inner(&self) -> &LlmNpuEngine {
        &self.inner
    }
}

impl Engine for LlmNpuAsEngine {
    fn name(&self) -> &'static str {
        "llm.npu (Ours)"
    }

    fn supports(&self, _model: &ModelConfig) -> bool {
        true
    }

    fn prefill(&self, prompt_len: usize) -> Result<PrefillReport> {
        self.inner.prefill(prompt_len)
    }

    fn decode_sim(&self) -> DecodeSim {
        self.inner.decode_sim()
    }
}

/// All baseline engines applicable to a model on a device (llm.npu not
/// included).
#[must_use]
pub fn applicable_baselines(model: &ModelConfig, soc: &SocSpec) -> Vec<Box<dyn Engine>> {
    let mut engines: Vec<Box<dyn Engine>> = Vec::new();
    for kind in [
        BaselineKind::MlcGpu,
        BaselineKind::LlamaCppCpu,
        BaselineKind::MnnCpu,
        BaselineKind::TfliteGpu,
    ] {
        if kind.supports_model(model) {
            engines.push(Box::new(AnalyticEngine::new(
                kind,
                model.clone(),
                soc.clone(),
            )));
        }
    }
    let pi = PowerInferV2::new(model.clone(), soc.clone());
    if pi.supports(model) {
        engines.push(Box::new(pi));
    }
    engines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qwen() -> ModelConfig {
        ModelConfig::qwen15_18b()
    }

    fn soc() -> SocSpec {
        SocSpec::snapdragon_8gen3()
    }

    #[test]
    fn llamacpp_prefill_matches_table5_scale() {
        // Table 5: Qwen prefill of ~1561 tokens takes 26.4 s on llama.cpp.
        let e = AnalyticEngine::new(BaselineKind::LlamaCppCpu, qwen(), soc());
        let r = e.prefill(1561).unwrap();
        assert!(
            (18_000.0..36_000.0).contains(&r.latency_ms),
            "latency {:.0} ms",
            r.latency_ms
        );
    }

    #[test]
    fn mnn_is_faster_than_llamacpp() {
        let lcpp = AnalyticEngine::new(BaselineKind::LlamaCppCpu, qwen(), soc());
        let mnn = AnalyticEngine::new(BaselineKind::MnnCpu, qwen(), soc());
        let a = lcpp.prefill(1024).unwrap().latency_ms;
        let b = mnn.prefill(1024).unwrap().latency_ms;
        let ratio = a / b;
        assert!((2.0..3.5).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn support_matrix_matches_table5() {
        assert!(!BaselineKind::TfliteGpu.supports_model(&qwen()));
        assert!(BaselineKind::TfliteGpu.supports_model(&ModelConfig::gemma_2b()));
        assert!(!BaselineKind::MnnCpu.supports_model(&ModelConfig::gemma_2b()));
        let pi = PowerInferV2::new(qwen(), soc());
        assert!(!pi.supports(&qwen()));
        assert!(pi.supports(&ModelConfig::llama2_7b()));
    }

    #[test]
    fn unsupported_model_errors() {
        let e = AnalyticEngine::new(BaselineKind::TfliteGpu, qwen(), soc());
        assert!(matches!(e.prefill(256), Err(Error::Unsupported { .. })));
    }

    #[test]
    fn ours_beats_every_baseline_at_1024() {
        // Figure 14's headline for the 1024-token column.
        let ours = LlmNpuAsEngine::with_defaults(qwen(), soc()).unwrap();
        let our_latency = ours.prefill(1024).unwrap().latency_ms;
        for engine in applicable_baselines(&qwen(), &soc()) {
            let theirs = engine.prefill(1024).unwrap().latency_ms;
            assert!(
                theirs > our_latency,
                "{} at {:.0} ms did not lose to ours at {:.0} ms",
                engine.name(),
                theirs,
                our_latency
            );
        }
    }

    #[test]
    fn speedup_ratios_match_figure14_shape() {
        // At 1024 tokens on the K70 Pro: 18.2–38.4× vs llama.cpp-CPU,
        // ~7.3× vs MNN-CPU, 32.5–43.6× vs MLC-GPU.
        let ours = LlmNpuAsEngine::with_defaults(qwen(), soc()).unwrap();
        let our_ms = ours.prefill(1024).unwrap().latency_ms;
        let check = |kind: BaselineKind, lo: f64, hi: f64| {
            let e = AnalyticEngine::new(kind, qwen(), soc());
            let ratio = e.prefill(1024).unwrap().latency_ms / our_ms;
            assert!(
                (lo..hi).contains(&ratio),
                "{}: ratio {ratio:.1} outside [{lo}, {hi})",
                kind.label()
            );
        };
        check(BaselineKind::LlamaCppCpu, 10.0, 45.0);
        check(BaselineKind::MnnCpu, 4.0, 12.0);
        check(BaselineKind::MlcGpu, 25.0, 55.0);
    }

    #[test]
    fn powerinfer_slower_than_ours_by_paper_factor() {
        // §4.2: llm.npu is 3.28–5.32× faster than PowerInfer-v2.
        let model = ModelConfig::llama2_7b();
        let ours = LlmNpuAsEngine::with_defaults(model.clone(), soc()).unwrap();
        let pi = PowerInferV2::new(model, soc());
        let our_ms = ours.prefill(1024).unwrap().latency_ms;
        let pi_ms = pi.prefill(1024).unwrap().latency_ms;
        let ratio = pi_ms / our_ms;
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn naive_npu_loses_to_cpu() {
        // §2.3: the naive port is *slower than the CPU* because of
        // per-prompt rebuilds and per-group MatMul.
        let naive = NaiveNpu::new(qwen(), soc());
        let cpu = AnalyticEngine::new(BaselineKind::LlamaCppCpu, qwen(), soc());
        let n = naive.prefill(512).unwrap().latency_ms;
        let c = cpu.prefill(512).unwrap().latency_ms;
        assert!(n > c, "naive {n:.0} ms should lose to cpu {c:.0} ms");
        // And the rebuild alone is seconds.
        assert!(naive.rebuild_ms(512) > 2000.0);
    }

    #[test]
    fn tflite_beats_mlc_on_gemma() {
        // Table 5: TFLite is the strongest GPU baseline; MLC the weakest.
        let gemma = ModelConfig::gemma_2b();
        let tflite = AnalyticEngine::new(BaselineKind::TfliteGpu, gemma.clone(), soc());
        let mlc = AnalyticEngine::new(BaselineKind::MlcGpu, gemma, soc());
        let t = tflite.prefill(1024).unwrap().latency_ms;
        let m = mlc.prefill(1024).unwrap().latency_ms;
        assert!(m > 10.0 * t, "mlc {m:.0} vs tflite {t:.0}");
    }

    #[test]
    fn energy_ordering_matches_figure15() {
        // CPU engines burn far more energy than llm.npu; TFLite-GPU sits
        // in between (1.85–4.32× ours).
        let gemma = ModelConfig::gemma_2b();
        let g2 = SocSpec::snapdragon_8gen2(); // energy measured on K60 Pro
        let ours = LlmNpuAsEngine::with_defaults(gemma.clone(), g2.clone()).unwrap();
        let our_e = ours.prefill(1024).unwrap().energy_j;
        let lcpp = AnalyticEngine::new(BaselineKind::LlamaCppCpu, gemma.clone(), g2.clone());
        let lcpp_e = lcpp.prefill(1024).unwrap().energy_j;
        let tflite = AnalyticEngine::new(BaselineKind::TfliteGpu, gemma, g2);
        let tflite_e = tflite.prefill(1024).unwrap().energy_j;
        assert!(
            lcpp_e / our_e > 20.0,
            "lcpp/ours energy ratio {:.1}",
            lcpp_e / our_e
        );
        let tflite_ratio = tflite_e / our_e;
        assert!(
            (1.2..8.0).contains(&tflite_ratio),
            "tflite/ours energy ratio {tflite_ratio:.2}"
        );
    }

    #[test]
    fn applicable_baselines_counts() {
        assert_eq!(applicable_baselines(&qwen(), &soc()).len(), 3);
        assert_eq!(
            applicable_baselines(&ModelConfig::llama2_7b(), &soc()).len(),
            4
        );
        assert_eq!(
            applicable_baselines(&ModelConfig::gemma_2b(), &soc()).len(),
            3
        );
    }
}
