use std::fmt;

/// Error type for engine operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A graph-construction step failed.
    Graph(llmnpu_graph::Error),
    /// A scheduling step failed.
    Sched(llmnpu_sched::Error),
    /// A simulator step failed.
    Soc(llmnpu_soc::Error),
    /// A model step failed.
    Model(llmnpu_model::Error),
    /// The engine does not support the requested model.
    Unsupported {
        /// Engine name.
        engine: &'static str,
        /// Model name.
        model: &'static str,
    },
    /// A configuration value was invalid.
    InvalidConfig {
        /// Description of the constraint that failed.
        what: String,
    },
    /// The static plan verifier rejected a spliced serving plan before
    /// execution: one line per finding, in check order.
    PlanRejected {
        /// Rendered findings from `llmnpu-verify`.
        findings: Vec<String>,
    },
    /// An internal planner/graph-splicing invariant failed to hold.
    /// Surfaced as a typed error (not a panic) so serving stays
    /// fault-contained even against engine bugs.
    Internal {
        /// Description of the broken invariant.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Graph(e) => write!(f, "graph error: {e}"),
            Error::Sched(e) => write!(f, "scheduling error: {e}"),
            Error::Soc(e) => write!(f, "simulator error: {e}"),
            Error::Model(e) => write!(f, "model error: {e}"),
            Error::Unsupported { engine, model } => {
                write!(f, "{engine} does not support {model}")
            }
            Error::InvalidConfig { what } => write!(f, "invalid engine config: {what}"),
            Error::PlanRejected { findings } => {
                write!(
                    f,
                    "plan verification failed ({} finding(s))",
                    findings.len()
                )?;
                for finding in findings {
                    write!(f, "\n  {finding}")?;
                }
                Ok(())
            }
            Error::Internal { what } => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            Error::Sched(e) => Some(e),
            Error::Soc(e) => Some(e),
            Error::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<llmnpu_graph::Error> for Error {
    fn from(e: llmnpu_graph::Error) -> Self {
        Error::Graph(e)
    }
}

impl From<llmnpu_sched::Error> for Error {
    fn from(e: llmnpu_sched::Error) -> Self {
        Error::Sched(e)
    }
}

impl From<llmnpu_soc::Error> for Error {
    fn from(e: llmnpu_soc::Error) -> Self {
        Error::Soc(e)
    }
}

impl From<llmnpu_model::Error> for Error {
    fn from(e: llmnpu_model::Error) -> Self {
        Error::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = Error::Unsupported {
            engine: "TFLite",
            model: "Mistral-7B",
        };
        assert!(e.to_string().contains("TFLite"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
