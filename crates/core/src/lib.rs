//! The llm.npu engine and its baselines.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrates:
//!
//! * [`engine`] — [`engine::LlmNpuEngine`]: preparation (chunk-sharing
//!   graph build/optimize, chunk-length selection, outlier-layer pruning)
//!   and execution (chunk split → shadow outliers → out-of-order subgraph
//!   scheduling → decode), with latency, energy, and memory reporting,
//! * [`baselines`] — the five comparison engines of §4.1 (llama.cpp-CPU,
//!   MNN-CPU, TFLite-GPU, MLC-LLM-GPU, PowerInfer-v2-NPU) plus the naive
//!   direct-NPU port of §2.3, all behind one [`baselines::Engine`] trait,
//! * [`ablation`] — the Figure 19 ladder (CPU → Naive → +Chunk →
//!   +Outlier → +OOE),
//! * [`memory`] — the Figure 17 footprint comparison,
//! * [`serve`] — the continuous-batching serving layer:
//!   [`engine::LlmNpuEngine::serve`] interleaves many requests'
//!   chunked-prefill DAGs and decode chains (first-class tasks) on the
//!   engine's worker-pool lanes, with per-request KV caches, seeded
//!   sampling, and TTFT / queue-wait / tokens-per-second metrics over a
//!   unified executed timeline.
//!
//! Latency/energy numbers come from the calibrated SoC simulator
//! (`llmnpu-soc`); accuracy numbers come from the numeric plane
//! (`llmnpu-model` + `llmnpu-workloads`). See `DESIGN.md` for the full
//! substitution table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod ablation;
pub mod baselines;
pub mod decode;
pub mod engine;
pub mod memory;
pub mod report;
pub mod serve;

pub use error::Error;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
