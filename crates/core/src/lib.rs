//! The llm.npu engine and its baselines.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrates:
//!
//! * [`engine`] — [`engine::LlmNpuEngine`]: preparation (chunk-sharing
//!   graph build/optimize, chunk-length selection, outlier-layer pruning)
//!   and execution (chunk split → shadow outliers → out-of-order subgraph
//!   scheduling → decode), with latency, energy, and memory reporting,
//! * [`baselines`] — the five comparison engines of §4.1 (llama.cpp-CPU,
//!   MNN-CPU, TFLite-GPU, MLC-LLM-GPU, PowerInfer-v2-NPU) plus the naive
//!   direct-NPU port of §2.3, all behind one [`baselines::Engine`] trait,
//! * [`ablation`] — the Figure 19 ladder (CPU → Naive → +Chunk →
//!   +Outlier → +OOE),
//! * [`memory`] — the Figure 17 footprint comparison,
//! * [`serve`] — the continuous-batching serving layer over the paged
//!   KV pool (`llmnpu-kv`): [`engine::LlmNpuEngine::serve`] plans
//!   admission by **free KV pages** (plus a concurrency cap),
//!   ref-count-shares block-aligned prompt prefixes, evicts the
//!   youngest request under memory pressure (requeued with recompute —
//!   the preemption witness lives in the unified timeline), stacks
//!   same-position decode steps into `m = B` batched GEMMs, streams
//!   tokens through [`serve::ServeOptions::on_token`], and pins zero
//!   leaked pages after every run — with every stream bit-identical to
//!   its solo generation. Serving is *fault-contained*: a panic in one
//!   request's stage fails only that request ([`serve::RequestStatus`]),
//!   transient failures retry with exponential backoff, cancellation
//!   ([`serve::CancelToken`]) and per-request deadlines are honored at
//!   dispatch, and pages are released on every terminal path,
//! * [`faults`] — seeded deterministic fault injection
//!   ([`faults::FaultPlan`]): panics/errors at chosen prefill or decode
//!   sites, transient vs permanent, modeled-duration spikes, and
//!   pool-pressure squeezes — the chaos harness behind
//!   `examples/chaos.rs` and the chaos soak test.
//!
//! Latency/energy numbers come from the calibrated SoC simulator
//! (`llmnpu-soc`); accuracy numbers come from the numeric plane
//! (`llmnpu-model` + `llmnpu-workloads`). See `DESIGN.md` for the full
//! substitution table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod ablation;
pub mod baselines;
pub mod decode;
pub mod engine;
pub mod faults;
pub mod frontend;
pub mod memory;
pub mod report;
pub mod serve;

pub use error::Error;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
