//! The llm.npu engine: both planes of the paper's two-stage workflow
//! (Figure 6), unified over one prefill DAG.
//!
//! * **Preparation** (once per model/device): build and optimize the
//!   fixed-length chunk-sharing graphs, select the chunk length by
//!   profiling (Figure 8), fix the outlier-pruning plan — and create the
//!   persistent [`WorkerPool`] whose threads live for the engine's
//!   lifetime (`pool_workers` lanes; the kernel layer never spawns a
//!   thread per call once the pool is installed).
//! * **Execution** (per prompt): split the prompt into chunks, construct
//!   the subgraph DAG with shadow-outlier tasks, schedule it out-of-order
//!   across CPU/GPU and NPU, then decode on the configured backend.
//!
//! # The two planes
//!
//! The same [`PrefillDag`] drives two executions that this engine keeps
//! in lock-step:
//!
//! * the **timing plane** ([`LlmNpuEngine::prefill`]) prices each task's
//!   `MatMul` / `Dequantize` ops analytically on the simulated SoC and
//!   schedules the DAG under the configured [`Policy`] — the paper's
//!   device-calibrated latency projections;
//! * the **numeric plane** ([`LlmNpuEngine::prefill_executed`]) executes
//!   each task *for real* on a [`Transformer`] via the out-of-order DAG
//!   runner in `llmnpu_sched::runner`: quantized main-path GEMMs on the
//!   NPU lane, shadow-outlier float GEMMs on the CPU lane, dispatched on
//!   the pool as dependencies resolve, bit-identical to the sequential
//!   chunked forward at every worker count.
//!
//! [`LlmNpuEngine::prefill_executed`] runs both planes over the *same*
//! DAG and cross-checks them: the executed timeline must contain exactly
//! the simulated task set, respect the same dependencies, and keep every
//! lane serial (Equation 4). The kernel-level fusion story is unchanged:
//! `MatMul → Dequantize` pairs run as one pass in
//! `llmnpu_tensor::kernel`.
//!
//! [`PrefillDag`]: llmnpu_graph::dag::PrefillDag
//! [`Transformer`]: llmnpu_model::forward::Transformer

use std::sync::Arc;

use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, DagConfig};
use llmnpu_graph::memory::{graph_memory, graph_profile};
use llmnpu_model::config::ModelConfig;
use llmnpu_model::forward::Transformer;
use llmnpu_sched::runner::NumericPrefill;
use llmnpu_sched::{execute_chunked_prefill, schedule, Policy, WorkerPool};
use llmnpu_soc::latency::LatencyModel;
use llmnpu_soc::lifecycle::{lifecycle_cost, LifecycleCost, LifecycleParams};
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::{DataType, Millis, Processor};
use llmnpu_workloads::suites::WorkloadSample;

use crate::decode::DecodeSim;
use crate::report::{E2eReport, MemoryReport, PrefillReport};
use crate::{Error, Result};

/// Engine configuration (the knobs of §4's implementation).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The model to serve.
    pub model: ModelConfig,
    /// The device to run on.
    pub soc: SocSpec,
    /// Fixed chunk length (256 by default, per the Figure 8 profiling).
    pub chunk_len: usize,
    /// Outlier-layer pruning rate (default 0.85, §4).
    pub pruning_rate: f64,
    /// Processor executing float stages (CPU in the shipped prototype).
    pub float_processor: Processor,
    /// Processor executing the decode stage (CPU by default; GPU per §4.6).
    pub decode_processor: Processor,
    /// Scheduling policy (out-of-order in the full system).
    pub policy: Policy,
    /// Whether the equivalent-shape optimization is applied.
    pub shape_optimized: bool,
    /// Per-group NPU quantization (None = llm.npu's per-tensor).
    pub npu_group_size: Option<usize>,
    /// Lanes of the persistent worker pool created with the engine
    /// (spawned threads + the caller). Overridable via the
    /// `LLMNPU_POOL_WORKERS` environment variable; at least 2 by default
    /// so the NPU and float lanes of the numeric plane can genuinely
    /// overlap even on small hosts.
    pub pool_workers: usize,
}

impl EngineConfig {
    /// The default llm.npu configuration for a model on a device.
    #[must_use]
    pub fn llmnpu(model: ModelConfig, soc: SocSpec) -> Self {
        EngineConfig {
            model,
            soc,
            chunk_len: 256,
            pruning_rate: 0.85,
            float_processor: Processor::Cpu,
            decode_processor: Processor::Cpu,
            policy: Policy::OutOfOrder,
            shape_optimized: true,
            npu_group_size: None,
            pool_workers: WorkerPool::env_workers(
                llmnpu_tensor::kernel::parallel::default_threads().max(2),
            ),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.chunk_len == 0 {
            return Err(Error::InvalidConfig {
                what: "chunk length must be non-zero".to_owned(),
            });
        }
        if !(0.0..=1.0).contains(&self.pruning_rate) {
            return Err(Error::InvalidConfig {
                what: format!("pruning rate {} must be in [0, 1]", self.pruning_rate),
            });
        }
        if self.float_processor == Processor::Npu {
            return Err(Error::InvalidConfig {
                what: "float stages cannot run on the NPU (§2.2: no usable FP path)".to_owned(),
            });
        }
        if self.pool_workers == 0 {
            return Err(Error::InvalidConfig {
                what: "pool must have at least one lane".to_owned(),
            });
        }
        Ok(())
    }
}

/// The prepared llm.npu engine.
#[derive(Debug, Clone)]
pub struct LlmNpuEngine {
    config: EngineConfig,
    lat: LatencyModel,
    preparation: LifecycleCost,
    /// The persistent worker pool: created once here, shared by every
    /// clone of the engine, dropped (joining its threads) with the last
    /// one. Replaces per-call thread spawning throughout the numeric
    /// plane.
    pool: Arc<WorkerPool>,
}

impl LlmNpuEngine {
    /// Runs the preparation stage and returns a ready engine.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: EngineConfig) -> Result<Self> {
        config.validate()?;
        let lat = LatencyModel::new(&config.soc);
        // Chunk-sharing graphs are built and optimized once, offline.
        let profile = graph_profile(&config.model, config.chunk_len);
        let preparation = lifecycle_cost(&LifecycleParams::default(), &profile);
        let pool = Arc::new(WorkerPool::new(config.pool_workers));
        Ok(LlmNpuEngine {
            config,
            lat,
            preparation,
            pool,
        })
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// One-time preparation cost (paid offline, *not* per prompt — the
    /// whole point of chunk-sharing graphs, §3.2).
    #[must_use]
    pub fn preparation(&self) -> &LifecycleCost {
        &self.preparation
    }

    /// The latency model in use.
    #[must_use]
    pub fn latency_model(&self) -> &LatencyModel {
        &self.lat
    }

    /// The engine's persistent worker pool. Install it as the kernel
    /// parallel backend (`WorkerPool::install_scope`) to run any
    /// numeric-plane work with zero per-call thread spawns.
    #[must_use]
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The DAG configuration for a prompt under this engine's knobs
    /// (shared with the serving scheduler in `crate::serve`).
    pub(crate) fn dag_config(&self, prompt_len: usize) -> Result<DagConfig> {
        Ok(DagConfig {
            plan: ChunkPlan::new(prompt_len, self.config.chunk_len)?,
            float_processor: self.config.float_processor,
            shadow_fraction: 1.0 - self.config.pruning_rate,
            outlier_channels: 10,
            shape_optimized: self.config.shape_optimized,
            npu_group_size: self.config.npu_group_size,
        })
    }

    /// Simulates one prefill (the timing plane).
    ///
    /// # Errors
    ///
    /// Returns an error for a zero-length prompt or scheduling failure.
    pub fn prefill(&self, prompt_len: usize) -> Result<PrefillReport> {
        let dag_cfg = self.dag_config(prompt_len)?;
        let dag = build_prefill_dag(&self.config.model, &dag_cfg, &self.lat)?;
        let outcome = schedule(&dag, self.config.policy)?;
        let energy = outcome.timeline.energy(&self.config.soc);
        Ok(PrefillReport::new(
            prompt_len,
            outcome.makespan_ms,
            energy,
            outcome.npu_bubble_rate,
            Some(outcome.timeline),
        ))
    }

    /// Runs **both planes** over one DAG: simulates the prefill on the
    /// SoC model and executes it numerically on `t` via the out-of-order
    /// DAG runner (on this engine's pool), then cross-checks the
    /// executed timeline against the DAG — same task set, dependencies
    /// respected, one task per lane at a time.
    ///
    /// `t` is the numeric transformer (typically a scaled-down
    /// synthesized model); the DAG is built for *its* configuration so
    /// the two planes describe the same computation.
    ///
    /// # Errors
    ///
    /// Returns an error on an empty prompt, a scheduling failure, a
    /// numeric stage failure, or a cross-check violation.
    pub fn prefill_executed(&self, t: &Transformer<'_>, tokens: &[u32]) -> Result<UnifiedPrefill> {
        let dag_cfg = self.dag_config(tokens.len())?;
        let plan = dag_cfg.plan.clone();
        let dag = build_prefill_dag(t.config(), &dag_cfg, &self.lat)?;
        let simulated = schedule(&dag, self.config.policy)?;
        let execution = self.pool.install_scope(|| {
            execute_chunked_prefill(t, tokens, &dag, &plan, self.config.policy, &self.pool)
        })?;
        execution.timeline.validate_against(&dag)?;
        Ok(UnifiedPrefill {
            simulated: PrefillReport::new(
                tokens.len(),
                simulated.makespan_ms,
                simulated.timeline.energy(&self.config.soc),
                simulated.npu_bubble_rate,
                Some(simulated.timeline),
            ),
            execution,
        })
    }

    /// The decode-latency model on the configured decode backend — the
    /// single context-aware model shared with [`DecodeSim::run`] and the
    /// baselines (the engine used to carry its own context-free copy,
    /// which silently dropped the KV-attention term).
    #[must_use]
    pub fn decode_sim(&self) -> DecodeSim {
        DecodeSim::new(
            self.config.model.clone(),
            self.config.soc.clone(),
            self.config.decode_processor,
        )
    }

    /// Decode latency of the first generated token (context ≈ 1): the
    /// memory-bound floor where the whole weight set streams through
    /// once. Per-token latency *grows* from here with KV length; use
    /// [`LlmNpuEngine::decode_sim`] for context-aware totals.
    #[must_use]
    pub fn decode_ms_per_token(&self) -> Millis {
        self.decode_sim().token_ms(1)
    }

    /// Simulates one end-to-end request. Decode latency comes from the
    /// shared context-aware model, so it grows with both the prompt
    /// length (attention over the prefilled KV) and the output position.
    ///
    /// # Errors
    ///
    /// Returns an error on prefill failure.
    pub fn e2e(&self, sample: &WorkloadSample) -> Result<E2eReport> {
        let prefill = self.prefill(sample.prompt_len)?;
        let decode_ms = self
            .decode_sim()
            .total_ms(sample.prompt_len, sample.output_len);
        Ok(E2eReport {
            prompt_len: sample.prompt_len,
            output_len: sample.output_len,
            prefill_ms: prefill.latency_ms,
            decode_ms,
            prefill_energy_j: prefill.energy_j,
        })
    }

    /// Memory footprint at a prompt length (Figure 17's "Ours" bar).
    ///
    /// # Errors
    ///
    /// Returns an error for a zero-length prompt.
    pub fn memory(&self, prompt_len: usize) -> Result<MemoryReport> {
        let plan = ChunkPlan::new(prompt_len, self.config.chunk_len)?;
        let gm = graph_memory(&self.config.model, &plan, self.config.float_processor);
        let kv_bytes = kv_cache_bytes(&self.config.model, prompt_len);
        // Shadow float weights: hot channels only (§3.3). ~3% of channels
        // cover >80% of outliers; FP16 rows for the kept layers.
        let kept_layers =
            (self.config.model.layers as f64 * (1.0 - self.config.pruning_rate)).round();
        let hot_fraction = 0.03;
        let shadow_bytes = (self.config.model.hidden as f64
            * hot_fraction
            * (self.config.model.q_dim()
                + 2 * self.config.model.kv_dim()
                + 3 * self.config.model.ffn_hidden) as f64
            * 2.0
            * kept_layers) as u64;
        Ok(MemoryReport {
            weight_bytes: self.config.model.weight_bytes_int8(),
            activation_bytes: gm.shared_buffer_bytes + gm.dynamic_buffer_bytes,
            kv_bytes,
            shadow_bytes,
        })
    }

    /// Sweeps chunk lengths and returns `(chunk_len, per_token_ms)` pairs
    /// for the QKV-linear+FFN NPU work — the Figure 8 profiling that picks
    /// 256 on the Xiaomi 14-class device.
    #[must_use]
    pub fn chunk_length_profile(&self, candidates: &[usize]) -> Vec<(usize, f64)> {
        candidates
            .iter()
            .map(|&c| {
                let mut total = 0.0;
                for &(k, n) in &self.config.model.layer_linear_shapes() {
                    total += self.lat.matmul_ms(Processor::Npu, DataType::Int8, c, k, n);
                }
                (c, total * self.config.model.layers as f64 / c as f64)
            })
            .collect()
    }

    /// Picks the chunk length from a candidate sweep: the *smallest* chunk
    /// whose per-token NPU latency is within 5% of the sweep's optimum.
    ///
    /// This is Figure 8's decision rule: per-token latency flattens once
    /// the NPU saturates (~256 on the 8gen3-class device), and any larger
    /// chunk only adds intra-chunk padding for shorter prompts.
    #[must_use]
    pub fn select_chunk_len(&self, candidates: &[usize]) -> usize {
        let profile = self.chunk_length_profile(candidates);
        let best = profile
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let mut sorted = profile;
        sorted.sort_by_key(|&(c, _)| c);
        sorted
            .into_iter()
            .find(|&(_, t)| t <= best * 1.05)
            .map_or(256, |(c, _)| c)
    }
}

/// Both planes of one prefill over the same DAG: the analytic schedule
/// and the real numeric execution, cross-checked.
#[derive(Debug)]
pub struct UnifiedPrefill {
    /// The full timing-plane report.
    pub simulated: PrefillReport,
    /// The numeric result: hidden states, KV cache, executed timeline.
    pub execution: NumericPrefill,
}

impl UnifiedPrefill {
    /// Simulated (timing-plane) makespan, ms.
    #[must_use]
    pub fn simulated_ms(&self) -> Millis {
        self.simulated.latency_ms
    }

    /// Measured wall-clock makespan of the numeric execution, ms.
    #[must_use]
    pub fn executed_ms(&self) -> Millis {
        self.execution.timeline.makespan_ms()
    }
}

/// KV-cache bytes for a prompt (FP16 keys and values per layer).
#[must_use]
pub fn kv_cache_bytes(model: &ModelConfig, prompt_len: usize) -> u64 {
    (2 * prompt_len * model.kv_dim() * model.layers) as u64 * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> LlmNpuEngine {
        LlmNpuEngine::new(EngineConfig::llmnpu(
            ModelConfig::qwen15_18b(),
            SocSpec::snapdragon_8gen3(),
        ))
        .unwrap()
    }

    #[test]
    fn config_validation() {
        let mut cfg = EngineConfig::llmnpu(ModelConfig::qwen15_18b(), SocSpec::snapdragon_8gen3());
        cfg.chunk_len = 0;
        assert!(LlmNpuEngine::new(cfg.clone()).is_err());
        cfg.chunk_len = 256;
        cfg.pruning_rate = 1.5;
        assert!(LlmNpuEngine::new(cfg.clone()).is_err());
        cfg.pruning_rate = 0.85;
        cfg.float_processor = Processor::Npu;
        assert!(LlmNpuEngine::new(cfg).is_err());
    }

    #[test]
    fn preparation_is_seconds_scale() {
        // Figure 2: build + optimize for Qwen ≈ 0.45 + 3.3 s — paid once.
        let e = engine();
        let prep = e.preparation().prepare_ms();
        assert!(prep > 2000.0 && prep < 8000.0, "prep = {prep}");
    }

    #[test]
    fn headline_throughput_above_1000_tokens_per_s() {
        // §1: "llm.npu achieves more than 1,000 tokens/sec prefilling for
        // a billion-sized model" (Qwen1.5-1.8B at 1024 tokens, 8gen3).
        let e = engine();
        let r = e.prefill(1024).unwrap();
        assert!(r.tokens_per_s > 1000.0, "tokens/s = {:.0}", r.tokens_per_s);
    }

    #[test]
    fn prefill_latency_matches_table5_scale() {
        // Table 5: Qwen prefill of ~1561 tokens in ~1.49 s on the K70 Pro.
        let e = engine();
        let r = e.prefill(1561).unwrap();
        assert!(
            (800.0..2500.0).contains(&r.latency_ms),
            "latency = {:.0} ms",
            r.latency_ms
        );
    }

    #[test]
    fn decode_speed_matches_table5() {
        // Table 5 decode: ~12–16 tok/s for Qwen on the CPU backend.
        let e = engine();
        let ms = e.decode_ms_per_token();
        let tok_s = 1e3 / ms;
        assert!((8.0..25.0).contains(&tok_s), "decode {tok_s:.1} tok/s");
    }

    #[test]
    fn e2e_splits_prefill_and_decode() {
        let e = engine();
        let sample = WorkloadSample {
            prompt_len: 700,
            output_len: 4,
        };
        let r = e.e2e(&sample).unwrap();
        assert!(r.prefill_ms > 0.0);
        assert!(r.decode_ms > 0.0);
        assert!((r.total_ms() - (r.prefill_ms + r.decode_ms)).abs() < 1e-9);
        // Figure 1: prefill dominates for QA-style workloads.
        assert!(r.prefill_fraction() > 0.5);
    }

    #[test]
    fn e2e_decode_matches_decode_sim_run() {
        // The drift regression: `e2e` decode and `DecodeSim::run` must be
        // the same model, to the bit, at every prompt/output shape.
        let e = engine();
        for (prompt, output) in [(700usize, 16usize), (64, 2), (1536, 40)] {
            let r = e
                .e2e(&WorkloadSample {
                    prompt_len: prompt,
                    output_len: output,
                })
                .unwrap();
            let sim = e.decode_sim().run(prompt, output).unwrap();
            assert!(
                (r.decode_ms - sim.latency_ms).abs() < 1e-9,
                "({prompt}, {output}): e2e {} vs sim {}",
                r.decode_ms,
                sim.latency_ms
            );
        }
    }

    #[test]
    fn e2e_decode_grows_with_context() {
        // The symptom the drift caused: simulated decode latency never
        // grew with KV length. Same output budget, longer prompt must
        // now decode strictly slower (attention over a bigger cache).
        let e = engine();
        let short = e
            .e2e(&WorkloadSample {
                prompt_len: 256,
                output_len: 8,
            })
            .unwrap();
        let long = e
            .e2e(&WorkloadSample {
                prompt_len: 1536,
                output_len: 8,
            })
            .unwrap();
        assert!(
            long.decode_ms > short.decode_ms,
            "decode {:.2} ms at 1536 ctx should exceed {:.2} ms at 256",
            long.decode_ms,
            short.decode_ms
        );
        // And within one request, later tokens are slower than earlier
        // ones (per-token latency rises as the cache grows).
        let sim = e.decode_sim();
        assert!(sim.token_ms(1536) > sim.token_ms(256));
    }

    #[test]
    fn chunk_selection_lands_near_256() {
        // Figure 8: the per-token latency curve flattens after ~256; the
        // profiling should not pick a tiny chunk.
        let e = engine();
        let picked = e.select_chunk_len(&[32, 64, 128, 256, 512, 1024]);
        assert!(picked >= 128, "picked {picked}");
        // The profile must be monotically non-increasing in the small-chunk
        // region (larger chunks amortize better).
        let prof = e.chunk_length_profile(&[32, 64, 128, 256]);
        assert!(prof[0].1 > prof[3].1);
    }

    #[test]
    fn memory_includes_shadow_weights() {
        let e = engine();
        let m = e.memory(512).unwrap();
        assert!(m.shadow_bytes > 0);
        // §4.5: shadow floats are ~0.6–1% of total memory.
        let frac = m.shadow_bytes as f64 / m.total() as f64;
        assert!(frac < 0.05, "shadow fraction {frac}");
        assert!(m.weight_bytes > m.activation_bytes);
    }

    #[test]
    fn gpu_float_backend_works() {
        let mut cfg = EngineConfig::llmnpu(ModelConfig::gemma_2b(), SocSpec::snapdragon_8gen3());
        cfg.float_processor = Processor::Gpu;
        cfg.decode_processor = Processor::Gpu;
        let e = LlmNpuEngine::new(cfg).unwrap();
        let r = e.prefill(512).unwrap();
        assert!(r.latency_ms > 0.0);
        // GPU decode is faster than CPU decode (Figure 18b).
        let cpu_engine = LlmNpuEngine::new(EngineConfig::llmnpu(
            ModelConfig::gemma_2b(),
            SocSpec::snapdragon_8gen3(),
        ))
        .unwrap();
        assert!(e.decode_ms_per_token() < cpu_engine.decode_ms_per_token());
    }

    #[test]
    fn short_prompts_pay_padding() {
        // §4.2: 64-token prompts waste most of a 256 chunk, so tokens/s is
        // far below the 1024-token rate.
        let e = engine();
        let short = e.prefill(64).unwrap();
        let long = e.prefill(1024).unwrap();
        assert!(long.tokens_per_s > 2.0 * short.tokens_per_s);
    }
}
