//! Continuous-batching request serving (the paper's §4 decode stage,
//! grown into a multi-request scheduler).
//!
//! The chunked prefill of §3.2 exists so prefill work can *share the
//! device* with other in-flight work; this module is where that sharing
//! happens. [`LlmNpuEngine::serve`] admits a queue of
//! [`GenerationRequest`]s and builds one combined [`LaneGraph`] holding,
//! per request:
//!
//! * the request's **chunked-prefill DAG** (the same task set
//!   `prefill_executed` runs for a single prompt, labels prefixed with
//!   the request id),
//! * a **prefill-finish** task that assembles the request's private KV
//!   cache and last hidden row from the position-addressed buffers, and
//! * its **decode chain** — one first-class task per generated token
//!   (LM-head projection + seeded sampling, preceded by the previous
//!   token's decode forward), each priced by the shared context-aware
//!   decode model so the out-of-order policy can prioritize decode
//!   against prefill with the timing plane's predictions.
//!
//! The graph runs on the engine's persistent [`WorkerPool`] lanes
//! through the same dispatcher as single-request prefill, so decode
//! steps of in-flight requests genuinely interleave with prefill chunks
//! of newly admitted ones (one serial lane per processor, Equation 4).
//! Request arrivals become task *release times*; admission is capped at
//! [`ServeOptions::max_active`] concurrent requests — request `r`'s
//! tasks additionally wait on request `r - max_active` finishing, which
//! is continuous batching's "a slot frees, the next request joins".
//!
//! # Determinism
//!
//! Each request's computation is a serial dependency chain over its own
//! KV cache and its own seeded [`Sampler`], and the kernel layer is
//! thread-count-invariant — so every request's token stream is
//! **bit-identical** to running that request alone through
//! [`Transformer::generate`] with the same chunk length and sampler
//! seed, at every worker count, policy, and batch composition. The
//! integration tests pin this.
//!
//! [`LaneGraph`]: llmnpu_sched::LaneGraph
//! [`WorkerPool`]: llmnpu_sched::WorkerPool
//! [`Sampler`]: llmnpu_model::sample::Sampler
//! [`Transformer::generate`]: llmnpu_model::forward::Transformer::generate

use std::sync::Mutex;

use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, PrefillDag, TaskRole};
use llmnpu_graph::layer::Stage;
use llmnpu_model::forward::Transformer;
use llmnpu_model::kv::KvCache;
use llmnpu_model::sample::{Sampler, SamplerConfig};
use llmnpu_sched::{execute_lane_graph, LaneGraph, LaneTask, PrefillProgram, TaskFn};
use llmnpu_soc::{Millis, Processor};
use llmnpu_tensor::Tensor;

use crate::decode::DecodeSim;
use crate::engine::LlmNpuEngine;
use crate::{Error, Result};

/// Modeled duration of the cache-assembly bookkeeping task (not a GEMM;
/// only used for scheduling priority).
const FINISH_TASK_MS: f64 = 0.05;

/// One queued generation request.
#[derive(Debug, Clone)]
pub struct GenerationRequest {
    /// Prompt token ids (must be non-empty).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate (must be at least 1).
    pub max_new_tokens: usize,
    /// Sampling strategy and seed for this request's stream.
    pub sampler: SamplerConfig,
    /// Arrival time, ms from the start of the serving run. Tasks of this
    /// request are not dispatched earlier.
    pub arrival_ms: Millis,
}

impl GenerationRequest {
    /// A greedy request arriving at time zero.
    #[must_use]
    pub fn new(prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        GenerationRequest {
            prompt,
            max_new_tokens,
            sampler: SamplerConfig::greedy(),
            arrival_ms: 0.0,
        }
    }

    /// The deterministic synthetic request used by the serving demo and
    /// the `BENCH_kernels.json` serving section — one definition so the
    /// two workloads cannot drift apart: prompt token `k` is
    /// `(k·7 + index) % vocab`, sampled top-k(8) at temperature 0.9 with
    /// seed `42 + index`.
    #[must_use]
    pub fn synthetic(index: usize, prompt_len: usize, max_new_tokens: usize, vocab: usize) -> Self {
        let prompt: Vec<u32> = (0..prompt_len as u32)
            .map(|k| (k * 7 + index as u32) % vocab.max(1) as u32)
            .collect();
        GenerationRequest::new(prompt, max_new_tokens).with_sampler(SamplerConfig::top_k(
            8,
            0.9,
            42 + index as u64,
        ))
    }

    /// Sets the sampling configuration.
    #[must_use]
    pub fn with_sampler(mut self, sampler: SamplerConfig) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the arrival time (ms from run start).
    #[must_use]
    pub fn with_arrival_ms(mut self, arrival_ms: Millis) -> Self {
        self.arrival_ms = arrival_ms;
        self
    }
}

/// Serving-loop knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum number of requests in flight at once (continuous
    /// batching's admission cap): request `r` is admitted only after
    /// request `r - max_active` has fully completed.
    pub max_active: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { max_active: 2 }
    }
}

/// What a serving-timeline span implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeTaskKind {
    /// One stage task of the request's chunked-prefill DAG.
    PrefillStage {
        /// Chunk index within the request's prompt.
        chunk: usize,
        /// Decoder layer.
        layer: usize,
        /// Host stage.
        stage: Stage,
        /// Pipeline role (main / shadow / merge).
        role: TaskRole,
    },
    /// KV-cache + last-hidden assembly after the request's prefill.
    PrefillFinish,
    /// One decode step (decode forward of the previous token where
    /// applicable, LM-head projection, seeded sampling → one token).
    Decode {
        /// Zero-based position in the request's generated stream.
        step: usize,
    },
}

impl ServeTaskKind {
    /// Whether this span belongs to the prefill phase.
    #[must_use]
    pub fn is_prefill(&self) -> bool {
        matches!(
            self,
            ServeTaskKind::PrefillStage { .. } | ServeTaskKind::PrefillFinish
        )
    }

    /// Whether this span is a decode step.
    #[must_use]
    pub fn is_decode(&self) -> bool {
        matches!(self, ServeTaskKind::Decode { .. })
    }
}

/// One executed span of the batched run, with wall-clock timestamps
/// relative to run start (milliseconds).
#[derive(Debug, Clone)]
pub struct ServeSpan {
    /// Request index (admission order).
    pub request: usize,
    /// Task label, e.g. `"R1-C0-L2-Ffn"` or `"R1-D3"`.
    pub label: String,
    /// What the span implements.
    pub kind: ServeTaskKind,
    /// Lane the task ran on.
    pub processor: Processor,
    /// Wall-clock start, ms from run start.
    pub start_ms: f64,
    /// Wall-clock end, ms from run start.
    pub end_ms: f64,
}

/// The unified executed timeline of a batched serving run: every
/// request's prefill stages, finish task, and decode steps on one clock.
#[derive(Debug, Clone, Default)]
pub struct ServeTimeline {
    spans: Vec<ServeSpan>,
}

impl ServeTimeline {
    /// All spans, in completion order.
    #[must_use]
    pub fn entries(&self) -> &[ServeSpan] {
        &self.spans
    }

    /// Wall-clock completion of the last task (ms from run start).
    #[must_use]
    pub fn makespan_ms(&self) -> f64 {
        self.spans.iter().map(|s| s.end_ms).fold(0.0, f64::max)
    }

    /// Total busy time of one lane.
    #[must_use]
    pub fn lane_busy_ms(&self, p: Processor) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.processor == p)
            .map(|s| s.end_ms - s.start_ms)
            .sum()
    }

    /// Spans of one request, in completion order.
    #[must_use]
    pub fn request_entries(&self, request: usize) -> Vec<&ServeSpan> {
        self.spans.iter().filter(|s| s.request == request).collect()
    }

    /// The continuous-batching witness: some decode step of one request
    /// ran *inside* another request's prefill window (between that
    /// request's first prefill dispatch and its last prefill
    /// completion). True wall-clock overlap implies it on multicore
    /// hosts; on a single core it still witnesses task-granular
    /// interleaving — decode work was dispatched before a neighbor's
    /// prefill had drained, which is impossible under one-request-at-a-
    /// time serving.
    #[must_use]
    pub fn decode_interleaved_with_prefill(&self) -> bool {
        let mut windows: std::collections::HashMap<usize, (f64, f64)> =
            std::collections::HashMap::new();
        for s in &self.spans {
            if s.kind.is_prefill() {
                let w = windows
                    .entry(s.request)
                    .or_insert((f64::INFINITY, f64::NEG_INFINITY));
                w.0 = w.0.min(s.start_ms);
                w.1 = w.1.max(s.end_ms);
            }
        }
        self.spans.iter().any(|d| {
            d.kind.is_decode()
                && windows
                    .iter()
                    .any(|(&r, &(lo, hi))| r != d.request && d.start_ms < hi && d.end_ms > lo)
        })
    }
}

/// Per-request outcome of a serving run.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Request index (admission order).
    pub request: usize,
    /// The generated token stream.
    pub tokens: Vec<u32>,
    /// Wall-clock completion time of each generated token (ms from run
    /// start, one entry per token — the "stream").
    pub token_times_ms: Vec<f64>,
    /// The request's arrival time.
    pub arrival_ms: f64,
    /// First dispatch of any of the request's tasks.
    pub first_dispatch_ms: f64,
    /// Completion of the request's prefill (KV cache ready).
    pub prefill_done_ms: f64,
    /// Completion of the request's last decode step.
    pub finish_ms: f64,
}

impl RequestOutcome {
    /// Time spent queued before the scheduler first touched the request.
    #[must_use]
    pub fn queue_wait_ms(&self) -> f64 {
        self.first_dispatch_ms - self.arrival_ms
    }

    /// Time-to-first-token: arrival until the first generated token.
    #[must_use]
    pub fn ttft_ms(&self) -> f64 {
        self.token_times_ms.first().map_or(0.0, |&t| t) - self.arrival_ms
    }

    /// Decode throughput over the request's own decode window.
    #[must_use]
    pub fn decode_tokens_per_s(&self) -> f64 {
        let window = self.finish_ms - self.prefill_done_ms;
        if window > 0.0 {
            self.tokens.len() as f64 / (window / 1e3)
        } else {
            0.0
        }
    }
}

/// Aggregate outcome of one batched serving run.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-request outcomes, in admission order.
    pub requests: Vec<RequestOutcome>,
    /// The unified executed timeline.
    pub timeline: ServeTimeline,
}

impl ServeReport {
    /// Wall-clock makespan of the whole batch.
    #[must_use]
    pub fn makespan_ms(&self) -> f64 {
        self.timeline.makespan_ms()
    }

    /// Total generated tokens across all requests.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.tokens.len()).sum()
    }

    /// Aggregate generation throughput (all requests' tokens over the
    /// batch makespan).
    #[must_use]
    pub fn tokens_per_s(&self) -> f64 {
        let ms = self.makespan_ms();
        if ms > 0.0 {
            self.total_tokens() as f64 / (ms / 1e3)
        } else {
            0.0
        }
    }

    /// Mean time-to-first-token across requests.
    #[must_use]
    pub fn mean_ttft_ms(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(RequestOutcome::ttft_ms)
            .sum::<f64>()
            / self.requests.len() as f64
    }

    /// Mean queue wait across requests.
    #[must_use]
    pub fn mean_queue_wait_ms(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(RequestOutcome::queue_wait_ms)
            .sum::<f64>()
            / self.requests.len() as f64
    }
}

/// Mutable per-request generation state, touched only by the request's
/// own (serially chained) finish/decode tasks.
struct ReqState {
    cache: Option<KvCache>,
    sampler: Sampler,
    last_hidden: Option<Tensor<f32>>,
    tokens: Vec<u32>,
}

/// Task ids of one request within the combined graph.
struct ReqTaskIds {
    finish: usize,
    decode: Vec<usize>,
    all: Vec<usize>,
}

/// Tasks of a DAG with no in-DAG successors (everything a prefill-finish
/// task must wait for).
fn dag_sinks(dag: &PrefillDag) -> Vec<usize> {
    let mut has_successor = vec![false; dag.len()];
    for t in 0..dag.len() {
        for &d in dag.deps(t) {
            has_successor[d] = true;
        }
    }
    (0..dag.len()).filter(|&t| !has_successor[t]).collect()
}

impl LlmNpuEngine {
    /// Serves a queue of generation requests with continuous batching on
    /// this engine's pool: per-request chunked-prefill DAGs and decode
    /// chains interleave on the per-processor lanes under the engine's
    /// scheduling policy, honoring arrival times and the admission cap.
    ///
    /// `t` is the numeric transformer the requests run on (its
    /// configuration drives the per-request DAGs, exactly as in
    /// [`LlmNpuEngine::prefill_executed`]). Returns per-request token
    /// streams — bit-identical to solo [`Transformer::generate`] runs
    /// with `chunk_len = self.config().chunk_len` — plus serving metrics
    /// and the unified timeline.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty/invalid request (empty prompt, zero
    /// `max_new_tokens`, bad sampler config, non-finite or negative
    /// arrival), a zero admission cap, or any execution failure.
    pub fn serve(
        &self,
        t: &Transformer<'_>,
        requests: &[GenerationRequest],
        opts: &ServeOptions,
    ) -> Result<ServeReport> {
        if opts.max_active == 0 {
            return Err(Error::InvalidConfig {
                what: "max_active must be at least 1".to_owned(),
            });
        }
        for (r, req) in requests.iter().enumerate() {
            if req.prompt.is_empty() {
                return Err(Error::InvalidConfig {
                    what: format!("request {r} has an empty prompt"),
                });
            }
            if req.max_new_tokens == 0 {
                return Err(Error::InvalidConfig {
                    what: format!("request {r} asks for zero tokens"),
                });
            }
            if !req.arrival_ms.is_finite() || req.arrival_ms < 0.0 {
                return Err(Error::InvalidConfig {
                    what: format!("request {r} has invalid arrival {}", req.arrival_ms),
                });
            }
        }
        if requests.is_empty() {
            return Ok(ServeReport {
                requests: Vec::new(),
                timeline: ServeTimeline::default(),
            });
        }

        // Decode-task durations come from the shared context-aware decode
        // model, priced for the numeric model actually being served.
        let decode_proc = self.config().decode_processor;
        let dsim = DecodeSim::new(t.config().clone(), self.config().soc.clone(), decode_proc);

        // Per-request prefill machinery (DAG, plan, prepared program).
        let mut dags = Vec::with_capacity(requests.len());
        let mut plans: Vec<ChunkPlan> = Vec::with_capacity(requests.len());
        for req in requests {
            let dag_cfg = self.dag_config(req.prompt.len())?;
            plans.push(dag_cfg.plan.clone());
            dags.push(build_prefill_dag(
                t.config(),
                &dag_cfg,
                self.latency_model(),
            )?);
        }
        let mut programs = Vec::with_capacity(requests.len());
        for (r, req) in requests.iter().enumerate() {
            programs.push(PrefillProgram::new(t, &req.prompt, &dags[r], &plans[r])?);
        }
        let states: Vec<Mutex<ReqState>> = requests
            .iter()
            .map(|req| {
                Ok(Mutex::new(ReqState {
                    cache: None,
                    sampler: Sampler::new(&req.sampler)?,
                    last_hidden: None,
                    tokens: Vec::with_capacity(req.max_new_tokens),
                }))
            })
            .collect::<Result<_>>()?;

        // Splice every request into one combined lane graph.
        let mut graph = LaneGraph::new();
        let mut closures: Vec<TaskFn<'_>> = Vec::new();
        let mut meta: Vec<(usize, ServeTaskKind)> = Vec::new();
        let mut ids: Vec<ReqTaskIds> = Vec::with_capacity(requests.len());

        for (r, req) in requests.iter().enumerate() {
            let offset = graph.len();
            // Continuous batching's admission cap: this request's roots
            // additionally wait for request r - max_active to finish.
            let gate = (r >= opts.max_active).then(|| ids[r - opts.max_active].all_done());
            let mut all = Vec::with_capacity(dags[r].len() + 1 + req.max_new_tokens);

            for (i, task) in dags[r].tasks().iter().enumerate() {
                let mut deps: Vec<usize> = dags[r].deps(i).iter().map(|&d| d + offset).collect();
                if deps.is_empty() {
                    if let Some(g) = gate {
                        deps.push(g);
                    }
                }
                let id = graph.push(
                    LaneTask {
                        label: format!("R{r}-{}", task.label),
                        processor: task.processor,
                        duration_ms: task.duration_ms,
                        release_ms: req.arrival_ms,
                    },
                    deps,
                )?;
                meta.push((
                    r,
                    ServeTaskKind::PrefillStage {
                        chunk: task.chunk,
                        layer: task.layer,
                        stage: task.stage,
                        role: task.role,
                    },
                ));
                all.push(id);
            }
            closures.extend(programs[r].closures(&dags[r]));

            // Prefill-finish: assemble this request's KV cache and last
            // hidden row once every prefill task has drained.
            let mut finish_deps: Vec<usize> =
                dag_sinks(&dags[r]).iter().map(|&s| s + offset).collect();
            if finish_deps.is_empty() {
                if let Some(g) = gate {
                    finish_deps.push(g);
                }
            }
            let finish = graph.push(
                LaneTask {
                    label: format!("R{r}-PrefillFinish"),
                    processor: decode_proc,
                    duration_ms: FINISH_TASK_MS,
                    release_ms: req.arrival_ms,
                },
                finish_deps,
            )?;
            meta.push((r, ServeTaskKind::PrefillFinish));
            all.push(finish);
            {
                let program = &programs[r];
                let state = &states[r];
                closures.push(Box::new(move || {
                    let cache = program.assemble_cache().map_err(|e| e.to_string())?;
                    let last = program.last_hidden_row().map_err(|e| e.to_string())?;
                    let mut st = state.lock().expect("request state");
                    st.cache = Some(cache);
                    st.last_hidden = Some(last);
                    Ok(())
                }));
            }

            // The decode chain: one first-class task per generated token.
            let mut decode = Vec::with_capacity(req.max_new_tokens);
            let mut prev = finish;
            for step in 0..req.max_new_tokens {
                let id = graph.push(
                    LaneTask {
                        label: format!("R{r}-D{step}"),
                        processor: decode_proc,
                        duration_ms: dsim.token_ms(req.prompt.len() + step),
                        release_ms: req.arrival_ms,
                    },
                    vec![prev],
                )?;
                meta.push((r, ServeTaskKind::Decode { step }));
                let state = &states[r];
                closures.push(Box::new(move || {
                    let mut st = state.lock().expect("request state");
                    let st = &mut *st;
                    if step > 0 {
                        // Forward the previously sampled token through
                        // the decode path (extends this request's cache).
                        let prev_tok = *st.tokens.last().ok_or("missing previous token")?;
                        let cache = st.cache.as_mut().ok_or("missing kv cache")?;
                        st.last_hidden =
                            Some(t.prefill(&[prev_tok], cache).map_err(|e| e.to_string())?);
                    }
                    let last = st.last_hidden.as_ref().ok_or("missing hidden state")?;
                    let logits = t.logits(last).map_err(|e| e.to_string())?;
                    let token = st
                        .sampler
                        .sample(logits.row(0))
                        .map_err(|e| e.to_string())?;
                    st.tokens.push(token);
                    Ok(())
                }));
                decode.push(id);
                all.push(id);
                prev = id;
            }
            ids.push(ReqTaskIds {
                finish,
                decode,
                all,
            });
        }

        // Run the combined graph on the engine's lanes.
        let spans = self.pool().install_scope(|| {
            execute_lane_graph(&graph, closures, self.config().policy, self.pool())
        })?;

        // Unified timeline, completion order.
        let mut order: Vec<usize> = (0..graph.len()).collect();
        order.sort_by(|&a, &b| {
            spans[a]
                .1
                .partial_cmp(&spans[b].1)
                .expect("finite timestamps")
        });
        let mut timeline = ServeTimeline::default();
        for i in order {
            let (request, kind) = meta[i];
            timeline.spans.push(ServeSpan {
                request,
                label: graph.tasks()[i].label.clone(),
                kind,
                processor: graph.tasks()[i].processor,
                start_ms: spans[i].0,
                end_ms: spans[i].1,
            });
        }

        // Per-request metrics + token streams.
        let mut outcomes = Vec::with_capacity(requests.len());
        for (r, req) in requests.iter().enumerate() {
            let st = states[r].lock().expect("request state");
            if st.tokens.len() != req.max_new_tokens {
                return Err(Error::InvalidConfig {
                    what: format!(
                        "request {r} produced {} of {} tokens",
                        st.tokens.len(),
                        req.max_new_tokens
                    ),
                });
            }
            let first_dispatch_ms = ids[r]
                .all
                .iter()
                .map(|&i| spans[i].0)
                .fold(f64::INFINITY, f64::min);
            let token_times_ms: Vec<f64> = ids[r].decode.iter().map(|&i| spans[i].1).collect();
            outcomes.push(RequestOutcome {
                request: r,
                tokens: st.tokens.clone(),
                finish_ms: token_times_ms.last().copied().unwrap_or(0.0),
                token_times_ms,
                arrival_ms: req.arrival_ms,
                first_dispatch_ms,
                prefill_done_ms: spans[ids[r].finish].1,
            });
        }

        Ok(ServeReport {
            requests: outcomes,
            timeline,
        })
    }
}

impl ReqTaskIds {
    /// The task whose completion frees this request's admission slot.
    fn all_done(&self) -> usize {
        *self.all.last().expect("request has tasks")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders_compose() {
        let r = GenerationRequest::new(vec![1, 2, 3], 4)
            .with_sampler(SamplerConfig::top_k(5, 0.8, 7))
            .with_arrival_ms(12.5);
        assert_eq!(r.max_new_tokens, 4);
        assert_eq!(r.sampler.top_k, Some(5));
        assert!((r.arrival_ms - 12.5).abs() < 1e-12);
    }

    #[test]
    fn outcome_metrics_derive() {
        let o = RequestOutcome {
            request: 0,
            tokens: vec![1, 2],
            token_times_ms: vec![30.0, 40.0],
            arrival_ms: 5.0,
            first_dispatch_ms: 10.0,
            prefill_done_ms: 20.0,
            finish_ms: 40.0,
        };
        assert!((o.queue_wait_ms() - 5.0).abs() < 1e-12);
        assert!((o.ttft_ms() - 25.0).abs() < 1e-12);
        assert!((o.decode_tokens_per_s() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn interleave_witness_logic() {
        let mut tl = ServeTimeline::default();
        tl.spans.push(ServeSpan {
            request: 1,
            label: "R1-C0-L0-AttnPre".to_owned(),
            kind: ServeTaskKind::PrefillStage {
                chunk: 0,
                layer: 0,
                stage: Stage::AttnPre,
                role: TaskRole::Main,
            },
            processor: Processor::Npu,
            start_ms: 0.0,
            end_ms: 10.0,
        });
        // Decode of request 0 strictly after request 1's prefill window:
        // not interleaved.
        tl.spans.push(ServeSpan {
            request: 0,
            label: "R0-D0".to_owned(),
            kind: ServeTaskKind::Decode { step: 0 },
            processor: Processor::Cpu,
            start_ms: 11.0,
            end_ms: 12.0,
        });
        assert!(!tl.decode_interleaved_with_prefill());
        // A decode span inside the window flips the witness.
        tl.spans.push(ServeSpan {
            request: 0,
            label: "R0-D1".to_owned(),
            kind: ServeTaskKind::Decode { step: 1 },
            processor: Processor::Cpu,
            start_ms: 4.0,
            end_ms: 6.0,
        });
        assert!(tl.decode_interleaved_with_prefill());
    }
}
