//! Continuous-batching request serving over the **paged KV pool** (the
//! paper's §4 decode stage, grown into a memory-aware multi-request
//! scheduler).
//!
//! The chunked prefill of §3.2 exists so prefill work can *share the
//! device* with other in-flight work; this module is where that sharing
//! happens — and, since the paged-KV subsystem landed, where the
//! device's **memory** is shared too. [`LlmNpuEngine::serve`] admits a
//! queue of [`GenerationRequest`]s against one fixed
//! [`BlockPool`] of KV pages and builds one
//! combined [`LaneGraph`] holding, per admitted request *incarnation*:
//!
//! * an **admission task** that reserves the request's worst-case page
//!   budget — forking a live neighbor's ref-counted blocks when their
//!   prompts share a prefix (any length: full pages are ref-shared, the
//!   sub-page remainder is recovered by a leading-row copy), or reusing
//!   pages from the **global radix prefix cache**
//!   ([`llmnpu_kv::PrefixCache`]): prompt prefixes computed by *any*
//!   earlier request, live or long gone, are reused with no donor
//!   declaration — the shared system prompt is allocated and prefilled
//!   **once per session**, not once per batch,
//! * the request's **chunked-prefill DAG** over its *unshared suffix*,
//!   writing K/V straight into the pool through the request's block
//!   table (position-addressed, so out-of-order chunks can't reorder
//!   the cache),
//! * its **decode steps** — grouped into cohorts so concurrent
//!   requests' same-position steps run as **one `m = B` batched GEMM**
//!   per linear site instead of B separate GEMVs
//!   ([`ServeOptions::decode_batch`]), attention staying per-request
//!   over each paged history — and
//! * a **release task** returning every page to the pool (the zero-leak
//!   counter [`KvPoolReport::leaked_blocks`] pins this).
//!
//! # Admission is a memory model, not a request count
//!
//! A request is admitted when the pool has pages for its worst case
//! (prompt + decode budget) *and* a slot under
//! [`ServeOptions::max_active`]. When pages run out, the planner either
//! **waits** for the earliest active request to finish, or — under
//! [`PressurePolicy::EvictYoungest`] — **preempts** the youngest active
//! request: its pages are freed, its (so far prefill-only) work is
//! discarded, and it is requeued behind the preemptor to be
//! **recomputed** from scratch. Both the eviction and the second
//! prefill appear in the unified timeline — the preemption witness.
//! Admission decisions are made by a deterministic planner over request
//! order and page arithmetic, so the *structure* of a serving run never
//! depends on wall-clock noise.
//!
//! # Sessions and the global prefix cache
//!
//! [`LlmNpuEngine::serve`] is the transient entry point: it builds a
//! pool and a fresh [`llmnpu_kv::PrefixCache`] for one batch and drains
//! both before returning. A long-running front-end (see
//! [`crate::frontend`]) instead opens a [`ServeSession`] once and calls
//! [`LlmNpuEngine::serve_with_session`] per batch: cached prompt
//! prefixes (every completed prefill inserts its full prompt pages)
//! survive *across* batches, so a later request sharing a system prompt
//! with any earlier one reuses those pages even though the producer is
//! long released. Cached pages are ref-counted residents of the pool;
//! under admission pressure the planner evicts cold cached prefixes
//! (LRU, refusing pages mid-reuse or claimed by the current round)
//! before it resorts to preempting live requests. The zero-leak
//! invariant becomes: used pages minus cache-resident pages is zero
//! after every batch, and exactly zero after a session flush.
//!
//! # Determinism
//!
//! Each request's decode chain stays a serial dependency over its own
//! paged cache and its own seeded [`Sampler`]; paged attention is
//! bit-identical to the contiguous path by construction; and stacking
//! rows into an `m = B` GEMM never changes a row's bits for a row-wise
//! backend — so every request's token stream is **bit-identical** to
//! its solo [`Transformer::generate`] run at every worker count,
//! policy, batch width, pool size, and eviction schedule. Prefix
//! sharing and decode batching silently disable themselves for
//! non-row-wise backends (dynamic whole-batch quantization), where
//! batch composition would legitimately perturb last bits.
//!
//! # Failure containment
//!
//! Serving is a *service*, so one request's failure is never the run's
//! failure. The combined graph executes in the fault-contained mode of
//! `llmnpu-sched` (`execute_lane_graph_isolated`): a panic or error in
//! one request's stage closure fails only that request's chain, a
//! dispatch gate skips tasks whose request was cancelled
//! ([`CancelToken`]) or is past its [`GenerationRequest::deadline_ms`],
//! and the Admit / Evicted / Release tasks are containment *barriers*
//! that run on every path — which is how the zero-leak page invariant
//! holds under failure, not just success. Every request ends in exactly
//! one [`RequestStatus`]; transient failures are retried with bounded
//! exponential backoff (a fresh round reusing the eviction-requeue
//! machinery — the retry re-streams from step 0 with the same seeded
//! sampler, so a surviving retry is still bit-identical to the solo
//! run). Deterministic fault injection for all of this lives in
//! [`crate::faults`].
//!
//! [`LaneGraph`]: llmnpu_sched::LaneGraph
//! [`Sampler`]: llmnpu_model::sample::Sampler
//! [`Transformer::generate`]: llmnpu_model::forward::Transformer::generate

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, PrefillDag, TaskRole};
use llmnpu_graph::layer::Stage;
use llmnpu_kv::{BlockPool, CachedPrefix, PoolConfig, PrefixCache, PrefixCacheMetrics};
use llmnpu_model::forward::{PagedDecodeEntry, Transformer};
use llmnpu_model::kv::PagedKvCache;
use llmnpu_model::sample::{Sampler, SamplerConfig};
use llmnpu_obs::metrics::LATENCY_BUCKETS_MS;
use llmnpu_obs::{EventKind, MetricsSnapshot, Observability, Plane, TraceSink, TraceSpan};
use llmnpu_sched::{
    execute_lane_graph_isolated_traced, GateFn, LaneGraph, LaneTask, PrefillProgram, TaskFn,
    TaskOutcome,
};
use llmnpu_soc::memory::MemoryModel;
use llmnpu_soc::{Millis, Processor};
use llmnpu_tensor::Tensor;

use crate::decode::DecodeSim;
use crate::engine::LlmNpuEngine;
use crate::faults::{FaultMode, FaultPlan, FaultSite};
use crate::{Error, Result};

/// Modeled duration of bookkeeping tasks (admission, cache assembly,
/// eviction, release — not GEMMs; only used for scheduling priority).
const FINISH_TASK_MS: f64 = 0.05;

/// Fixed buckets for ratio-valued histograms (prefix-cache hit ratio).
const RATIO_BUCKETS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Short span-class tag used by the trace exports.
fn kind_class(kind: &ServeTaskKind) -> &'static str {
    match kind {
        ServeTaskKind::Admit => "admit",
        ServeTaskKind::PrefillStage { .. } => "prefill",
        ServeTaskKind::PrefillFinish => "prefill-finish",
        ServeTaskKind::Evicted => "evict",
        ServeTaskKind::Decode { .. } | ServeTaskKind::DecodeBatch { .. } => "decode",
        ServeTaskKind::Release => "release",
    }
}

/// Slack for dispatch-time deadline comparisons (mirrors the executor's
/// release-time epsilon).
const DEADLINE_EPS: f64 = 1e-9;

/// Locks a serving-plane mutex, recovering from poisoning: every guarded
/// value here (generation state, KV-cache slots, terminal-status cells)
/// is plain per-request data whose chain is already poisoned at the task
/// level when its holder panics — recovery contains the failure to that
/// request instead of spreading it to every neighbor sharing the run.
fn plain_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A shared cancellation handle for one request's stream.
///
/// Cloning shares the flag: keep a clone (via
/// [`GenerationRequest::cancel_handle`]) and flip it from anywhere — an
/// `on_token` sink after enough tokens, a timeout thread, a caller-side
/// disconnect. The serving gate observes it at every dispatch decision:
/// the request's remaining tasks are skipped (never run), its pages are
/// released by the barrier Release task, and its outcome reports
/// [`RequestStatus::Cancelled`]. Cancelling after the stream already
/// finished is a no-op (the request stays `Completed`).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, takes effect at the next
    /// dispatch decision touching the request).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Terminal outcome of one served request — every request ends in
/// exactly one of these, and KV pages are released on *all* of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestStatus {
    /// The full stream was generated (bit-identical to the solo run).
    Completed,
    /// A task of the request panicked or errored and no retry budget was
    /// configured (`max_retries == 0`).
    Failed {
        /// The failing task's error (panic payloads are stringified).
        error: String,
    },
    /// The request's [`CancelToken`] fired before the stream finished.
    Cancelled,
    /// The request blew its [`GenerationRequest::deadline_ms`] (or its
    /// TTFT deadline before producing a first token).
    DeadlineExceeded,
    /// The request failed, was retried `max_retries` times with backoff,
    /// and every attempt failed.
    RetriesExhausted {
        /// The last attempt's error.
        error: String,
    },
}

impl RequestStatus {
    /// Whether the stream completed fully.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, RequestStatus::Completed)
    }

    /// The failure message, if this is a failing status.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        match self {
            RequestStatus::Failed { error } | RequestStatus::RetriesExhausted { error } => {
                Some(error)
            }
            _ => None,
        }
    }
}

/// One queued generation request.
#[derive(Debug, Clone)]
pub struct GenerationRequest {
    /// Prompt token ids (must be non-empty).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate (must be at least 1).
    pub max_new_tokens: usize,
    /// Sampling strategy and seed for this request's stream.
    pub sampler: SamplerConfig,
    /// Arrival time, ms from the start of the serving run. Tasks of this
    /// request are not dispatched earlier.
    pub arrival_ms: Millis,
    /// Completion deadline, ms *from the request's arrival* (re-armed on
    /// retry attempts). Once the modeled clock passes it, remaining tasks
    /// are skipped and the request reports
    /// [`RequestStatus::DeadlineExceeded`]. `None` = no deadline.
    pub deadline_ms: Option<Millis>,
    /// Time-to-first-token deadline, ms from arrival: enforced only
    /// until the first token is out (a request that already streamed a
    /// token cannot TTFT-expire). `None` = no TTFT deadline.
    pub ttft_deadline_ms: Option<Millis>,
    /// The request's cancellation flag (shared with every clone).
    pub cancel: CancelToken,
}

impl GenerationRequest {
    /// A greedy request arriving at time zero.
    #[must_use]
    pub fn new(prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        GenerationRequest {
            prompt,
            max_new_tokens,
            sampler: SamplerConfig::greedy(),
            arrival_ms: 0.0,
            deadline_ms: None,
            ttft_deadline_ms: None,
            cancel: CancelToken::new(),
        }
    }

    /// The deterministic synthetic request used by the serving demo and
    /// the `BENCH_kernels.json` serving section — one definition so the
    /// two workloads cannot drift apart: prompt token `k` is
    /// `(k·7 + index) % vocab`, sampled top-k(8) at temperature 0.9 with
    /// seed `42 + index`.
    #[must_use]
    pub fn synthetic(index: usize, prompt_len: usize, max_new_tokens: usize, vocab: usize) -> Self {
        let prompt: Vec<u32> = (0..prompt_len as u32)
            .map(|k| (k * 7 + index as u32) % vocab.max(1) as u32)
            .collect();
        GenerationRequest::new(prompt, max_new_tokens).with_sampler(SamplerConfig::top_k(
            8,
            0.9,
            42 + index as u64,
        ))
    }

    /// Sets the sampling configuration.
    #[must_use]
    pub fn with_sampler(mut self, sampler: SamplerConfig) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the arrival time (ms from run start).
    #[must_use]
    pub fn with_arrival_ms(mut self, arrival_ms: Millis) -> Self {
        self.arrival_ms = arrival_ms;
        self
    }

    /// Sets the completion deadline (ms from arrival).
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: Millis) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Sets the time-to-first-token deadline (ms from arrival).
    #[must_use]
    pub fn with_ttft_deadline_ms(mut self, ttft_deadline_ms: Millis) -> Self {
        self.ttft_deadline_ms = Some(ttft_deadline_ms);
        self
    }

    /// A handle that cancels this request when fired (usable from an
    /// `on_token` sink, another thread, or after `serve` was entered).
    #[must_use]
    pub fn cancel_handle(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Worst-case token footprint: prompt plus full decode budget.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.prompt.len() + self.max_new_tokens
    }
}

/// What to do when a request's page budget does not fit the free pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PressurePolicy {
    /// Queue behind the earliest active request until pages free.
    Wait,
    /// Preempt: evict the **youngest** active request (its pages free
    /// immediately, its work is discarded and recomputed after the
    /// preemptor admits). Re-admissions never evict in turn, so
    /// planning always terminates.
    #[default]
    EvictYoungest,
}

/// One token becoming available on a stream, delivered to
/// [`ServeOptions::on_token`] while the batch is still running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEvent {
    /// Request index (admission order).
    pub request: usize,
    /// Zero-based position in the request's stream.
    pub step: usize,
    /// The sampled token.
    pub token: u32,
}

/// A streaming token callback: invoked from decode tasks as they
/// complete, strictly in stream order *per request* (cross-request
/// interleaving follows the schedule). Must be cheap and non-blocking —
/// it runs on the execution lanes.
pub type TokenSink = Arc<dyn Fn(&TokenEvent) + Send + Sync>;

/// Serving-loop knobs.
#[derive(Clone)]
pub struct ServeOptions {
    /// Maximum number of requests in flight at once (continuous
    /// batching's concurrency cap, layered *on top of* the page-based
    /// admission): request `r` additionally waits for an active slot.
    pub max_active: usize,
    /// Token positions per KV page (the pool's block size).
    pub block_tokens: usize,
    /// Total pool pages. `None` sizes the pool to fit every request's
    /// worst case concurrently (no memory pressure — the compatibility
    /// default); `Some(n)` makes admission a real memory model and can
    /// trigger waiting or eviction.
    pub kv_pool_blocks: Option<usize>,
    /// What to do under memory pressure.
    pub pressure: PressurePolicy,
    /// Maximum decode cohort width B: same-position decode steps of up
    /// to B concurrently admitted requests run as one `m = B` batched
    /// GEMM per linear site. `1` keeps each request's steps separate
    /// GEMVs. Ignored (treated as 1) for non-row-wise backends.
    pub decode_batch: usize,
    /// Share common prompt prefixes: between concurrently active
    /// requests (allocate + prefill once, ref-count the pages — any
    /// prefix length, full pages ref-shared and the sub-page tail
    /// row-copied), and across time through the global prefix cache
    /// (completed prefills cache their full prompt pages; later
    /// requests reuse them with no donor declaration). Ignored for
    /// non-row-wise backends.
    pub share_prefixes: bool,
    /// Streaming token callback, if any.
    pub on_token: Option<TokenSink>,
    /// How many times a *failed* request (panic or task error) is
    /// requeued into a fresh round before giving up with
    /// [`RequestStatus::RetriesExhausted`]. Cancelled and
    /// deadline-expired requests never retry. Each retry re-streams from
    /// step 0 with the request's seeded sampler, so a surviving retry is
    /// still bit-identical to the solo run (the sink sees the stream
    /// restart).
    pub max_retries: usize,
    /// Base backoff before a retry round, ms: attempt `k`'s round admits
    /// the request at `retry_backoff_ms · 2^(k-1)` on the round's clock.
    pub retry_backoff_ms: Millis,
    /// Deterministic fault-injection script ([`crate::faults`]); `None`
    /// injects nothing.
    pub faults: Option<FaultPlan>,
    /// Observability stack ([`llmnpu_obs`]): the trace sink, metrics
    /// registry, and kernel-calibration table serving should report
    /// into, shared with the caller by `Arc`. `None` skips all
    /// instrumentation (the near-zero-cost default).
    pub obs: Option<Observability>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_active: 2,
            block_tokens: 16,
            kv_pool_blocks: None,
            pressure: PressurePolicy::default(),
            decode_batch: 1,
            share_prefixes: true,
            on_token: None,
            max_retries: 2,
            retry_backoff_ms: 4.0,
            faults: None,
            obs: None,
        }
    }
}

impl fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeOptions")
            .field("max_active", &self.max_active)
            .field("block_tokens", &self.block_tokens)
            .field("kv_pool_blocks", &self.kv_pool_blocks)
            .field("pressure", &self.pressure)
            .field("decode_batch", &self.decode_batch)
            .field("share_prefixes", &self.share_prefixes)
            .field("on_token", &self.on_token.as_ref().map(|_| "Fn"))
            .field("max_retries", &self.max_retries)
            .field("retry_backoff_ms", &self.retry_backoff_ms)
            .field("faults", &self.faults)
            .field("obs", &self.obs.as_ref().map(|_| "Observability"))
            .finish()
    }
}

/// What a serving-timeline span implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeTaskKind {
    /// Page reservation (and prefix fork) at admission.
    Admit,
    /// One stage task of the request's chunked-prefill DAG.
    PrefillStage {
        /// Chunk index within the request's (unshared) prompt suffix.
        chunk: usize,
        /// Decoder layer.
        layer: usize,
        /// Host stage.
        stage: Stage,
        /// Pipeline role (main / shadow / merge).
        role: TaskRole,
    },
    /// Last-hidden assembly after the request's prefill (KV already
    /// lives in the pool).
    PrefillFinish,
    /// Memory-pressure preemption: this incarnation's pages return to
    /// the pool and its prefill work is discarded (a later incarnation
    /// recomputes it).
    Evicted,
    /// One decode step of a single request (cohort width 1).
    Decode {
        /// Zero-based position in the request's generated stream.
        step: usize,
    },
    /// One **batched** decode step: `width` requests' same-position
    /// steps stacked into one `m = width` GEMM per linear site.
    DecodeBatch {
        /// Zero-based stream position for every member.
        step: usize,
        /// Cohort members still decoding at this step.
        width: usize,
    },
    /// Pages returned to the pool after the request's last token.
    Release,
}

impl ServeTaskKind {
    /// Whether this span belongs to the prefill phase.
    #[must_use]
    pub fn is_prefill(&self) -> bool {
        matches!(
            self,
            ServeTaskKind::PrefillStage { .. } | ServeTaskKind::PrefillFinish
        )
    }

    /// Whether this span is a decode step (batched or not).
    #[must_use]
    pub fn is_decode(&self) -> bool {
        matches!(
            self,
            ServeTaskKind::Decode { .. } | ServeTaskKind::DecodeBatch { .. }
        )
    }
}

/// One executed span of the batched run, with wall-clock timestamps
/// relative to run start (milliseconds).
#[derive(Debug, Clone)]
pub struct ServeSpan {
    /// Request index (admission order). For a batched decode span, the
    /// first cohort member.
    pub request: usize,
    /// Which incarnation of the request this span belongs to (0 unless
    /// the request was evicted and recomputed).
    pub attempt: usize,
    /// Task label, e.g. `"R1-C0-L2-Ffn"`, `"R1-D3"`, or `"C0-D2"`.
    pub label: String,
    /// What the span implements.
    pub kind: ServeTaskKind,
    /// Lane the task ran on.
    pub processor: Processor,
    /// Wall-clock start, ms from run start.
    pub start_ms: f64,
    /// Wall-clock end, ms from run start.
    pub end_ms: f64,
    /// The task's plan-time modeled duration (the latency model's
    /// figure, before any scheduling), ms.
    pub modeled_ms: f64,
}

/// The unified executed timeline of a batched serving run: every
/// request's admission, prefill stages, decode steps, evictions, and
/// releases on one clock.
#[derive(Debug, Clone, Default)]
pub struct ServeTimeline {
    spans: Vec<ServeSpan>,
}

impl ServeTimeline {
    /// All spans, in completion order.
    #[must_use]
    pub fn entries(&self) -> &[ServeSpan] {
        &self.spans
    }

    /// Wall-clock completion of the last task (ms from run start).
    #[must_use]
    pub fn makespan_ms(&self) -> f64 {
        self.spans.iter().map(|s| s.end_ms).fold(0.0, f64::max)
    }

    /// Total busy time of one lane.
    #[must_use]
    pub fn lane_busy_ms(&self, p: Processor) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.processor == p)
            .map(|s| s.end_ms - s.start_ms)
            .sum()
    }

    /// Spans of one request, in completion order.
    #[must_use]
    pub fn request_entries(&self, request: usize) -> Vec<&ServeSpan> {
        self.spans.iter().filter(|s| s.request == request).collect()
    }

    /// The continuous-batching witness: some decode step of one request
    /// ran *inside* another request's prefill window (between that
    /// request's first prefill dispatch and its last prefill
    /// completion). True wall-clock overlap implies it on multicore
    /// hosts; on a single core it still witnesses task-granular
    /// interleaving — decode work was dispatched before a neighbor's
    /// prefill had drained, which is impossible under one-request-at-a-
    /// time serving.
    #[must_use]
    pub fn decode_interleaved_with_prefill(&self) -> bool {
        let mut windows: std::collections::HashMap<usize, (f64, f64)> =
            std::collections::HashMap::new();
        for s in &self.spans {
            if s.kind.is_prefill() {
                let w = windows
                    .entry(s.request)
                    .or_insert((f64::INFINITY, f64::NEG_INFINITY));
                w.0 = w.0.min(s.start_ms);
                w.1 = w.1.max(s.end_ms);
            }
        }
        self.spans.iter().any(|d| {
            d.kind.is_decode()
                && windows
                    .iter()
                    .any(|(&r, &(lo, hi))| r != d.request && d.start_ms < hi && d.end_ms > lo)
        })
    }

    /// The preemption witness: `request` was evicted and later ran
    /// prefill work again under a higher attempt number.
    #[must_use]
    pub fn evicted_and_recomputed(&self, request: usize) -> bool {
        let evicted = self
            .spans
            .iter()
            .any(|s| s.request == request && s.kind == ServeTaskKind::Evicted);
        let recomputed = self.spans.iter().any(|s| {
            s.request == request
                && s.attempt > 0
                && matches!(s.kind, ServeTaskKind::PrefillStage { .. })
        });
        evicted && recomputed
    }
}

/// Per-request outcome of a serving run.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Request index (admission order).
    pub request: usize,
    /// The generated token stream. Complete only for
    /// [`RequestStatus::Completed`]; other statuses keep whatever prefix
    /// of the stream was emitted before the request terminated.
    pub tokens: Vec<u32>,
    /// Wall-clock completion time of each generated token (ms from run
    /// start, one entry per token — the "stream").
    pub token_times_ms: Vec<f64>,
    /// The request's arrival time.
    pub arrival_ms: f64,
    /// First dispatch of any of the request's tasks (any incarnation;
    /// the arrival time if nothing ever dispatched).
    pub first_dispatch_ms: f64,
    /// Completion of the request's (final) prefill — KV pages ready.
    /// `0.0` if the request terminated before finishing prefill.
    pub prefill_done_ms: f64,
    /// Completion of the request's last decode step (`0.0` if none ran).
    pub finish_ms: f64,
    /// Incarnations this request ran, counting both memory-pressure
    /// evictions and failure retries (1 = one clean pass).
    pub attempts: usize,
    /// How the request terminated.
    pub status: RequestStatus,
}

impl RequestOutcome {
    /// Time spent queued before the scheduler first touched the request.
    #[must_use]
    pub fn queue_wait_ms(&self) -> f64 {
        self.first_dispatch_ms - self.arrival_ms
    }

    /// Time-to-first-token: arrival until the first generated token.
    #[must_use]
    pub fn ttft_ms(&self) -> f64 {
        self.token_times_ms.first().map_or(0.0, |&t| t) - self.arrival_ms
    }

    /// Decode throughput over the request's own decode window.
    #[must_use]
    pub fn decode_tokens_per_s(&self) -> f64 {
        let window = self.finish_ms - self.prefill_done_ms;
        if window > 0.0 {
            self.tokens.len() as f64 / (window / 1e3)
        } else {
            0.0
        }
    }
}

/// Paged-KV accounting for one serving run.
#[derive(Debug, Clone, Copy)]
pub struct KvPoolReport {
    /// Token positions per page.
    pub block_tokens: usize,
    /// Total pool pages.
    pub pool_blocks: usize,
    /// Total pool bytes (all layers, K+V, f32).
    pub pool_bytes: u64,
    /// High-water mark of pages in use during the run.
    pub peak_used_blocks: usize,
    /// Pages still referenced after every request released — **must be
    /// zero**; pinned by the serving tests.
    pub leaked_blocks: usize,
    /// Memory-pressure evictions (preempted incarnations).
    pub evictions: usize,
    /// Pages that were *shared* instead of re-allocated thanks to
    /// live-donor prefix sharing (sum over admissions).
    pub shared_prefix_blocks: usize,
    /// Copy-on-write page copies the pool performed.
    pub cow_copies: u64,
    /// Global prefix-cache lookups that matched at least one token
    /// (this run's share of the session cache's counters).
    pub prefix_cache_hits: u64,
    /// Prefix-cache lookups that matched nothing.
    pub prefix_cache_misses: u64,
    /// Prompt tokens served from the prefix cache (full pages plus
    /// row-copied tails) instead of being re-prefilled.
    pub prefix_cache_hit_tokens: u64,
    /// Pool pages reused from the prefix cache instead of re-allocated.
    pub prefix_cache_hit_blocks: u64,
    /// Pages newly retained by prefix-cache inserts at prefill
    /// completion.
    pub prefix_cache_inserted_blocks: u64,
    /// Cached-prefix pages evicted by the planner under pool pressure.
    pub prefix_cache_evictions: u64,
    /// Pages still resident in the prefix cache when this report was
    /// taken (zero for transient [`LlmNpuEngine::serve`] runs, which
    /// flush; a live [`ServeSession`] keeps them for the next batch).
    pub prefix_cache_resident_blocks: usize,
}

/// Aggregate outcome of one batched serving run.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-request outcomes, in admission order.
    pub requests: Vec<RequestOutcome>,
    /// The unified executed timeline.
    pub timeline: ServeTimeline,
    /// Paged-KV pool accounting.
    pub kv: KvPoolReport,
    /// Static-verification proof sizes, one entry per retry round: every
    /// round's spliced plan was proven clean by `llmnpu-verify` before a
    /// single task ran (a finding aborts the run with
    /// [`Error::PlanRejected`] instead).
    pub verification: Vec<llmnpu_verify::PlanStats>,
    /// Queue depth over time: `(time_ms, depth)` step points, where
    /// depth counts requests that have arrived but not yet reached a
    /// terminal status. Derived from the outcomes and the timeline, so
    /// it is exactly reproducible run to run.
    pub queue_depth: Vec<(f64, usize)>,
    /// Snapshot of the attached metrics registry taken as the report
    /// was assembled (empty when [`ServeOptions::obs`] was `None`).
    /// With a session registry this is cumulative across batches — the
    /// single source report renderers should read counters from.
    pub metrics: MetricsSnapshot,
}

impl ServeReport {
    /// Wall-clock makespan of the whole batch.
    #[must_use]
    pub fn makespan_ms(&self) -> f64 {
        self.timeline.makespan_ms()
    }

    /// Total generated tokens across all requests.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.tokens.len()).sum()
    }

    /// Aggregate generation throughput (all requests' tokens over the
    /// batch makespan).
    #[must_use]
    pub fn tokens_per_s(&self) -> f64 {
        let ms = self.makespan_ms();
        if ms > 0.0 {
            self.total_tokens() as f64 / (ms / 1e3)
        } else {
            0.0
        }
    }

    /// Mean time-to-first-token across requests.
    #[must_use]
    pub fn mean_ttft_ms(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(RequestOutcome::ttft_ms)
            .sum::<f64>()
            / self.requests.len() as f64
    }

    /// Mean queue wait across requests.
    #[must_use]
    pub fn mean_queue_wait_ms(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(RequestOutcome::queue_wait_ms)
            .sum::<f64>()
            / self.requests.len() as f64
    }

    /// Maximum simultaneous in-flight requests over the run (the peak
    /// of [`ServeReport::queue_depth`]).
    #[must_use]
    pub fn peak_queue_depth(&self) -> usize {
        self.queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }
}

/// The queue-depth-over-time series for a set of resolved requests: +1
/// at each arrival, −1 when the request reaches its terminal (its last
/// executed span, or its finish time if later; its arrival if nothing
/// ever ran). Simultaneous events coalesce into one step point, with
/// departures applied before arrivals at equal timestamps.
fn queue_depth_series(outcomes: &[RequestOutcome], timeline: &ServeTimeline) -> Vec<(f64, usize)> {
    let mut last_span: HashMap<usize, f64> = HashMap::new();
    for s in timeline.entries() {
        let e = last_span.entry(s.request).or_insert(f64::NEG_INFINITY);
        *e = e.max(s.end_ms);
    }
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        let done = last_span
            .get(&o.request)
            .copied()
            .unwrap_or(f64::NEG_INFINITY)
            .max(o.finish_ms)
            .max(o.arrival_ms);
        events.push((o.arrival_ms, 1));
        events.push((done, -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut series: Vec<(f64, usize)> = Vec::new();
    let mut depth: i64 = 0;
    for (t, delta) in events {
        depth += delta;
        let d = depth.max(0) as usize;
        match series.last_mut() {
            Some(last) if last.0 == t => last.1 = d,
            _ => series.push((t, d)),
        }
    }
    series
}

/// A persistent serving context: one paged KV pool plus one global
/// radix prefix cache, shared by every batch served through
/// [`LlmNpuEngine::serve_with_session`]. Prompt prefixes prefilled by an
/// earlier batch stay resident (ref-held by the cache) and are adopted
/// by later requests with matching prompts — no donor in the same
/// batch, no submit-time declaration. Dropping the session drops the
/// pool slab; call [`ServeSession::flush`] first to assert emptiness.
#[derive(Debug)]
pub struct ServeSession {
    pool: Arc<BlockPool>,
    cache: PrefixCache,
    obs: Option<Observability>,
}

impl ServeSession {
    /// Pages currently held by the global prefix cache.
    #[must_use]
    pub fn cached_blocks(&self) -> usize {
        self.cache.held_blocks()
    }

    /// The observability stack attached when the session was opened
    /// ([`ServeOptions::obs`]), if any.
    #[must_use]
    pub fn observability(&self) -> Option<&Observability> {
        self.obs.as_ref()
    }

    /// Point-in-time snapshot of the session's metrics registry,
    /// cumulative over every batch served so far (empty when no
    /// observability is attached).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs
            .as_ref()
            .map(|o| o.registry.snapshot())
            .unwrap_or_default()
    }

    /// Cumulative prefix-cache counters over the session's lifetime.
    #[must_use]
    pub fn cache_metrics(&self) -> PrefixCacheMetrics {
        self.cache.metrics()
    }

    /// The session pool's page statistics (size, usage, watermarks).
    #[must_use]
    pub fn pool_stats(&self) -> llmnpu_kv::PoolStats {
        self.pool.stats()
    }

    /// Drops every cached prefix and returns its pages to the pool,
    /// then proves the pool is completely empty — the session-wide
    /// zero-leak check.
    ///
    /// # Errors
    ///
    /// Returns an error if releasing cached pages fails or if pages
    /// remain in use after the flush (a leak).
    pub fn flush(&self) -> Result<usize> {
        let freed = self.cache.flush(&self.pool).map_err(kv_err)?;
        let used = self.pool.used_blocks();
        if used != 0 {
            return Err(Error::InvalidConfig {
                what: format!("{used} KV pages leaked after session flush"),
            });
        }
        Ok(freed)
    }
}

// ---------------------------------------------------------------------------
// The deterministic admission planner
// ---------------------------------------------------------------------------

/// How an admission gate anchors to an earlier segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateKind {
    /// Wait for the segment to be fully done (its pages released):
    /// anchored at its Release task — or its Evicted task, which *is*
    /// the terminal of a preempted incarnation.
    Done,
    /// Wait for the segment's prefill to finish (its KV prefix is fully
    /// written — what a prefix sharer needs).
    PrefillDone,
}

/// A shared prompt prefix chosen by the planner (live donor).
#[derive(Debug, Clone, Copy)]
struct SharedPrefix {
    /// Segment whose table donates the blocks.
    donor_seg: usize,
    /// Shared tokens — any length: the full pages below it are
    /// ref-shared from the donor, the sub-page remainder is recovered
    /// by a leading-row copy at admission.
    tokens: usize,
}

/// One planned incarnation of a request.
#[derive(Debug)]
struct SegmentPlan {
    req: usize,
    attempt: usize,
    /// Preempted: ends in an Evicted task after prefill; no decode.
    evicted: bool,
    /// Admission gates on earlier segments.
    gates: Vec<(usize, GateKind)>,
    /// Live-donor prefix share (mutually exclusive with `cached`).
    shared: Option<SharedPrefix>,
    /// Global prefix-cache hit reused at admission: the cached full
    /// pages are retained into the request's table, the partial tail
    /// (if any) row-copied. No donor gate — the producer may be long
    /// gone.
    cached: Option<CachedPrefix>,
    /// Decode cohort id (`usize::MAX` for evicted segments).
    cohort: usize,
    /// Segments that fork this segment's blocks: their Admit must
    /// precede this segment's Release.
    sharer_segs: Vec<usize>,
    /// Full prompt pages this segment's prefill leaves resident in the
    /// global prefix cache past its release — the planner's *final*
    /// figure after pressure reclaims (zero for evicted incarnations or
    /// pages a later admission already took back).
    retained: usize,
}

impl SegmentPlan {
    /// Prompt tokens covered by any prefix reuse (donor or cache),
    /// including a row-copied partial tail — where this segment's own
    /// prefill starts.
    fn prefix_tokens(&self) -> usize {
        match (&self.shared, &self.cached) {
            (Some(sh), _) => sh.tokens,
            (None, Some(hit)) => hit.matched_tokens(),
            (None, None) => 0,
        }
    }

    /// Prefix tokens covered by *whole* reused pages (the part that
    /// costs no fresh blocks; the tail rows live in a fresh page).
    fn prefix_full_tokens(&self, block_tokens: usize) -> usize {
        match (&self.shared, &self.cached) {
            (Some(sh), _) => sh.tokens - sh.tokens % block_tokens,
            (None, Some(hit)) => hit.tokens,
            (None, None) => 0,
        }
    }
}

/// Plan-time page bookkeeping: groups of physically co-released blocks.
#[derive(Debug)]
struct PlanGroup {
    blocks: usize,
    holders: usize,
    /// Blocks of this group that stay resident past its release —
    /// the full prompt pages the owning segment's prefill-finish task
    /// inserts into the global prefix cache. Zeroed if the owner is
    /// evicted (a preempted incarnation never reaches its insert).
    retained: usize,
}

struct Planner<'r> {
    requests: &'r [GenerationRequest],
    pool_cfg: PoolConfig,
    /// The live pool: cached-prefix evictions under planning pressure
    /// release pages physically, before any task executes.
    pool: &'r BlockPool,
    /// The session's global prefix cache. Lookups happen lazily inside
    /// [`Planner::admit`], in admission order, so claim stamps accrue
    /// exactly as the plan consumes hits and unclaimed entries stay
    /// evictable for later admissions.
    cache: &'r PrefixCache,
    max_active: usize,
    pressure: PressurePolicy,
    share: bool,
    /// Original request ids of the round's members (event attribution).
    orig_ids: &'r [usize],
    /// Plan-plane event sink, when observability is attached.
    sink: Option<&'r TraceSink>,
    segments: Vec<SegmentPlan>,
    groups: Vec<PlanGroup>,
    /// Groups each segment holds (its own + every group its shared
    /// donor held, transitively) — conservative co-release tracking.
    held: Vec<Vec<usize>>,
    /// Active segments in admission order.
    active: Vec<usize>,
    /// Latest planned segment of each request — a re-admission must
    /// gate on its evicted predecessor (they share the runtime cache
    /// slot, so the old incarnation's release must precede the new
    /// reservation).
    last_seg_of_req: Vec<Option<usize>>,
    free: usize,
}

fn common_prefix_len(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl<'r> Planner<'r> {
    /// The longest usable shared prefix between request `req` and any
    /// active segment: fully inside the donor's *prompt* (only
    /// prefilled pages are shareable), leaving the sharer at least one
    /// suffix token to prefill, and spanning at least one whole page
    /// (a sub-page overlap is not worth a PrefillDone gate on the
    /// donor). No block or chunk alignment beyond that — full pages
    /// are ref-shared, the remainder rows are copied.
    fn best_share(&self, req: usize) -> Option<SharedPrefix> {
        if !self.share {
            return None;
        }
        let prompt = &self.requests[req].prompt;
        let mut best: Option<SharedPrefix> = None;
        for &seg in &self.active {
            let donor_req = self.segments[seg].req;
            let lcp = common_prefix_len(prompt, &self.requests[donor_req].prompt);
            let cap = lcp.min(prompt.len() - 1);
            if cap < self.pool_cfg.block_tokens {
                continue;
            }
            if best.is_none_or(|b| cap > b.tokens) {
                best = Some(SharedPrefix {
                    donor_seg: seg,
                    tokens: cap,
                });
            }
        }
        best
    }

    /// Fresh blocks a segment needs beyond whole reused prefix pages.
    fn fresh_blocks(&self, req: usize, prefix_full_tokens: usize) -> usize {
        self.pool_cfg
            .blocks_for(self.requests[req].total_tokens() - prefix_full_tokens)
    }

    /// Full prompt pages request `req` retains in the prefix cache at
    /// prefill completion, beyond pages already reused from a prefix
    /// (those were cached or donor-held before — re-inserting them adds
    /// no residency). Conservative under insert collisions: first-wins
    /// means a colliding insert retains nothing, so the plan may
    /// over-charge (never under-charge) residency.
    fn retained_blocks(&self, req: usize, prefix_full_tokens: usize) -> usize {
        if !self.share {
            return 0;
        }
        let bt = self.pool_cfg.block_tokens;
        self.requests[req].prompt.len() / bt - prefix_full_tokens / bt
    }

    /// Releases an active segment's planned pages (group holders
    /// decrement; fully released groups return to `free`, minus what
    /// the group's owner retains in the prefix cache).
    fn release_plan(&mut self, seg: usize) {
        let held = std::mem::take(&mut self.held[seg]);
        for g in held {
            self.groups[g].holders -= 1;
            if self.groups[g].holders == 0 {
                self.free += self.groups[g].blocks - self.groups[g].retained;
            }
        }
    }

    /// Emits a Plan-plane pressure-ladder event for request `req`.
    /// Planning is single-threaded, so these events are recorded in a
    /// deterministic order and belong to the canonical modeled export.
    fn trace_pressure(&self, req: usize, f: impl FnOnce() -> String) {
        if let Some(sink) = self.sink {
            sink.event(
                Plane::Plan,
                EventKind::Pressure,
                Some(self.orig_ids[req]),
                f,
            );
        }
    }

    /// Plans the admission of one incarnation, returning its segment id.
    fn admit(
        &mut self,
        req: usize,
        attempt: usize,
        pending: &mut VecDeque<(usize, usize)>,
    ) -> Result<usize> {
        let mut shared = self.best_share(req);
        // Global prefix-cache probe, capped so at least one suffix
        // token remains to prefill. The lookup stamps the matched nodes
        // with the current round — an eviction claim that keeps the hit
        // resident until this admission physically retains it. A live
        // donor wins only when it covers strictly more tokens (a cache
        // hit costs no gate and holds no donor pages).
        let mut probe: Option<CachedPrefix> = None;
        let prompt = &self.requests[req].prompt;
        if self.share && prompt.len() > 1 {
            let hit = self.cache.lookup(&prompt[..prompt.len() - 1]);
            if hit.matched_tokens() > 0 {
                probe = Some(hit);
            }
        }
        let mut cached: Option<CachedPrefix> = None;
        if let Some(hit) = &probe {
            if shared.is_none_or(|sh| sh.tokens <= hit.matched_tokens()) {
                shared = None;
                cached = probe.clone();
            }
        }
        let mut gates: Vec<(usize, GateKind)> = Vec::new();
        if let Some(prev) = self.last_seg_of_req[req] {
            gates.push((prev, GateKind::Done));
        }
        loop {
            // A donor forgotten under pressure hands back to the cache
            // hit (still claim-protected this round).
            if shared.is_none() && cached.is_none() {
                cached = probe.clone();
            }
            let prefix_full = match (&shared, &cached) {
                (Some(sh), _) => sh.tokens - sh.tokens % self.pool_cfg.block_tokens,
                (None, Some(hit)) => hit.tokens,
                (None, None) => 0,
            };
            let need = self.fresh_blocks(req, prefix_full);
            if self.active.len() < self.max_active && need <= self.free {
                break;
            }
            if self.active.len() >= self.max_active {
                // Concurrency cap: wait for the earliest active request
                // (continuous batching's "a slot frees, the next joins").
                let seg = self.active.remove(0);
                self.release_plan(seg);
                self.forget_donor(&mut shared, seg);
                gates.push((seg, GateKind::Done));
                continue;
            }
            // Memory pressure, stage 1: evict cold cached prefixes —
            // they are reuse opportunities, not admitted work, so they
            // always go before a live request is preempted. The pages
            // free physically right now (planning precedes execution),
            // so the round's budget proof sees them. Claimed (this
            // round) and mid-reuse entries are refused, so a hit relied
            // on above cannot be pulled out from under its admission.
            if need > self.free {
                let evicted = self
                    .cache
                    .evict_lru(self.pool, need - self.free)
                    .map_err(kv_err)?;
                if evicted > 0 {
                    self.trace_pressure(req, || {
                        format!("stage 1: {evicted} cached page(s) evicted")
                    });
                    self.free += evicted;
                    continue;
                }
            }
            // Memory pressure, stage 2: take back full prompt pages that
            // earlier admissions of *this* round plan to leave in the
            // cache, where the owning group is already fully released.
            // The runtime admission valve re-evicts them from the cache
            // once the owner's release has actually run (the Done gate
            // below orders that), so the budget may count them free.
            if need > self.free {
                let mut reclaimed = 0usize;
                for g in 0..self.groups.len() {
                    if self.free + reclaimed >= need {
                        break;
                    }
                    if self.groups[g].holders == 0 && self.groups[g].retained > 0 {
                        reclaimed += self.groups[g].retained;
                        self.groups[g].retained = 0;
                        gates.push((g, GateKind::Done));
                    }
                }
                if reclaimed > 0 {
                    self.trace_pressure(req, || {
                        format!("stage 2: {reclaimed} retained page(s) reclaimed")
                    });
                    self.free += reclaimed;
                    continue;
                }
            }
            // Memory pressure, stage 3: preempt live work.
            if self.pressure == PressurePolicy::EvictYoungest && attempt == 0 {
                // Youngest active that nobody shares pages from (a
                // donor's pages must outlive its sharers' admissions).
                let victim = (0..self.active.len()).rev().find(|&i| {
                    let seg = self.active[i];
                    self.segments[seg].sharer_segs.is_empty()
                        && shared.is_none_or(|s| s.donor_seg != seg)
                });
                if let Some(i) = victim {
                    let seg = self.active.remove(i);
                    self.segments[seg].evicted = true;
                    self.segments[seg].cohort = usize::MAX;
                    // A preempted incarnation never reaches its
                    // prefill-finish insert: nothing stays resident.
                    let own = self.held[seg].first().copied();
                    if let Some(g) = own {
                        self.groups[g].retained = 0;
                    }
                    self.release_plan(seg);
                    gates.push((seg, GateKind::Done));
                    let (vr, va) = (self.segments[seg].req, self.segments[seg].attempt);
                    self.trace_pressure(req, || {
                        format!("stage 3: R{} attempt {va} preempted", self.orig_ids[vr])
                    });
                    pending.push_front((vr, va + 1));
                    continue;
                }
            }
            // Wait for the earliest active request's pages.
            if self.active.is_empty() {
                return Err(Error::InvalidConfig {
                    what: format!(
                        "request {req} needs {need} KV pages but the pool has only {} total",
                        self.pool_cfg.blocks
                    ),
                });
            }
            let seg = self.active.remove(0);
            self.release_plan(seg);
            self.forget_donor(&mut shared, seg);
            gates.push((seg, GateKind::Done));
        }

        let seg = self.segments.len();
        let prefix_full = match (&shared, &cached) {
            (Some(sh), _) => sh.tokens - sh.tokens % self.pool_cfg.block_tokens,
            (None, Some(hit)) => hit.tokens,
            (None, None) => 0,
        };
        let fresh = self.fresh_blocks(req, prefix_full);
        let own_group = self.groups.len();
        self.groups.push(PlanGroup {
            blocks: fresh,
            holders: 1,
            retained: self.retained_blocks(req, prefix_full),
        });
        self.free -= fresh;
        let mut held = vec![own_group];
        if let Some(s) = shared {
            // Hold everything the donor holds: those pages cannot be
            // counted free until this segment also releases.
            let donor_held = self.held[s.donor_seg].clone();
            for g in donor_held {
                self.groups[g].holders += 1;
                held.push(g);
            }
            gates.push((s.donor_seg, GateKind::PrefillDone));
            self.segments[s.donor_seg].sharer_segs.push(seg);
        }
        self.held.push(held);
        gates.sort_by_key(|&(g, k)| (g, k == GateKind::PrefillDone));
        gates.dedup();
        self.segments.push(SegmentPlan {
            req,
            attempt,
            evicted: false,
            gates,
            shared,
            cached,
            cohort: usize::MAX,
            sharer_segs: Vec::new(),
            retained: 0, // finalized from the group table after planning
        });
        self.last_seg_of_req[req] = Some(seg);
        self.active.push(seg);
        if let Some(sink) = self.sink {
            let gates = self.segments[seg].gates.len();
            sink.event(
                Plane::Plan,
                EventKind::Admission,
                Some(self.orig_ids[req]),
                || format!("attempt {attempt}: {fresh} fresh page(s), {gates} gate(s)"),
            );
        }
        Ok(seg)
    }

    /// Drops a pending share whose donor just left the active set
    /// (its pages are no longer guaranteed resident at our admission).
    fn forget_donor(&self, shared: &mut Option<SharedPrefix>, seg: usize) {
        if shared.is_some_and(|s| s.donor_seg == seg) {
            *shared = None;
        }
    }
}

/// Plans every admission, eviction, and decode cohort for a batch.
/// Lookups against (and pressure evictions from) the global prefix
/// cache happen here, at plan time — `pool` must be the live pool so
/// evicted cached pages free physically before any task executes.
#[allow(clippy::too_many_arguments)] // internal plumbing of `serve`
fn plan_batch(
    requests: &[GenerationRequest],
    pool: &BlockPool,
    cache: &PrefixCache,
    max_active: usize,
    pressure: PressurePolicy,
    share: bool,
    decode_batch: usize,
    orig_ids: &[usize],
    sink: Option<&TraceSink>,
) -> Result<(Vec<SegmentPlan>, usize, usize)> {
    let pool_cfg = pool.config().clone();
    let mut planner = Planner {
        requests,
        free: pool.free_blocks(),
        pool_cfg,
        pool,
        cache,
        max_active,
        pressure,
        share,
        orig_ids,
        sink,
        segments: Vec::new(),
        groups: Vec::new(),
        held: Vec::new(),
        active: Vec::new(),
        last_seg_of_req: vec![None; requests.len()],
    };
    let mut pending: VecDeque<(usize, usize)> = (0..requests.len()).map(|r| (r, 0)).collect();
    while let Some((req, attempt)) = pending.pop_front() {
        planner.admit(req, attempt, &mut pending)?;
    }

    // Decode cohorts: consecutive surviving segments batch together
    // until the width cap, or until a segment *fully waits* on a cohort
    // member (a Done gate inside the cohort would deadlock the step
    // barrier; PrefillDone gates — prefix sharing — are fine).
    let mut cohorts = 0usize;
    let mut current: Vec<usize> = Vec::new();
    let n = planner.segments.len();
    for seg in 0..n {
        if planner.segments[seg].evicted {
            continue;
        }
        let waits_on_member = planner.segments[seg]
            .gates
            .iter()
            .any(|&(g, k)| k == GateKind::Done && current.contains(&g));
        if !current.is_empty() && (current.len() >= decode_batch || waits_on_member) {
            cohorts += 1;
            current.clear();
        }
        planner.segments[seg].cohort = cohorts;
        current.push(seg);
    }
    if !current.is_empty() {
        cohorts += 1;
    }
    // Finalize per-segment cache residency from the group table (one
    // group per segment, same index): pressure stages may have zeroed a
    // group's retained count after its segment was pushed.
    for s in 0..planner.groups.len() {
        planner.segments[s].retained = planner.groups[s].retained;
    }

    let shared_blocks: usize = planner
        .segments
        .iter()
        .map(|s| {
            s.shared
                .map_or(0, |sh| sh.tokens / pool.config().block_tokens)
        })
        .sum();
    Ok((planner.segments, cohorts, shared_blocks))
}

// ---------------------------------------------------------------------------
// Runtime state and graph building
// ---------------------------------------------------------------------------

/// Mutable per-request generation state, touched only by the request's
/// own (serially chained) tasks — plus the cohort decode tasks, which
/// lock every member in a fixed order.
struct ReqState {
    sampler: Sampler,
    last_hidden: Option<Tensor<f32>>,
    tokens: Vec<u32>,
}

/// Build-time record of one segment's task ids.
struct SegBuild {
    admit: usize,
    prefill_finish: usize,
    /// Final decode task of the segment (set when its cohort's decode
    /// chain is flushed; `None` for evicted segments).
    last_decode: Option<usize>,
    release: Option<usize>,
}

/// Live, per-round, per-member fault-containment state: the terminal
/// status cell (first writer wins), the emitted-token counter (TTFT
/// deadline gating), and the request's shared cancel flag.
struct ReqRuntime {
    term: Mutex<Option<RequestStatus>>,
    tokens_out: AtomicUsize,
    cancel: CancelToken,
}

/// Per-graph-task metadata for one round: the owning member (first
/// cohort member for batched decode), the *global* attempt number the
/// task belongs to, the span kind, and every member the task touches
/// (drives the dispatch gate and failure attribution).
struct TaskMeta {
    member: usize,
    attempt: usize,
    kind: ServeTaskKind,
    members: Vec<usize>,
}

/// One cohort member's identity inside a (possibly batched) decode task.
struct DecodeMember {
    /// Round-member index.
    member: usize,
    /// Prompt length (decode position offset).
    prompt_len: usize,
    /// Original request id (sink events, fault keying).
    orig: usize,
    /// Global attempt, 1-based (fault keying).
    attempt: usize,
}

/// One member's result for one retry round (round-local clock).
struct MemberRound {
    status: RequestStatus,
    tokens: Vec<u32>,
    token_times_ms: Vec<f64>,
    first_dispatch_ms: f64,
    prefill_done_ms: f64,
    finish_ms: f64,
    incarnations: usize,
}

/// One retry round's result: per-member outcomes plus the round's spans
/// (already carrying original request ids and global attempt numbers,
/// still on the round-local clock).
struct RoundOutput {
    members: Vec<MemberRound>,
    spans: Vec<ServeSpan>,
    makespan_ms: f64,
    evictions: usize,
    shared_blocks: usize,
    /// The static verifier's (clean) report for the round's spliced
    /// graph — findings would have aborted the round instead.
    verified: llmnpu_verify::Report,
}

/// Whether a round executes its graph or stops after static
/// verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundMode {
    /// Verify, then execute (the serving path).
    Execute,
    /// Build and verify the spliced plan, then return without running a
    /// single task (the [`LlmNpuEngine::verify_serve`] path).
    DryRun,
}

/// One retry round's members: arrival-adjusted request clones plus the
/// mapping back to original ids and already-consumed attempt counts.
struct RoundInput {
    requests: Vec<GenerationRequest>,
    orig_ids: Vec<usize>,
    attempt_base: Vec<usize>,
}

/// Wraps a single-member task closure so that any failure — error return
/// or panic — records the member's terminal status *before* the
/// executor sees it. The recorded status is what lets the dispatch gate
/// stop feeding a failed request's downstream chain and what the
/// per-member liveness filter inside batched decode keys on. Panics are
/// re-raised so the executor's unwind containment (the actual isolation
/// boundary) is exercised, not bypassed.
fn contain<'run>(rt: &'run ReqRuntime, f: TaskFn<'run>) -> TaskFn<'run> {
    Box::new(move || {
        let record = |error: String| {
            let mut term = plain_lock(&rt.term);
            if term.is_none() {
                *term = Some(RequestStatus::Failed { error });
            }
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => {
                record(e.clone());
                Err(e)
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "task panicked".to_string());
                record(msg);
                std::panic::resume_unwind(payload)
            }
        }
    })
}

impl LlmNpuEngine {
    /// Serves a queue of generation requests with continuous batching on
    /// this engine's pool: per-request chunked-prefill DAGs and decode
    /// chains interleave on the per-processor lanes under the engine's
    /// scheduling policy, honoring arrival times, the admission cap,
    /// and — new with the paged KV subsystem — the page budget of a
    /// shared [`BlockPool`], with prefix sharing, optional preemption
    /// under memory pressure, and batched decode GEMMs.
    ///
    /// `t` is the numeric transformer the requests run on (its
    /// configuration drives the per-request DAGs, exactly as in
    /// [`LlmNpuEngine::prefill_executed`]). Returns per-request token
    /// streams — bit-identical to solo [`Transformer::generate`] runs
    /// with `chunk_len = self.config().chunk_len` — plus serving
    /// metrics, the unified timeline, and the pool accounting.
    ///
    /// Serving is **fault-contained** (see the module docs): a panic or
    /// error in one request's chain, a fired [`CancelToken`], or a blown
    /// deadline terminates *that request only* — every other stream
    /// completes bit-identical to its solo run. Failed requests are
    /// retried up to [`ServeOptions::max_retries`] times in follow-up
    /// rounds with exponential backoff; every request ends in exactly
    /// one [`RequestStatus`] in its [`RequestOutcome::status`], and the
    /// pool is page-leak-free afterwards no matter which paths failed.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty/invalid request (empty prompt, zero
    /// `max_new_tokens`, bad sampler config, non-finite or negative
    /// arrival or deadline), invalid options (zero caps or page sizes, a
    /// pool too small for some request, a pool exceeding the SoC's
    /// NPU-window budget), or a *structural* execution failure (lane
    /// setup, graph wiring, page leaks). Per-request failures do **not**
    /// surface here — they are reported per request.
    pub fn serve(
        &self,
        t: &Transformer<'_>,
        requests: &[GenerationRequest],
        opts: &ServeOptions,
    ) -> Result<ServeReport> {
        validate_inputs(requests, opts)?;
        let faults = opts.faults.clone().unwrap_or_default();
        let pool_cfg = serve_pool_config(t, requests, opts, &faults)?;
        let pool = Arc::new(BlockPool::new(pool_cfg).map_err(kv_err)?);
        // The pool is one slab in the SoC's NPU-addressable space: the
        // window (and DRAM budget) bound how much KV a device can serve.
        let mut mem = MemoryModel::new(&self.config().soc);
        mem.alloc(Processor::Npu, "paged-kv-pool", pool.bytes())?;
        // Transient run: a fresh cache, flushed (and leak-proven empty)
        // before returning.
        let cache = PrefixCache::new(opts.block_tokens);
        let report =
            self.serve_rounds(t, requests, opts, &pool, &cache, true, opts.obs.as_ref())?;
        mem.free(Processor::Npu, "paged-kv-pool");
        Ok(report)
    }

    /// Opens a persistent serving session: one paged pool plus one
    /// global prefix cache that batches served through
    /// [`LlmNpuEngine::serve_with_session`] share. The pool holds
    /// [`ServeOptions::kv_pool_blocks`] pages (required — a
    /// long-running session cannot autosize to a batch it has not seen
    /// yet) and is checked against the SoC's NPU-window budget.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid options, a missing page budget, or
    /// a pool exceeding the NPU-addressable space.
    pub fn open_serve_session(
        &self,
        t: &Transformer<'_>,
        opts: &ServeOptions,
    ) -> Result<ServeSession> {
        validate_inputs(&[], opts)?;
        let Some(blocks) = opts.kv_pool_blocks else {
            return Err(Error::InvalidConfig {
                what: "a serve session needs an explicit kv_pool_blocks page budget".to_owned(),
            });
        };
        let pool_cfg = PoolConfig {
            layers: t.config().layers,
            kv_dim: t.config().kv_dim(),
            block_tokens: opts.block_tokens,
            blocks,
        };
        let pool = Arc::new(BlockPool::new(pool_cfg).map_err(kv_err)?);
        // Model the allocation so an oversized pool is rejected at open
        // time, exactly as the transient path would reject it.
        let mut mem = MemoryModel::new(&self.config().soc);
        mem.alloc(Processor::Npu, "paged-kv-pool", pool.bytes())?;
        mem.free(Processor::Npu, "paged-kv-pool");
        let cache = PrefixCache::new(opts.block_tokens);
        let obs = opts.obs.clone();
        if let Some(o) = &obs {
            pool.install_trace(Arc::clone(&o.sink));
            cache.install_trace(Arc::clone(&o.sink));
            self.pool().install_metrics(&o.registry);
        }
        Ok(ServeSession { pool, cache, obs })
    }

    /// Serves one batch on a persistent [`ServeSession`]: exactly
    /// [`LlmNpuEngine::serve`], except the pool and the global prefix
    /// cache outlive the call — prompt prefixes prefilled by *earlier
    /// batches* are reused from cache (no donor declaration, no shared
    /// round), and the pages this batch's prefills cache stay resident
    /// for later ones. The zero-leak proof nets out cache residents:
    /// used pages beyond the cache's holdings must be zero on return.
    ///
    /// # Errors
    ///
    /// As [`LlmNpuEngine::serve`], plus a mismatch between the session
    /// pool and this call (`block_tokens`, model geometry, or a request
    /// that cannot fit the session pool even alone).
    pub fn serve_with_session(
        &self,
        t: &Transformer<'_>,
        requests: &[GenerationRequest],
        opts: &ServeOptions,
        session: &ServeSession,
    ) -> Result<ServeReport> {
        validate_inputs(requests, opts)?;
        let cfg = session.pool.config();
        if cfg.block_tokens != opts.block_tokens {
            return Err(Error::InvalidConfig {
                what: format!(
                    "session pool uses {}-token pages, options ask for {}",
                    cfg.block_tokens, opts.block_tokens
                ),
            });
        }
        if cfg.layers != t.config().layers || cfg.kv_dim != t.config().kv_dim() {
            return Err(Error::InvalidConfig {
                what: "session pool geometry does not match the model".to_owned(),
            });
        }
        for (r, req) in requests.iter().enumerate() {
            let need = cfg.blocks_for(req.total_tokens());
            if need > cfg.blocks {
                return Err(Error::InvalidConfig {
                    what: format!(
                        "request {r} needs {need} KV pages, session pool holds {}",
                        cfg.blocks
                    ),
                });
            }
        }
        self.serve_rounds(
            t,
            requests,
            opts,
            &session.pool,
            &session.cache,
            false,
            opts.obs.as_ref().or(session.obs.as_ref()),
        )
    }

    /// The shared serving loop behind [`LlmNpuEngine::serve`] and
    /// [`LlmNpuEngine::serve_with_session`]: retry rounds over one pool
    /// and one prefix cache. `transient` flushes the cache before the
    /// leak proof (the one-shot contract); a session run instead proves
    /// that nothing beyond the cache's residents stayed allocated.
    #[allow(clippy::too_many_arguments)] // internal plumbing of `serve`
    fn serve_rounds(
        &self,
        t: &Transformer<'_>,
        requests: &[GenerationRequest],
        opts: &ServeOptions,
        pool: &Arc<BlockPool>,
        cache: &PrefixCache,
        transient: bool,
        obs: Option<&Observability>,
    ) -> Result<ServeReport> {
        let row_wise = t.backend_row_wise();
        let share = opts.share_prefixes && row_wise;
        let decode_batch = if row_wise { opts.decode_batch } else { 1 };
        let faults = opts.faults.clone().unwrap_or_default();
        let metrics_base = cache.metrics();
        let pool_cfg = pool.config().clone();
        if let Some(o) = obs {
            // First install wins; session paths already installed at
            // open time with (normally) the same sink.
            pool.install_trace(Arc::clone(&o.sink));
            cache.install_trace(Arc::clone(&o.sink));
            self.pool().install_metrics(&o.registry);
        }

        if requests.is_empty() {
            return Ok(ServeReport {
                requests: Vec::new(),
                timeline: ServeTimeline::default(),
                kv: kv_report(pool, opts, 0, 0, cache, &metrics_base),
                verification: Vec::new(),
                queue_depth: Vec::new(),
                metrics: obs.map(|o| o.registry.snapshot()).unwrap_or_default(),
            });
        }

        // ---- Retry rounds -------------------------------------------------
        // Round 1 serves everyone; each later round re-serves only the
        // requests that *failed* (never the cancelled or expired ones),
        // re-admitted with exponential backoff on the new round's clock.
        // Each round drains the pool completely, so rounds compose on
        // one timeline by offsetting with the previous makespan.
        let n = requests.len();
        let mut outcomes: Vec<Option<RequestOutcome>> = (0..n).map(|_| None).collect();
        let mut timeline = ServeTimeline::default();
        let mut evictions = 0usize;
        let mut shared_blocks = 0usize;
        let mut verification: Vec<llmnpu_verify::PlanStats> = Vec::new();
        let mut time_offset = 0.0f64;
        let mut retries_used = vec![0usize; n];
        let mut attempt_base = vec![0usize; n];
        let mut first_dispatch = vec![f64::INFINITY; n];
        let mut members: Vec<usize> = (0..n).collect();
        let mut arrivals: Vec<f64> = requests.iter().map(|r| r.arrival_ms).collect();
        loop {
            let round_requests: Vec<GenerationRequest> = members
                .iter()
                .zip(&arrivals)
                .map(|(&r, &a)| {
                    let mut req = requests[r].clone();
                    req.arrival_ms = a;
                    req
                })
                .collect();
            let input = RoundInput {
                requests: round_requests,
                orig_ids: members.clone(),
                attempt_base: members.iter().map(|&r| attempt_base[r]).collect(),
            };
            let out = self.serve_round(
                t,
                &input,
                opts,
                pool,
                &pool_cfg,
                cache,
                &faults,
                share,
                decode_batch,
                RoundMode::Execute,
                obs,
            )?;
            evictions += out.evictions;
            shared_blocks += out.shared_blocks;
            verification.push(out.verified.stats);
            for mut span in out.spans {
                span.start_ms += time_offset;
                span.end_ms += time_offset;
                if let Some(o) = obs {
                    let s = &span;
                    o.sink.span(|| TraceSpan {
                        request: Some(s.request),
                        attempt: s.attempt,
                        lane: format!("{:?}", s.processor),
                        name: s.label.clone(),
                        class: kind_class(&s.kind).to_owned(),
                        start_ms: s.start_ms,
                        end_ms: s.end_ms,
                        modeled_ms: s.modeled_ms,
                        wall_start_ms: Some(s.start_ms),
                        wall_end_ms: Some(s.end_ms),
                    });
                }
                timeline.spans.push(span);
            }
            let mut next_members = Vec::new();
            let mut next_arrivals = Vec::new();
            for (i, m) in out.members.into_iter().enumerate() {
                let r = members[i];
                attempt_base[r] += m.incarnations;
                if m.first_dispatch_ms.is_finite() {
                    first_dispatch[r] = first_dispatch[r].min(m.first_dispatch_ms + time_offset);
                }
                if matches!(m.status, RequestStatus::Failed { .. })
                    && retries_used[r] < opts.max_retries
                {
                    retries_used[r] += 1;
                    next_members.push(r);
                    let exp = (retries_used[r] - 1).min(30) as u32;
                    let backoff = opts.retry_backoff_ms * f64::from(1u32 << exp);
                    if let Some(o) = obs {
                        let used = retries_used[r];
                        o.sink.event(Plane::Plan, EventKind::Retry, Some(r), || {
                            format!("retry {used} admitted with {backoff:.3} ms backoff")
                        });
                    }
                    next_arrivals.push(backoff);
                    continue;
                }
                let status = match m.status {
                    RequestStatus::Failed { error } if retries_used[r] > 0 => {
                        RequestStatus::RetriesExhausted { error }
                    }
                    other => other,
                };
                outcomes[r] = Some(RequestOutcome {
                    request: r,
                    tokens: m.tokens,
                    token_times_ms: m
                        .token_times_ms
                        .iter()
                        .map(|&tt| tt + time_offset)
                        .collect(),
                    arrival_ms: requests[r].arrival_ms,
                    first_dispatch_ms: f64::INFINITY, // patched below
                    prefill_done_ms: if m.prefill_done_ms > 0.0 {
                        m.prefill_done_ms + time_offset
                    } else {
                        0.0
                    },
                    finish_ms: if m.finish_ms > 0.0 {
                        m.finish_ms + time_offset
                    } else {
                        0.0
                    },
                    attempts: 0, // patched below
                    status,
                });
            }
            time_offset += out.makespan_ms;
            if next_members.is_empty() {
                break;
            }
            members = next_members;
            arrivals = next_arrivals;
        }
        timeline
            .spans
            // lint: allow(panic) — span timestamps come from executed-outcome filtering below, never NaN
            .sort_by(|a, b| a.end_ms.partial_cmp(&b.end_ms).expect("finite timestamps"));
        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            .enumerate()
            .map(|(r, o)| {
                // lint: allow(panic) — the round loop only exits once every member reached a terminal status
                let mut o = o.expect("every request resolves to a terminal status");
                o.first_dispatch_ms = if first_dispatch[r].is_finite() {
                    first_dispatch[r]
                } else {
                    o.arrival_ms
                };
                o.attempts = attempt_base[r];
                o
            })
            .collect();

        if transient {
            // One-shot contract: nothing survives the call, including
            // cached prefixes. Sessions keep theirs resident instead.
            cache.flush(pool).map_err(kv_err)?;
        }
        let kv = kv_report(pool, opts, evictions, shared_blocks, cache, &metrics_base);
        if kv.leaked_blocks != 0 {
            return Err(Error::InvalidConfig {
                what: format!("{} KV pages leaked after serve", kv.leaked_blocks),
            });
        }
        if let Some(o) = obs {
            let reg = &o.registry;
            reg.counter("serve.batches").inc();
            reg.counter("serve.requests").add(outcomes.len() as u64);
            reg.counter("serve.retries")
                .add(retries_used.iter().sum::<usize>() as u64);
            reg.counter("serve.evictions").add(evictions as u64);
            let ttft = reg.histogram("serve.ttft_ms", &LATENCY_BUCKETS_MS);
            let wait = reg.histogram("serve.queue_wait_ms", &LATENCY_BUCKETS_MS);
            let per_token = reg.histogram("serve.decode_ms_per_token", &LATENCY_BUCKETS_MS);
            for oc in &outcomes {
                let status = match &oc.status {
                    RequestStatus::Completed => "serve.completed",
                    RequestStatus::Cancelled => "serve.cancelled",
                    RequestStatus::DeadlineExceeded => "serve.deadline_exceeded",
                    RequestStatus::Failed { .. } | RequestStatus::RetriesExhausted { .. } => {
                        "serve.failed"
                    }
                };
                reg.counter(status).inc();
                reg.counter("serve.tokens").add(oc.tokens.len() as u64);
                wait.observe(oc.queue_wait_ms());
                if oc.status.is_completed() {
                    ttft.observe(oc.ttft_ms());
                    let window = oc.finish_ms - oc.prefill_done_ms;
                    if !oc.tokens.is_empty() && window > 0.0 {
                        per_token.observe(window / oc.tokens.len() as f64);
                    }
                }
            }
            // Cumulative pool-lifetime figures report as gauges; the
            // prefix-cache numbers below are per-run deltas.
            reg.gauge("kv.cow_copies").set(kv.cow_copies as i64);
            reg.counter("kv.prefix_cache.hits")
                .add(kv.prefix_cache_hits);
            reg.counter("kv.prefix_cache.misses")
                .add(kv.prefix_cache_misses);
            reg.gauge("kv.peak_used_blocks")
                .set(kv.peak_used_blocks as i64);
            let lookups = kv.prefix_cache_hits + kv.prefix_cache_misses;
            if lookups > 0 {
                reg.histogram("serve.prefix_cache_hit_ratio", &RATIO_BUCKETS)
                    .observe(kv.prefix_cache_hits as f64 / lookups as f64);
            }
        }
        let queue_depth = queue_depth_series(&outcomes, &timeline);
        Ok(ServeReport {
            requests: outcomes,
            timeline,
            kv,
            verification,
            queue_depth,
            metrics: obs.map(|o| o.registry.snapshot()).unwrap_or_default(),
        })
    }

    /// Statically verifies the serving plan for `requests` without
    /// executing a single task: plans the batch, builds and splices the
    /// full first-round lane graph exactly as [`LlmNpuEngine::serve`]
    /// would, runs the `llmnpu-verify` checks against it, and returns
    /// the proof. No pool pages are reserved, no model math runs, and no
    /// time passes on any lane.
    ///
    /// A clean [`llmnpu_verify::Report`] means the plan is deadlock-free,
    /// its admissions fit the page budget, every admitted segment's
    /// pages provably return on all outcome paths, and no two tasks race
    /// on KV state — the same gate `serve` itself applies before each
    /// round.
    ///
    /// # Errors
    ///
    /// Returns the same input/option validation errors as
    /// [`LlmNpuEngine::serve`], or [`Error::PlanRejected`] listing the
    /// findings when verification fails.
    pub fn verify_serve(
        &self,
        t: &Transformer<'_>,
        requests: &[GenerationRequest],
        opts: &ServeOptions,
    ) -> Result<llmnpu_verify::Report> {
        validate_inputs(requests, opts)?;
        let row_wise = t.backend_row_wise();
        let share = opts.share_prefixes && row_wise;
        let decode_batch = if row_wise { opts.decode_batch } else { 1 };
        let faults = opts.faults.clone().unwrap_or_default();
        let pool_cfg = serve_pool_config(t, requests, opts, &faults)?;
        if requests.is_empty() {
            return Ok(llmnpu_verify::Report::default());
        }
        let pool = Arc::new(BlockPool::new(pool_cfg.clone()).map_err(kv_err)?);
        let cache = PrefixCache::new(opts.block_tokens);
        let input = RoundInput {
            requests: requests.to_vec(),
            orig_ids: (0..requests.len()).collect(),
            attempt_base: vec![0; requests.len()],
        };
        let out = self.serve_round(
            t,
            &input,
            opts,
            &pool,
            &pool_cfg,
            &cache,
            &faults,
            share,
            decode_batch,
            RoundMode::DryRun,
            opts.obs.as_ref(),
        )?;
        Ok(out.verified)
    }

    /// Plans, builds, and executes one retry round's combined lane graph
    /// (everything the pre-retry `serve` did for the whole batch), with
    /// fault containment: per-task isolation, the cancellation/deadline
    /// dispatch gate, fault injection, and per-member outcome
    /// resolution. The pool must be fully free on entry and is drained
    /// again before returning.
    #[allow(clippy::too_many_arguments)] // internal plumbing of `serve`
    fn serve_round(
        &self,
        t: &Transformer<'_>,
        input: &RoundInput,
        opts: &ServeOptions,
        pool: &Arc<BlockPool>,
        pool_cfg: &PoolConfig,
        cache: &PrefixCache,
        faults: &FaultPlan,
        share: bool,
        decode_batch: usize,
        mode: RoundMode,
        obs: Option<&Observability>,
    ) -> Result<RoundOutput> {
        let requests: &[GenerationRequest] = &input.requests;
        // New planning round: cached prefixes touched from here on are
        // pinned against eviction until the next round begins.
        cache.begin_round();
        let (segments, cohort_count, shared_blocks) = plan_batch(
            requests,
            pool,
            cache,
            opts.max_active,
            opts.pressure,
            share,
            decode_batch,
            &input.orig_ids,
            obs.map(|o| o.sink.as_ref()),
        )?;
        let evictions = segments.iter().filter(|s| s.evicted).count();
        // Any cache eviction the planner needed has already happened, so
        // the page budget the verifier proves against is the pool's free
        // count *now* — capacity is constant for the rest of the round.
        let free_blocks = pool.free_blocks();

        // Decode-task durations come from the shared context-aware decode
        // model, priced for the numeric model actually being served.
        let decode_proc = self.config().decode_processor;
        let dsim = DecodeSim::new(t.config().clone(), self.config().soc.clone(), decode_proc);

        // Per-request paged-cache slots, generation state, and
        // fault-containment runtime.
        let slots: Vec<Mutex<Option<PagedKvCache>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        let states: Vec<Mutex<ReqState>> = requests
            .iter()
            .map(|req| {
                Ok(Mutex::new(ReqState {
                    sampler: Sampler::new(&req.sampler)?,
                    last_hidden: None,
                    tokens: Vec::with_capacity(req.max_new_tokens),
                }))
            })
            .collect::<Result<_>>()?;
        let runtime: Vec<ReqRuntime> = requests
            .iter()
            .map(|req| ReqRuntime {
                term: Mutex::new(None),
                tokens_out: AtomicUsize::new(0),
                cancel: req.cancel.clone(),
            })
            .collect();
        // Per-segment prefill-completion flags: a prefix sharer's Admit
        // refuses to fork from a donor whose prefill never completed
        // (failed or skipped) — the sharer fails cleanly (and retries
        // unshared) instead of forking a half-written cache.
        let seg_prefill_ok: Vec<AtomicBool> =
            segments.iter().map(|_| AtomicBool::new(false)).collect();

        // Per-segment prefill machinery over the unshared suffix.
        let mut dags: Vec<PrefillDag> = Vec::with_capacity(segments.len());
        let mut plans: Vec<ChunkPlan> = Vec::with_capacity(segments.len());
        for seg in &segments {
            let shared_tokens = seg.prefix_tokens();
            let suffix_len = requests[seg.req].prompt.len() - shared_tokens;
            let dag_cfg = self.dag_config(suffix_len)?;
            plans.push(dag_cfg.plan.clone());
            dags.push(build_prefill_dag(
                t.config(),
                &dag_cfg,
                self.latency_model(),
            )?);
        }
        let mut programs: Vec<PrefillProgram<'_, '_>> = Vec::with_capacity(segments.len());
        for (s, seg) in segments.iter().enumerate() {
            let shared_tokens = seg.prefix_tokens();
            let suffix = &requests[seg.req].prompt[shared_tokens..];
            programs.push(PrefillProgram::new_paged(
                t,
                suffix,
                &dags[s],
                &plans[s],
                shared_tokens,
                &slots[seg.req],
            )?);
        }

        // ---- Build the combined lane graph --------------------------------
        let mut graph = LaneGraph::new();
        let mut closures: Vec<TaskFn<'_>> = Vec::new();
        let mut meta: Vec<TaskMeta> = Vec::new();
        let mut builds: Vec<SegBuild> = Vec::new();
        // Decode task id per (request, step) — the token stream spans.
        let mut token_tasks: Vec<Vec<usize>> =
            requests.iter().map(|r| vec![0; r.max_new_tokens]).collect();
        // Cohort id -> member segments, flushed when complete.
        let mut cohort_members: Vec<Vec<usize>> = vec![Vec::new(); cohort_count];
        let mut cohort_flushed: Vec<bool> = vec![false; cohort_count];

        // Flushing a cohort emits its batched decode chain + releases.
        // (Closure-free helper: needs many locals, so implemented as a
        // macro-like fn below via explicit parameters.)
        #[allow(clippy::too_many_arguments)]
        fn flush_cohort<'run>(
            c: usize,
            cohort_members: &[Vec<usize>],
            segments: &[SegmentPlan],
            requests: &'run [GenerationRequest],
            orig_ids: &[usize],
            attempt_base: &[usize],
            builds: &mut [SegBuild],
            graph: &mut LaneGraph,
            closures: &mut Vec<TaskFn<'run>>,
            meta: &mut Vec<TaskMeta>,
            token_tasks: &mut [Vec<usize>],
            states: &'run [Mutex<ReqState>],
            slots: &'run [Mutex<Option<PagedKvCache>>],
            runtime: &'run [ReqRuntime],
            faults: &'run FaultPlan,
            t: &'run Transformer<'run>,
            dsim: &DecodeSim,
            decode_proc: Processor,
            on_token: Option<&'run TokenSink>,
        ) -> Result<()> {
            let members = &cohort_members[c];
            let mut chain_prev: Vec<usize> =
                members.iter().map(|&s| builds[s].prefill_finish).collect();
            let max_steps = members
                .iter()
                .map(|&s| requests[segments[s].req].max_new_tokens)
                .max()
                .unwrap_or(0);
            // `step` indexes into each member's per-request token-task
            // vec, not a single container — the range loop is the shape.
            #[allow(clippy::needless_range_loop)]
            for step in 0..max_steps {
                let active: Vec<usize> = (0..members.len())
                    .filter(|&i| step < requests[segments[members[i]].req].max_new_tokens)
                    .collect();
                let width = active.len();
                let mut deps: Vec<usize> = active.iter().map(|&i| chain_prev[i]).collect();
                deps.sort_unstable();
                deps.dedup();
                let duration = active
                    .iter()
                    .map(|&i| {
                        let req = segments[members[i]].req;
                        let factor = faults.duration_factor(
                            orig_ids[req],
                            attempt_base[req] + segments[members[i]].attempt + 1,
                        );
                        dsim.token_ms(requests[req].prompt.len() + step) * factor
                    })
                    .fold(0.0, f64::max);
                let release = active
                    .iter()
                    .map(|&i| requests[segments[members[i]].req].arrival_ms)
                    .fold(0.0, f64::max);
                let first_req = segments[members[active[0]]].req;
                let (label, kind) = if width == 1 {
                    (
                        format!("R{}-D{step}", orig_ids[first_req]),
                        ServeTaskKind::Decode { step },
                    )
                } else {
                    (
                        format!("C{c}-D{step}x{width}"),
                        ServeTaskKind::DecodeBatch { step, width },
                    )
                };
                // Decode tasks are containment barriers: a failed (or
                // skipped) member's chain must not poison the cohort —
                // the task runs for whoever is still live and the
                // per-member filter inside the body excludes the rest.
                let id = graph.push(
                    LaneTask {
                        label,
                        processor: decode_proc,
                        duration_ms: duration,
                        release_ms: release,
                        barrier: true,
                    },
                    deps,
                )?;
                meta.push(TaskMeta {
                    member: first_req,
                    attempt: attempt_base[first_req] + segments[members[active[0]]].attempt,
                    kind,
                    members: active.iter().map(|&i| segments[members[i]].req).collect(),
                });
                let member_info: Vec<DecodeMember> = active
                    .iter()
                    .map(|&i| {
                        let req = segments[members[i]].req;
                        DecodeMember {
                            member: req,
                            prompt_len: requests[req].prompt.len(),
                            orig: orig_ids[req],
                            attempt: attempt_base[req] + segments[members[i]].attempt + 1,
                        }
                    })
                    .collect();
                closures.push(Box::new(move || {
                    decode_step_body(
                        &member_info,
                        step,
                        states,
                        slots,
                        runtime,
                        faults,
                        t,
                        on_token,
                    )
                }));
                for &i in &active {
                    chain_prev[i] = id;
                    token_tasks[segments[members[i]].req][step] = id;
                }
            }
            // Record each member's final decode task; the Release task
            // is emitted separately (and possibly later — it must wait
            // for every *sharer* of the member's blocks to have an
            // Admit task in the graph, and a sharer can be a segment
            // that is not built yet at an early cohort flush).
            for (i, &s) in members.iter().enumerate() {
                builds[s].last_decode = Some(chain_prev[i]);
            }
            Ok(())
        }

        /// Emits one segment's Release task: pages go back once the
        /// member's stream is done — but never before every sharer of
        /// its blocks has admitted. Callers must guarantee every sharer
        /// segment is already built (true when the release is demanded
        /// by a later segment's Done gate — sharers attach only while
        /// the donor is active, so they precede any Done-gater — and
        /// trivially true at the final sweep).
        #[allow(clippy::too_many_arguments)] // mirrors flush_cohort's plumbing
        fn emit_release<'run>(
            s: usize,
            segments: &[SegmentPlan],
            requests: &'run [GenerationRequest],
            orig_ids: &[usize],
            attempt_base: &[usize],
            builds: &mut [SegBuild],
            graph: &mut LaneGraph,
            closures: &mut Vec<TaskFn<'run>>,
            meta: &mut Vec<TaskMeta>,
            slots: &'run [Mutex<Option<PagedKvCache>>],
            decode_proc: Processor,
        ) -> Result<()> {
            let req = segments[s].req;
            let last_decode = builds[s].last_decode.ok_or_else(|| Error::Internal {
                what: format!("release for segment {s} emitted before its cohort was flushed"),
            })?;
            let mut deps = vec![last_decode];
            for &sharer in &segments[s].sharer_segs {
                deps.push(builds[sharer].admit);
            }
            deps.sort_unstable();
            deps.dedup();
            // Release is a containment barrier and is never gate-skipped:
            // pages must return to the pool on every terminal path.
            let id = graph.push(
                LaneTask {
                    label: format!("R{}-Release", orig_ids[req]),
                    processor: decode_proc,
                    duration_ms: FINISH_TASK_MS,
                    release_ms: requests[req].arrival_ms,
                    barrier: true,
                },
                deps,
            )?;
            meta.push(TaskMeta {
                member: req,
                attempt: attempt_base[req] + segments[s].attempt,
                kind: ServeTaskKind::Release,
                members: vec![req],
            });
            let slot = &slots[req];
            closures.push(Box::new(move || release_slot(slot)));
            builds[s].release = Some(id);
            Ok(())
        }

        // Admissions are chained in planned order: the planner's page
        // accounting for segment `s` assumes every earlier-planned
        // segment already reserved (or skipped) its pages, but a fault-
        // poisoned chain can collapse early and let a later-planned
        // Admit's gates resolve first — letting it steal pages the plan
        // earmarked for an earlier one and fail its physical reserve.
        // The chain pins physical reservation order to planned order
        // (Admit is a barrier, so a failed predecessor doesn't poison
        // it; the page-accounting inequality then holds by induction).
        let mut prev_admit: Option<usize> = None;
        for (s, seg) in segments.iter().enumerate() {
            // Any Done gate on a normal segment needs that segment's
            // Release task — flush its cohort's decode chain, then emit
            // just *that* segment's Release (its sharers are all built:
            // they attached while the donor was active, i.e. before any
            // segment could gate Done on it).
            for &(g, kind) in &seg.gates {
                if kind == GateKind::Done && !segments[g].evicted {
                    let c = segments[g].cohort;
                    if !cohort_flushed[c] {
                        flush_cohort(
                            c,
                            &cohort_members,
                            &segments,
                            requests,
                            &input.orig_ids,
                            &input.attempt_base,
                            &mut builds,
                            &mut graph,
                            &mut closures,
                            &mut meta,
                            &mut token_tasks,
                            &states,
                            &slots,
                            &runtime,
                            faults,
                            t,
                            &dsim,
                            decode_proc,
                            opts.on_token.as_ref(),
                        )?;
                        cohort_flushed[c] = true;
                    }
                    if builds[g].release.is_none() {
                        emit_release(
                            g,
                            &segments,
                            requests,
                            &input.orig_ids,
                            &input.attempt_base,
                            &mut builds,
                            &mut graph,
                            &mut closures,
                            &mut meta,
                            &slots,
                            decode_proc,
                        )?;
                    }
                }
            }
            let req = seg.req;
            let request = &requests[req];
            let orig = input.orig_ids[req];
            // Attempt numbering is global across rounds: memory-pressure
            // evictions and failure retries share one ladder, so the
            // attempt-numbered spans witness both preemption *and* retry.
            let attempt = input.attempt_base[req] + seg.attempt;
            let fault_attempt = attempt + 1; // 1-based, FaultSpec keying
            let dur_factor = faults.duration_factor(orig, fault_attempt);
            let rlabel = if attempt == 0 {
                format!("R{orig}")
            } else {
                format!("R{orig}.{attempt}")
            };

            // Admission: reserve pages (forking the donor's prefix).
            let mut gate_deps: Vec<usize> = Vec::with_capacity(seg.gates.len() + 1);
            for &(g, kind) in &seg.gates {
                gate_deps.push(match kind {
                    GateKind::PrefillDone => builds[g].prefill_finish,
                    GateKind::Done => {
                        if segments[g].evicted {
                            builds[g].prefill_finish
                        } else {
                            builds[g].release.ok_or_else(|| Error::Internal {
                                what: format!(
                                    "segment {s} gates on segment {g}'s release, \
                                     which was never emitted"
                                ),
                            })?
                        }
                    }
                });
            }
            if let Some(prev) = prev_admit {
                gate_deps.push(prev);
            }
            // Admit is a barrier (it must *run* after failed gates so the
            // donor check below can fail the sharer cleanly), but it is
            // gate-skippable: a request already cancelled or expired
            // reserves nothing.
            let admit = graph.push(
                LaneTask {
                    label: format!("{rlabel}-Admit"),
                    processor: decode_proc,
                    duration_ms: FINISH_TASK_MS,
                    release_ms: request.arrival_ms,
                    barrier: true,
                },
                gate_deps,
            )?;
            meta.push(TaskMeta {
                member: req,
                attempt,
                kind: ServeTaskKind::Admit,
                members: vec![req],
            });
            prev_admit = Some(admit);
            {
                let pool = Arc::clone(pool);
                let slot = &slots[req];
                let donor = seg
                    .shared
                    .map(|sh| (sh.donor_seg, &slots[segments[sh.donor_seg].req]));
                let cached = seg.cached.clone();
                let shared_tokens = seg.shared.map_or(0, |sh| sh.tokens);
                let block_tokens = pool_cfg.block_tokens;
                let total = request.total_tokens();
                let admit_fault = faults
                    .fault_at(orig, fault_attempt, FaultSite::Admit)
                    .copied();
                let prefill_ok = &seg_prefill_ok;
                let prefix_cache = cache;
                closures.push(contain(
                    &runtime[req],
                    Box::new(move || {
                        if let Some(f) = admit_fault {
                            let msg = format!("injected admit fault: request {orig}");
                            match f.mode {
                                FaultMode::Panic => panic!("{msg}"),
                                FaultMode::Error => return Err(msg),
                            }
                        }
                        // Admission valve: when the planner balanced its
                        // budget by reclaiming cache-resident pages (or a
                        // prior failure left stale residents), evict them
                        // physically now, best effort — the reserve below
                        // is the arbiter. Claimed hits and mid-use pages
                        // are refused by the cache itself.
                        let need = match (cached.as_ref(), donor) {
                            (Some(hit), _) => pool
                                .config()
                                .blocks_for(total)
                                .saturating_sub(hit.blocks.len()),
                            (None, Some(_)) => {
                                let full = shared_tokens - shared_tokens % block_tokens;
                                pool.config().blocks_for(total - full)
                            }
                            (None, None) => pool.config().blocks_for(total),
                        };
                        let short = need.saturating_sub(pool.free_blocks());
                        if short > 0 {
                            let _ = prefix_cache.evict_lru(&pool, short);
                        }
                        let cache = match (cached.as_ref(), donor) {
                            (Some(hit), _) => {
                                // Global-cache hit: adopt the cached full
                                // pages (no donor, no liveness gate), then
                                // row-copy the cached partial tail into the
                                // first fresh page.
                                let c =
                                    PagedKvCache::reserve_with_prefix(&pool, &hit.blocks, total)
                                        .map_err(|e| e.to_string())?;
                                if let Some((src, rows)) = hit.tail {
                                    let dst = c.table().blocks()[hit.blocks.len()];
                                    if let Err(e) = pool.copy_rows(src, dst, rows) {
                                        let mut c = c;
                                        let _ = c.release();
                                        return Err(e.to_string());
                                    }
                                }
                                c
                            }
                            (None, Some((dseg, dslot))) => {
                                if !prefill_ok[dseg].load(Ordering::Acquire) {
                                    return Err("prefix donor prefill incomplete".to_string());
                                }
                                // Ref-share the donor's full pages; the
                                // unaligned tail rows are row-copied into
                                // the sharer's first private page (per-row
                                // causal masking keeps the math identical).
                                let full = shared_tokens - shared_tokens % block_tokens;
                                let guard = plain_lock(dslot);
                                let donor = guard.as_ref().ok_or("prefix donor cache missing")?;
                                let c = PagedKvCache::reserve_shared(&pool, donor, full, total)
                                    .map_err(|e| e.to_string())?;
                                let tail_rows = shared_tokens - full;
                                if tail_rows > 0 {
                                    let src = donor.table().blocks()[full / block_tokens];
                                    let dst = c.table().blocks()[full / block_tokens];
                                    if let Err(e) = pool.copy_rows(src, dst, tail_rows) {
                                        let mut c = c;
                                        let _ = c.release();
                                        return Err(e.to_string());
                                    }
                                }
                                c
                            }
                            (None, None) => {
                                PagedKvCache::reserve(&pool, total).map_err(|e| e.to_string())?
                            }
                        };
                        *plain_lock(slot) = Some(cache);
                        Ok(())
                    }),
                ));
            }

            // The suffix prefill DAG; roots wait on admission.
            let offset = graph.len();
            for (i, task) in dags[s].tasks().iter().enumerate() {
                let mut deps: Vec<usize> = dags[s].deps(i).iter().map(|&d| d + offset).collect();
                if deps.is_empty() {
                    deps.push(admit);
                }
                graph.push(
                    LaneTask {
                        label: format!("{rlabel}-{}", task.label),
                        processor: task.processor,
                        duration_ms: task.duration_ms * dur_factor,
                        release_ms: request.arrival_ms,
                        barrier: false,
                    },
                    deps,
                )?;
                meta.push(TaskMeta {
                    member: req,
                    attempt,
                    kind: ServeTaskKind::PrefillStage {
                        chunk: task.chunk,
                        layer: task.layer,
                        stage: task.stage,
                        role: task.role,
                    },
                    members: vec![req],
                });
            }
            closures.extend(
                programs[s]
                    .closures(&dags[s])
                    .into_iter()
                    .map(|f| contain(&runtime[req], f)),
            );
            // Scripted prefill faults replace the matching stage closure
            // (the Main-path FFN of the targeted chunk/layer — a unique
            // task per site) outright.
            if !faults.faults.is_empty() {
                for (i, task) in dags[s].tasks().iter().enumerate() {
                    if task.role != TaskRole::Main || task.stage != Stage::Ffn {
                        continue;
                    }
                    let site = FaultSite::Prefill {
                        chunk: task.chunk,
                        layer: task.layer,
                    };
                    if let Some(f) = faults.fault_at(orig, fault_attempt, site) {
                        let msg = format!(
                            "injected prefill fault: request {orig} chunk {} layer {}",
                            task.chunk, task.layer
                        );
                        let inner: TaskFn<'_> = match f.mode {
                            FaultMode::Panic => Box::new(move || panic!("{msg}")),
                            FaultMode::Error => Box::new(move || Err(msg)),
                        };
                        closures[offset + i] = contain(&runtime[req], inner);
                    }
                }
            }

            // Prefill terminal: last-hidden assembly — or, for a
            // preempted incarnation, the eviction (pages freed, work
            // discarded).
            let mut finish_deps: Vec<usize> =
                dag_sinks(&dags[s]).iter().map(|&k| k + offset).collect();
            if finish_deps.is_empty() {
                finish_deps.push(admit);
            }
            let (flabel, fkind) = if seg.evicted {
                (format!("{rlabel}-Evicted"), ServeTaskKind::Evicted)
            } else {
                (
                    format!("{rlabel}-PrefillFinish"),
                    ServeTaskKind::PrefillFinish,
                )
            };
            // An eviction is a containment barrier (its page release must
            // run even when the incarnation's prefill failed); a real
            // PrefillFinish is not — a failed prefill poisons it.
            let finish = graph.push(
                LaneTask {
                    label: flabel,
                    processor: decode_proc,
                    duration_ms: FINISH_TASK_MS,
                    release_ms: request.arrival_ms,
                    barrier: seg.evicted,
                },
                finish_deps,
            )?;
            meta.push(TaskMeta {
                member: req,
                attempt,
                kind: fkind,
                members: vec![req],
            });
            if seg.evicted {
                let slot = &slots[req];
                closures.push(Box::new(move || release_slot(slot)));
            } else {
                let program = &programs[s];
                let state = &states[req];
                let ok_flag = &seg_prefill_ok[s];
                let pool = Arc::clone(pool);
                let slot = &slots[req];
                let prompt = &requests[req].prompt;
                let insert_prefix = share;
                closures.push(contain(
                    &runtime[req],
                    Box::new(move || {
                        let last = program.last_hidden_row().map_err(|e| e.to_string())?;
                        plain_lock(state).last_hidden = Some(last);
                        if insert_prefix {
                            // Publish the now-complete prompt pages to the
                            // global cache (full blocks only, first writer
                            // wins) so later batches reuse them without a
                            // live donor. Failure here is a contained
                            // request failure, like any prefill fault.
                            let blocks = {
                                let guard = plain_lock(slot);
                                let c = guard.as_ref().ok_or("prefill cache slot empty")?;
                                c.table().blocks().to_vec()
                            };
                            cache
                                .insert(&pool, prompt, &blocks)
                                .map_err(|e| e.to_string())?;
                        }
                        ok_flag.store(true, Ordering::Release);
                        Ok(())
                    }),
                ));
                cohort_members[seg.cohort].push(s);
            }
            builds.push(SegBuild {
                admit,
                prefill_finish: finish,
                last_decode: None,
                release: None,
            });
        }
        for (c, flushed) in cohort_flushed.iter_mut().enumerate() {
            if !*flushed {
                flush_cohort(
                    c,
                    &cohort_members,
                    &segments,
                    requests,
                    &input.orig_ids,
                    &input.attempt_base,
                    &mut builds,
                    &mut graph,
                    &mut closures,
                    &mut meta,
                    &mut token_tasks,
                    &states,
                    &slots,
                    &runtime,
                    faults,
                    t,
                    &dsim,
                    decode_proc,
                    opts.on_token.as_ref(),
                )?;
                *flushed = true;
            }
        }
        // Every surviving segment returns its pages (every segment is
        // built now, so sharer Admit ids all exist).
        for s in 0..segments.len() {
            if !segments[s].evicted && builds[s].release.is_none() {
                emit_release(
                    s,
                    &segments,
                    requests,
                    &input.orig_ids,
                    &input.attempt_base,
                    &mut builds,
                    &mut graph,
                    &mut closures,
                    &mut meta,
                    &slots,
                    decode_proc,
                )?;
            }
        }
        debug_assert_eq!(graph.len(), closures.len());
        debug_assert_eq!(graph.len(), meta.len());

        // ---- Static plan verification -------------------------------------
        // The spliced graph carries every invariant the round relies on:
        // acyclicity, the pinned admission order, race-free KV writes,
        // the page budget, and poison-proof cleanup. Prove all of them
        // before a single closure runs; a finding aborts the round.
        let vplan = build_verify_plan(
            &graph,
            &meta,
            &segments,
            &builds,
            &plans,
            input,
            pool_cfg,
            free_blocks,
        );
        let verified = llmnpu_verify::verify(&vplan);
        if !verified.is_clean() {
            return Err(Error::PlanRejected {
                findings: verified.findings.iter().map(ToString::to_string).collect(),
            });
        }
        if let Some(o) = obs {
            let st = &verified.stats;
            o.sink
                .event(Plane::Plan, EventKind::PlanVerified, None, || {
                    format!(
                        "{} task(s), {} edge(s), {} segment(s), peak {} page(s)",
                        st.tasks, st.edges, st.segments, st.peak_pages
                    )
                });
        }
        if mode == RoundMode::DryRun {
            // Nothing executed: no spans, no outcomes, pool untouched.
            return Ok(RoundOutput {
                members: Vec::new(),
                spans: Vec::new(),
                makespan_ms: 0.0,
                evictions,
                shared_blocks,
                verified,
            });
        }

        // ---- Run the combined graph on the engine's lanes -----------------
        // Isolated mode: a task failure poisons only its request's chain;
        // the gate skips tasks of cancelled/expired/failed requests at
        // dispatch time. Only *structural* errors surface as Err here.
        let gate_sink: Option<&TraceSink> = obs.map(|o| o.sink.as_ref());
        let gate: GateFn<'_> = Box::new(|task: usize, now: f64| -> bool {
            let m = &meta[task];
            let skippable = !matches!(m.kind, ServeTaskKind::Release | ServeTaskKind::Evicted);
            let mut all_terminal = !m.members.is_empty();
            for &mem in &m.members {
                let rt = &runtime[mem];
                let mut term = plain_lock(&rt.term);
                if term.is_none() {
                    let req = &requests[mem];
                    if rt.cancel.is_cancelled() {
                        *term = Some(RequestStatus::Cancelled);
                        if let Some(sink) = gate_sink {
                            sink.event_at(
                                Plane::Exec,
                                EventKind::Cancel,
                                Some(input.orig_ids[mem]),
                                now,
                                || {
                                    format!(
                                        "cancelled at dispatch of {}",
                                        graph.tasks()[task].label
                                    )
                                },
                            );
                        }
                    } else if req
                        .deadline_ms
                        .is_some_and(|d| now >= req.arrival_ms + d - DEADLINE_EPS)
                        || (rt.tokens_out.load(Ordering::Acquire) == 0
                            && req
                                .ttft_deadline_ms
                                .is_some_and(|d| now >= req.arrival_ms + d - DEADLINE_EPS))
                    {
                        *term = Some(RequestStatus::DeadlineExceeded);
                        if let Some(sink) = gate_sink {
                            sink.event_at(
                                Plane::Exec,
                                EventKind::Deadline,
                                Some(input.orig_ids[mem]),
                                now,
                                || {
                                    format!(
                                        "deadline blown at dispatch of {}",
                                        graph.tasks()[task].label
                                    )
                                },
                            );
                        }
                    }
                }
                if term.is_none() {
                    all_terminal = false;
                }
            }
            skippable && all_terminal
        });
        let task_outcomes = self.pool().install_scope(|| {
            execute_lane_graph_isolated_traced(
                &graph,
                closures,
                self.config().policy,
                self.pool(),
                Some(gate),
                gate_sink,
            )
        })?;

        // Belt and braces: whatever a failed path left behind, drain it
        // before accounting (barrier Release tasks already released the
        // normal and most failed paths).
        for slot in &slots {
            let _ = release_slot(slot);
        }

        // Round timeline, completion order (skipped tasks have no span).
        let mut order: Vec<(f64, usize)> = (0..graph.len())
            .filter_map(|i| task_outcomes[i].span().map(|(_, end)| (end, i)))
            .collect();
        // lint: allow(panic) — spans are measured monotonic-clock readings, never NaN
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timestamps"));
        let mut spans_out: Vec<ServeSpan> = Vec::with_capacity(order.len());
        for (_, i) in order {
            // lint: allow(panic) — `order` was built from exactly the outcomes that carry a span
            let (start_ms, end_ms) = task_outcomes[i].span().expect("filtered to executed");
            let m = &meta[i];
            if let Some(o) = obs {
                // Stage-level calibration samples: executed duration per
                // span class, decode keyed by cohort width.
                let ms = end_ms - start_ms;
                match m.kind {
                    ServeTaskKind::PrefillStage { stage, role, .. } => {
                        o.calibration.record(
                            &format!("serve.stage.{stage:?}.{role:?}"),
                            0,
                            0,
                            0,
                            ms,
                        );
                    }
                    ServeTaskKind::Decode { .. } => {
                        o.calibration.record("serve.decode.token", 1, 0, 0, ms);
                    }
                    ServeTaskKind::DecodeBatch { width, .. } => {
                        o.calibration.record("serve.decode.token", width, 0, 0, ms);
                    }
                    _ => {}
                }
            }
            spans_out.push(ServeSpan {
                request: input.orig_ids[m.member],
                attempt: m.attempt,
                label: graph.tasks()[i].label.clone(),
                kind: m.kind,
                processor: graph.tasks()[i].processor,
                start_ms,
                end_ms,
                modeled_ms: graph.tasks()[i].duration_ms,
            });
        }
        let makespan_ms = spans_out.iter().map(|s| s.end_ms).fold(0.0, f64::max);

        // Per-member resolution: status, stream, metrics.
        let mut members_out = Vec::with_capacity(requests.len());
        for (m, req) in requests.iter().enumerate() {
            let st = plain_lock(&states[m]);
            let term = plain_lock(&runtime[m].term).take();
            let status = if st.tokens.len() == req.max_new_tokens {
                // A complete stream wins even over a recorded terminal: a
                // cancel/deadline that landed after the last token, or a
                // failure confined to a doomed evicted incarnation, did
                // not cost the caller anything.
                RequestStatus::Completed
            } else {
                match term {
                    Some(s) => s,
                    None => {
                        let attributed = (0..graph.len()).find_map(|i| {
                            if meta[i].members.contains(&m) {
                                task_outcomes[i].error().map(str::to_owned)
                            } else {
                                None
                            }
                        });
                        RequestStatus::Failed {
                            error: attributed.unwrap_or_else(|| {
                                format!(
                                    "produced {} of {} tokens",
                                    st.tokens.len(),
                                    req.max_new_tokens
                                )
                            }),
                        }
                    }
                }
            };
            let first_dispatch_ms = (0..graph.len())
                .filter(|&i| meta[i].members.contains(&m))
                .filter_map(|i| task_outcomes[i].span().map(|(start, _)| start))
                .fold(f64::INFINITY, f64::min);
            let prefill_done_ms = segments
                .iter()
                .position(|s| s.req == m && !s.evicted)
                .map(|fs| builds[fs].prefill_finish)
                .and_then(|tid| match &task_outcomes[tid] {
                    TaskOutcome::Completed { end_ms, .. } => Some(*end_ms),
                    _ => None,
                })
                .unwrap_or(0.0);
            let token_times_ms: Vec<f64> = token_tasks[m][..st.tokens.len()]
                .iter()
                .map(|&i| task_outcomes[i].span().map_or(0.0, |(_, end)| end))
                .collect();
            let incarnations = segments.iter().filter(|s| s.req == m).count();
            members_out.push(MemberRound {
                status,
                tokens: st.tokens.clone(),
                finish_ms: token_times_ms.last().copied().unwrap_or(0.0),
                token_times_ms,
                first_dispatch_ms,
                prefill_done_ms,
                incarnations,
            });
        }

        Ok(RoundOutput {
            members: members_out,
            spans: spans_out,
            makespan_ms,
            evictions,
            shared_blocks,
            verified,
        })
    }
}

/// Translates one round's spliced lane graph plus the planner's segment
/// metadata into an [`llmnpu_verify::Plan`] for static verification.
///
/// The structural half (tasks, lanes, edges, barriers, times) comes from
/// [`LaneGraph::verify_plan`]; this function enriches it with what only
/// serve knows:
///
/// - **Gate/fault flags** mirroring the dispatch gate's closure (every
///   kind is gate-skippable except `Release` and `Evicted`) and the
///   `contain` wrapping (admission, prefill, and decode bodies can
///   fail; the slot-draining cleanup tasks cannot).
/// - **KV address spaces**: space `seg * layers + layer` holds segment
///   `seg`'s absolute token positions at one decoder layer; prefix
///   sharing maps a sharer's shared positions into its donor's spaces
///   (transitively), exactly like the pool's block tables — a sharer
///   never writes a donor space (copy-on-write gives it fresh pages).
///   Writers are the KV-appending `QkvLinear` stages (the `Main` role
///   when no shadow split took the stage, the `MergeSync` role when one
///   did) and decode steps ≥ 1 (position `prompt + step − 1`); readers
///   are `Attention` stages (Equation 2's visibility: everything
///   through the chunk's end) and decode steps (everything before the
///   new position).
/// - **The cache-slot space** (one cell per round member, after the KV
///   spaces): admission installs a cache, release/eviction drains it,
///   a prefix fork reads the donor's cell.
/// - **The segment table** for the page-budget and leak proofs: fresh
///   blocks per admission (the planner's own formula), blocks the global
///   prefix cache retains past the terminal, the donor link, and each
///   incarnation's terminal (Release, or Evicted for a preempted one).
///
/// Prefix-cache interplay: pages adopted from the global cache carry no
/// in-plan writer, so their positions (`[0, full)` of a cached hit) are
/// deliberately invisible to the race checker — only the row-copied
/// partial tail (written by Admit into the sharer's own space) and the
/// suffix are declared. `free_blocks` is the pool's free count *after*
/// planning: every cache eviction the planner needed has already
/// happened, so it is the round's true page budget.
#[allow(clippy::too_many_arguments)] // mirrors the serving plumbing
fn build_verify_plan(
    graph: &LaneGraph,
    meta: &[TaskMeta],
    segments: &[SegmentPlan],
    builds: &[SegBuild],
    plans: &[ChunkPlan],
    input: &RoundInput,
    pool_cfg: &PoolConfig,
    free_blocks: usize,
) -> llmnpu_verify::Plan {
    use llmnpu_verify::{Access, Segment, TaskClass};

    let requests: &[GenerationRequest] = &input.requests;
    let mut plan = graph.verify_plan();
    let layers = pool_cfg.layers.max(1);
    let kv_space = |seg: usize, layer: usize| (seg * layers + layer) as u64;
    let slot_space = (segments.len() * layers) as u64;

    // Which (segment, absolute-position range) backs each segment's KV:
    // its own space beyond any shared prefix, its donor's coverage
    // (clipped, transitively) before it. Built in segment order — a
    // donor is always an earlier segment.
    let bt = pool_cfg.block_tokens.max(1);
    let mut coverage: Vec<Vec<(usize, u64, u64)>> = Vec::with_capacity(segments.len());
    for (s, seg) in segments.iter().enumerate() {
        let total = requests[seg.req].total_tokens() as u64;
        let mut cov: Vec<(usize, u64, u64)> = Vec::new();
        if let Some(sh) = seg.shared {
            // Only the donor's *full* pages are ref-shared; the partial
            // tail is row-copied into the sharer's own space by Admit,
            // so the sharer's coverage starts at the page boundary.
            let full = (sh.tokens - sh.tokens % bt) as u64;
            for &(cs, lo, hi) in &coverage[sh.donor_seg] {
                if lo < full {
                    cov.push((cs, lo, hi.min(full)));
                }
            }
            cov.push((s, full, total));
        } else if let Some(hit) = &seg.cached {
            // Cache-adopted pages have no in-plan writer: positions
            // below the hit's full-page length stay undeclared, and the
            // copied tail lands in the sharer's own space.
            cov.push((s, hit.tokens as u64, total));
        } else {
            cov.push((s, 0, total));
        }
        coverage.push(cov);
    }

    // Segment of each (member, global attempt); the surviving (non-
    // evicted) segment per member, which decode tasks belong to.
    let mut seg_of: HashMap<(usize, usize), usize> = HashMap::new();
    let mut surviving: Vec<Option<usize>> = vec![None; requests.len()];
    for (s, seg) in segments.iter().enumerate() {
        seg_of.insert((seg.req, input.attempt_base[seg.req] + seg.attempt), s);
        if !seg.evicted {
            surviving[seg.req] = Some(s);
        }
    }

    // Shadow-split sites per segment: their Main QkvLinear computes
    // pre-merge halves only — the MergeSync task is the KV writer.
    let mut split_sets: Vec<HashSet<(usize, Stage)>> = vec![HashSet::new(); segments.len()];
    for m in meta {
        if let ServeTaskKind::PrefillStage {
            layer, stage, role, ..
        } = m.kind
        {
            if role == TaskRole::Shadow {
                if let Some(&s) = seg_of.get(&(m.member, m.attempt)) {
                    split_sets[s].insert((layer, stage));
                }
            }
        }
    }

    for (t, m) in meta.iter().enumerate() {
        let task = &mut plan.tasks[t];
        // The dispatch gate's skippability closure, verbatim.
        task.gated = !matches!(m.kind, ServeTaskKind::Release | ServeTaskKind::Evicted);
        match m.kind {
            ServeTaskKind::Admit => {
                let Some(&s) = seg_of.get(&(m.member, m.attempt)) else {
                    continue;
                };
                task.class = TaskClass::Admit;
                task.serialized = true;
                task.fallible = true;
                task.owner = Some(s);
                task.writes.push(Access::cell(slot_space, m.member as u64));
                if let Some(sh) = segments[s].shared {
                    let donor_req = segments[sh.donor_seg].req;
                    task.reads.push(Access::cell(slot_space, donor_req as u64));
                    // Unaligned tail: Admit row-copies the donor's tail
                    // rows into the sharer's first private page — a read
                    // of the donor's coverage and a write to own space.
                    let full = sh.tokens - sh.tokens % bt;
                    if sh.tokens > full {
                        let (lo, hi) = (full as u64, sh.tokens as u64);
                        for layer in 0..layers {
                            for &(cs, clo, chi) in &coverage[sh.donor_seg] {
                                let (rlo, rhi) = (clo.max(lo), chi.min(hi));
                                if rlo < rhi {
                                    task.reads
                                        .push(Access::range(kv_space(cs, layer), rlo, rhi));
                                }
                            }
                            task.writes.push(Access::range(kv_space(s, layer), lo, hi));
                        }
                    }
                } else if let Some(hit) = &segments[s].cached {
                    // Cached-tail copy: the source page belongs to the
                    // cache (no in-plan writer to read from); only the
                    // write into the sharer's own space is declared.
                    if let Some((_, rows)) = hit.tail {
                        let (lo, hi) = (hit.tokens as u64, (hit.tokens + rows) as u64);
                        for layer in 0..layers {
                            task.writes.push(Access::range(kv_space(s, layer), lo, hi));
                        }
                    }
                }
            }
            ServeTaskKind::PrefillStage {
                chunk,
                layer,
                stage,
                role,
            } => {
                let Some(&s) = seg_of.get(&(m.member, m.attempt)) else {
                    continue;
                };
                task.fallible = true;
                task.owner = Some(s);
                task.reads.push(Access::cell(slot_space, m.member as u64));
                let shared = segments[s].prefix_tokens();
                let suffix = requests[segments[s].req].prompt.len() - shared;
                let clen = plans[s].chunk_len;
                let lo = (shared + chunk * clen) as u64;
                let hi = (shared + chunk * clen + clen.min(suffix - chunk * clen)) as u64;
                let writes_kv = match (role, stage) {
                    (TaskRole::Main, Stage::QkvLinear) => {
                        !split_sets[s].contains(&(layer, Stage::QkvLinear))
                    }
                    (TaskRole::MergeSync, Stage::QkvLinear) => true,
                    _ => false,
                };
                if writes_kv {
                    task.writes.push(Access::range(kv_space(s, layer), lo, hi));
                }
                if role == TaskRole::Main && stage == Stage::Attention {
                    for &(cs, clo, chi) in &coverage[s] {
                        let rhi = chi.min(hi);
                        if clo < rhi {
                            task.reads
                                .push(Access::range(kv_space(cs, layer), clo, rhi));
                        }
                    }
                }
            }
            ServeTaskKind::PrefillFinish => {
                let Some(&s) = seg_of.get(&(m.member, m.attempt)) else {
                    continue;
                };
                task.fallible = true;
                task.owner = Some(s);
                task.reads.push(Access::cell(slot_space, m.member as u64));
            }
            ServeTaskKind::Evicted => {
                let Some(&s) = seg_of.get(&(m.member, m.attempt)) else {
                    continue;
                };
                task.class = TaskClass::Evict;
                task.owner = Some(s);
                task.writes.push(Access::cell(slot_space, m.member as u64));
            }
            ServeTaskKind::Decode { step } | ServeTaskKind::DecodeBatch { step, .. } => {
                task.fallible = true;
                task.owner = surviving[m.member];
                for &mem in &m.members {
                    let Some(s) = surviving[mem] else { continue };
                    task.reads.push(Access::cell(slot_space, mem as u64));
                    if step == 0 {
                        // Step 0 samples from the prefill's last hidden
                        // row: no forward pass, no KV traffic.
                        continue;
                    }
                    let prompt = requests[mem].prompt.len();
                    let pos = (prompt + step - 1) as u64;
                    let hi = (prompt + step) as u64;
                    for layer in 0..layers {
                        task.writes.push(Access::cell(kv_space(s, layer), pos));
                        for &(cs, clo, chi) in &coverage[s] {
                            let rhi = chi.min(hi);
                            if clo < rhi {
                                task.reads
                                    .push(Access::range(kv_space(cs, layer), clo, rhi));
                            }
                        }
                    }
                }
            }
            ServeTaskKind::Release => {
                let Some(&s) = seg_of.get(&(m.member, m.attempt)) else {
                    continue;
                };
                task.class = TaskClass::Release;
                task.owner = Some(s);
                task.writes.push(Access::cell(slot_space, m.member as u64));
            }
        }
    }

    plan.page_capacity = Some(free_blocks);
    for (s, seg) in segments.iter().enumerate() {
        let prefix_full = seg.prefix_full_tokens(pool_cfg.block_tokens);
        plan.segments.push(Segment {
            admit: Some(builds[s].admit),
            terminal: if seg.evicted {
                Some(builds[s].prefill_finish)
            } else {
                builds[s].release
            },
            fresh_blocks: pool_cfg.blocks_for(requests[seg.req].total_tokens() - prefix_full),
            // A surviving prefill publishes its full prompt pages to the
            // global cache: those stay resident past Release (the cache
            // holds a reference) and only return via eviction/flush —
            // the planner's final figure, net of pressure reclaims.
            retained_blocks: seg.retained,
            donor: seg.shared.map(|sh| sh.donor_seg),
        });
    }
    plan
}

/// The numeric body of one (possibly batched) decode step: filter the
/// cohort down to its *live* members, forward every live member's
/// previous token through one `m = B` stacked forward, then project +
/// sample each member's next token, emitting it to the sink.
///
/// Liveness is per member — a cancelled, expired, or failed member is
/// excluded from the stacked GEMM without touching its neighbors (row
/// exclusion is bit-safe for row-wise backends, the only ones that
/// batch), which is what keeps a cohort-mate's failure out of every
/// other stream.
#[allow(clippy::too_many_arguments)] // mirrors the serving plumbing
fn decode_step_body(
    members: &[DecodeMember],
    step: usize,
    states: &[Mutex<ReqState>],
    slots: &[Mutex<Option<PagedKvCache>>],
    runtime: &[ReqRuntime],
    faults: &FaultPlan,
    t: &Transformer<'_>,
    on_token: Option<&TokenSink>,
) -> std::result::Result<(), String> {
    let mut live: Vec<&DecodeMember> = Vec::with_capacity(members.len());
    for dm in members {
        {
            let mut term = plain_lock(&runtime[dm.member].term);
            if term.is_none() && runtime[dm.member].cancel.is_cancelled() {
                *term = Some(RequestStatus::Cancelled);
            }
            if term.is_some() {
                continue;
            }
            let g = plain_lock(&states[dm.member]);
            if g.tokens.len() != step || g.last_hidden.is_none() {
                // The member's chain never reached this step (upstream
                // failure or skip) — not live here.
                continue;
            }
            if let Some(f) = faults.fault_at(dm.orig, dm.attempt, FaultSite::Decode { step }) {
                let msg = format!("injected decode fault: request {} step {step}", dm.orig);
                if f.mode == FaultMode::Panic && members.len() == 1 {
                    drop(g);
                    drop(term);
                    panic!("{msg}");
                }
                // Inside a cohort the blast radius must stay per-member:
                // record the failure and exclude the member; neighbors in
                // the same batched GEMM keep decoding.
                *term = Some(RequestStatus::Failed { error: msg });
                continue;
            }
        }
        live.push(dm);
    }
    if live.is_empty() {
        return Ok(());
    }
    // Lock live members in cohort order (this task is the only holder).
    let mut state_guards: Vec<_> = live
        .iter()
        .map(|dm| plain_lock(&states[dm.member]))
        .collect();
    if step > 0 {
        // Forward every member's token `step - 1`: one batched GEMM per
        // linear site, per-request paged KV appends and attention.
        let tokens: Vec<u32> = state_guards
            .iter()
            .map(|g| {
                g.tokens
                    .get(step - 1)
                    .copied()
                    .ok_or("missing previous token")
            })
            .collect::<std::result::Result<_, _>>()?;
        let mut slot_guards: Vec<_> = live
            .iter()
            .map(|dm| plain_lock(&slots[dm.member]))
            .collect();
        let mut entries: Vec<PagedDecodeEntry<'_>> = Vec::with_capacity(live.len());
        for ((guard, dm), &token) in slot_guards.iter_mut().zip(&live).zip(&tokens) {
            entries.push(PagedDecodeEntry {
                token,
                pos: dm.prompt_len + step - 1,
                kv: guard.as_mut().ok_or("missing kv cache")?,
            });
        }
        let h = t
            .decode_forward_batch(&mut entries)
            .map_err(|e| e.to_string())?;
        let (_, hidden) = h.matrix_dims();
        for (i, g) in state_guards.iter_mut().enumerate() {
            g.last_hidden =
                Some(Tensor::from_vec(h.row(i).to_vec(), [1, hidden]).map_err(|e| e.to_string())?);
        }
    }
    // LM head over the stacked last-hidden rows (one m = B GEMM), then
    // per-member seeded sampling.
    let hidden = t.config().hidden;
    let mut stacked = Vec::with_capacity(live.len() * hidden);
    for g in &state_guards {
        stacked.extend_from_slice(g.last_hidden.as_ref().ok_or("missing hidden state")?.row(0));
    }
    let stacked = Tensor::from_vec(stacked, [live.len(), hidden]).map_err(|e| e.to_string())?;
    let logits = t.logits(&stacked).map_err(|e| e.to_string())?;
    for (i, g) in state_guards.iter_mut().enumerate() {
        let token = g.sampler.sample(logits.row(i)).map_err(|e| e.to_string())?;
        g.tokens.push(token);
        runtime[live[i].member]
            .tokens_out
            .fetch_add(1, Ordering::AcqRel);
        if let Some(sink) = on_token {
            sink(&TokenEvent {
                request: live[i].orig,
                step,
                token,
            });
        }
    }
    Ok(())
}

/// Returns a request's pages to the pool (eviction, completion, or any
/// failed terminal path — the zero-leak invariant's workhorse).
fn release_slot(slot: &Mutex<Option<PagedKvCache>>) -> std::result::Result<(), String> {
    if let Some(mut cache) = plain_lock(slot).take() {
        cache.release().map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn kv_report(
    pool: &BlockPool,
    opts: &ServeOptions,
    evictions: usize,
    shared_blocks: usize,
    cache: &PrefixCache,
    base: &PrefixCacheMetrics,
) -> KvPoolReport {
    let stats = pool.stats();
    let m = cache.metrics();
    KvPoolReport {
        block_tokens: opts.block_tokens,
        pool_blocks: stats.total_blocks,
        pool_bytes: stats.bytes,
        peak_used_blocks: stats.peak_used_blocks,
        // Pages the global cache deliberately keeps resident are not
        // leaks: a leak is anything used beyond the cache's holdings.
        leaked_blocks: stats.used_blocks.saturating_sub(cache.held_blocks()),
        evictions,
        shared_prefix_blocks: shared_blocks,
        cow_copies: stats.cow_copies,
        prefix_cache_hits: m.hits - base.hits,
        prefix_cache_misses: m.misses - base.misses,
        prefix_cache_hit_tokens: m.hit_tokens - base.hit_tokens,
        prefix_cache_hit_blocks: m.hit_blocks - base.hit_blocks,
        prefix_cache_inserted_blocks: m.inserted_blocks - base.inserted_blocks,
        prefix_cache_evictions: m.evicted_blocks - base.evicted_blocks,
        prefix_cache_resident_blocks: cache.held_blocks(),
    }
}

fn validate_inputs(requests: &[GenerationRequest], opts: &ServeOptions) -> Result<()> {
    if opts.max_active == 0 {
        return Err(Error::InvalidConfig {
            what: "max_active must be at least 1".to_owned(),
        });
    }
    if opts.block_tokens == 0 {
        return Err(Error::InvalidConfig {
            what: "block_tokens must be at least 1".to_owned(),
        });
    }
    if opts.decode_batch == 0 {
        return Err(Error::InvalidConfig {
            what: "decode_batch must be at least 1".to_owned(),
        });
    }
    if opts.kv_pool_blocks == Some(0) {
        return Err(Error::InvalidConfig {
            what: "kv_pool_blocks must be at least 1".to_owned(),
        });
    }
    for (r, req) in requests.iter().enumerate() {
        if req.prompt.is_empty() {
            return Err(Error::InvalidConfig {
                what: format!("request {r} has an empty prompt"),
            });
        }
        if req.max_new_tokens == 0 {
            return Err(Error::InvalidConfig {
                what: format!("request {r} asks for zero tokens"),
            });
        }
        if !req.arrival_ms.is_finite() || req.arrival_ms < 0.0 {
            return Err(Error::InvalidConfig {
                what: format!("request {r} has invalid arrival {}", req.arrival_ms),
            });
        }
        for (name, d) in [
            ("deadline_ms", req.deadline_ms),
            ("ttft_deadline_ms", req.ttft_deadline_ms),
        ] {
            if let Some(d) = d {
                if !d.is_finite() || d < 0.0 {
                    return Err(Error::InvalidConfig {
                        what: format!("request {r} has invalid {name} {d}"),
                    });
                }
            }
        }
    }
    if !opts.retry_backoff_ms.is_finite() || opts.retry_backoff_ms < 0.0 {
        return Err(Error::InvalidConfig {
            what: format!("invalid retry_backoff_ms {}", opts.retry_backoff_ms),
        });
    }
    Ok(())
}

fn kv_err(e: llmnpu_kv::Error) -> Error {
    Error::InvalidConfig {
        what: format!("kv pool: {e}"),
    }
}

/// Sizes the shared paged pool for a serving run: auto-sized to the
/// batch (no pressure) unless the caller pinned a page budget, squeezed
/// by a fault-plan pool cap (but never below the largest single request
/// — nothing could ever be admitted), and checked so every request fits
/// the pool on its own.
fn serve_pool_config(
    t: &Transformer<'_>,
    requests: &[GenerationRequest],
    opts: &ServeOptions,
    faults: &FaultPlan,
) -> Result<PoolConfig> {
    let auto_blocks: usize = requests
        .iter()
        .map(|r| r.total_tokens().div_ceil(opts.block_tokens))
        .sum();
    let max_need: usize = requests
        .iter()
        .map(|r| r.total_tokens().div_ceil(opts.block_tokens))
        .max()
        .unwrap_or(0);
    let mut blocks = opts.kv_pool_blocks.unwrap_or(auto_blocks.max(1));
    if let Some(cap) = faults.pool_blocks_cap {
        blocks = blocks.min(cap).max(max_need.max(1));
    }
    let pool_cfg = PoolConfig {
        layers: t.config().layers,
        kv_dim: t.config().kv_dim(),
        block_tokens: opts.block_tokens,
        blocks,
    };
    for (r, req) in requests.iter().enumerate() {
        let need = pool_cfg.blocks_for(req.total_tokens());
        if need > pool_cfg.blocks {
            return Err(Error::InvalidConfig {
                what: format!(
                    "request {r} needs {need} KV pages, pool holds {}",
                    pool_cfg.blocks
                ),
            });
        }
    }
    Ok(pool_cfg)
}

/// Tasks of a DAG with no in-DAG successors (everything a prefill-finish
/// task must wait for).
fn dag_sinks(dag: &PrefillDag) -> Vec<usize> {
    let mut has_successor = vec![false; dag.len()];
    for t in 0..dag.len() {
        for &d in dag.deps(t) {
            has_successor[d] = true;
        }
    }
    (0..dag.len()).filter(|&t| !has_successor[t]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders_compose() {
        let r = GenerationRequest::new(vec![1, 2, 3], 4)
            .with_sampler(SamplerConfig::top_k(5, 0.8, 7))
            .with_arrival_ms(12.5);
        assert_eq!(r.max_new_tokens, 4);
        assert_eq!(r.sampler.top_k, Some(5));
        assert!((r.arrival_ms - 12.5).abs() < 1e-12);
        assert_eq!(r.total_tokens(), 7);
    }

    #[test]
    fn outcome_metrics_derive() {
        let o = RequestOutcome {
            request: 0,
            tokens: vec![1, 2],
            token_times_ms: vec![30.0, 40.0],
            arrival_ms: 5.0,
            first_dispatch_ms: 10.0,
            prefill_done_ms: 20.0,
            finish_ms: 40.0,
            attempts: 1,
            status: RequestStatus::Completed,
        };
        assert!((o.queue_wait_ms() - 5.0).abs() < 1e-12);
        assert!((o.ttft_ms() - 25.0).abs() < 1e-12);
        assert!((o.decode_tokens_per_s() - 100.0).abs() < 1e-9);
    }

    fn span(request: usize, attempt: usize, kind: ServeTaskKind, lo: f64, hi: f64) -> ServeSpan {
        ServeSpan {
            request,
            attempt,
            label: format!("R{request}"),
            kind,
            processor: Processor::Cpu,
            start_ms: lo,
            end_ms: hi,
            modeled_ms: hi - lo,
        }
    }

    #[test]
    fn interleave_witness_logic() {
        let mut tl = ServeTimeline::default();
        tl.spans.push(ServeSpan {
            request: 1,
            attempt: 0,
            label: "R1-C0-L0-AttnPre".to_owned(),
            kind: ServeTaskKind::PrefillStage {
                chunk: 0,
                layer: 0,
                stage: Stage::AttnPre,
                role: TaskRole::Main,
            },
            processor: Processor::Npu,
            start_ms: 0.0,
            end_ms: 10.0,
            modeled_ms: 10.0,
        });
        // Decode of request 0 strictly after request 1's prefill window:
        // not interleaved.
        tl.spans
            .push(span(0, 0, ServeTaskKind::Decode { step: 0 }, 11.0, 12.0));
        assert!(!tl.decode_interleaved_with_prefill());
        // A decode span inside the window flips the witness — batched
        // spans count too.
        tl.spans.push(span(
            0,
            0,
            ServeTaskKind::DecodeBatch { step: 1, width: 2 },
            4.0,
            6.0,
        ));
        assert!(tl.decode_interleaved_with_prefill());
    }

    #[test]
    fn eviction_witness_logic() {
        let mut tl = ServeTimeline::default();
        tl.spans.push(span(2, 0, ServeTaskKind::Evicted, 5.0, 5.1));
        assert!(!tl.evicted_and_recomputed(2), "no recompute yet");
        tl.spans.push(ServeSpan {
            request: 2,
            attempt: 1,
            label: "R2.1-C0-L0-AttnPre".to_owned(),
            kind: ServeTaskKind::PrefillStage {
                chunk: 0,
                layer: 0,
                stage: Stage::AttnPre,
                role: TaskRole::Main,
            },
            processor: Processor::Npu,
            start_ms: 6.0,
            end_ms: 7.0,
            modeled_ms: 1.0,
        });
        assert!(tl.evicted_and_recomputed(2));
        assert!(!tl.evicted_and_recomputed(0));
    }

    fn reqs(shapes: &[(usize, usize)]) -> Vec<GenerationRequest> {
        shapes
            .iter()
            .map(|&(p, n)| GenerationRequest::new((0..p as u32).collect(), n))
            .collect()
    }

    fn cfg(block_tokens: usize, blocks: usize) -> PoolConfig {
        PoolConfig {
            layers: 2,
            kv_dim: 8,
            block_tokens,
            blocks,
        }
    }

    fn pool(block_tokens: usize, blocks: usize) -> BlockPool {
        BlockPool::new(cfg(block_tokens, blocks)).unwrap()
    }

    #[test]
    fn planner_matches_count_gating_when_pages_ample() {
        // Ample pages: the plan degenerates to the classic
        // `r gates on r - max_active` continuous-batching structure.
        let requests = reqs(&[(8, 4), (8, 4), (8, 4), (8, 4)]);
        let (segs, _, _) = plan_batch(
            &requests,
            &pool(4, 100),
            &PrefixCache::new(4),
            2,
            PressurePolicy::EvictYoungest,
            false,
            1,
            &[],
            None,
        )
        .unwrap();
        assert_eq!(segs.len(), 4);
        assert!(segs.iter().all(|s| !s.evicted));
        assert!(segs[0].gates.is_empty());
        assert!(segs[1].gates.is_empty());
        assert_eq!(segs[2].gates, vec![(0, GateKind::Done)]);
        assert_eq!(segs[3].gates, vec![(1, GateKind::Done)]);
    }

    #[test]
    fn planner_evicts_youngest_and_requeues_with_recompute() {
        // Pool of 6 pages, 4-token pages; each request needs 3 pages
        // (8 + 4 = 12 tokens). Request 2 cannot fit alongside 0 and 1:
        // under EvictYoungest it preempts request 1, which is replanned
        // *after* request 2.
        let requests = reqs(&[(8, 4), (8, 4), (8, 4)]);
        let (segs, _, _) = plan_batch(
            &requests,
            &pool(4, 6),
            &PrefixCache::new(4),
            8,
            PressurePolicy::EvictYoungest,
            false,
            1,
            &[],
            None,
        )
        .unwrap();
        assert_eq!(segs.len(), 4, "one extra incarnation for the victim");
        assert!(segs[1].evicted, "request 1's first incarnation preempted");
        assert_eq!(segs[2].req, 2);
        assert!(
            segs[2].gates.contains(&(1, GateKind::Done)),
            "preemptor waits for the eviction to free pages"
        );
        let requeued = &segs[3];
        assert_eq!((requeued.req, requeued.attempt), (1, 1));
        assert!(!requeued.evicted);
    }

    #[test]
    fn planner_waits_under_wait_policy() {
        let requests = reqs(&[(8, 4), (8, 4), (8, 4)]);
        let (segs, _, _) = plan_batch(
            &requests,
            &pool(4, 6),
            &PrefixCache::new(4),
            8,
            PressurePolicy::Wait,
            false,
            1,
            &[],
            None,
        )
        .unwrap();
        assert_eq!(segs.len(), 3, "no evictions under Wait");
        assert!(segs.iter().all(|s| !s.evicted));
        assert_eq!(segs[2].gates, vec![(0, GateKind::Done)]);
    }

    #[test]
    fn planner_rejects_impossible_requests() {
        let requests = reqs(&[(40, 8)]);
        let err = plan_batch(
            &requests,
            &pool(4, 4),
            &PrefixCache::new(4),
            2,
            PressurePolicy::EvictYoungest,
            false,
            1,
            &[],
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("KV pages"));
    }

    #[test]
    fn planner_shares_unaligned_prefixes() {
        // Identical 16-token prompts, 4-token pages → the first 15
        // tokens (leaving ≥1 suffix token, no page alignment required)
        // are shareable: 3 full pages ref-shared + a 3-row tail copy.
        let mut requests = reqs(&[(16, 4), (16, 4)]);
        requests[1].prompt = requests[0].prompt.clone();
        let (segs, _, shared_blocks) = plan_batch(
            &requests,
            &pool(4, 100),
            &PrefixCache::new(4),
            4,
            PressurePolicy::EvictYoungest,
            true,
            1,
            &[],
            None,
        )
        .unwrap();
        let sh = segs[1].shared.expect("request 1 shares request 0's prefix");
        assert_eq!(sh.donor_seg, 0);
        assert_eq!(sh.tokens, 15);
        assert_eq!(shared_blocks, 3, "only full pages are ref-shared");
        assert!(segs[1].gates.contains(&(0, GateKind::PrefillDone)));
        assert_eq!(segs[0].sharer_segs, vec![1]);
    }

    #[test]
    fn planner_cohorts_respect_width_and_gates() {
        let requests = reqs(&[(8, 4), (8, 4), (8, 4), (8, 4)]);
        // max_active 2 → segment 2 gates Done on 0, breaking its cohort.
        let (segs, cohorts, _) = plan_batch(
            &requests,
            &pool(4, 100),
            &PrefixCache::new(4),
            2,
            PressurePolicy::EvictYoungest,
            false,
            4,
            &[],
            None,
        )
        .unwrap();
        assert_eq!(cohorts, 2);
        assert_eq!(segs[0].cohort, segs[1].cohort);
        assert_ne!(segs[1].cohort, segs[2].cohort);
        assert_eq!(segs[2].cohort, segs[3].cohort);
    }

    #[test]
    fn options_debug_does_not_require_sink_debug() {
        let o = ServeOptions {
            on_token: Some(Arc::new(|_| {})),
            ..ServeOptions::default()
        };
        let s = format!("{o:?}");
        assert!(s.contains("on_token"));
    }
}
