//! Continuous-batching request serving over the **paged KV pool** (the
//! paper's §4 decode stage, grown into a memory-aware multi-request
//! scheduler).
//!
//! The chunked prefill of §3.2 exists so prefill work can *share the
//! device* with other in-flight work; this module is where that sharing
//! happens — and, since the paged-KV subsystem landed, where the
//! device's **memory** is shared too. [`LlmNpuEngine::serve`] admits a
//! queue of [`GenerationRequest`]s against one fixed
//! [`BlockPool`] of KV pages and builds one
//! combined [`LaneGraph`] holding, per admitted request *incarnation*:
//!
//! * an **admission task** that reserves the request's worst-case page
//!   budget (forking another request's ref-counted blocks when their
//!   prompts share a block-aligned prefix — the shared system prompt is
//!   allocated and prefilled **once**),
//! * the request's **chunked-prefill DAG** over its *unshared suffix*,
//!   writing K/V straight into the pool through the request's block
//!   table (position-addressed, so out-of-order chunks can't reorder
//!   the cache),
//! * its **decode steps** — grouped into cohorts so concurrent
//!   requests' same-position steps run as **one `m = B` batched GEMM**
//!   per linear site instead of B separate GEMVs
//!   ([`ServeOptions::decode_batch`]), attention staying per-request
//!   over each paged history — and
//! * a **release task** returning every page to the pool (the zero-leak
//!   counter [`KvPoolReport::leaked_blocks`] pins this).
//!
//! # Admission is a memory model, not a request count
//!
//! A request is admitted when the pool has pages for its worst case
//! (prompt + decode budget) *and* a slot under
//! [`ServeOptions::max_active`]. When pages run out, the planner either
//! **waits** for the earliest active request to finish, or — under
//! [`PressurePolicy::EvictYoungest`] — **preempts** the youngest active
//! request: its pages are freed, its (so far prefill-only) work is
//! discarded, and it is requeued behind the preemptor to be
//! **recomputed** from scratch. Both the eviction and the second
//! prefill appear in the unified timeline — the preemption witness.
//! Admission decisions are made by a deterministic planner over request
//! order and page arithmetic, so the *structure* of a serving run never
//! depends on wall-clock noise.
//!
//! # Determinism
//!
//! Each request's decode chain stays a serial dependency over its own
//! paged cache and its own seeded [`Sampler`]; paged attention is
//! bit-identical to the contiguous path by construction; and stacking
//! rows into an `m = B` GEMM never changes a row's bits for a row-wise
//! backend — so every request's token stream is **bit-identical** to
//! its solo [`Transformer::generate`] run at every worker count,
//! policy, batch width, pool size, and eviction schedule. Prefix
//! sharing and decode batching silently disable themselves for
//! non-row-wise backends (dynamic whole-batch quantization), where
//! batch composition would legitimately perturb last bits.
//!
//! [`LaneGraph`]: llmnpu_sched::LaneGraph
//! [`Sampler`]: llmnpu_model::sample::Sampler
//! [`Transformer::generate`]: llmnpu_model::forward::Transformer::generate

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, PrefillDag, TaskRole};
use llmnpu_graph::layer::Stage;
use llmnpu_kv::{BlockPool, PoolConfig};
use llmnpu_model::forward::{PagedDecodeEntry, Transformer};
use llmnpu_model::kv::PagedKvCache;
use llmnpu_model::sample::{Sampler, SamplerConfig};
use llmnpu_sched::{execute_lane_graph, LaneGraph, LaneTask, PrefillProgram, TaskFn};
use llmnpu_soc::memory::MemoryModel;
use llmnpu_soc::{Millis, Processor};
use llmnpu_tensor::Tensor;

use crate::decode::DecodeSim;
use crate::engine::LlmNpuEngine;
use crate::{Error, Result};

/// Modeled duration of bookkeeping tasks (admission, cache assembly,
/// eviction, release — not GEMMs; only used for scheduling priority).
const FINISH_TASK_MS: f64 = 0.05;

/// One queued generation request.
#[derive(Debug, Clone)]
pub struct GenerationRequest {
    /// Prompt token ids (must be non-empty).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate (must be at least 1).
    pub max_new_tokens: usize,
    /// Sampling strategy and seed for this request's stream.
    pub sampler: SamplerConfig,
    /// Arrival time, ms from the start of the serving run. Tasks of this
    /// request are not dispatched earlier.
    pub arrival_ms: Millis,
}

impl GenerationRequest {
    /// A greedy request arriving at time zero.
    #[must_use]
    pub fn new(prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        GenerationRequest {
            prompt,
            max_new_tokens,
            sampler: SamplerConfig::greedy(),
            arrival_ms: 0.0,
        }
    }

    /// The deterministic synthetic request used by the serving demo and
    /// the `BENCH_kernels.json` serving section — one definition so the
    /// two workloads cannot drift apart: prompt token `k` is
    /// `(k·7 + index) % vocab`, sampled top-k(8) at temperature 0.9 with
    /// seed `42 + index`.
    #[must_use]
    pub fn synthetic(index: usize, prompt_len: usize, max_new_tokens: usize, vocab: usize) -> Self {
        let prompt: Vec<u32> = (0..prompt_len as u32)
            .map(|k| (k * 7 + index as u32) % vocab.max(1) as u32)
            .collect();
        GenerationRequest::new(prompt, max_new_tokens).with_sampler(SamplerConfig::top_k(
            8,
            0.9,
            42 + index as u64,
        ))
    }

    /// Sets the sampling configuration.
    #[must_use]
    pub fn with_sampler(mut self, sampler: SamplerConfig) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the arrival time (ms from run start).
    #[must_use]
    pub fn with_arrival_ms(mut self, arrival_ms: Millis) -> Self {
        self.arrival_ms = arrival_ms;
        self
    }

    /// Worst-case token footprint: prompt plus full decode budget.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.prompt.len() + self.max_new_tokens
    }
}

/// What to do when a request's page budget does not fit the free pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PressurePolicy {
    /// Queue behind the earliest active request until pages free.
    Wait,
    /// Preempt: evict the **youngest** active request (its pages free
    /// immediately, its work is discarded and recomputed after the
    /// preemptor admits). Re-admissions never evict in turn, so
    /// planning always terminates.
    #[default]
    EvictYoungest,
}

/// One token becoming available on a stream, delivered to
/// [`ServeOptions::on_token`] while the batch is still running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEvent {
    /// Request index (admission order).
    pub request: usize,
    /// Zero-based position in the request's stream.
    pub step: usize,
    /// The sampled token.
    pub token: u32,
}

/// A streaming token callback: invoked from decode tasks as they
/// complete, strictly in stream order *per request* (cross-request
/// interleaving follows the schedule). Must be cheap and non-blocking —
/// it runs on the execution lanes.
pub type TokenSink = Arc<dyn Fn(&TokenEvent) + Send + Sync>;

/// Serving-loop knobs.
#[derive(Clone)]
pub struct ServeOptions {
    /// Maximum number of requests in flight at once (continuous
    /// batching's concurrency cap, layered *on top of* the page-based
    /// admission): request `r` additionally waits for an active slot.
    pub max_active: usize,
    /// Token positions per KV page (the pool's block size).
    pub block_tokens: usize,
    /// Total pool pages. `None` sizes the pool to fit every request's
    /// worst case concurrently (no memory pressure — the compatibility
    /// default); `Some(n)` makes admission a real memory model and can
    /// trigger waiting or eviction.
    pub kv_pool_blocks: Option<usize>,
    /// What to do under memory pressure.
    pub pressure: PressurePolicy,
    /// Maximum decode cohort width B: same-position decode steps of up
    /// to B concurrently admitted requests run as one `m = B` batched
    /// GEMM per linear site. `1` keeps each request's steps separate
    /// GEMVs. Ignored (treated as 1) for non-row-wise backends.
    pub decode_batch: usize,
    /// Share block-aligned common prompt prefixes between concurrently
    /// active requests (allocate + prefill once, ref-count the pages).
    /// Ignored for non-row-wise backends.
    pub share_prefixes: bool,
    /// Streaming token callback, if any.
    pub on_token: Option<TokenSink>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_active: 2,
            block_tokens: 16,
            kv_pool_blocks: None,
            pressure: PressurePolicy::default(),
            decode_batch: 1,
            share_prefixes: true,
            on_token: None,
        }
    }
}

impl fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeOptions")
            .field("max_active", &self.max_active)
            .field("block_tokens", &self.block_tokens)
            .field("kv_pool_blocks", &self.kv_pool_blocks)
            .field("pressure", &self.pressure)
            .field("decode_batch", &self.decode_batch)
            .field("share_prefixes", &self.share_prefixes)
            .field("on_token", &self.on_token.as_ref().map(|_| "Fn"))
            .finish()
    }
}

/// What a serving-timeline span implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeTaskKind {
    /// Page reservation (and prefix fork) at admission.
    Admit,
    /// One stage task of the request's chunked-prefill DAG.
    PrefillStage {
        /// Chunk index within the request's (unshared) prompt suffix.
        chunk: usize,
        /// Decoder layer.
        layer: usize,
        /// Host stage.
        stage: Stage,
        /// Pipeline role (main / shadow / merge).
        role: TaskRole,
    },
    /// Last-hidden assembly after the request's prefill (KV already
    /// lives in the pool).
    PrefillFinish,
    /// Memory-pressure preemption: this incarnation's pages return to
    /// the pool and its prefill work is discarded (a later incarnation
    /// recomputes it).
    Evicted,
    /// One decode step of a single request (cohort width 1).
    Decode {
        /// Zero-based position in the request's generated stream.
        step: usize,
    },
    /// One **batched** decode step: `width` requests' same-position
    /// steps stacked into one `m = width` GEMM per linear site.
    DecodeBatch {
        /// Zero-based stream position for every member.
        step: usize,
        /// Cohort members still decoding at this step.
        width: usize,
    },
    /// Pages returned to the pool after the request's last token.
    Release,
}

impl ServeTaskKind {
    /// Whether this span belongs to the prefill phase.
    #[must_use]
    pub fn is_prefill(&self) -> bool {
        matches!(
            self,
            ServeTaskKind::PrefillStage { .. } | ServeTaskKind::PrefillFinish
        )
    }

    /// Whether this span is a decode step (batched or not).
    #[must_use]
    pub fn is_decode(&self) -> bool {
        matches!(
            self,
            ServeTaskKind::Decode { .. } | ServeTaskKind::DecodeBatch { .. }
        )
    }
}

/// One executed span of the batched run, with wall-clock timestamps
/// relative to run start (milliseconds).
#[derive(Debug, Clone)]
pub struct ServeSpan {
    /// Request index (admission order). For a batched decode span, the
    /// first cohort member.
    pub request: usize,
    /// Which incarnation of the request this span belongs to (0 unless
    /// the request was evicted and recomputed).
    pub attempt: usize,
    /// Task label, e.g. `"R1-C0-L2-Ffn"`, `"R1-D3"`, or `"C0-D2"`.
    pub label: String,
    /// What the span implements.
    pub kind: ServeTaskKind,
    /// Lane the task ran on.
    pub processor: Processor,
    /// Wall-clock start, ms from run start.
    pub start_ms: f64,
    /// Wall-clock end, ms from run start.
    pub end_ms: f64,
}

/// The unified executed timeline of a batched serving run: every
/// request's admission, prefill stages, decode steps, evictions, and
/// releases on one clock.
#[derive(Debug, Clone, Default)]
pub struct ServeTimeline {
    spans: Vec<ServeSpan>,
}

impl ServeTimeline {
    /// All spans, in completion order.
    #[must_use]
    pub fn entries(&self) -> &[ServeSpan] {
        &self.spans
    }

    /// Wall-clock completion of the last task (ms from run start).
    #[must_use]
    pub fn makespan_ms(&self) -> f64 {
        self.spans.iter().map(|s| s.end_ms).fold(0.0, f64::max)
    }

    /// Total busy time of one lane.
    #[must_use]
    pub fn lane_busy_ms(&self, p: Processor) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.processor == p)
            .map(|s| s.end_ms - s.start_ms)
            .sum()
    }

    /// Spans of one request, in completion order.
    #[must_use]
    pub fn request_entries(&self, request: usize) -> Vec<&ServeSpan> {
        self.spans.iter().filter(|s| s.request == request).collect()
    }

    /// The continuous-batching witness: some decode step of one request
    /// ran *inside* another request's prefill window (between that
    /// request's first prefill dispatch and its last prefill
    /// completion). True wall-clock overlap implies it on multicore
    /// hosts; on a single core it still witnesses task-granular
    /// interleaving — decode work was dispatched before a neighbor's
    /// prefill had drained, which is impossible under one-request-at-a-
    /// time serving.
    #[must_use]
    pub fn decode_interleaved_with_prefill(&self) -> bool {
        let mut windows: std::collections::HashMap<usize, (f64, f64)> =
            std::collections::HashMap::new();
        for s in &self.spans {
            if s.kind.is_prefill() {
                let w = windows
                    .entry(s.request)
                    .or_insert((f64::INFINITY, f64::NEG_INFINITY));
                w.0 = w.0.min(s.start_ms);
                w.1 = w.1.max(s.end_ms);
            }
        }
        self.spans.iter().any(|d| {
            d.kind.is_decode()
                && windows
                    .iter()
                    .any(|(&r, &(lo, hi))| r != d.request && d.start_ms < hi && d.end_ms > lo)
        })
    }

    /// The preemption witness: `request` was evicted and later ran
    /// prefill work again under a higher attempt number.
    #[must_use]
    pub fn evicted_and_recomputed(&self, request: usize) -> bool {
        let evicted = self
            .spans
            .iter()
            .any(|s| s.request == request && s.kind == ServeTaskKind::Evicted);
        let recomputed = self.spans.iter().any(|s| {
            s.request == request
                && s.attempt > 0
                && matches!(s.kind, ServeTaskKind::PrefillStage { .. })
        });
        evicted && recomputed
    }
}

/// Per-request outcome of a serving run.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Request index (admission order).
    pub request: usize,
    /// The generated token stream.
    pub tokens: Vec<u32>,
    /// Wall-clock completion time of each generated token (ms from run
    /// start, one entry per token — the "stream").
    pub token_times_ms: Vec<f64>,
    /// The request's arrival time.
    pub arrival_ms: f64,
    /// First dispatch of any of the request's tasks (any incarnation).
    pub first_dispatch_ms: f64,
    /// Completion of the request's (final) prefill — KV pages ready.
    pub prefill_done_ms: f64,
    /// Completion of the request's last decode step.
    pub finish_ms: f64,
    /// Incarnations this request ran (1 = never evicted; each eviction
    /// adds a full recompute).
    pub attempts: usize,
}

impl RequestOutcome {
    /// Time spent queued before the scheduler first touched the request.
    #[must_use]
    pub fn queue_wait_ms(&self) -> f64 {
        self.first_dispatch_ms - self.arrival_ms
    }

    /// Time-to-first-token: arrival until the first generated token.
    #[must_use]
    pub fn ttft_ms(&self) -> f64 {
        self.token_times_ms.first().map_or(0.0, |&t| t) - self.arrival_ms
    }

    /// Decode throughput over the request's own decode window.
    #[must_use]
    pub fn decode_tokens_per_s(&self) -> f64 {
        let window = self.finish_ms - self.prefill_done_ms;
        if window > 0.0 {
            self.tokens.len() as f64 / (window / 1e3)
        } else {
            0.0
        }
    }
}

/// Paged-KV accounting for one serving run.
#[derive(Debug, Clone, Copy)]
pub struct KvPoolReport {
    /// Token positions per page.
    pub block_tokens: usize,
    /// Total pool pages.
    pub pool_blocks: usize,
    /// Total pool bytes (all layers, K+V, f32).
    pub pool_bytes: u64,
    /// High-water mark of pages in use during the run.
    pub peak_used_blocks: usize,
    /// Pages still referenced after every request released — **must be
    /// zero**; pinned by the serving tests.
    pub leaked_blocks: usize,
    /// Memory-pressure evictions (preempted incarnations).
    pub evictions: usize,
    /// Pages that were *shared* instead of re-allocated thanks to
    /// prefix sharing (sum over admissions).
    pub shared_prefix_blocks: usize,
    /// Copy-on-write page copies the pool performed.
    pub cow_copies: u64,
}

/// Aggregate outcome of one batched serving run.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-request outcomes, in admission order.
    pub requests: Vec<RequestOutcome>,
    /// The unified executed timeline.
    pub timeline: ServeTimeline,
    /// Paged-KV pool accounting.
    pub kv: KvPoolReport,
}

impl ServeReport {
    /// Wall-clock makespan of the whole batch.
    #[must_use]
    pub fn makespan_ms(&self) -> f64 {
        self.timeline.makespan_ms()
    }

    /// Total generated tokens across all requests.
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.tokens.len()).sum()
    }

    /// Aggregate generation throughput (all requests' tokens over the
    /// batch makespan).
    #[must_use]
    pub fn tokens_per_s(&self) -> f64 {
        let ms = self.makespan_ms();
        if ms > 0.0 {
            self.total_tokens() as f64 / (ms / 1e3)
        } else {
            0.0
        }
    }

    /// Mean time-to-first-token across requests.
    #[must_use]
    pub fn mean_ttft_ms(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(RequestOutcome::ttft_ms)
            .sum::<f64>()
            / self.requests.len() as f64
    }

    /// Mean queue wait across requests.
    #[must_use]
    pub fn mean_queue_wait_ms(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(RequestOutcome::queue_wait_ms)
            .sum::<f64>()
            / self.requests.len() as f64
    }
}

// ---------------------------------------------------------------------------
// The deterministic admission planner
// ---------------------------------------------------------------------------

/// How an admission gate anchors to an earlier segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateKind {
    /// Wait for the segment to be fully done (its pages released):
    /// anchored at its Release task — or its Evicted task, which *is*
    /// the terminal of a preempted incarnation.
    Done,
    /// Wait for the segment's prefill to finish (its KV prefix is fully
    /// written — what a prefix sharer needs).
    PrefillDone,
}

/// A shared prompt prefix chosen by the planner.
#[derive(Debug, Clone, Copy)]
struct SharedPrefix {
    /// Segment whose table donates the blocks.
    donor_seg: usize,
    /// Shared tokens (a multiple of both the block and chunk sizes).
    tokens: usize,
}

/// One planned incarnation of a request.
#[derive(Debug)]
struct SegmentPlan {
    req: usize,
    attempt: usize,
    /// Preempted: ends in an Evicted task after prefill; no decode.
    evicted: bool,
    /// Admission gates on earlier segments.
    gates: Vec<(usize, GateKind)>,
    shared: Option<SharedPrefix>,
    /// Decode cohort id (`usize::MAX` for evicted segments).
    cohort: usize,
    /// Segments that fork this segment's blocks: their Admit must
    /// precede this segment's Release.
    sharer_segs: Vec<usize>,
}

/// Plan-time page bookkeeping: groups of physically co-released blocks.
#[derive(Debug)]
struct PlanGroup {
    blocks: usize,
    holders: usize,
}

struct Planner<'r> {
    requests: &'r [GenerationRequest],
    pool_cfg: PoolConfig,
    max_active: usize,
    pressure: PressurePolicy,
    share: bool,
    align: usize,
    segments: Vec<SegmentPlan>,
    groups: Vec<PlanGroup>,
    /// Groups each segment holds (its own + every group its shared
    /// donor held, transitively) — conservative co-release tracking.
    held: Vec<Vec<usize>>,
    /// Active segments in admission order.
    active: Vec<usize>,
    /// Latest planned segment of each request — a re-admission must
    /// gate on its evicted predecessor (they share the runtime cache
    /// slot, so the old incarnation's release must precede the new
    /// reservation).
    last_seg_of_req: Vec<Option<usize>>,
    free: usize,
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

fn common_prefix_len(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl<'r> Planner<'r> {
    /// The longest usable shared prefix between request `req` and any
    /// active segment: block- and chunk-aligned (so the sharer's suffix
    /// chunks line up with absolute positions), fully inside the donor's
    /// *prompt* (only prefilled pages are shareable), and leaving the
    /// sharer at least one suffix token to prefill.
    fn best_share(&self, req: usize) -> Option<SharedPrefix> {
        if !self.share {
            return None;
        }
        let prompt = &self.requests[req].prompt;
        let mut best: Option<SharedPrefix> = None;
        for &seg in &self.active {
            let donor_req = self.segments[seg].req;
            let lcp = common_prefix_len(prompt, &self.requests[donor_req].prompt);
            let cap = lcp.min(prompt.len() - 1);
            let aligned = cap - cap % self.align;
            if aligned == 0 {
                continue;
            }
            if best.is_none_or(|b| aligned > b.tokens) {
                best = Some(SharedPrefix {
                    donor_seg: seg,
                    tokens: aligned,
                });
            }
        }
        best
    }

    /// Fresh blocks segment needs beyond a shared prefix.
    fn fresh_blocks(&self, req: usize, shared_tokens: usize) -> usize {
        self.pool_cfg
            .blocks_for(self.requests[req].total_tokens() - shared_tokens)
    }

    /// Releases an active segment's planned pages (group holders
    /// decrement; fully released groups return to `free`).
    fn release_plan(&mut self, seg: usize) {
        let held = std::mem::take(&mut self.held[seg]);
        for g in held {
            self.groups[g].holders -= 1;
            if self.groups[g].holders == 0 {
                self.free += self.groups[g].blocks;
            }
        }
    }

    /// Plans the admission of one incarnation, returning its segment id.
    fn admit(
        &mut self,
        req: usize,
        attempt: usize,
        pending: &mut VecDeque<(usize, usize)>,
    ) -> Result<usize> {
        let mut shared = self.best_share(req);
        let mut gates: Vec<(usize, GateKind)> = Vec::new();
        if let Some(prev) = self.last_seg_of_req[req] {
            gates.push((prev, GateKind::Done));
        }
        loop {
            let need = self.fresh_blocks(req, shared.map_or(0, |s| s.tokens));
            if self.active.len() < self.max_active && need <= self.free {
                break;
            }
            if self.active.len() >= self.max_active {
                // Concurrency cap: wait for the earliest active request
                // (continuous batching's "a slot frees, the next joins").
                let seg = self.active.remove(0);
                self.release_plan(seg);
                self.forget_donor(&mut shared, seg);
                gates.push((seg, GateKind::Done));
                continue;
            }
            // Memory pressure.
            if self.pressure == PressurePolicy::EvictYoungest && attempt == 0 {
                // Youngest active that nobody shares pages from (a
                // donor's pages must outlive its sharers' admissions).
                let victim = (0..self.active.len()).rev().find(|&i| {
                    let seg = self.active[i];
                    self.segments[seg].sharer_segs.is_empty()
                        && shared.is_none_or(|s| s.donor_seg != seg)
                });
                if let Some(i) = victim {
                    let seg = self.active.remove(i);
                    self.segments[seg].evicted = true;
                    self.segments[seg].cohort = usize::MAX;
                    self.release_plan(seg);
                    gates.push((seg, GateKind::Done));
                    let (vr, va) = (self.segments[seg].req, self.segments[seg].attempt);
                    pending.push_front((vr, va + 1));
                    continue;
                }
            }
            // Wait for the earliest active request's pages.
            if self.active.is_empty() {
                return Err(Error::InvalidConfig {
                    what: format!(
                        "request {req} needs {need} KV pages but the pool has only {} total",
                        self.pool_cfg.blocks
                    ),
                });
            }
            let seg = self.active.remove(0);
            self.release_plan(seg);
            self.forget_donor(&mut shared, seg);
            gates.push((seg, GateKind::Done));
        }

        let seg = self.segments.len();
        let fresh = self.fresh_blocks(req, shared.map_or(0, |s| s.tokens));
        let own_group = self.groups.len();
        self.groups.push(PlanGroup {
            blocks: fresh,
            holders: 1,
        });
        self.free -= fresh;
        let mut held = vec![own_group];
        if let Some(s) = shared {
            // Hold everything the donor holds: those pages cannot be
            // counted free until this segment also releases.
            let donor_held = self.held[s.donor_seg].clone();
            for g in donor_held {
                self.groups[g].holders += 1;
                held.push(g);
            }
            gates.push((s.donor_seg, GateKind::PrefillDone));
            self.segments[s.donor_seg].sharer_segs.push(seg);
        }
        self.held.push(held);
        gates.sort_by_key(|&(g, k)| (g, k == GateKind::PrefillDone));
        gates.dedup();
        self.segments.push(SegmentPlan {
            req,
            attempt,
            evicted: false,
            gates,
            shared,
            cohort: usize::MAX,
            sharer_segs: Vec::new(),
        });
        self.last_seg_of_req[req] = Some(seg);
        self.active.push(seg);
        Ok(seg)
    }

    /// Drops a pending share whose donor just left the active set
    /// (its pages are no longer guaranteed resident at our admission).
    fn forget_donor(&self, shared: &mut Option<SharedPrefix>, seg: usize) {
        if shared.is_some_and(|s| s.donor_seg == seg) {
            *shared = None;
        }
    }
}

/// Plans every admission, eviction, and decode cohort for a batch.
fn plan_batch(
    requests: &[GenerationRequest],
    pool_cfg: &PoolConfig,
    chunk_len: usize,
    max_active: usize,
    pressure: PressurePolicy,
    share: bool,
    decode_batch: usize,
) -> Result<(Vec<SegmentPlan>, usize, usize)> {
    let mut planner = Planner {
        requests,
        pool_cfg: pool_cfg.clone(),
        max_active,
        pressure,
        share,
        align: lcm(pool_cfg.block_tokens, chunk_len),
        segments: Vec::new(),
        groups: Vec::new(),
        held: Vec::new(),
        active: Vec::new(),
        last_seg_of_req: vec![None; requests.len()],
        free: pool_cfg.blocks,
    };
    let mut pending: VecDeque<(usize, usize)> = (0..requests.len()).map(|r| (r, 0)).collect();
    while let Some((req, attempt)) = pending.pop_front() {
        planner.admit(req, attempt, &mut pending)?;
    }

    // Decode cohorts: consecutive surviving segments batch together
    // until the width cap, or until a segment *fully waits* on a cohort
    // member (a Done gate inside the cohort would deadlock the step
    // barrier; PrefillDone gates — prefix sharing — are fine).
    let mut cohorts = 0usize;
    let mut current: Vec<usize> = Vec::new();
    let n = planner.segments.len();
    for seg in 0..n {
        if planner.segments[seg].evicted {
            continue;
        }
        let waits_on_member = planner.segments[seg]
            .gates
            .iter()
            .any(|&(g, k)| k == GateKind::Done && current.contains(&g));
        if !current.is_empty() && (current.len() >= decode_batch || waits_on_member) {
            cohorts += 1;
            current.clear();
        }
        planner.segments[seg].cohort = cohorts;
        current.push(seg);
    }
    if !current.is_empty() {
        cohorts += 1;
    }
    let shared_blocks: usize = planner
        .segments
        .iter()
        .map(|s| s.shared.map_or(0, |sh| sh.tokens / pool_cfg.block_tokens))
        .sum();
    Ok((planner.segments, cohorts, shared_blocks))
}

// ---------------------------------------------------------------------------
// Runtime state and graph building
// ---------------------------------------------------------------------------

/// Mutable per-request generation state, touched only by the request's
/// own (serially chained) tasks — plus the cohort decode tasks, which
/// lock every member in a fixed order.
struct ReqState {
    sampler: Sampler,
    last_hidden: Option<Tensor<f32>>,
    tokens: Vec<u32>,
}

/// Build-time record of one segment's task ids.
struct SegBuild {
    admit: usize,
    prefill_finish: usize,
    /// Final decode task of the segment (set when its cohort's decode
    /// chain is flushed; `None` for evicted segments).
    last_decode: Option<usize>,
    release: Option<usize>,
}

impl LlmNpuEngine {
    /// Serves a queue of generation requests with continuous batching on
    /// this engine's pool: per-request chunked-prefill DAGs and decode
    /// chains interleave on the per-processor lanes under the engine's
    /// scheduling policy, honoring arrival times, the admission cap,
    /// and — new with the paged KV subsystem — the page budget of a
    /// shared [`BlockPool`], with prefix sharing, optional preemption
    /// under memory pressure, and batched decode GEMMs.
    ///
    /// `t` is the numeric transformer the requests run on (its
    /// configuration drives the per-request DAGs, exactly as in
    /// [`LlmNpuEngine::prefill_executed`]). Returns per-request token
    /// streams — bit-identical to solo [`Transformer::generate`] runs
    /// with `chunk_len = self.config().chunk_len` — plus serving
    /// metrics, the unified timeline, and the pool accounting.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty/invalid request (empty prompt, zero
    /// `max_new_tokens`, bad sampler config, non-finite or negative
    /// arrival), invalid options (zero caps or page sizes, a pool too
    /// small for some request, a pool exceeding the SoC's NPU-window
    /// budget), or any execution failure. On success the pool is
    /// verified page-leak-free.
    pub fn serve(
        &self,
        t: &Transformer<'_>,
        requests: &[GenerationRequest],
        opts: &ServeOptions,
    ) -> Result<ServeReport> {
        validate_inputs(requests, opts)?;
        let row_wise = t.backend_row_wise();
        let share = opts.share_prefixes && row_wise;
        let decode_batch = if row_wise { opts.decode_batch } else { 1 };

        // The paged pool: sized to the batch (no pressure) by default,
        // or to the caller's explicit page budget.
        let auto_blocks: usize = requests
            .iter()
            .map(|r| r.total_tokens().div_ceil(opts.block_tokens))
            .sum();
        let pool_cfg = PoolConfig {
            layers: t.config().layers,
            kv_dim: t.config().kv_dim(),
            block_tokens: opts.block_tokens,
            blocks: opts.kv_pool_blocks.unwrap_or(auto_blocks.max(1)),
        };
        for (r, req) in requests.iter().enumerate() {
            let need = pool_cfg.blocks_for(req.total_tokens());
            if need > pool_cfg.blocks {
                return Err(Error::InvalidConfig {
                    what: format!(
                        "request {r} needs {need} KV pages, pool holds {}",
                        pool_cfg.blocks
                    ),
                });
            }
        }
        let pool = Arc::new(BlockPool::new(pool_cfg.clone()).map_err(kv_err)?);
        // The pool is one slab in the SoC's NPU-addressable space: the
        // window (and DRAM budget) bound how much KV a device can serve.
        let mut mem = MemoryModel::new(&self.config().soc);
        mem.alloc(Processor::Npu, "paged-kv-pool", pool.bytes())?;

        if requests.is_empty() {
            return Ok(ServeReport {
                requests: Vec::new(),
                timeline: ServeTimeline::default(),
                kv: kv_report(&pool, opts, 0, 0),
            });
        }

        let (segments, cohort_count, shared_blocks) = plan_batch(
            requests,
            &pool_cfg,
            self.config().chunk_len,
            opts.max_active,
            opts.pressure,
            share,
            decode_batch,
        )?;
        let evictions = segments.iter().filter(|s| s.evicted).count();

        // Decode-task durations come from the shared context-aware decode
        // model, priced for the numeric model actually being served.
        let decode_proc = self.config().decode_processor;
        let dsim = DecodeSim::new(t.config().clone(), self.config().soc.clone(), decode_proc);

        // Per-request paged-cache slots and generation state.
        let slots: Vec<Mutex<Option<PagedKvCache>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        let states: Vec<Mutex<ReqState>> = requests
            .iter()
            .map(|req| {
                Ok(Mutex::new(ReqState {
                    sampler: Sampler::new(&req.sampler)?,
                    last_hidden: None,
                    tokens: Vec::with_capacity(req.max_new_tokens),
                }))
            })
            .collect::<Result<_>>()?;

        // Per-segment prefill machinery over the unshared suffix.
        let mut dags: Vec<PrefillDag> = Vec::with_capacity(segments.len());
        let mut plans: Vec<ChunkPlan> = Vec::with_capacity(segments.len());
        for seg in &segments {
            let shared_tokens = seg.shared.map_or(0, |s| s.tokens);
            let suffix_len = requests[seg.req].prompt.len() - shared_tokens;
            let dag_cfg = self.dag_config(suffix_len)?;
            plans.push(dag_cfg.plan.clone());
            dags.push(build_prefill_dag(
                t.config(),
                &dag_cfg,
                self.latency_model(),
            )?);
        }
        let mut programs: Vec<PrefillProgram<'_, '_>> = Vec::with_capacity(segments.len());
        for (s, seg) in segments.iter().enumerate() {
            let shared_tokens = seg.shared.map_or(0, |sh| sh.tokens);
            let suffix = &requests[seg.req].prompt[shared_tokens..];
            programs.push(PrefillProgram::new_paged(
                t,
                suffix,
                &dags[s],
                &plans[s],
                shared_tokens,
                &slots[seg.req],
            )?);
        }

        // ---- Build the combined lane graph --------------------------------
        let mut graph = LaneGraph::new();
        let mut closures: Vec<TaskFn<'_>> = Vec::new();
        let mut meta: Vec<(usize, usize, ServeTaskKind)> = Vec::new();
        let mut builds: Vec<SegBuild> = Vec::new();
        // Decode task id per (request, step) — the token stream spans.
        let mut token_tasks: Vec<Vec<usize>> =
            requests.iter().map(|r| vec![0; r.max_new_tokens]).collect();
        // Cohort id -> member segments, flushed when complete.
        let mut cohort_members: Vec<Vec<usize>> = vec![Vec::new(); cohort_count];
        let mut cohort_flushed: Vec<bool> = vec![false; cohort_count];

        // Flushing a cohort emits its batched decode chain + releases.
        // (Closure-free helper: needs many locals, so implemented as a
        // macro-like fn below via explicit parameters.)
        #[allow(clippy::too_many_arguments)]
        fn flush_cohort<'run>(
            c: usize,
            cohort_members: &[Vec<usize>],
            segments: &[SegmentPlan],
            requests: &'run [GenerationRequest],
            builds: &mut [SegBuild],
            graph: &mut LaneGraph,
            closures: &mut Vec<TaskFn<'run>>,
            meta: &mut Vec<(usize, usize, ServeTaskKind)>,
            token_tasks: &mut [Vec<usize>],
            states: &'run [Mutex<ReqState>],
            slots: &'run [Mutex<Option<PagedKvCache>>],
            t: &'run Transformer<'run>,
            dsim: &DecodeSim,
            decode_proc: Processor,
            on_token: Option<&'run TokenSink>,
        ) -> Result<()> {
            let members = &cohort_members[c];
            let mut chain_prev: Vec<usize> =
                members.iter().map(|&s| builds[s].prefill_finish).collect();
            let max_steps = members
                .iter()
                .map(|&s| requests[segments[s].req].max_new_tokens)
                .max()
                .unwrap_or(0);
            // `step` indexes into each member's per-request token-task
            // vec, not a single container — the range loop is the shape.
            #[allow(clippy::needless_range_loop)]
            for step in 0..max_steps {
                let active: Vec<usize> = (0..members.len())
                    .filter(|&i| step < requests[segments[members[i]].req].max_new_tokens)
                    .collect();
                let width = active.len();
                let mut deps: Vec<usize> = active.iter().map(|&i| chain_prev[i]).collect();
                deps.sort_unstable();
                deps.dedup();
                let duration = active
                    .iter()
                    .map(|&i| {
                        let req = segments[members[i]].req;
                        dsim.token_ms(requests[req].prompt.len() + step)
                    })
                    .fold(0.0, f64::max);
                let release = active
                    .iter()
                    .map(|&i| requests[segments[members[i]].req].arrival_ms)
                    .fold(0.0, f64::max);
                let first_req = segments[members[active[0]]].req;
                let (label, kind) = if width == 1 {
                    (
                        format!("R{first_req}-D{step}"),
                        ServeTaskKind::Decode { step },
                    )
                } else {
                    (
                        format!("C{c}-D{step}x{width}"),
                        ServeTaskKind::DecodeBatch { step, width },
                    )
                };
                let id = graph.push(
                    LaneTask {
                        label,
                        processor: decode_proc,
                        duration_ms: duration,
                        release_ms: release,
                    },
                    deps,
                )?;
                meta.push((first_req, segments[members[active[0]]].attempt, kind));
                let member_reqs: Vec<(usize, usize)> = active
                    .iter()
                    .map(|&i| {
                        let req = segments[members[i]].req;
                        (req, requests[req].prompt.len())
                    })
                    .collect();
                closures.push(Box::new(move || {
                    decode_step_body(&member_reqs, step, states, slots, t, on_token)
                }));
                for &i in &active {
                    chain_prev[i] = id;
                    token_tasks[segments[members[i]].req][step] = id;
                }
            }
            // Record each member's final decode task; the Release task
            // is emitted separately (and possibly later — it must wait
            // for every *sharer* of the member's blocks to have an
            // Admit task in the graph, and a sharer can be a segment
            // that is not built yet at an early cohort flush).
            for (i, &s) in members.iter().enumerate() {
                builds[s].last_decode = Some(chain_prev[i]);
            }
            Ok(())
        }

        /// Emits one segment's Release task: pages go back once the
        /// member's stream is done — but never before every sharer of
        /// its blocks has admitted. Callers must guarantee every sharer
        /// segment is already built (true when the release is demanded
        /// by a later segment's Done gate — sharers attach only while
        /// the donor is active, so they precede any Done-gater — and
        /// trivially true at the final sweep).
        #[allow(clippy::too_many_arguments)] // mirrors flush_cohort's plumbing
        fn emit_release<'run>(
            s: usize,
            segments: &[SegmentPlan],
            requests: &'run [GenerationRequest],
            builds: &mut [SegBuild],
            graph: &mut LaneGraph,
            closures: &mut Vec<TaskFn<'run>>,
            meta: &mut Vec<(usize, usize, ServeTaskKind)>,
            slots: &'run [Mutex<Option<PagedKvCache>>],
            decode_proc: Processor,
        ) -> Result<()> {
            let req = segments[s].req;
            let mut deps = vec![builds[s]
                .last_decode
                .expect("cohort flushed before release")];
            for &sharer in &segments[s].sharer_segs {
                deps.push(builds[sharer].admit);
            }
            deps.sort_unstable();
            deps.dedup();
            let id = graph.push(
                LaneTask {
                    label: format!("R{req}-Release"),
                    processor: decode_proc,
                    duration_ms: FINISH_TASK_MS,
                    release_ms: requests[req].arrival_ms,
                },
                deps,
            )?;
            meta.push((req, segments[s].attempt, ServeTaskKind::Release));
            let slot = &slots[req];
            closures.push(Box::new(move || release_slot(slot)));
            builds[s].release = Some(id);
            Ok(())
        }

        for (s, seg) in segments.iter().enumerate() {
            // Any Done gate on a normal segment needs that segment's
            // Release task — flush its cohort's decode chain, then emit
            // just *that* segment's Release (its sharers are all built:
            // they attached while the donor was active, i.e. before any
            // segment could gate Done on it).
            for &(g, kind) in &seg.gates {
                if kind == GateKind::Done && !segments[g].evicted {
                    let c = segments[g].cohort;
                    if !cohort_flushed[c] {
                        flush_cohort(
                            c,
                            &cohort_members,
                            &segments,
                            requests,
                            &mut builds,
                            &mut graph,
                            &mut closures,
                            &mut meta,
                            &mut token_tasks,
                            &states,
                            &slots,
                            t,
                            &dsim,
                            decode_proc,
                            opts.on_token.as_ref(),
                        )?;
                        cohort_flushed[c] = true;
                    }
                    if builds[g].release.is_none() {
                        emit_release(
                            g,
                            &segments,
                            requests,
                            &mut builds,
                            &mut graph,
                            &mut closures,
                            &mut meta,
                            &slots,
                            decode_proc,
                        )?;
                    }
                }
            }
            let req = seg.req;
            let request = &requests[req];
            let attempt = seg.attempt;
            let rlabel = if attempt == 0 {
                format!("R{req}")
            } else {
                format!("R{req}.{attempt}")
            };

            // Admission: reserve pages (forking the donor's prefix).
            let gate_deps: Vec<usize> = seg
                .gates
                .iter()
                .map(|&(g, kind)| match kind {
                    GateKind::PrefillDone => builds[g].prefill_finish,
                    GateKind::Done => {
                        if segments[g].evicted {
                            builds[g].prefill_finish
                        } else {
                            builds[g].release.expect("cohort flushed before gate")
                        }
                    }
                })
                .collect();
            let admit = graph.push(
                LaneTask {
                    label: format!("{rlabel}-Admit"),
                    processor: decode_proc,
                    duration_ms: FINISH_TASK_MS,
                    release_ms: request.arrival_ms,
                },
                gate_deps,
            )?;
            meta.push((req, attempt, ServeTaskKind::Admit));
            {
                let pool = Arc::clone(&pool);
                let slot = &slots[req];
                let donor_slot = seg.shared.map(|sh| &slots[segments[sh.donor_seg].req]);
                let shared_tokens = seg.shared.map_or(0, |sh| sh.tokens);
                let total = request.total_tokens();
                closures.push(Box::new(move || {
                    let cache = match donor_slot {
                        None => PagedKvCache::reserve(&pool, total).map_err(|e| e.to_string())?,
                        Some(d) => {
                            let guard = d.lock().expect("donor slot");
                            let donor = guard.as_ref().ok_or("prefix donor cache missing")?;
                            PagedKvCache::reserve_shared(&pool, donor, shared_tokens, total)
                                .map_err(|e| e.to_string())?
                        }
                    };
                    *slot.lock().expect("kv slot") = Some(cache);
                    Ok(())
                }));
            }

            // The suffix prefill DAG; roots wait on admission.
            let offset = graph.len();
            for (i, task) in dags[s].tasks().iter().enumerate() {
                let mut deps: Vec<usize> = dags[s].deps(i).iter().map(|&d| d + offset).collect();
                if deps.is_empty() {
                    deps.push(admit);
                }
                graph.push(
                    LaneTask {
                        label: format!("{rlabel}-{}", task.label),
                        processor: task.processor,
                        duration_ms: task.duration_ms,
                        release_ms: request.arrival_ms,
                    },
                    deps,
                )?;
                meta.push((
                    req,
                    attempt,
                    ServeTaskKind::PrefillStage {
                        chunk: task.chunk,
                        layer: task.layer,
                        stage: task.stage,
                        role: task.role,
                    },
                ));
            }
            closures.extend(programs[s].closures(&dags[s]));

            // Prefill terminal: last-hidden assembly — or, for a
            // preempted incarnation, the eviction (pages freed, work
            // discarded).
            let mut finish_deps: Vec<usize> =
                dag_sinks(&dags[s]).iter().map(|&k| k + offset).collect();
            if finish_deps.is_empty() {
                finish_deps.push(admit);
            }
            let (flabel, fkind) = if seg.evicted {
                (format!("{rlabel}-Evicted"), ServeTaskKind::Evicted)
            } else {
                (
                    format!("{rlabel}-PrefillFinish"),
                    ServeTaskKind::PrefillFinish,
                )
            };
            let finish = graph.push(
                LaneTask {
                    label: flabel,
                    processor: decode_proc,
                    duration_ms: FINISH_TASK_MS,
                    release_ms: request.arrival_ms,
                },
                finish_deps,
            )?;
            meta.push((req, attempt, fkind));
            if seg.evicted {
                let slot = &slots[req];
                closures.push(Box::new(move || release_slot(slot)));
            } else {
                let program = &programs[s];
                let state = &states[req];
                closures.push(Box::new(move || {
                    let last = program.last_hidden_row().map_err(|e| e.to_string())?;
                    state.lock().expect("request state").last_hidden = Some(last);
                    Ok(())
                }));
                cohort_members[seg.cohort].push(s);
            }
            builds.push(SegBuild {
                admit,
                prefill_finish: finish,
                last_decode: None,
                release: None,
            });
        }
        for (c, flushed) in cohort_flushed.iter_mut().enumerate() {
            if !*flushed {
                flush_cohort(
                    c,
                    &cohort_members,
                    &segments,
                    requests,
                    &mut builds,
                    &mut graph,
                    &mut closures,
                    &mut meta,
                    &mut token_tasks,
                    &states,
                    &slots,
                    t,
                    &dsim,
                    decode_proc,
                    opts.on_token.as_ref(),
                )?;
                *flushed = true;
            }
        }
        // Every surviving segment returns its pages (every segment is
        // built now, so sharer Admit ids all exist).
        for s in 0..segments.len() {
            if !segments[s].evicted && builds[s].release.is_none() {
                emit_release(
                    s,
                    &segments,
                    requests,
                    &mut builds,
                    &mut graph,
                    &mut closures,
                    &mut meta,
                    &slots,
                    decode_proc,
                )?;
            }
        }
        debug_assert_eq!(graph.len(), closures.len());
        debug_assert_eq!(graph.len(), meta.len());

        // ---- Run the combined graph on the engine's lanes -----------------
        let spans = self.pool().install_scope(|| {
            execute_lane_graph(&graph, closures, self.config().policy, self.pool())
        })?;

        // Belt and braces: whatever a failed path left behind, drain it
        // before accounting (normal runs already released everything).
        for slot in &slots {
            let _ = release_slot(slot);
        }

        // Unified timeline, completion order.
        let mut order: Vec<usize> = (0..graph.len()).collect();
        order.sort_by(|&a, &b| {
            spans[a]
                .1
                .partial_cmp(&spans[b].1)
                .expect("finite timestamps")
        });
        let mut timeline = ServeTimeline::default();
        for i in order {
            let (request, attempt, kind) = meta[i];
            timeline.spans.push(ServeSpan {
                request,
                attempt,
                label: graph.tasks()[i].label.clone(),
                kind,
                processor: graph.tasks()[i].processor,
                start_ms: spans[i].0,
                end_ms: spans[i].1,
            });
        }

        // Per-request metrics + token streams.
        let mut outcomes = Vec::with_capacity(requests.len());
        for (r, req) in requests.iter().enumerate() {
            let st = states[r].lock().expect("request state");
            if st.tokens.len() != req.max_new_tokens {
                return Err(Error::InvalidConfig {
                    what: format!(
                        "request {r} produced {} of {} tokens",
                        st.tokens.len(),
                        req.max_new_tokens
                    ),
                });
            }
            let attempts = segments.iter().filter(|s| s.req == r).count();
            let final_seg = segments
                .iter()
                .position(|s| s.req == r && !s.evicted)
                .expect("every request has a surviving incarnation");
            let first_dispatch_ms = meta
                .iter()
                .enumerate()
                .filter(|(_, &(mr, _, _))| mr == r)
                .map(|(i, _)| spans[i].0)
                .fold(f64::INFINITY, f64::min);
            let token_times_ms: Vec<f64> = token_tasks[r].iter().map(|&i| spans[i].1).collect();
            outcomes.push(RequestOutcome {
                request: r,
                tokens: st.tokens.clone(),
                finish_ms: token_times_ms.last().copied().unwrap_or(0.0),
                token_times_ms,
                arrival_ms: req.arrival_ms,
                first_dispatch_ms,
                prefill_done_ms: spans[builds[final_seg].prefill_finish].1,
                attempts,
            });
        }

        let kv = kv_report(&pool, opts, evictions, shared_blocks);
        if kv.leaked_blocks != 0 {
            return Err(Error::InvalidConfig {
                what: format!("{} KV pages leaked after serve", kv.leaked_blocks),
            });
        }
        mem.free(Processor::Npu, "paged-kv-pool");
        Ok(ServeReport {
            requests: outcomes,
            timeline,
            kv,
        })
    }
}

/// The numeric body of one (possibly batched) decode step: forward every
/// member's previous token through one `m = B` stacked forward, then
/// project + sample each member's next token, emitting it to the sink.
fn decode_step_body(
    member_reqs: &[(usize, usize)],
    step: usize,
    states: &[Mutex<ReqState>],
    slots: &[Mutex<Option<PagedKvCache>>],
    t: &Transformer<'_>,
    on_token: Option<&TokenSink>,
) -> std::result::Result<(), String> {
    // Lock members in fixed (request) order.
    let mut state_guards: Vec<_> = member_reqs
        .iter()
        .map(|&(r, _)| states[r].lock().expect("request state"))
        .collect();
    if step > 0 {
        // Forward every member's token `step - 1`: one batched GEMM per
        // linear site, per-request paged KV appends and attention.
        let tokens: Vec<u32> = state_guards
            .iter()
            .map(|g| {
                g.tokens
                    .get(step - 1)
                    .copied()
                    .ok_or("missing previous token")
            })
            .collect::<std::result::Result<_, _>>()?;
        let mut slot_guards: Vec<_> = member_reqs
            .iter()
            .map(|&(r, _)| slots[r].lock().expect("kv slot"))
            .collect();
        let mut entries: Vec<PagedDecodeEntry<'_>> = Vec::with_capacity(member_reqs.len());
        for ((guard, &(_, prompt_len)), &token) in
            slot_guards.iter_mut().zip(member_reqs).zip(&tokens)
        {
            entries.push(PagedDecodeEntry {
                token,
                pos: prompt_len + step - 1,
                kv: guard.as_mut().ok_or("missing kv cache")?,
            });
        }
        let h = t
            .decode_forward_batch(&mut entries)
            .map_err(|e| e.to_string())?;
        let (_, hidden) = h.matrix_dims();
        for (i, g) in state_guards.iter_mut().enumerate() {
            g.last_hidden =
                Some(Tensor::from_vec(h.row(i).to_vec(), [1, hidden]).map_err(|e| e.to_string())?);
        }
    }
    // LM head over the stacked last-hidden rows (one m = B GEMM), then
    // per-member seeded sampling.
    let hidden = t.config().hidden;
    let mut stacked = Vec::with_capacity(member_reqs.len() * hidden);
    for g in &state_guards {
        stacked.extend_from_slice(g.last_hidden.as_ref().ok_or("missing hidden state")?.row(0));
    }
    let stacked =
        Tensor::from_vec(stacked, [member_reqs.len(), hidden]).map_err(|e| e.to_string())?;
    let logits = t.logits(&stacked).map_err(|e| e.to_string())?;
    for (i, g) in state_guards.iter_mut().enumerate() {
        let token = g.sampler.sample(logits.row(i)).map_err(|e| e.to_string())?;
        g.tokens.push(token);
        if let Some(sink) = on_token {
            sink(&TokenEvent {
                request: member_reqs[i].0,
                step,
                token,
            });
        }
    }
    Ok(())
}

/// Returns a request's pages to the pool (eviction or completion).
fn release_slot(slot: &Mutex<Option<PagedKvCache>>) -> std::result::Result<(), String> {
    if let Some(mut cache) = slot.lock().expect("kv slot").take() {
        cache.release().map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn kv_report(
    pool: &BlockPool,
    opts: &ServeOptions,
    evictions: usize,
    shared_blocks: usize,
) -> KvPoolReport {
    let stats = pool.stats();
    KvPoolReport {
        block_tokens: opts.block_tokens,
        pool_blocks: stats.total_blocks,
        pool_bytes: stats.bytes,
        peak_used_blocks: stats.peak_used_blocks,
        leaked_blocks: stats.used_blocks,
        evictions,
        shared_prefix_blocks: shared_blocks,
        cow_copies: stats.cow_copies,
    }
}

fn validate_inputs(requests: &[GenerationRequest], opts: &ServeOptions) -> Result<()> {
    if opts.max_active == 0 {
        return Err(Error::InvalidConfig {
            what: "max_active must be at least 1".to_owned(),
        });
    }
    if opts.block_tokens == 0 {
        return Err(Error::InvalidConfig {
            what: "block_tokens must be at least 1".to_owned(),
        });
    }
    if opts.decode_batch == 0 {
        return Err(Error::InvalidConfig {
            what: "decode_batch must be at least 1".to_owned(),
        });
    }
    if opts.kv_pool_blocks == Some(0) {
        return Err(Error::InvalidConfig {
            what: "kv_pool_blocks must be at least 1".to_owned(),
        });
    }
    for (r, req) in requests.iter().enumerate() {
        if req.prompt.is_empty() {
            return Err(Error::InvalidConfig {
                what: format!("request {r} has an empty prompt"),
            });
        }
        if req.max_new_tokens == 0 {
            return Err(Error::InvalidConfig {
                what: format!("request {r} asks for zero tokens"),
            });
        }
        if !req.arrival_ms.is_finite() || req.arrival_ms < 0.0 {
            return Err(Error::InvalidConfig {
                what: format!("request {r} has invalid arrival {}", req.arrival_ms),
            });
        }
    }
    Ok(())
}

fn kv_err(e: llmnpu_kv::Error) -> Error {
    Error::InvalidConfig {
        what: format!("kv pool: {e}"),
    }
}

/// Tasks of a DAG with no in-DAG successors (everything a prefill-finish
/// task must wait for).
fn dag_sinks(dag: &PrefillDag) -> Vec<usize> {
    let mut has_successor = vec![false; dag.len()];
    for t in 0..dag.len() {
        for &d in dag.deps(t) {
            has_successor[d] = true;
        }
    }
    (0..dag.len()).filter(|&t| !has_successor[t]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders_compose() {
        let r = GenerationRequest::new(vec![1, 2, 3], 4)
            .with_sampler(SamplerConfig::top_k(5, 0.8, 7))
            .with_arrival_ms(12.5);
        assert_eq!(r.max_new_tokens, 4);
        assert_eq!(r.sampler.top_k, Some(5));
        assert!((r.arrival_ms - 12.5).abs() < 1e-12);
        assert_eq!(r.total_tokens(), 7);
    }

    #[test]
    fn outcome_metrics_derive() {
        let o = RequestOutcome {
            request: 0,
            tokens: vec![1, 2],
            token_times_ms: vec![30.0, 40.0],
            arrival_ms: 5.0,
            first_dispatch_ms: 10.0,
            prefill_done_ms: 20.0,
            finish_ms: 40.0,
            attempts: 1,
        };
        assert!((o.queue_wait_ms() - 5.0).abs() < 1e-12);
        assert!((o.ttft_ms() - 25.0).abs() < 1e-12);
        assert!((o.decode_tokens_per_s() - 100.0).abs() < 1e-9);
    }

    fn span(request: usize, attempt: usize, kind: ServeTaskKind, lo: f64, hi: f64) -> ServeSpan {
        ServeSpan {
            request,
            attempt,
            label: format!("R{request}"),
            kind,
            processor: Processor::Cpu,
            start_ms: lo,
            end_ms: hi,
        }
    }

    #[test]
    fn interleave_witness_logic() {
        let mut tl = ServeTimeline::default();
        tl.spans.push(ServeSpan {
            request: 1,
            attempt: 0,
            label: "R1-C0-L0-AttnPre".to_owned(),
            kind: ServeTaskKind::PrefillStage {
                chunk: 0,
                layer: 0,
                stage: Stage::AttnPre,
                role: TaskRole::Main,
            },
            processor: Processor::Npu,
            start_ms: 0.0,
            end_ms: 10.0,
        });
        // Decode of request 0 strictly after request 1's prefill window:
        // not interleaved.
        tl.spans
            .push(span(0, 0, ServeTaskKind::Decode { step: 0 }, 11.0, 12.0));
        assert!(!tl.decode_interleaved_with_prefill());
        // A decode span inside the window flips the witness — batched
        // spans count too.
        tl.spans.push(span(
            0,
            0,
            ServeTaskKind::DecodeBatch { step: 1, width: 2 },
            4.0,
            6.0,
        ));
        assert!(tl.decode_interleaved_with_prefill());
    }

    #[test]
    fn eviction_witness_logic() {
        let mut tl = ServeTimeline::default();
        tl.spans.push(span(2, 0, ServeTaskKind::Evicted, 5.0, 5.1));
        assert!(!tl.evicted_and_recomputed(2), "no recompute yet");
        tl.spans.push(ServeSpan {
            request: 2,
            attempt: 1,
            label: "R2.1-C0-L0-AttnPre".to_owned(),
            kind: ServeTaskKind::PrefillStage {
                chunk: 0,
                layer: 0,
                stage: Stage::AttnPre,
                role: TaskRole::Main,
            },
            processor: Processor::Npu,
            start_ms: 6.0,
            end_ms: 7.0,
        });
        assert!(tl.evicted_and_recomputed(2));
        assert!(!tl.evicted_and_recomputed(0));
    }

    fn reqs(shapes: &[(usize, usize)]) -> Vec<GenerationRequest> {
        shapes
            .iter()
            .map(|&(p, n)| GenerationRequest::new((0..p as u32).collect(), n))
            .collect()
    }

    fn cfg(block_tokens: usize, blocks: usize) -> PoolConfig {
        PoolConfig {
            layers: 2,
            kv_dim: 8,
            block_tokens,
            blocks,
        }
    }

    #[test]
    fn planner_matches_count_gating_when_pages_ample() {
        // Ample pages: the plan degenerates to the classic
        // `r gates on r - max_active` continuous-batching structure.
        let requests = reqs(&[(8, 4), (8, 4), (8, 4), (8, 4)]);
        let (segs, _, _) = plan_batch(
            &requests,
            &cfg(4, 100),
            4,
            2,
            PressurePolicy::EvictYoungest,
            false,
            1,
        )
        .unwrap();
        assert_eq!(segs.len(), 4);
        assert!(segs.iter().all(|s| !s.evicted));
        assert!(segs[0].gates.is_empty());
        assert!(segs[1].gates.is_empty());
        assert_eq!(segs[2].gates, vec![(0, GateKind::Done)]);
        assert_eq!(segs[3].gates, vec![(1, GateKind::Done)]);
    }

    #[test]
    fn planner_evicts_youngest_and_requeues_with_recompute() {
        // Pool of 6 pages, 4-token pages; each request needs 3 pages
        // (8 + 4 = 12 tokens). Request 2 cannot fit alongside 0 and 1:
        // under EvictYoungest it preempts request 1, which is replanned
        // *after* request 2.
        let requests = reqs(&[(8, 4), (8, 4), (8, 4)]);
        let (segs, _, _) = plan_batch(
            &requests,
            &cfg(4, 6),
            4,
            8,
            PressurePolicy::EvictYoungest,
            false,
            1,
        )
        .unwrap();
        assert_eq!(segs.len(), 4, "one extra incarnation for the victim");
        assert!(segs[1].evicted, "request 1's first incarnation preempted");
        assert_eq!(segs[2].req, 2);
        assert!(
            segs[2].gates.contains(&(1, GateKind::Done)),
            "preemptor waits for the eviction to free pages"
        );
        let requeued = &segs[3];
        assert_eq!((requeued.req, requeued.attempt), (1, 1));
        assert!(!requeued.evicted);
    }

    #[test]
    fn planner_waits_under_wait_policy() {
        let requests = reqs(&[(8, 4), (8, 4), (8, 4)]);
        let (segs, _, _) =
            plan_batch(&requests, &cfg(4, 6), 4, 8, PressurePolicy::Wait, false, 1).unwrap();
        assert_eq!(segs.len(), 3, "no evictions under Wait");
        assert!(segs.iter().all(|s| !s.evicted));
        assert_eq!(segs[2].gates, vec![(0, GateKind::Done)]);
    }

    #[test]
    fn planner_rejects_impossible_requests() {
        let requests = reqs(&[(40, 8)]);
        let err = plan_batch(
            &requests,
            &cfg(4, 4),
            4,
            2,
            PressurePolicy::EvictYoungest,
            false,
            1,
        )
        .unwrap_err();
        assert!(err.to_string().contains("KV pages"));
    }

    #[test]
    fn planner_shares_aligned_prefixes() {
        // Identical 16-token prompts, 4-token pages, chunk 4 → the
        // first 12 tokens (leaving ≥1 suffix token, aligned down to 12)
        // are shareable.
        let mut requests = reqs(&[(16, 4), (16, 4)]);
        requests[1].prompt = requests[0].prompt.clone();
        let (segs, _, shared_blocks) = plan_batch(
            &requests,
            &cfg(4, 100),
            4,
            4,
            PressurePolicy::EvictYoungest,
            true,
            1,
        )
        .unwrap();
        let sh = segs[1].shared.expect("request 1 shares request 0's prefix");
        assert_eq!(sh.donor_seg, 0);
        assert_eq!(sh.tokens, 12);
        assert_eq!(shared_blocks, 3);
        assert!(segs[1].gates.contains(&(0, GateKind::PrefillDone)));
        assert_eq!(segs[0].sharer_segs, vec![1]);
    }

    #[test]
    fn planner_cohorts_respect_width_and_gates() {
        let requests = reqs(&[(8, 4), (8, 4), (8, 4), (8, 4)]);
        // max_active 2 → segment 2 gates Done on 0, breaking its cohort.
        let (segs, cohorts, _) = plan_batch(
            &requests,
            &cfg(4, 100),
            4,
            2,
            PressurePolicy::EvictYoungest,
            false,
            4,
        )
        .unwrap();
        assert_eq!(cohorts, 2);
        assert_eq!(segs[0].cohort, segs[1].cohort);
        assert_ne!(segs[1].cohort, segs[2].cohort);
        assert_eq!(segs[2].cohort, segs[3].cohort);
    }

    #[test]
    fn options_debug_does_not_require_sink_debug() {
        let o = ServeOptions {
            on_token: Some(Arc::new(|_| {})),
            ..ServeOptions::default()
        };
        let s = format!("{o:?}");
        assert!(s.contains("on_token"));
    }
}
