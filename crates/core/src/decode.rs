//! Decode-stage simulation.
//!
//! llm.npu is "compatible with any decoding engine and utilizes the MLLM
//! CPU backend for decoding stage as easy implementation" (§4). Decoding
//! is memory-bound — each generated token streams every weight byte
//! through the decode processor once — so the interesting structure is
//! not FLOPs but the per-token timeline: weight streaming, attention over
//! the growing KV cache, and the sampling step. This module produces that
//! timeline so end-to-end energy and the GPU-vs-CPU decode comparison
//! (Figure 18b) come from the same discrete-event machinery as prefill.
//!
//! [`DecodeSim::token_ms`] is the **single** decode-latency model of the
//! repository: `LlmNpuEngine::e2e`, every baseline's `Engine::e2e`, and
//! the serving scheduler's modeled decode-task durations all route
//! through it (the engine used to carry a second, context-free copy that
//! silently dropped the attention term — so `e2e` decode never grew with
//! context; that drift is exactly what this consolidation fixes).

use llmnpu_model::config::ModelConfig;
use llmnpu_soc::des::Simulator;
use llmnpu_soc::latency::LatencyModel;
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::{DataType, Joules, Millis, Processor};

use crate::Result;

/// Outcome of a simulated decode phase.
#[derive(Debug, Clone)]
pub struct DecodeReport {
    /// Tokens generated.
    pub tokens: usize,
    /// Total decode latency.
    pub latency_ms: Millis,
    /// Decode throughput.
    pub tokens_per_s: f64,
    /// Energy over the decode window.
    pub energy_j: Joules,
    /// Per-token completion times (monotonically increasing).
    pub token_times_ms: Vec<Millis>,
}

/// Decode simulator for one model/device/backend combination.
#[derive(Debug, Clone)]
pub struct DecodeSim {
    model: ModelConfig,
    soc: SocSpec,
    lat: LatencyModel,
    processor: Processor,
}

impl DecodeSim {
    /// Creates a decode simulator on the given backend processor.
    #[must_use]
    pub fn new(model: ModelConfig, soc: SocSpec, processor: Processor) -> Self {
        let lat = LatencyModel::new(&soc);
        DecodeSim {
            model,
            soc,
            lat,
            processor,
        }
    }

    /// Latency of generating the `n`-th new token when the context already
    /// holds `context_len` tokens.
    ///
    /// Components: weight streaming (memory-bound), attention over the
    /// KV cache, and per-layer dispatch.
    #[must_use]
    pub fn token_ms(&self, context_len: usize) -> Millis {
        let ps = self.soc.proc(self.processor);
        let weight_ms = self.model.weight_bytes_int8() as f64 / (ps.mem_bw_gbps * 1e6);
        let attention_ms = self.lat.attention_ms(
            self.processor,
            DataType::Fp16,
            1,
            context_len.max(1),
            self.model.q_dim(),
        ) * self.model.layers as f64;
        let dispatch = ps.dispatch_overhead_ms * self.model.layers as f64 * 9.0;
        weight_ms + attention_ms + dispatch
    }

    /// The decode processor this simulator prices.
    #[must_use]
    pub fn processor(&self) -> Processor {
        self.processor
    }

    /// Total latency of decoding `tokens` new tokens after a
    /// `prompt_len` prefill — the closed-form sum of the per-token
    /// context-aware model, numerically identical to
    /// [`DecodeSim::run`]'s makespan (pinned by a regression test in the
    /// engine: the two must never drift apart again).
    #[must_use]
    pub fn total_ms(&self, prompt_len: usize, tokens: usize) -> Millis {
        let mut total = 0.0;
        for i in 0..tokens {
            total += self.token_ms(prompt_len + i);
        }
        total
    }

    /// Simulates decoding `tokens` new tokens after a `prompt_len` prefill.
    ///
    /// # Errors
    ///
    /// Returns an error if the simulator rejects a task (cannot happen for
    /// valid inputs; kept for API uniformity).
    pub fn run(&self, prompt_len: usize, tokens: usize) -> Result<DecodeReport> {
        let mut sim = Simulator::new();
        let mut token_times = Vec::with_capacity(tokens);
        for i in 0..tokens {
            let context = prompt_len + i;
            let end = sim.run(
                format!("decode-{i}"),
                self.processor,
                0.0,
                self.token_ms(context),
            )?;
            token_times.push(end);
        }
        let timeline = sim.into_timeline();
        let latency_ms = timeline.makespan();
        let energy_j = timeline.energy(&self.soc);
        Ok(DecodeReport {
            tokens,
            latency_ms,
            tokens_per_s: if latency_ms > 0.0 {
                tokens as f64 / (latency_ms / 1e3)
            } else {
                0.0
            },
            energy_j,
            token_times_ms: token_times,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(p: Processor) -> DecodeSim {
        DecodeSim::new(ModelConfig::qwen15_18b(), SocSpec::snapdragon_8gen3(), p)
    }

    #[test]
    fn decode_speed_matches_table5_band() {
        // Table 5 decode: ~12–16 tok/s for Qwen on the CPU backend.
        let report = sim(Processor::Cpu).run(700, 16).unwrap();
        assert!(
            (8.0..25.0).contains(&report.tokens_per_s),
            "decode {:.1} tok/s",
            report.tokens_per_s
        );
        assert_eq!(report.tokens, 16);
        assert_eq!(report.token_times_ms.len(), 16);
    }

    #[test]
    fn token_times_are_monotone_and_slow_down_with_context() {
        let s = sim(Processor::Cpu);
        let report = s.run(100, 8).unwrap();
        for w in report.token_times_ms.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Longer context → costlier attention per token.
        assert!(s.token_ms(4000) > s.token_ms(100));
    }

    #[test]
    fn total_ms_matches_simulated_run() {
        // The closed-form sum and the discrete-event run are the same
        // model; they must agree to the bit.
        let s = sim(Processor::Cpu);
        for (prompt, tokens) in [(700usize, 16usize), (64, 4), (1500, 1), (10, 0)] {
            let r = s.run(prompt, tokens).unwrap();
            assert!(
                (s.total_ms(prompt, tokens) - r.latency_ms).abs() < 1e-9,
                "({prompt}, {tokens}): {} vs {}",
                s.total_ms(prompt, tokens),
                r.latency_ms
            );
        }
    }

    #[test]
    fn gpu_decode_is_faster_than_cpu() {
        // Figure 18(b)'s premise.
        let cpu = sim(Processor::Cpu).run(1500, 4).unwrap();
        let gpu = sim(Processor::Gpu).run(1500, 4).unwrap();
        assert!(gpu.latency_ms < cpu.latency_ms);
    }

    #[test]
    fn decode_is_memory_bound() {
        // Weight streaming dominates: more than half of per-token latency
        // at short contexts.
        let s = sim(Processor::Cpu);
        let ps = SocSpec::snapdragon_8gen3();
        let weight_ms =
            ModelConfig::qwen15_18b().weight_bytes_int8() as f64 / (ps.cpu.mem_bw_gbps * 1e6);
        assert!(weight_ms > 0.5 * s.token_ms(64));
    }

    #[test]
    fn bigger_models_decode_slower() {
        let small = sim(Processor::Cpu).token_ms(500);
        let big = DecodeSim::new(
            ModelConfig::llama2_7b(),
            SocSpec::snapdragon_8gen3(),
            Processor::Cpu,
        )
        .token_ms(500);
        assert!(big > 2.5 * small);
    }

    #[test]
    fn zero_tokens_is_empty_report() {
        let report = sim(Processor::Cpu).run(100, 0).unwrap();
        assert_eq!(report.latency_ms, 0.0);
        assert_eq!(report.tokens_per_s, 0.0);
        assert!(report.token_times_ms.is_empty());
    }
}
