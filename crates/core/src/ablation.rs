//! The Figure 19 ablation ladder.
//!
//! Five rungs, each adding one of llm.npu's techniques on top of the
//! previous configuration:
//!
//! 1. **CPU** — llama.cpp on the mobile CPU.
//! 2. **Naive** — direct NPU offload: monolithic per-prompt graph
//!    (rebuilt every inference), per-group MatMul, no overlap. Slower
//!    than the CPU (§2.3 / Figure 19's 2.55–2.68× delay).
//! 3. **+Chunk** — pre-built chunk-sharing graphs remove the rebuild and
//!    enable pipelined (FIFO) CPU/NPU overlap; still per-group.
//! 4. **+Outlier** — shadow outlier execution replaces per-group with
//!    NPU-native per-tensor MatMul (the big jump: ~4–9×).
//! 5. **+OOE** — out-of-order subgraph scheduling removes the remaining
//!    NPU bubbles (18–44%).

use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, DagConfig};
use llmnpu_model::config::ModelConfig;
use llmnpu_sched::{schedule, Policy};
use llmnpu_soc::latency::LatencyModel;
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::Processor;

use crate::baselines::{AnalyticEngine, BaselineKind, Engine, NaiveNpu};
use crate::report::PrefillReport;
use crate::Result;

/// One rung of the ablation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AblationStep {
    /// llama.cpp-CPU reference.
    Cpu,
    /// Direct NPU port (rebuild + per-group + serial).
    Naive,
    /// + chunk-sharing graphs (pre-built, FIFO overlap).
    Chunk,
    /// + shadow outlier execution (per-tensor NPU MatMul).
    Outlier,
    /// + out-of-order scheduling (= full llm.npu).
    OutOfOrder,
}

impl AblationStep {
    /// All rungs in Figure 19's order.
    pub const LADDER: [AblationStep; 5] = [
        AblationStep::Cpu,
        AblationStep::Naive,
        AblationStep::Chunk,
        AblationStep::Outlier,
        AblationStep::OutOfOrder,
    ];

    /// Bar label as in Figure 19.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AblationStep::Cpu => "CPU",
            AblationStep::Naive => "Naive",
            AblationStep::Chunk => "Naive + Chunk",
            AblationStep::Outlier => "Naive + Chunk + Outlier",
            AblationStep::OutOfOrder => "Naive + Chunk + Outlier + OOE",
        }
    }
}

/// Runs one ablation rung for a model/device/prompt.
///
/// # Errors
///
/// Returns an error on invalid configuration or scheduling failure.
pub fn run_step(
    step: AblationStep,
    model: &ModelConfig,
    soc: &SocSpec,
    prompt_len: usize,
) -> Result<PrefillReport> {
    match step {
        AblationStep::Cpu => {
            AnalyticEngine::new(BaselineKind::LlamaCppCpu, model.clone(), soc.clone())
                .prefill(prompt_len)
        }
        AblationStep::Naive => NaiveNpu::new(model.clone(), soc.clone()).prefill(prompt_len),
        AblationStep::Chunk | AblationStep::Outlier | AblationStep::OutOfOrder => {
            let (group, shadow, shape_opt) = match step {
                AblationStep::Chunk => (Some(NaiveNpu::GROUP_SIZE), 0.0, false),
                _ => (None, 0.15, true),
            };
            let policy = if step == AblationStep::OutOfOrder {
                Policy::OutOfOrder
            } else {
                Policy::FifoQueues
            };
            let lat = LatencyModel::new(soc);
            let dag_cfg = DagConfig {
                plan: ChunkPlan::new(prompt_len, 256)?,
                float_processor: Processor::Cpu,
                shadow_fraction: shadow,
                outlier_channels: 10,
                shape_optimized: shape_opt,
                npu_group_size: group,
            };
            let dag = build_prefill_dag(model, &dag_cfg, &lat)?;
            let outcome = schedule(&dag, policy)?;
            let energy = outcome.timeline.energy(soc);
            Ok(PrefillReport::new(
                prompt_len,
                outcome.makespan_ms,
                energy,
                outcome.npu_bubble_rate,
                Some(outcome.timeline),
            ))
        }
    }
}

/// Runs the full ladder, returning `(step, prefill tokens/s)` pairs.
///
/// # Errors
///
/// Returns an error if any rung fails.
pub fn run_ladder(
    model: &ModelConfig,
    soc: &SocSpec,
    prompt_len: usize,
) -> Result<Vec<(AblationStep, f64)>> {
    AblationStep::LADDER
        .iter()
        .map(|&step| run_step(step, model, soc, prompt_len).map(|r| (step, r.tokens_per_s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder(model: ModelConfig) -> Vec<(AblationStep, f64)> {
        run_ladder(&model, &SocSpec::snapdragon_8gen3(), 512).unwrap()
    }

    #[test]
    fn ladder_shape_matches_figure19_qwen() {
        // Figure 19 (Qwen1.5-1.8B, prompt 512): CPU 65 → Naive 25 →
        // +Chunk 37 → +Outlier 395 → +OOE 569 tokens/s. We require the
        // qualitative shape: naive < cpu < chunk-rung… actually chunk can
        // sit near cpu; the defining features are (a) naive is the slowest,
        // (b) outlier is the big jump, (c) OOE adds 15%+.
        let l = ladder(ModelConfig::qwen15_18b());
        let speed: Vec<f64> = l.iter().map(|(_, s)| *s).collect();
        let (cpu, naive, chunk, outlier, ooe) = (speed[0], speed[1], speed[2], speed[3], speed[4]);
        assert!(naive < cpu, "naive {naive:.0} should lose to cpu {cpu:.0}");
        assert!(
            chunk > naive,
            "chunk {chunk:.0} should beat naive {naive:.0}"
        );
        assert!(
            outlier > 3.0 * chunk,
            "outlier {outlier:.0} should be the big jump over {chunk:.0}"
        );
        assert!(
            ooe > outlier * 1.1,
            "ooe {ooe:.0} should add ≥10% over {outlier:.0}"
        );
    }

    #[test]
    fn ladder_absolute_speeds_near_paper_qwen() {
        // Loose absolute bands around Figure 19's Qwen bars.
        let l = ladder(ModelConfig::qwen15_18b());
        let speed: Vec<f64> = l.iter().map(|(_, s)| *s).collect();
        assert!((30.0..130.0).contains(&speed[0]), "cpu {:.0}", speed[0]);
        assert!((8.0..60.0).contains(&speed[1]), "naive {:.0}", speed[1]);
        assert!((15.0..120.0).contains(&speed[2]), "chunk {:.0}", speed[2]);
        assert!(
            (200.0..1100.0).contains(&speed[3]),
            "outlier {:.0}",
            speed[3]
        );
        assert!((300.0..1500.0).contains(&speed[4]), "ooe {:.0}", speed[4]);
    }

    #[test]
    fn ladder_works_for_llama7b() {
        // Figure 19 also reports LLaMA-2-7B: CPU 13 → … → 186 tokens/s.
        let l = ladder(ModelConfig::llama2_7b());
        let speed: Vec<f64> = l.iter().map(|(_, s)| *s).collect();
        assert!(speed[1] < speed[0]);
        assert!(
            speed[4] > 5.0 * speed[0],
            "ooe {:.0} vs cpu {:.0}",
            speed[4],
            speed[0]
        );
    }

    #[test]
    fn labels_match_figure() {
        assert_eq!(AblationStep::Cpu.label(), "CPU");
        assert_eq!(
            AblationStep::OutOfOrder.label(),
            "Naive + Chunk + Outlier + OOE"
        );
        assert_eq!(AblationStep::LADDER.len(), 5);
    }
}
