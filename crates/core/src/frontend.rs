//! Long-running **streaming front-end** over the serving plane.
//!
//! [`LlmNpuEngine::serve`](crate::serve) answers one batch and tears
//! everything down. A deployed on-device assistant is not a batch: it
//! is a *process* that accepts requests whenever they arrive, streams
//! tokens back per request as they are produced, and keeps warm state
//! — the [`ServeSession`](crate::serve::ServeSession)'s paged pool and global radix prefix cache —
//! alive between arrivals so a shared system prompt is prefilled once,
//! not once per batch.
//!
//! This module is that process, built on nothing but `std::sync::mpsc`:
//!
//! * [`frontend`] splits into a cloneable [`FrontendClient`] (the
//!   submit side — any number of caller threads) and a [`Frontend`]
//!   (the engine side — one serving loop).
//! * [`FrontendClient::submit`] enqueues a [`GenerationRequest`] and
//!   returns a [`StreamHandle`] immediately: a private channel carrying
//!   [`StreamEvent::Token`] for every generated token and exactly one
//!   terminal [`StreamEvent::Finished`] with the request's full
//!   [`RequestOutcome`]. The handle also carries the request's
//!   [`CancelToken`], so a caller can abandon a stream mid-flight.
//! * [`Frontend::run`] opens one [`ServeSession`](crate::serve::ServeSession) and loops: block for
//!   the next arrival, drain everything else that is already queued
//!   into the same batch (natural batching — a burst becomes one
//!   serving round, a trickle becomes many small ones), serve the
//!   batch with [`LlmNpuEngine::serve_with_session`], and fan the
//!   per-request outcomes back out to their handles. The loop ends
//!   when a client calls [`FrontendClient::shutdown`] or every client
//!   handle has been dropped; the session is then flushed, which
//!   *proves* zero pages leaked over the whole run.
//!
//! Cancellation, deadlines, retries, fault containment and the
//! bit-identity guarantee are all inherited unchanged from the serving
//! plane: the front-end adds arrival-over-time and streaming, not new
//! execution semantics. Determinism note: *which* requests share a
//! batch depends on caller timing, but every request's token stream is
//! bit-identical to its solo run regardless of batch composition, so
//! the front-end never changes any stream's bits — only latencies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};

use llmnpu_kv::PrefixCacheMetrics;
use llmnpu_model::forward::Transformer;
use llmnpu_obs::{EventKind, MetricsSnapshot, Plane};

use crate::engine::LlmNpuEngine;
use crate::serve::{
    CancelToken, GenerationRequest, RequestOutcome, RequestStatus, ServeOptions, TokenEvent,
};
use crate::{Error, Result};

/// One event on a request's stream, in order: zero or more `Token`s,
/// then exactly one `Finished`.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// One generated token, streamed while the batch is still running.
    Token {
        /// Zero-based decode step within the request's stream.
        step: usize,
        /// The sampled token id.
        token: u32,
    },
    /// The request reached a terminal [`RequestStatus`]; the outcome
    /// carries the full stream, timings and attempt count.
    Finished {
        /// The request's complete outcome. `outcome.request` is the
        /// index within the *batch* the front-end formed, not a global
        /// id — use [`StreamHandle::id`] for identity.
        outcome: RequestOutcome,
    },
}

struct Submission {
    request: GenerationRequest,
    events: Sender<StreamEvent>,
}

enum Msg {
    Submit(Box<Submission>),
    Shutdown,
}

/// The submit side of a front-end: cheap to clone, one per caller
/// thread. Dropping every clone shuts the front-end down gracefully.
#[derive(Clone)]
pub struct FrontendClient {
    tx: Sender<Msg>,
    next_id: Arc<AtomicU64>,
}

/// A caller's view of one in-flight request: its stream receiver plus
/// the cancellation token.
pub struct StreamHandle {
    id: u64,
    cancel: CancelToken,
    events: Receiver<StreamEvent>,
}

impl FrontendClient {
    /// Submits a request for the next serving batch and returns its
    /// stream handle immediately.
    ///
    /// # Errors
    ///
    /// Returns an error if the front-end loop has already exited.
    pub fn submit(&self, request: GenerationRequest) -> Result<StreamHandle> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = request.cancel_handle();
        let (events_tx, events_rx) = mpsc::channel();
        let sub = Submission {
            request,
            events: events_tx,
        };
        self.tx
            .send(Msg::Submit(Box::new(sub)))
            .map_err(|_| Error::InvalidConfig {
                what: "serving front-end has shut down".to_string(),
            })?;
        Ok(StreamHandle {
            id,
            cancel,
            events: events_rx,
        })
    }

    /// Asks the front-end to stop after the batch it is currently
    /// forming. Requests already submitted are still served to a
    /// terminal status.
    pub fn shutdown(&self) {
        let _ = self.tx.send(Msg::Shutdown);
    }
}

impl StreamHandle {
    /// Front-end-wide id of this request (submission order).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation of this stream (idempotent; the request
    /// still ends in a terminal [`RequestStatus::Cancelled`] outcome).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks for the next stream event; `None` once the stream is
    /// finished (or the front-end died before serving it).
    #[must_use]
    pub fn recv(&self) -> Option<StreamEvent> {
        self.events.recv().ok()
    }

    /// Non-blocking poll for the next stream event.
    #[must_use]
    pub fn try_recv(&self) -> Option<StreamEvent> {
        self.events.try_recv().ok()
    }

    /// Drains the stream to completion and returns the terminal
    /// outcome (`None` if the front-end died before serving it).
    #[must_use]
    pub fn wait(self) -> Option<RequestOutcome> {
        while let Ok(ev) = self.events.recv() {
            if let StreamEvent::Finished { outcome } = ev {
                return Some(outcome);
            }
        }
        None
    }
}

/// Aggregate accounting for one front-end run.
#[derive(Debug, Clone, Default)]
pub struct FrontendReport {
    /// Serving batches the loop formed (each one `serve_with_session`).
    pub batches: usize,
    /// Requests served to a terminal status.
    pub requests: usize,
    /// Requests that completed their full stream.
    pub completed: usize,
    /// Requests cancelled by their [`CancelToken`].
    pub cancelled: usize,
    /// Requests that blew a deadline.
    pub deadline_exceeded: usize,
    /// Requests that failed (with or without exhausting retries).
    pub failed: usize,
    /// High-water mark of pool pages in use across the whole session.
    pub peak_used_blocks: usize,
    /// Total pages in the session pool.
    pub pool_blocks: usize,
    /// Cumulative prefix-cache counters over the session.
    pub cache: PrefixCacheMetrics,
    /// Cached pages returned to the pool by the final session flush
    /// (after which the pool is proven empty — zero leaks).
    pub flushed_blocks: usize,
    /// Sum of per-batch makespans: the engine time the front-end spent
    /// actually serving (its serial simulated clock).
    pub serve_ms: f64,
    /// Queue depth over the whole run: each batch's series shifted onto
    /// the front-end's serial serving clock and concatenated.
    pub queue_depth: Vec<(f64, usize)>,
    /// Final snapshot of the session's metrics registry, cumulative
    /// over every batch (empty when [`ServeOptions::obs`] was `None`).
    pub metrics: MetricsSnapshot,
}

/// The engine side of a front-end; see [`Frontend::run`].
pub struct Frontend {
    rx: Receiver<Msg>,
    opts: ServeOptions,
}

/// Creates a front-end: a cloneable submit handle plus the serving
/// loop to hand to an engine thread.
///
/// `opts` must set [`ServeOptions::kv_pool_blocks`] — a long-running
/// session needs an explicit page budget. `opts.on_token` may also be
/// set; the front-end chains it after its own streaming sink.
#[must_use]
pub fn frontend(opts: ServeOptions) -> (FrontendClient, Frontend) {
    let (tx, rx) = mpsc::channel();
    (
        FrontendClient {
            tx,
            next_id: Arc::new(AtomicU64::new(0)),
        },
        Frontend { rx, opts },
    )
}

impl Frontend {
    /// Runs the serving loop until shutdown (explicit, or every
    /// [`FrontendClient`] dropped), then flushes the session and
    /// returns the aggregate report.
    ///
    /// Blocks the calling thread; callers submit from other threads
    /// through the [`FrontendClient`].
    ///
    /// # Errors
    ///
    /// Returns an error if the session cannot be opened (missing or
    /// oversized page budget), if a batch fails *structurally* (plan
    /// rejected by the verifier, incompatible request), or if the
    /// final flush finds leaked pages. Per-request failures are *not*
    /// errors here — they are terminal statuses on their own streams.
    pub fn run(self, engine: &LlmNpuEngine, t: &Transformer<'_>) -> Result<FrontendReport> {
        let session = engine.open_serve_session(t, &self.opts)?;
        let mut report = FrontendReport {
            pool_blocks: session.pool_stats().total_blocks,
            ..FrontendReport::default()
        };
        let mut shutdown = false;
        while !shutdown {
            // Block for the next arrival, then drain the burst that is
            // already queued into the same batch.
            let mut batch: Vec<Submission> = Vec::new();
            match self.rx.recv() {
                Ok(Msg::Submit(sub)) => batch.push(*sub),
                Ok(Msg::Shutdown) | Err(_) => break,
            }
            loop {
                match self.rx.try_recv() {
                    Ok(Msg::Submit(sub)) => batch.push(*sub),
                    Ok(Msg::Shutdown) => {
                        shutdown = true;
                        break;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        shutdown = true;
                        break;
                    }
                }
            }

            report.batches += 1;
            let requests: Vec<GenerationRequest> =
                batch.iter().map(|s| s.request.clone()).collect();
            if let Some(obs) = session.observability() {
                // Batch composition depends on caller timing, so these
                // are Exec-plane events (excluded from the canonical
                // modeled export).
                let batches = report.batches;
                let width = requests.len();
                obs.sink.event(Plane::Exec, EventKind::Batch, None, || {
                    format!("batch {batches}: {width} request(s)")
                });
                for (idx, req) in requests.iter().enumerate() {
                    obs.sink
                        .event(Plane::Exec, EventKind::Submit, Some(idx), || {
                            format!(
                                "prompt {} token(s), max_new {}",
                                req.prompt.len(),
                                req.max_new_tokens
                            )
                        });
                }
            }

            // Per-batch streaming sink: TokenEvent.request indexes the
            // batch, which is submission order here. Senders are
            // wrapped in mutexes only to make the sink Sync; sends are
            // non-blocking, as the execution lanes require.
            let senders: Arc<Vec<Mutex<Sender<StreamEvent>>>> =
                Arc::new(batch.iter().map(|s| Mutex::new(s.events.clone())).collect());
            let chained = self.opts.on_token.clone();
            let sink_senders = Arc::clone(&senders);
            let mut opts = self.opts.clone();
            opts.on_token = Some(Arc::new(move |ev: &TokenEvent| {
                if let Some(tx) = sink_senders.get(ev.request) {
                    if let Ok(tx) = tx.lock() {
                        // A dropped StreamHandle just stops listening;
                        // cancellation is the token's job.
                        let _ = tx.send(StreamEvent::Token {
                            step: ev.step,
                            token: ev.token,
                        });
                    }
                }
                if let Some(f) = &chained {
                    f(ev);
                }
            }));

            let served = engine.serve_with_session(t, &requests, &opts, &session)?;
            // Each batch runs on its own round clock; shift onto the
            // front-end's serial clock before concatenating.
            let base = report.serve_ms;
            report
                .queue_depth
                .extend(served.queue_depth.iter().map(|&(ts, d)| (ts + base, d)));
            report.serve_ms += served.makespan_ms();
            for outcome in served.requests {
                let idx = outcome.request;
                report.requests += 1;
                match outcome.status {
                    RequestStatus::Completed => report.completed += 1,
                    RequestStatus::Cancelled => report.cancelled += 1,
                    RequestStatus::DeadlineExceeded => report.deadline_exceeded += 1,
                    RequestStatus::Failed { .. } | RequestStatus::RetriesExhausted { .. } => {
                        report.failed += 1;
                    }
                }
                if let Some(sub) = batch.get(idx) {
                    let _ = sub.events.send(StreamEvent::Finished { outcome });
                }
            }
        }

        report.cache = session.cache_metrics();
        report.peak_used_blocks = session.pool_stats().peak_used_blocks;
        report.flushed_blocks = session.flush()?;
        report.metrics = session.metrics();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_handle_outlives_frontend_drop() {
        let (client, fe) = frontend(ServeOptions::default());
        let handle = client
            .submit(GenerationRequest::new(vec![1, 2, 3], 4))
            .expect("frontend alive");
        drop(fe);
        assert!(
            client.submit(GenerationRequest::new(vec![1], 1)).is_err(),
            "submit after the loop died must error"
        );
        assert!(handle.wait().is_none(), "unserved stream ends empty");
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks_run_loop() {
        let (client, fe) = frontend(ServeOptions::default());
        client.shutdown();
        client.shutdown();
        // The loop side sees Shutdown first and exits before serving.
        match fe.rx.recv() {
            Ok(Msg::Shutdown) => {}
            _ => panic!("expected shutdown message"),
        }
    }
}
