//! Result records shared by all engines and experiments.

use llmnpu_soc::des::Timeline;
use llmnpu_soc::{Joules, Millis};

/// Outcome of one prefill.
#[derive(Debug, Clone)]
pub struct PrefillReport {
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// End-to-end prefill latency.
    pub latency_ms: Millis,
    /// Energy consumed over the prefill window.
    pub energy_j: Joules,
    /// Prefill throughput (prompt tokens / latency).
    pub tokens_per_s: f64,
    /// NPU stall fraction over the makespan (0 for CPU/GPU-only engines).
    pub npu_bubble_rate: f64,
    /// The execution trace (None for closed-form analytic engines).
    pub timeline: Option<Timeline>,
}

impl PrefillReport {
    /// Builds a report from latency/energy, deriving throughput.
    #[must_use]
    pub fn new(
        prompt_len: usize,
        latency_ms: Millis,
        energy_j: Joules,
        npu_bubble_rate: f64,
        timeline: Option<Timeline>,
    ) -> Self {
        let tokens_per_s = if latency_ms > 0.0 {
            prompt_len as f64 / (latency_ms / 1e3)
        } else {
            0.0
        };
        PrefillReport {
            prompt_len,
            latency_ms,
            energy_j,
            tokens_per_s,
            npu_bubble_rate,
            timeline,
        }
    }
}

/// Outcome of one end-to-end request (prefill + decode).
#[derive(Debug, Clone)]
pub struct E2eReport {
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Output length in tokens.
    pub output_len: usize,
    /// Prefill latency.
    pub prefill_ms: Millis,
    /// Total decode latency.
    pub decode_ms: Millis,
    /// Prefill energy.
    pub prefill_energy_j: Joules,
}

impl E2eReport {
    /// Total request latency.
    #[must_use]
    pub fn total_ms(&self) -> Millis {
        self.prefill_ms + self.decode_ms
    }

    /// Prefill share of total latency (Figure 1's metric).
    #[must_use]
    pub fn prefill_fraction(&self) -> f64 {
        let total = self.total_ms();
        if total <= 0.0 {
            0.0
        } else {
            self.prefill_ms / total
        }
    }
}

/// Memory footprint of an engine configuration (Figure 17).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryReport {
    /// INT8 model weights.
    pub weight_bytes: u64,
    /// Activation buffers (per-op for QNN-style engines).
    pub activation_bytes: u64,
    /// KV-cache bytes at the reported prompt length.
    pub kv_bytes: u64,
    /// Resident float weights for shadow outlier execution (ours only).
    pub shadow_bytes: u64,
}

impl MemoryReport {
    /// Total bytes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.weight_bytes + self.activation_bytes + self.kv_bytes + self.shadow_bytes
    }

    /// Total in GiB.
    #[must_use]
    pub fn total_gib(&self) -> f64 {
        self.total() as f64 / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_report_derives_throughput() {
        let r = PrefillReport::new(1024, 1000.0, 3.0, 0.1, None);
        assert!((r.tokens_per_s - 1024.0).abs() < 1e-9);
        let z = PrefillReport::new(10, 0.0, 0.0, 0.0, None);
        assert_eq!(z.tokens_per_s, 0.0);
    }

    #[test]
    fn e2e_fractions() {
        let r = E2eReport {
            prompt_len: 100,
            output_len: 4,
            prefill_ms: 900.0,
            decode_ms: 100.0,
            prefill_energy_j: 1.0,
        };
        assert_eq!(r.total_ms(), 1000.0);
        assert!((r.prefill_fraction() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn memory_totals() {
        let m = MemoryReport {
            weight_bytes: 1 << 30,
            activation_bytes: 1 << 29,
            kv_bytes: 1 << 28,
            shadow_bytes: 1 << 20,
        };
        assert_eq!(m.total(), (1 << 30) + (1 << 29) + (1 << 28) + (1 << 20));
        assert!(m.total_gib() > 1.7 && m.total_gib() < 1.8);
    }
}
