//! Seeded, deterministic fault injection for the serving layer.
//!
//! A [`FaultPlan`] is a *script* of failures threaded through
//! `ServeOptions::faults`: panic (or error) request `r` at a chosen
//! prefill stage or decode step on attempt `a`, transiently (the retry
//! succeeds) or permanently (every attempt fails); inflate a request's
//! *modeled* task durations (a scheduling-priority spike — the numeric
//! outputs never change); squeeze the KV pool below the configured size.
//! The plan is pure data, built either explicitly (for pinning tests) or
//! from a seed via [`FaultPlan::seeded`] (for the chaos soak), and the
//! injection sites are keyed on `(request, attempt, site)` — so the same
//! plan against the same trace produces the same failures, the same
//! retries, and the same terminal outcomes on every run at every worker
//! count. That determinism is what lets the chaos harness assert
//! *bit-identical surviving streams* instead of merely "it didn't
//! crash".
//!
//! The generator deliberately uses an inline SplitMix64 rather than a
//! `rand` dependency: the plan must stay reproducible from the seed
//! alone, forever, independent of any external crate's stream format.

/// How an injected fault manifests inside the task closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The closure panics (`panic!`) — exercising the unwind-containment
    /// path in the executor.
    Panic,
    /// The closure returns an error — the graceful failure path.
    Error,
}

/// Where in a request's task chain the fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The admission task (page reservation).
    Admit,
    /// The main-path FFN stage of prefill chunk `chunk`, layer `layer`
    /// (one unique task per `(chunk, layer)` in the prefill DAG).
    Prefill {
        /// Prefill chunk index.
        chunk: usize,
        /// Decoder layer index.
        layer: usize,
    },
    /// Decode step `step` (0-based over the request's new tokens).
    Decode {
        /// Decode step index.
        step: usize,
    },
}

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Request index the fault targets.
    pub request: usize,
    /// Attempt number the fault first fires on (1-based, matching
    /// `RequestOutcome::attempts`).
    pub attempt: usize,
    /// Where in the chain it fires.
    pub site: FaultSite,
    /// Panic or error.
    pub mode: FaultMode,
    /// Permanent faults fire on `attempt` **and every later attempt**
    /// (the retry ladder exhausts); transient faults fire on exactly
    /// `attempt` (the next retry succeeds).
    pub permanent: bool,
}

impl FaultSpec {
    /// Whether this spec fires on the given `(request, attempt)`.
    #[must_use]
    pub fn fires(&self, request: usize, attempt: usize) -> bool {
        self.request == request
            && if self.permanent {
                attempt >= self.attempt
            } else {
                attempt == self.attempt
            }
    }
}

/// A modeled-duration inflation spike: multiplies every task duration of
/// one request's attempt by `factor`. Durations are scheduling-priority
/// inputs (the C-value), so a spike perturbs *dispatch order pressure*
/// without touching a single float of output — the chaos soak uses it to
/// shake the interleaving while still asserting bit-identical streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationSpike {
    /// Request index the spike targets.
    pub request: usize,
    /// Attempt it applies to (1-based), or 0 for every attempt.
    pub attempt: usize,
    /// Multiplier applied to the modeled `duration_ms` of the request's
    /// tasks (clamped to a small positive floor).
    pub factor: f64,
}

/// A deterministic fault-injection script for one serving run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scripted panics/errors.
    pub faults: Vec<FaultSpec>,
    /// Modeled-duration inflation spikes.
    pub spikes: Vec<DurationSpike>,
    /// When set, caps the KV pool at this many blocks regardless of
    /// `ServeOptions::kv_pool_blocks` — the pool-pressure squeeze.
    /// Serving clamps the cap so the pool still holds the largest single
    /// request (a pool nothing fits in could never serve anything).
    pub pool_blocks_cap: Option<usize>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one scripted fault.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds a modeled-duration spike.
    #[must_use]
    pub fn with_spike(mut self, spike: DurationSpike) -> Self {
        self.spikes.push(spike);
        self
    }

    /// Caps the KV pool (pool-pressure squeeze).
    #[must_use]
    pub fn with_pool_cap(mut self, blocks: usize) -> Self {
        self.pool_blocks_cap = Some(blocks);
        self
    }

    /// Generates a seeded plan over `n_requests` requests. `intensity`
    /// in `[0, 1]` scales how many requests get a fault (roughly
    /// `intensity / 4` of them panic or error somewhere) and how many
    /// get a duration spike. Transient faults dominate (~3 of 4) so the
    /// retry ladder is exercised without exhausting most victims.
    /// Deterministic: same `(seed, n_requests, intensity)` ⇒ same plan.
    #[must_use]
    pub fn seeded(seed: u64, n_requests: usize, intensity: f64) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for r in 0..n_requests {
            if rng.next_f64() < intensity / 4.0 {
                let permanent = rng.next_f64() < 0.25;
                let mode = if rng.next_f64() < 0.5 {
                    FaultMode::Panic
                } else {
                    FaultMode::Error
                };
                // Low chunk/layer/step indices so the site exists for
                // almost any request shape; a site past the request's
                // actual chain simply never fires (still deterministic).
                let site = match rng.next_u64() % 3 {
                    0 => FaultSite::Admit,
                    1 => FaultSite::Prefill {
                        chunk: 0,
                        layer: (rng.next_u64() % 2) as usize,
                    },
                    _ => FaultSite::Decode {
                        step: (rng.next_u64() % 2) as usize,
                    },
                };
                plan.faults.push(FaultSpec {
                    request: r,
                    attempt: 1,
                    site,
                    mode,
                    permanent,
                });
            }
            if rng.next_f64() < intensity / 4.0 {
                plan.spikes.push(DurationSpike {
                    request: r,
                    attempt: 0,
                    factor: 1.0 + rng.next_f64() * 9.0,
                });
            }
        }
        plan
    }

    /// The fault firing at `(request, attempt, site)`, if any.
    #[must_use]
    pub fn fault_at(&self, request: usize, attempt: usize, site: FaultSite) -> Option<&FaultSpec> {
        self.faults
            .iter()
            .find(|f| f.site == site && f.fires(request, attempt))
    }

    /// The duration multiplier for `(request, attempt)` (1.0 when no
    /// spike applies).
    #[must_use]
    pub fn duration_factor(&self, request: usize, attempt: usize) -> f64 {
        self.spikes
            .iter()
            .filter(|s| s.request == request && (s.attempt == 0 || s.attempt == attempt))
            .map(|s| s.factor.max(1e-3))
            .product()
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.spikes.is_empty() && self.pool_blocks_cap.is_none()
    }
}

/// SplitMix64: the standard 64-bit mixer (public-domain constants), kept
/// inline so plan generation never depends on an external RNG's stream.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_scale_with_intensity() {
        let a = FaultPlan::seeded(42, 100, 0.8);
        let b = FaultPlan::seeded(42, 100, 0.8);
        assert_eq!(a, b, "same seed must reproduce the plan");
        assert_ne!(a, FaultPlan::seeded(43, 100, 0.8), "seeds must differ");
        assert!(
            !a.is_empty(),
            "intensity 0.8 over 100 requests is not empty"
        );
        let quiet = FaultPlan::seeded(42, 100, 0.0);
        assert!(quiet.is_empty(), "zero intensity injects nothing");
        // All sites within range, all attempts 1-based.
        assert!(a.faults.iter().all(|f| f.request < 100 && f.attempt >= 1));
        // Transient faults dominate.
        let permanent = a.faults.iter().filter(|f| f.permanent).count();
        assert!(permanent * 2 < a.faults.len(), "{permanent} permanent");
    }

    #[test]
    fn fires_honors_transient_vs_permanent() {
        let transient = FaultSpec {
            request: 3,
            attempt: 2,
            site: FaultSite::Admit,
            mode: FaultMode::Error,
            permanent: false,
        };
        assert!(!transient.fires(3, 1));
        assert!(transient.fires(3, 2));
        assert!(!transient.fires(3, 3), "transient fires exactly once");
        assert!(!transient.fires(4, 2), "wrong request");
        let permanent = FaultSpec {
            permanent: true,
            ..transient
        };
        assert!(!permanent.fires(3, 1));
        assert!(permanent.fires(3, 2));
        assert!(permanent.fires(3, 9), "permanent fires on every retry");
    }

    #[test]
    fn lookup_helpers() {
        let plan = FaultPlan::new()
            .with_fault(FaultSpec {
                request: 1,
                attempt: 1,
                site: FaultSite::Prefill { chunk: 0, layer: 1 },
                mode: FaultMode::Panic,
                permanent: false,
            })
            .with_spike(DurationSpike {
                request: 2,
                attempt: 0,
                factor: 3.0,
            })
            .with_pool_cap(8);
        assert!(plan
            .fault_at(1, 1, FaultSite::Prefill { chunk: 0, layer: 1 })
            .is_some());
        assert!(plan
            .fault_at(1, 2, FaultSite::Prefill { chunk: 0, layer: 1 })
            .is_none());
        assert!(plan.fault_at(1, 1, FaultSite::Admit).is_none());
        assert_eq!(plan.duration_factor(2, 5), 3.0);
        assert_eq!(plan.duration_factor(1, 1), 1.0);
        assert_eq!(plan.pool_blocks_cap, Some(8));
        assert!(!plan.is_empty());
    }
}
