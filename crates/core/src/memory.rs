//! Engine memory-footprint comparison (Figure 17).
//!
//! Figure 17 compares INT8-weight engines at a 512-token prompt:
//! llama.cpp-CPU and TFLite reuse a small number of activation buffers,
//! while llm.npu (built on MLLM + QNN) allocates an independent buffer per
//! operator "to enhance speed", costing up to 1.32× llama.cpp — plus the
//! tiny (0.6–1%) float shadow weights.

use llmnpu_kv::PoolConfig;
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::spec::SocSpec;

use crate::engine::{kv_cache_bytes, EngineConfig, LlmNpuEngine};
use crate::report::MemoryReport;
use crate::Result;

/// Memory model of a baseline engine at a prompt length.
///
/// Baselines keep INT8 weights, the KV cache, and a *reused* activation
/// workspace of a few transient buffers (llama.cpp's scratch planning),
/// rather than per-op allocations.
#[must_use]
pub fn baseline_memory(
    model: &ModelConfig,
    prompt_len: usize,
    workspace_buffers: u64,
) -> MemoryReport {
    let activation =
        workspace_buffers * (prompt_len * model.hidden.max(model.ffn_hidden)) as u64 * 4;
    MemoryReport {
        weight_bytes: model.weight_bytes_int8(),
        activation_bytes: activation,
        kv_bytes: kv_cache_bytes(model, prompt_len),
        shadow_bytes: 0,
    }
}

/// The paged-KV pool shape for a model: one block materializes
/// `block_tokens × kv_dim` K and V rows in every layer (`llmnpu-kv`'s
/// layout), so pool sizing becomes model-aware byte arithmetic.
#[must_use]
pub fn kv_pool_config(model: &ModelConfig, block_tokens: usize, blocks: usize) -> PoolConfig {
    PoolConfig {
        layers: model.layers,
        kv_dim: model.kv_dim(),
        block_tokens,
        blocks,
    }
}

/// Eager-vs-paged KV footprint for a request mix: what per-request
/// contiguous worst-case caches cost versus a paged pool sized to the
/// same aggregate demand. Statically the pool pays a small internal
/// fragmentation tax (the partial last page of each request); what it
/// buys is runtime — prefix sharing, early release, page-count
/// admission, and eviction all come out of the *same* fixed slab, and
/// `ServeReport::kv`'s peak/shared counters measure that recovery.
#[derive(Debug, Clone, Copy)]
pub struct PagedKvComparison {
    /// Sum of per-request worst-case contiguous caches (f32 bytes).
    pub eager_bytes: u64,
    /// A pool with exactly the blocks those requests can touch.
    pub pool_bytes: u64,
    /// Blocks in that pool.
    pub pool_blocks: usize,
}

/// Compares eager per-request KV allocation against a paged pool for a
/// `(prompt_len, max_new_tokens)` request mix.
#[must_use]
pub fn paged_vs_eager(
    model: &ModelConfig,
    requests: &[(usize, usize)],
    block_tokens: usize,
) -> PagedKvComparison {
    let eager_bytes: u64 = requests
        .iter()
        .map(|&(p, n)| (2 * (p + n) * model.kv_dim() * model.layers * 4) as u64)
        .sum();
    let cfg = kv_pool_config(model, block_tokens, 1);
    let pool_blocks: usize = requests.iter().map(|&(p, n)| cfg.blocks_for(p + n)).sum();
    PagedKvComparison {
        eager_bytes,
        pool_bytes: cfg.block_bytes() * pool_blocks as u64,
        pool_blocks,
    }
}

/// The Figure 17 comparison rows for one model.
#[derive(Debug, Clone)]
pub struct MemoryComparison {
    /// Engine name.
    pub engine: &'static str,
    /// Footprint report.
    pub report: MemoryReport,
}

/// Computes the Figure 17 rows: llama.cpp-CPU, TFLite-GPU, TFLite-CPU,
/// and llm.npu (with its shadow weights split out).
///
/// # Errors
///
/// Returns an error if the engine configuration is invalid.
pub fn figure17_rows(
    model: &ModelConfig,
    soc: &SocSpec,
    prompt_len: usize,
) -> Result<Vec<MemoryComparison>> {
    let engine = LlmNpuEngine::new(EngineConfig::llmnpu(model.clone(), soc.clone()))?;
    let ours = engine.memory(prompt_len)?;
    Ok(vec![
        MemoryComparison {
            engine: "llama.cpp-CPU",
            report: baseline_memory(model, prompt_len, 4),
        },
        MemoryComparison {
            engine: "TFLite-GPU",
            report: baseline_memory(model, prompt_len, 8),
        },
        MemoryComparison {
            engine: "TFLite-CPU",
            report: baseline_memory(model, prompt_len, 8),
        },
        MemoryComparison {
            engine: "Ours",
            report: ours,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_costs_more_but_bounded() {
        // Figure 17: llm.npu consumes up to 1.32× llama.cpp.
        let model = ModelConfig::gemma_2b();
        let rows = figure17_rows(&model, &SocSpec::snapdragon_8gen2(), 512).unwrap();
        let lcpp = rows[0].report.total() as f64;
        let ours = rows[3].report.total() as f64;
        let ratio = ours / lcpp;
        assert!(
            (1.0..1.6).contains(&ratio),
            "ours/llama.cpp memory ratio {ratio:.2}"
        );
    }

    #[test]
    fn absolute_scale_matches_figure17() {
        // Figure 17 reports ~2.8 GB for llama.cpp and ~3.7 GB for ours on
        // Gemma-2B at prompt 512.
        let model = ModelConfig::gemma_2b();
        let rows = figure17_rows(&model, &SocSpec::snapdragon_8gen2(), 512).unwrap();
        let lcpp = rows[0].report.total_gib();
        let ours = rows[3].report.total_gib();
        assert!((2.0..3.6).contains(&lcpp), "llama.cpp {lcpp:.2} GiB");
        assert!((2.2..4.4).contains(&ours), "ours {ours:.2} GiB");
    }

    #[test]
    fn shadow_weights_are_a_tiny_fraction() {
        // §4.5: shadow floats account for only 0.6–1% of total memory.
        let model = ModelConfig::phi2_27b();
        let rows = figure17_rows(&model, &SocSpec::snapdragon_8gen2(), 512).unwrap();
        let ours = &rows[3].report;
        let frac = ours.shadow_bytes as f64 / ours.total() as f64;
        assert!(frac > 0.0005 && frac < 0.05, "shadow fraction {frac:.4}");
    }

    #[test]
    fn paged_pool_bounded_by_eager_plus_fragmentation() {
        let model = ModelConfig::qwen15_18b();
        let requests = [(100usize, 30usize), (7, 5), (250, 20)];
        let cmp = paged_vs_eager(&model, &requests, 16);
        // The pool never costs more than eager rounded up by one page
        // per request.
        let page = kv_pool_config(&model, 16, 1).block_bytes();
        assert!(cmp.pool_bytes >= cmp.eager_bytes);
        assert!(cmp.pool_bytes <= cmp.eager_bytes + page * requests.len() as u64);
        // Blocks cover every request's worst case.
        let need: usize = requests.iter().map(|&(p, n)| (p + n).div_ceil(16)).sum();
        assert_eq!(cmp.pool_blocks, need);
    }

    #[test]
    fn weights_dominate_every_engine() {
        let model = ModelConfig::gemma_2b();
        for row in figure17_rows(&model, &SocSpec::snapdragon_8gen2(), 512).unwrap() {
            assert!(
                row.report.weight_bytes * 2 > row.report.total(),
                "{}: weights should be at least half the footprint",
                row.engine
            );
        }
    }
}
