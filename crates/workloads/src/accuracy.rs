//! Accuracy-proxy benchmarks (the Table 6 substitution).
//!
//! We cannot run billion-parameter models on LAMBADA/HellaSwag/etc., so
//! each benchmark becomes a synthetic multiple-choice task over a *real*
//! small transformer:
//!
//! 1. Sample a prompt; run the FP32 reference model; read the final hidden
//!    state `h*`.
//! 2. Score `C` random candidate directions `u_k` as `s_k = u_k · h*`.
//! 3. The ground-truth label is `argmax(s + ε)` with Gaussian label noise
//!    `ε` whose magnitude is **calibrated** so the FP32 model's accuracy
//!    matches the paper's FP16 number for that benchmark (e.g. 71.1% for
//!    Qwen on LAMBADA).
//! 4. Every quantization scheme is then evaluated by running its *real*
//!    quantized forward pass and predicting `argmax(u_k · h_scheme)`.
//!
//! Quantization error perturbs the hidden state; predictions flip exactly
//! when the perturbation crosses a decision margin. Schemes that mangle
//! outliers (naive per-tensor, static SmoothQuant) flip more answers than
//! schemes that preserve them (LLM.int8(), shadow execution) — so Table
//! 6's *ordering* emerges from arithmetic, not from curve fitting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use llmnpu_model::backend::LinearBackend;
use llmnpu_model::forward::Transformer;
use llmnpu_model::weights::ModelWeights;

use crate::{random_prompt, Error, Result};

/// One of the five LLM benchmarks, reduced to its proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of answer choices.
    pub choices: usize,
    /// Prompt length for the proxy tasks.
    pub prompt_len: usize,
}

impl BenchmarkSpec {
    /// The five benchmarks of Table 6.
    #[must_use]
    pub fn all() -> [BenchmarkSpec; 5] {
        [
            BenchmarkSpec {
                name: "LAMBADA",
                choices: 8,
                prompt_len: 24,
            },
            BenchmarkSpec {
                name: "HellaSwag",
                choices: 4,
                prompt_len: 20,
            },
            BenchmarkSpec {
                name: "WinoGrande",
                choices: 2,
                prompt_len: 16,
            },
            BenchmarkSpec {
                name: "OpenBookQA",
                choices: 4,
                prompt_len: 18,
            },
            BenchmarkSpec {
                name: "MMLU",
                choices: 4,
                prompt_len: 22,
            },
        ]
    }
}

/// One proxy task instance.
#[derive(Debug, Clone)]
pub struct ProxyTask {
    /// Prompt token ids.
    pub tokens: Vec<u32>,
    /// Candidate direction vectors `[choices][hidden]`.
    pub candidates: Vec<Vec<f32>>,
    /// Ground-truth label (noisy argmax over the reference scores).
    pub label: usize,
}

/// A generated proxy benchmark bound to one model.
#[derive(Debug, Clone)]
pub struct ProxyBenchmark {
    /// The benchmark parameters.
    pub spec: BenchmarkSpec,
    /// Task instances.
    pub tasks: Vec<ProxyTask>,
    /// The calibrated noise level.
    pub noise_sigma: f64,
    /// The FP32 reference accuracy after calibration.
    pub reference_accuracy: f64,
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

fn unit_vector(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim)
        .map(|_| {
            let u1: f32 = rng.gen_range(1e-7_f32..1.0);
            let u2: f32 = rng.gen_range(0.0_f32..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        })
        .collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
    for x in &mut v {
        *x /= norm;
    }
    v
}

/// Generates a proxy benchmark calibrated to `target_accuracy` for the
/// FP32 reference model.
///
/// # Errors
///
/// Returns [`Error::CalibrationFailed`] if no noise level reaches the
/// target within tolerance (the target must be between chance and 1.0),
/// or an error if the model fails.
pub fn generate(
    weights: &ModelWeights,
    reference: &dyn LinearBackend,
    spec: BenchmarkSpec,
    n_tasks: usize,
    target_accuracy: f64,
    seed: u64,
) -> Result<ProxyBenchmark> {
    let chance = 1.0 / spec.choices as f64;
    if !(chance < target_accuracy && target_accuracy <= 1.0) {
        return Err(Error::InvalidSpec {
            what: format!("target accuracy {target_accuracy} must exceed chance {chance:.3}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Transformer::new(weights, reference);
    let hidden = weights.config.hidden;
    let vocab = weights.config.vocab;

    // Reference hidden states and candidate scores per task:
    // (prompt tokens, candidate unit vectors, reference scores).
    type RawTask = (Vec<u32>, Vec<Vec<f32>>, Vec<f32>);
    let mut raw: Vec<RawTask> = Vec::with_capacity(n_tasks);
    for _ in 0..n_tasks {
        let tokens = random_prompt(&mut rng, spec.prompt_len, vocab);
        let h = model.last_hidden(&tokens, None)?;
        let candidates: Vec<Vec<f32>> = (0..spec.choices)
            .map(|_| unit_vector(&mut rng, hidden))
            .collect();
        let scores: Vec<f32> = candidates.iter().map(|u| dot(u, &h)).collect();
        raw.push((tokens, candidates, scores));
    }

    // Per-task noise draws are fixed across the sigma search so accuracy is
    // monotone in sigma.
    let noise: Vec<Vec<f32>> = (0..n_tasks)
        .map(|_| {
            (0..spec.choices)
                .map(|_| {
                    let u1: f32 = rng.gen_range(1e-7_f32..1.0);
                    let u2: f32 = rng.gen_range(0.0_f32..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                })
                .collect()
        })
        .collect();

    let accuracy_at = |sigma: f64| -> f64 {
        let mut correct = 0usize;
        for (t, (_, _, scores)) in raw.iter().enumerate() {
            let scale = score_spread(scores);
            let label = noisy_argmax(scores, &noise[t], sigma * scale);
            let pred = argmax(scores);
            if pred == label {
                correct += 1;
            }
        }
        correct as f64 / raw.len() as f64
    };

    // Binary search sigma: accuracy is 1.0 at sigma=0 and → chance as
    // sigma → ∞.
    let mut lo = 0.0_f64;
    let mut hi = 64.0_f64;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if accuracy_at(mid) > target_accuracy {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let sigma = 0.5 * (lo + hi);
    let achieved = accuracy_at(sigma);
    if (achieved - target_accuracy).abs() > 0.08 {
        return Err(Error::CalibrationFailed {
            target: target_accuracy,
            achieved,
        });
    }

    let tasks = raw
        .into_iter()
        .enumerate()
        .map(|(t, (tokens, candidates, scores))| {
            let scale = score_spread(&scores);
            let label = noisy_argmax(&scores, &noise[t], sigma * scale);
            ProxyTask {
                tokens,
                candidates,
                label,
            }
        })
        .collect();

    Ok(ProxyBenchmark {
        spec,
        tasks,
        noise_sigma: sigma,
        reference_accuracy: achieved,
    })
}

fn score_spread(scores: &[f32]) -> f64 {
    let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let min = scores.iter().cloned().fold(f32::INFINITY, f32::min);
    f64::from(max - min).max(1e-6)
}

fn noisy_argmax(scores: &[f32], noise: &[f32], sigma: f64) -> usize {
    let noisy: Vec<f64> = scores
        .iter()
        .zip(noise)
        .map(|(&s, &n)| f64::from(s) + f64::from(n) * sigma)
        .collect();
    noisy
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn argmax(scores: &[f32]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl ProxyBenchmark {
    /// Evaluates a backend: runs the real quantized forward pass on every
    /// task and scores `argmax(u · h)` against the noisy labels.
    ///
    /// # Errors
    ///
    /// Returns an error if the model forward fails.
    pub fn evaluate(&self, weights: &ModelWeights, backend: &dyn LinearBackend) -> Result<f64> {
        let model = Transformer::new(weights, backend);
        let mut correct = 0usize;
        for task in &self.tasks {
            let h = model.last_hidden(&task.tokens, None)?;
            let scores: Vec<f32> = task.candidates.iter().map(|u| dot(u, &h)).collect();
            if argmax(&scores) == task.label {
                correct += 1;
            }
        }
        Ok(correct as f64 / self.tasks.len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmnpu_model::backend::{FloatBackend, PerTensorBackend, ShadowBackend};
    use llmnpu_model::config::ModelConfig;
    use llmnpu_model::weights::{synthesize, OutlierSpec};

    fn setup() -> (ModelWeights, FloatBackend) {
        let cfg = ModelConfig::qwen15_18b().scaled_down(48, 3, 96).unwrap();
        let w = synthesize(&cfg, 42, OutlierSpec::default()).unwrap();
        (w.clone(), FloatBackend::new(w))
    }

    #[test]
    fn calibration_hits_target() {
        let (w, be) = setup();
        let spec = BenchmarkSpec {
            name: "test",
            choices: 4,
            prompt_len: 12,
        };
        let bench = generate(&w, &be, spec, 80, 0.65, 7).unwrap();
        assert!((bench.reference_accuracy - 0.65).abs() <= 0.08);
        assert!(bench.noise_sigma > 0.0);
        assert_eq!(bench.tasks.len(), 80);
    }

    #[test]
    fn float_backend_reproduces_reference_accuracy() {
        let (w, be) = setup();
        let spec = BenchmarkSpec {
            name: "test",
            choices: 4,
            prompt_len: 12,
        };
        let bench = generate(&w, &be, spec, 60, 0.7, 11).unwrap();
        let acc = bench.evaluate(&w, &be).unwrap();
        assert!((acc - bench.reference_accuracy).abs() < 1e-9);
    }

    #[test]
    fn rejects_impossible_targets() {
        let (w, be) = setup();
        let spec = BenchmarkSpec {
            name: "test",
            choices: 2,
            prompt_len: 8,
        };
        assert!(generate(&w, &be, spec, 20, 0.4, 3).is_err()); // below chance
        assert!(generate(&w, &be, spec, 20, 1.2, 3).is_err());
    }

    #[test]
    fn shadow_beats_naive_per_tensor() {
        // The Table 6 ordering, on a small scale: with outliers present,
        // llm.npu's shadow execution must retain more accuracy than naive
        // per-tensor quantization.
        let (w, float_be) = setup();
        let model = Transformer::new(&w, &float_be);
        let mut rng = StdRng::seed_from_u64(5);
        let prompts: Vec<Vec<u32>> = (0..4)
            .map(|_| random_prompt(&mut rng, 12, w.config.vocab))
            .collect();
        let cal = model.calibrate(&prompts).unwrap();

        let spec = BenchmarkSpec {
            name: "test",
            choices: 4,
            prompt_len: 12,
        };
        let bench = generate(&w, &float_be, spec, 60, 0.7, 13).unwrap();

        let shadow = ShadowBackend::new(&w, &cal, 0.995, 0.0).unwrap();
        let naive = PerTensorBackend::new(&w, &cal).unwrap();
        let acc_shadow = bench.evaluate(&w, &shadow).unwrap();
        let acc_naive = bench.evaluate(&w, &naive).unwrap();
        // Allow two tasks of noise on a 60-task benchmark; the systematic
        // gap shows up when outliers are severe (pinned by the quant-crate
        // unit tests on raw tensors).
        let slack = 2.0 / bench.tasks.len() as f64;
        assert!(
            acc_shadow + slack >= acc_naive,
            "shadow {acc_shadow} should not trail naive {acc_naive}"
        );
        // Shadow should stay close to the float reference.
        assert!(acc_shadow >= bench.reference_accuracy - 0.12);
    }

    #[test]
    fn benchmark_specs_cover_table6() {
        let names: Vec<&str> = BenchmarkSpec::all().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["LAMBADA", "HellaSwag", "WinoGrande", "OpenBookQA", "MMLU"]
        );
    }
}
