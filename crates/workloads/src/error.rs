use std::fmt;

/// Error type for workload generation and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The underlying model failed.
    Model(llmnpu_model::Error),
    /// A generation parameter was invalid.
    InvalidSpec {
        /// Description of the constraint that failed.
        what: String,
    },
    /// Noise calibration could not reach the target accuracy.
    CalibrationFailed {
        /// Target FP32 accuracy.
        target: f64,
        /// Best accuracy achieved.
        achieved: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Model(e) => write!(f, "model error: {e}"),
            Error::InvalidSpec { what } => write!(f, "invalid workload spec: {what}"),
            Error::CalibrationFailed { target, achieved } => write!(
                f,
                "noise calibration failed: target {target:.3}, achieved {achieved:.3}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<llmnpu_model::Error> for Error {
    fn from(e: llmnpu_model::Error) -> Self {
        Error::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = Error::CalibrationFailed {
            target: 0.7,
            achieved: 0.5,
        };
        assert!(e.to_string().contains("0.700"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
