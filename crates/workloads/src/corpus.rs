//! Synthetic text-corpus generation for calibration and profiling.
//!
//! The paper profiles outlier statistics "using a large corpora" of
//! wikitext (§3.3, Figures 10–12). Natural-language token streams are
//! strongly Zipf-distributed and bursty (a rare token, once used, tends
//! to recur within the same document). Uniform random tokens miss both
//! properties, so this module synthesizes documents with:
//!
//! * Zipfian unigram frequencies (`P(rank r) ∝ 1/r^s`),
//! * burstiness: each document remembers its recent rare tokens and
//!   re-emits them with elevated probability.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Error, Result};

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Vocabulary size.
    pub vocab: usize,
    /// Zipf exponent (≈1.0 for natural text).
    pub zipf_s: f64,
    /// Probability of re-emitting a recently used rare token.
    pub burstiness: f64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            vocab: 256,
            zipf_s: 1.05,
            burstiness: 0.25,
        }
    }
}

/// A seeded document sampler.
#[derive(Debug, Clone)]
pub struct CorpusSampler {
    spec: CorpusSpec,
    /// Cumulative distribution over ranks.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl CorpusSampler {
    /// Builds a sampler.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for an empty vocabulary, a
    /// non-positive Zipf exponent, or a burstiness outside `[0, 1)`.
    pub fn new(spec: CorpusSpec, seed: u64) -> Result<Self> {
        if spec.vocab == 0 {
            return Err(Error::InvalidSpec {
                what: "vocabulary must be non-empty".to_owned(),
            });
        }
        if spec.zipf_s <= 0.0 {
            return Err(Error::InvalidSpec {
                what: format!("zipf exponent {} must be positive", spec.zipf_s),
            });
        }
        if !(0.0..1.0).contains(&spec.burstiness) {
            return Err(Error::InvalidSpec {
                what: format!("burstiness {} must be in [0, 1)", spec.burstiness),
            });
        }
        let mut cdf = Vec::with_capacity(spec.vocab);
        let mut acc = 0.0;
        for r in 1..=spec.vocab {
            acc += 1.0 / (r as f64).powf(spec.zipf_s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(CorpusSampler {
            spec,
            cdf,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    fn sample_zipf(&mut self) -> u32 {
        let u: f64 = self.rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) | Err(i) => (i.min(self.spec.vocab - 1)) as u32,
        }
    }

    /// Samples one document of `len` tokens.
    pub fn document(&mut self, len: usize) -> Vec<u32> {
        let rare_floor = (self.spec.vocab / 8).max(1) as u32;
        let mut recent_rare: Vec<u32> = Vec::new();
        let mut doc = Vec::with_capacity(len);
        for _ in 0..len {
            let burst = !recent_rare.is_empty() && self.rng.gen_bool(self.spec.burstiness);
            let tok = if burst {
                recent_rare[self.rng.gen_range(0..recent_rare.len())]
            } else {
                self.sample_zipf()
            };
            if tok >= rare_floor && !recent_rare.contains(&tok) {
                recent_rare.push(tok);
                if recent_rare.len() > 8 {
                    recent_rare.remove(0);
                }
            }
            doc.push(tok);
        }
        doc
    }

    /// Samples a whole corpus of documents with lengths in `len_range`.
    pub fn corpus(&mut self, docs: usize, len_range: (usize, usize)) -> Vec<Vec<u32>> {
        (0..docs)
            .map(|_| {
                let len = self
                    .rng
                    .gen_range(len_range.0..=len_range.1.max(len_range.0 + 1));
                self.document(len)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(seed: u64) -> CorpusSampler {
        CorpusSampler::new(CorpusSpec::default(), seed).unwrap()
    }

    #[test]
    fn validates_spec() {
        let bad = CorpusSpec {
            vocab: 0,
            ..CorpusSpec::default()
        };
        assert!(CorpusSampler::new(bad, 1).is_err());
        let bad = CorpusSpec {
            zipf_s: 0.0,
            ..CorpusSpec::default()
        };
        assert!(CorpusSampler::new(bad, 1).is_err());
        let bad = CorpusSpec {
            burstiness: 1.0,
            ..CorpusSpec::default()
        };
        assert!(CorpusSampler::new(bad, 1).is_err());
    }

    #[test]
    fn deterministic_and_in_range() {
        let a = sampler(9).document(200);
        let b = sampler(9).document(200);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| (t as usize) < 256));
        let c = sampler(10).document(200);
        assert_ne!(a, c);
    }

    #[test]
    fn frequencies_are_zipf_like() {
        let mut s = sampler(3);
        let doc = s.document(20_000);
        let mut counts = vec![0usize; 256];
        for &t in &doc {
            counts[t as usize] += 1;
        }
        // Rank 0 should dominate rank 10 by roughly 10^s; allow slack for
        // burstiness noise.
        assert!(
            counts[0] > 4 * counts[10].max(1),
            "head {} vs rank10 {}",
            counts[0],
            counts[10]
        );
        // The tail half of the vocabulary is collectively rare.
        let tail: usize = counts[128..].iter().sum();
        assert!((tail as f64) < 0.25 * doc.len() as f64);
    }

    #[test]
    fn burstiness_repeats_rare_tokens() {
        // With high burstiness, rare tokens recur within a document far
        // more often than their unigram probability implies.
        let mut bursty = CorpusSampler::new(
            CorpusSpec {
                burstiness: 0.6,
                ..CorpusSpec::default()
            },
            5,
        )
        .unwrap();
        let mut flat = CorpusSampler::new(
            CorpusSpec {
                burstiness: 0.0,
                ..CorpusSpec::default()
            },
            5,
        )
        .unwrap();
        let rare_floor = 32u32;
        let repeats = |doc: &[u32]| {
            let mut seen = std::collections::HashMap::new();
            let mut reps = 0usize;
            for &t in doc {
                if t >= rare_floor {
                    *seen.entry(t).or_insert(0usize) += 1;
                }
            }
            for (_, c) in seen {
                reps += c.saturating_sub(1);
            }
            reps
        };
        let r_bursty: usize = (0..20).map(|_| repeats(&bursty.document(200))).sum();
        let r_flat: usize = (0..20).map(|_| repeats(&flat.document(200))).sum();
        assert!(
            r_bursty > 2 * r_flat.max(1),
            "bursty {r_bursty} vs flat {r_flat}"
        );
    }

    #[test]
    fn corpus_respects_length_range() {
        let mut s = sampler(7);
        let corpus = s.corpus(10, (50, 80));
        assert_eq!(corpus.len(), 10);
        assert!(corpus.iter().all(|d| (50..=81).contains(&d.len())));
    }
}
