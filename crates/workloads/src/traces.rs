//! Request-arrival traces for the serving experiments.
//!
//! The latency suites in [`crate::suites`] describe *what* a request
//! looks like (prompt/output lengths); a trace describes *when* requests
//! show up. Four standard shapes cover the serving benchmarks: Poisson
//! arrivals (independent users at a mean rate), uniform pacing (load
//! generators), a burst (everyone at once — the admission-cap stress),
//! and heavy-tail arrivals (Pareto gaps: long quiet stretches broken by
//! tight clusters — the shape that actually exercises memory-pressure
//! eviction in the paged-KV serving layer). All are seeded and
//! reproducible, and arrival times are milliseconds from the start of
//! the serving run — exactly the `GenerationRequest::arrival_ms` release
//! times the continuous-batching scheduler in `llmnpu-core` honors.
//!
//! [`LengthMix::heavy_tail`] is the companion *length* generator: mostly
//! short chat-style prompts with an occasional document-length outlier,
//! so a bounded KV pool sees both many-small and few-huge footprints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic sequence of request arrival times.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Arrival times in ms from run start, non-decreasing.
    pub arrivals_ms: Vec<f64>,
}

impl ArrivalTrace {
    /// Poisson arrivals: exponentially distributed inter-arrival gaps at
    /// `rate_per_s` mean requests per second (seeded, reproducible).
    #[must_use]
    pub fn poisson(seed: u64, rate_per_s: f64, n: usize) -> Self {
        let rate = rate_per_s.max(1e-9);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let arrivals_ms = (0..n)
            .map(|_| {
                // Inverse-CDF exponential gap; u ∈ [0, 1) so 1 - u > 0.
                let u: f64 = rng.gen();
                t += -(1.0 - u).ln() / rate * 1e3;
                t
            })
            .collect();
        ArrivalTrace { arrivals_ms }
    }

    /// Heavy-tail arrivals: inter-arrival gaps drawn from a Pareto
    /// distribution with shape `alpha` and scale `scale_ms` (gap =
    /// `scale_ms · (1-u)^(-1/alpha)`). Small `alpha` (≤ 2) produces the
    /// bursty long-tail pattern real user traffic shows — many requests
    /// clustered within a few scale units, then occasional gaps an
    /// order of magnitude longer. Clusters are what drive a bounded KV
    /// pool into memory pressure, so this is the eviction-stress trace.
    ///
    /// Seeded and reproducible; `alpha` and `scale_ms` are clamped to
    /// tiny positive floors to keep gaps finite.
    #[must_use]
    pub fn heavy_tail(seed: u64, scale_ms: f64, alpha: f64, n: usize) -> Self {
        let scale = scale_ms.max(1e-9);
        let alpha = alpha.max(1e-3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let arrivals_ms = (0..n)
            .map(|_| {
                // Inverse-CDF Pareto gap; u ∈ [0, 1) so 1 - u > 0.
                let u: f64 = rng.gen();
                t += scale * (1.0 - u).powf(-1.0 / alpha);
                t
            })
            .collect();
        ArrivalTrace { arrivals_ms }
    }

    /// Uniformly paced arrivals: one request every `gap_ms`, starting at
    /// time zero.
    #[must_use]
    pub fn uniform(gap_ms: f64, n: usize) -> Self {
        ArrivalTrace {
            arrivals_ms: (0..n).map(|i| i as f64 * gap_ms).collect(),
        }
    }

    /// A burst: all `n` requests arrive at time zero (the admission-cap
    /// stress shape).
    #[must_use]
    pub fn burst(n: usize) -> Self {
        ArrivalTrace {
            arrivals_ms: vec![0.0; n],
        }
    }

    /// Number of arrivals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals_ms.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals_ms.is_empty()
    }

    /// Mean inter-arrival gap in ms (0 for traces shorter than 2).
    #[must_use]
    pub fn mean_gap_ms(&self) -> f64 {
        if self.arrivals_ms.len() < 2 {
            return 0.0;
        }
        let span = self.arrivals_ms.last().unwrap() - self.arrivals_ms.first().unwrap();
        span / (self.arrivals_ms.len() - 1) as f64
    }

    /// Offered load in requests per second over the trace's span (0 for
    /// traces shorter than 2 or zero-span bursts).
    #[must_use]
    pub fn offered_rate_per_s(&self) -> f64 {
        let gap = self.mean_gap_ms();
        if gap > 0.0 {
            1e3 / gap
        } else {
            0.0
        }
    }
}

/// A seeded request-shape mix: `(prompt_len, max_new_tokens)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LengthMix {
    /// One `(prompt_len, max_new_tokens)` pair per request.
    pub shapes: Vec<(usize, usize)>,
}

impl LengthMix {
    /// A heavy-tail long-prompt mix: most prompts are chat-sized (a few
    /// × `base_prompt`), but a Pareto tail occasionally emits prompts
    /// up to `max_prompt` — the document-summarization outliers whose
    /// KV footprint dwarfs their neighbors'. Decode budgets stay modest
    /// (chat replies), so the *prompt* KV dominates, which is exactly
    /// the regime where paged admission and eviction earn their keep.
    #[must_use]
    pub fn heavy_tail(seed: u64, n: usize, base_prompt: usize, max_prompt: usize) -> Self {
        let base = base_prompt.max(1);
        let cap = max_prompt.max(base);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let shapes = (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                // Pareto(α = 1.1): ~70% land within 2× base.
                let prompt = ((base as f64) * (1.0 - u).powf(-1.0 / 1.1)) as usize;
                let prompt = prompt.clamp(base, cap);
                let v: f64 = rng.gen();
                let max_new = 2 + (v * 6.0) as usize;
                (prompt, max_new)
            })
            .collect();
        LengthMix { shapes }
    }

    /// Number of request shapes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether the mix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Total worst-case token footprint (prompt + decode budget).
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.shapes.iter().map(|&(p, n)| p + n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_seeded_and_monotone() {
        let a = ArrivalTrace::poisson(3, 10.0, 64);
        let b = ArrivalTrace::poisson(3, 10.0, 64);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for w in a.arrivals_ms.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(a.arrivals_ms.iter().all(|&t| t.is_finite() && t >= 0.0));
        let c = ArrivalTrace::poisson(4, 10.0, 64);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        // 10 req/s → mean gap 100 ms; a 512-sample estimate lands well
        // within a factor of 1.5.
        let t = ArrivalTrace::poisson(7, 10.0, 512);
        let gap = t.mean_gap_ms();
        assert!((66.0..150.0).contains(&gap), "mean gap {gap:.1} ms");
        let rate = t.offered_rate_per_s();
        assert!((6.6..15.0).contains(&rate), "rate {rate:.2}/s");
    }

    #[test]
    fn heavy_tail_is_seeded_bursty_and_monotone() {
        let a = ArrivalTrace::heavy_tail(5, 10.0, 1.1, 256);
        let b = ArrivalTrace::heavy_tail(5, 10.0, 1.1, 256);
        assert_eq!(a, b, "seeded reproducibility");
        assert_ne!(a, ArrivalTrace::heavy_tail(6, 10.0, 1.1, 256));
        for w in a.arrivals_ms.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(a.arrivals_ms.iter().all(|&t| t.is_finite() && t >= 0.0));
        // The tail: the largest gap dwarfs the median gap (burstiness a
        // Poisson trace of the same mean would almost never show).
        let mut gaps: Vec<f64> = a.arrivals_ms.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = gaps[gaps.len() / 2];
        let max = gaps[gaps.len() - 1];
        assert!(
            max > 10.0 * median,
            "max gap {max:.1} vs median {median:.1}: not heavy-tailed"
        );
        // Every gap respects the Pareto scale floor.
        assert!(gaps[0] >= 10.0 - 1e-9);
    }

    #[test]
    fn heavy_tail_length_mix_spans_the_range() {
        let m = LengthMix::heavy_tail(9, 128, 8, 256);
        assert_eq!(m, LengthMix::heavy_tail(9, 128, 8, 256));
        assert_eq!(m.len(), 128);
        assert!(!m.is_empty());
        assert!(m
            .shapes
            .iter()
            .all(|&(p, n)| (8..=256).contains(&p) && n >= 2));
        // Mostly short...
        let short = m.shapes.iter().filter(|&&(p, _)| p <= 16).count();
        assert!(short * 2 > m.len(), "{short}/128 short prompts");
        // ...with a real long tail.
        let long = m.shapes.iter().filter(|&&(p, _)| p >= 64).count();
        assert!(long >= 3, "only {long} long-prompt outliers");
        assert!(m.total_tokens() > 0);
    }

    #[test]
    fn uniform_and_burst_shapes() {
        let u = ArrivalTrace::uniform(50.0, 4);
        assert_eq!(u.arrivals_ms, vec![0.0, 50.0, 100.0, 150.0]);
        assert!((u.mean_gap_ms() - 50.0).abs() < 1e-12);
        let b = ArrivalTrace::burst(3);
        assert_eq!(b.arrivals_ms, vec![0.0, 0.0, 0.0]);
        assert_eq!(b.offered_rate_per_s(), 0.0);
        assert!(ArrivalTrace::burst(0).is_empty());
    }
}
