//! Request-arrival traces for the serving experiments.
//!
//! The latency suites in [`crate::suites`] describe *what* a request
//! looks like (prompt/output lengths); a trace describes *when* requests
//! show up. Three standard shapes cover the serving benchmarks: Poisson
//! arrivals (independent users at a mean rate), uniform pacing (load
//! generators), and a burst (everyone at once — the admission-cap
//! stress). All are seeded and reproducible, and arrival times are
//! milliseconds from the start of the serving run — exactly the
//! `GenerationRequest::arrival_ms` release times the continuous-batching
//! scheduler in `llmnpu-core` honors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic sequence of request arrival times.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Arrival times in ms from run start, non-decreasing.
    pub arrivals_ms: Vec<f64>,
}

impl ArrivalTrace {
    /// Poisson arrivals: exponentially distributed inter-arrival gaps at
    /// `rate_per_s` mean requests per second (seeded, reproducible).
    #[must_use]
    pub fn poisson(seed: u64, rate_per_s: f64, n: usize) -> Self {
        let rate = rate_per_s.max(1e-9);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let arrivals_ms = (0..n)
            .map(|_| {
                // Inverse-CDF exponential gap; u ∈ [0, 1) so 1 - u > 0.
                let u: f64 = rng.gen();
                t += -(1.0 - u).ln() / rate * 1e3;
                t
            })
            .collect();
        ArrivalTrace { arrivals_ms }
    }

    /// Uniformly paced arrivals: one request every `gap_ms`, starting at
    /// time zero.
    #[must_use]
    pub fn uniform(gap_ms: f64, n: usize) -> Self {
        ArrivalTrace {
            arrivals_ms: (0..n).map(|i| i as f64 * gap_ms).collect(),
        }
    }

    /// A burst: all `n` requests arrive at time zero (the admission-cap
    /// stress shape).
    #[must_use]
    pub fn burst(n: usize) -> Self {
        ArrivalTrace {
            arrivals_ms: vec![0.0; n],
        }
    }

    /// Number of arrivals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals_ms.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals_ms.is_empty()
    }

    /// Mean inter-arrival gap in ms (0 for traces shorter than 2).
    #[must_use]
    pub fn mean_gap_ms(&self) -> f64 {
        if self.arrivals_ms.len() < 2 {
            return 0.0;
        }
        let span = self.arrivals_ms.last().unwrap() - self.arrivals_ms.first().unwrap();
        span / (self.arrivals_ms.len() - 1) as f64
    }

    /// Offered load in requests per second over the trace's span (0 for
    /// traces shorter than 2 or zero-span bursts).
    #[must_use]
    pub fn offered_rate_per_s(&self) -> f64 {
        let gap = self.mean_gap_ms();
        if gap > 0.0 {
            1e3 / gap
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_seeded_and_monotone() {
        let a = ArrivalTrace::poisson(3, 10.0, 64);
        let b = ArrivalTrace::poisson(3, 10.0, 64);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for w in a.arrivals_ms.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(a.arrivals_ms.iter().all(|&t| t.is_finite() && t >= 0.0));
        let c = ArrivalTrace::poisson(4, 10.0, 64);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        // 10 req/s → mean gap 100 ms; a 512-sample estimate lands well
        // within a factor of 1.5.
        let t = ArrivalTrace::poisson(7, 10.0, 512);
        let gap = t.mean_gap_ms();
        assert!((66.0..150.0).contains(&gap), "mean gap {gap:.1} ms");
        let rate = t.offered_rate_per_s();
        assert!((6.6..15.0).contains(&rate), "rate {rate:.2}/s");
    }

    #[test]
    fn uniform_and_burst_shapes() {
        let u = ArrivalTrace::uniform(50.0, 4);
        assert_eq!(u.arrivals_ms, vec![0.0, 50.0, 100.0, 150.0]);
        assert!((u.mean_gap_ms() - 50.0).abs() < 1e-12);
        let b = ArrivalTrace::burst(3);
        assert_eq!(b.arrivals_ms, vec![0.0, 0.0, 0.0]);
        assert_eq!(b.offered_rate_per_s(), 0.0);
        assert!(ArrivalTrace::burst(0).is_empty());
    }
}
