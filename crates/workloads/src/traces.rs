//! Request-arrival traces for the serving experiments.
//!
//! The latency suites in [`crate::suites`] describe *what* a request
//! looks like (prompt/output lengths); a trace describes *when* requests
//! show up. Four standard shapes cover the serving benchmarks: Poisson
//! arrivals (independent users at a mean rate), uniform pacing (load
//! generators), a burst (everyone at once — the admission-cap stress),
//! and heavy-tail arrivals (Pareto gaps: long quiet stretches broken by
//! tight clusters — the shape that actually exercises memory-pressure
//! eviction in the paged-KV serving layer). All are seeded and
//! reproducible, and arrival times are milliseconds from the start of
//! the serving run — exactly the `GenerationRequest::arrival_ms` release
//! times the continuous-batching scheduler in `llmnpu-core` honors.
//!
//! [`LengthMix::heavy_tail`] is the companion *length* generator: mostly
//! short chat-style prompts with an occasional document-length outlier,
//! so a bounded KV pool sees both many-small and few-huge footprints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic sequence of request arrival times.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Arrival times in ms from run start, non-decreasing.
    pub arrivals_ms: Vec<f64>,
}

impl ArrivalTrace {
    /// Poisson arrivals: exponentially distributed inter-arrival gaps at
    /// `rate_per_s` mean requests per second (seeded, reproducible).
    #[must_use]
    pub fn poisson(seed: u64, rate_per_s: f64, n: usize) -> Self {
        let rate = rate_per_s.max(1e-9);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let arrivals_ms = (0..n)
            .map(|_| {
                // Inverse-CDF exponential gap; u ∈ [0, 1) so 1 - u > 0.
                let u: f64 = rng.gen();
                t += -(1.0 - u).ln() / rate * 1e3;
                t
            })
            .collect();
        ArrivalTrace { arrivals_ms }
    }

    /// Heavy-tail arrivals: inter-arrival gaps drawn from a Pareto
    /// distribution with shape `alpha` and scale `scale_ms` (gap =
    /// `scale_ms · (1-u)^(-1/alpha)`). Small `alpha` (≤ 2) produces the
    /// bursty long-tail pattern real user traffic shows — many requests
    /// clustered within a few scale units, then occasional gaps an
    /// order of magnitude longer. Clusters are what drive a bounded KV
    /// pool into memory pressure, so this is the eviction-stress trace.
    ///
    /// Seeded and reproducible; `alpha` and `scale_ms` are clamped to
    /// tiny positive floors to keep gaps finite.
    #[must_use]
    pub fn heavy_tail(seed: u64, scale_ms: f64, alpha: f64, n: usize) -> Self {
        let scale = scale_ms.max(1e-9);
        let alpha = alpha.max(1e-3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let arrivals_ms = (0..n)
            .map(|_| {
                // Inverse-CDF Pareto gap; u ∈ [0, 1) so 1 - u > 0.
                let u: f64 = rng.gen();
                t += scale * (1.0 - u).powf(-1.0 / alpha);
                t
            })
            .collect();
        ArrivalTrace { arrivals_ms }
    }

    /// Uniformly paced arrivals: one request every `gap_ms`, starting at
    /// time zero.
    #[must_use]
    pub fn uniform(gap_ms: f64, n: usize) -> Self {
        ArrivalTrace {
            arrivals_ms: (0..n).map(|i| i as f64 * gap_ms).collect(),
        }
    }

    /// A burst: all `n` requests arrive at time zero (the admission-cap
    /// stress shape).
    #[must_use]
    pub fn burst(n: usize) -> Self {
        ArrivalTrace {
            arrivals_ms: vec![0.0; n],
        }
    }

    /// Number of arrivals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals_ms.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals_ms.is_empty()
    }

    /// Mean inter-arrival gap in ms (0 for traces shorter than 2).
    #[must_use]
    pub fn mean_gap_ms(&self) -> f64 {
        if self.arrivals_ms.len() < 2 {
            return 0.0;
        }
        let span = self.arrivals_ms.last().unwrap() - self.arrivals_ms.first().unwrap();
        span / (self.arrivals_ms.len() - 1) as f64
    }

    /// Offered load in requests per second over the trace's span (0 for
    /// traces shorter than 2 or zero-span bursts).
    #[must_use]
    pub fn offered_rate_per_s(&self) -> f64 {
        let gap = self.mean_gap_ms();
        if gap > 0.0 {
            1e3 / gap
        } else {
            0.0
        }
    }
}

/// A seeded request-shape mix: `(prompt_len, max_new_tokens)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LengthMix {
    /// One `(prompt_len, max_new_tokens)` pair per request.
    pub shapes: Vec<(usize, usize)>,
}

impl LengthMix {
    /// A heavy-tail long-prompt mix: most prompts are chat-sized (a few
    /// × `base_prompt`), but a Pareto tail occasionally emits prompts
    /// up to `max_prompt` — the document-summarization outliers whose
    /// KV footprint dwarfs their neighbors'. Decode budgets stay modest
    /// (chat replies), so the *prompt* KV dominates, which is exactly
    /// the regime where paged admission and eviction earn their keep.
    #[must_use]
    pub fn heavy_tail(seed: u64, n: usize, base_prompt: usize, max_prompt: usize) -> Self {
        let base = base_prompt.max(1);
        let cap = max_prompt.max(base);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let shapes = (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                // Pareto(α = 1.1): ~70% land within 2× base.
                let prompt = ((base as f64) * (1.0 - u).powf(-1.0 / 1.1)) as usize;
                let prompt = prompt.clamp(base, cap);
                let v: f64 = rng.gen();
                let max_new = 2 + (v * 6.0) as usize;
                (prompt, max_new)
            })
            .collect();
        LengthMix { shapes }
    }

    /// Number of request shapes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether the mix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Total worst-case token footprint (prompt + decode budget).
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.shapes.iter().map(|&(p, n)| p + n).sum()
    }
}

/// One request in a [`ChatTrace`]: a full token-id prompt (shared
/// system prefix + private suffix) plus its decode budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatPrompt {
    /// The complete prompt: `system_prompts[system]` followed by a
    /// request-private suffix.
    pub tokens: Vec<u32>,
    /// Index of the shared system prompt this request opens with.
    pub system: usize,
    /// Decode budget (chat-reply sized).
    pub max_new_tokens: usize,
}

/// A seeded multi-tenant chat workload: every request opens with one
/// of a small pool of **shared system prompts** and continues with a
/// private heavy-tail suffix, arriving in bursty clusters.
///
/// This is the trace shape that exercises a *global* prefix cache: the
/// system prompts repeat across thousands of requests whose producers
/// are long finished, so reuse cannot come from live-donor sharing —
/// only from cached pages surviving in the pool. Popularity is
/// Zipf-like (system 0 is the assistant default almost everyone uses;
/// later ones are niche personas), matching how real deployments skew.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatTrace {
    /// The shared system prompts, as token ids.
    pub system_prompts: Vec<Vec<u32>>,
    /// One prompt per request.
    pub prompts: Vec<ChatPrompt>,
    /// Arrival time of each request (ms from run start, non-decreasing;
    /// heavy-tail gaps, so requests cluster into bursts).
    pub arrivals_ms: Vec<f64>,
}

impl ChatTrace {
    /// Generates `n` requests over `systems` shared system prompts of
    /// `system_tokens` tokens each, with private suffix lengths drawn
    /// heavy-tail in `[base_suffix, max_suffix]`, token ids in
    /// `[0, vocab)`, and heavy-tail (bursty) arrivals at `scale_ms`
    /// mean-gap scale. Fully seeded and reproducible.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // a trace recipe, not an API to thread through
    pub fn shared_system_prompts(
        seed: u64,
        n: usize,
        systems: usize,
        system_tokens: usize,
        base_suffix: usize,
        max_suffix: usize,
        vocab: u32,
        scale_ms: f64,
    ) -> Self {
        let systems = systems.max(1);
        let vocab = vocab.max(2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
        let system_prompts: Vec<Vec<u32>> = (0..systems)
            .map(|_| {
                (0..system_tokens)
                    .map(|_| rng.gen_range(0..vocab))
                    .collect()
            })
            .collect();
        // Zipf-like popularity: weight 1/(i+1) for system i.
        let weights: Vec<f64> = (0..systems).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let total_w: f64 = weights.iter().sum();
        let mix = LengthMix::heavy_tail(seed ^ 0x27d4_eb2f, n, base_suffix.max(1), max_suffix);
        let prompts = mix
            .shapes
            .iter()
            .map(|&(suffix_len, max_new)| {
                let mut pick: f64 = rng.gen_range(0.0..total_w);
                let mut system = systems - 1;
                for (i, w) in weights.iter().enumerate() {
                    if pick < *w {
                        system = i;
                        break;
                    }
                    pick -= w;
                }
                let mut tokens = system_prompts[system].clone();
                tokens.extend((0..suffix_len).map(|_| rng.gen_range(0..vocab)));
                ChatPrompt {
                    tokens,
                    system,
                    max_new_tokens: max_new,
                }
            })
            .collect();
        let arrivals_ms =
            ArrivalTrace::heavy_tail(seed ^ 0x85eb_ca6b, scale_ms, 1.1, n).arrivals_ms;
        ChatTrace {
            system_prompts,
            prompts,
            arrivals_ms,
        }
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prompts.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prompts.is_empty()
    }

    /// Total worst-case token footprint (prompts + decode budgets).
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.prompts
            .iter()
            .map(|p| p.tokens.len() + p.max_new_tokens)
            .sum()
    }

    /// Prompt tokens covered by shared system prefixes — the tokens a
    /// perfect global prefix cache would prefill exactly once per
    /// system prompt instead of once per request.
    #[must_use]
    pub fn shared_prefix_tokens(&self) -> usize {
        self.prompts
            .iter()
            .map(|p| self.system_prompts[p.system].len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_seeded_and_monotone() {
        let a = ArrivalTrace::poisson(3, 10.0, 64);
        let b = ArrivalTrace::poisson(3, 10.0, 64);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for w in a.arrivals_ms.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(a.arrivals_ms.iter().all(|&t| t.is_finite() && t >= 0.0));
        let c = ArrivalTrace::poisson(4, 10.0, 64);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        // 10 req/s → mean gap 100 ms; a 512-sample estimate lands well
        // within a factor of 1.5.
        let t = ArrivalTrace::poisson(7, 10.0, 512);
        let gap = t.mean_gap_ms();
        assert!((66.0..150.0).contains(&gap), "mean gap {gap:.1} ms");
        let rate = t.offered_rate_per_s();
        assert!((6.6..15.0).contains(&rate), "rate {rate:.2}/s");
    }

    #[test]
    fn heavy_tail_is_seeded_bursty_and_monotone() {
        let a = ArrivalTrace::heavy_tail(5, 10.0, 1.1, 256);
        let b = ArrivalTrace::heavy_tail(5, 10.0, 1.1, 256);
        assert_eq!(a, b, "seeded reproducibility");
        assert_ne!(a, ArrivalTrace::heavy_tail(6, 10.0, 1.1, 256));
        for w in a.arrivals_ms.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(a.arrivals_ms.iter().all(|&t| t.is_finite() && t >= 0.0));
        // The tail: the largest gap dwarfs the median gap (burstiness a
        // Poisson trace of the same mean would almost never show).
        let mut gaps: Vec<f64> = a.arrivals_ms.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = gaps[gaps.len() / 2];
        let max = gaps[gaps.len() - 1];
        assert!(
            max > 10.0 * median,
            "max gap {max:.1} vs median {median:.1}: not heavy-tailed"
        );
        // Every gap respects the Pareto scale floor.
        assert!(gaps[0] >= 10.0 - 1e-9);
    }

    #[test]
    fn heavy_tail_length_mix_spans_the_range() {
        let m = LengthMix::heavy_tail(9, 128, 8, 256);
        assert_eq!(m, LengthMix::heavy_tail(9, 128, 8, 256));
        assert_eq!(m.len(), 128);
        assert!(!m.is_empty());
        assert!(m
            .shapes
            .iter()
            .all(|&(p, n)| (8..=256).contains(&p) && n >= 2));
        // Mostly short...
        let short = m.shapes.iter().filter(|&&(p, _)| p <= 16).count();
        assert!(short * 2 > m.len(), "{short}/128 short prompts");
        // ...with a real long tail.
        let long = m.shapes.iter().filter(|&&(p, _)| p >= 64).count();
        assert!(long >= 3, "only {long} long-prompt outliers");
        assert!(m.total_tokens() > 0);
    }

    #[test]
    fn chat_trace_shares_system_prompts_reproducibly() {
        let t = ChatTrace::shared_system_prompts(11, 200, 3, 12, 4, 64, 96, 10.0);
        assert_eq!(
            t,
            ChatTrace::shared_system_prompts(11, 200, 3, 12, 4, 64, 96, 10.0),
            "seeded reproducibility"
        );
        assert_ne!(
            t,
            ChatTrace::shared_system_prompts(12, 200, 3, 12, 4, 64, 96, 10.0)
        );
        assert_eq!(t.len(), 200);
        assert_eq!(t.arrivals_ms.len(), 200);
        assert_eq!(t.system_prompts.len(), 3);
        for p in &t.prompts {
            // Every prompt literally opens with its system prompt.
            let sys = &t.system_prompts[p.system];
            assert_eq!(&p.tokens[..sys.len()], &sys[..]);
            assert!(p.tokens.len() > sys.len(), "suffix must be non-empty");
            assert!(p.tokens.iter().all(|&tok| tok < 96));
            assert!(p.max_new_tokens >= 2);
        }
        // Zipf skew: the default persona dominates, but every system
        // prompt gets some traffic.
        let counts: Vec<usize> = (0..3)
            .map(|s| t.prompts.iter().filter(|p| p.system == s).count())
            .collect();
        assert!(counts[0] > counts[2], "popularity skew: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "dead persona: {counts:?}");
        // The shared fraction is what a global cache can save.
        assert_eq!(t.shared_prefix_tokens(), 200 * 12);
        assert!(t.total_tokens() > t.shared_prefix_tokens());
        for w in t.arrivals_ms.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn uniform_and_burst_shapes() {
        let u = ArrivalTrace::uniform(50.0, 4);
        assert_eq!(u.arrivals_ms, vec![0.0, 50.0, 100.0, 150.0]);
        assert!((u.mean_gap_ms() - 50.0).abs() < 1e-12);
        let b = ArrivalTrace::burst(3);
        assert_eq!(b.arrivals_ms, vec![0.0, 0.0, 0.0]);
        assert_eq!(b.offered_rate_per_s(), 0.0);
        assert!(ArrivalTrace::burst(0).is_empty());
    }
}
