//! Workload suites matching the paper's reported length statistics.
//!
//! Table 5 and §2.1 give per-dataset prompt and output ranges; the latency
//! experiments need nothing else from the datasets. Each suite samples
//! uniformly inside the reported ranges (seeded, reproducible).

use rand::Rng;

/// One sampled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSample {
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Output (decode) length in tokens.
    pub output_len: usize,
}

/// A workload suite: the length distribution of one evaluation dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suite {
    /// Suite name as the paper reports it.
    pub name: &'static str,
    /// Application category (Figure 1's rows).
    pub category: &'static str,
    /// Inclusive prompt-length range.
    pub prompt_range: (usize, usize),
    /// Inclusive output-length range.
    pub output_range: (usize, usize),
}

impl Suite {
    /// LongBench 2wikimqa: multi-document QA, 1451–1672 prompt tokens,
    /// 2–4 output tokens (Table 5).
    #[must_use]
    pub fn longbench_2wikimqa() -> Self {
        Suite {
            name: "Longbench: 2wiki-Multi-doc QA",
            category: "Context-aware QA",
            prompt_range: (1451, 1672),
            output_range: (2, 4),
        }
    }

    /// LongBench TriviaQA: 1511–1787 prompt tokens, 5–11 output tokens.
    #[must_use]
    pub fn longbench_triviaqa() -> Self {
        Suite {
            name: "Longbench: TriviaQA",
            category: "Context-aware QA",
            prompt_range: (1511, 1787),
            output_range: (5, 11),
        }
    }

    /// DroidTask (UI automation), longer screens: 656–827 prompt tokens,
    /// 1–5 output tokens.
    #[must_use]
    pub fn droidtask_long() -> Self {
        Suite {
            name: "DroidTask: applauncher",
            category: "UI Automation",
            prompt_range: (656, 827),
            output_range: (1, 5),
        }
    }

    /// DroidTask (UI automation), clock app: 505–645 prompt tokens,
    /// 3–5 output tokens.
    #[must_use]
    pub fn droidtask_clock() -> Self {
        Suite {
            name: "DroidTask: clock",
            category: "UI Automation",
            prompt_range: (505, 645),
            output_range: (3, 5),
        }
    }

    /// Persona-Chat (chat summary / persona dialogue): 488–584 prompt
    /// tokens, 35–57 output tokens.
    #[must_use]
    pub fn persona_chat() -> Self {
        Suite {
            name: "Persona-Chat",
            category: "Chat-Summary",
            prompt_range: (488, 584),
            output_range: (35, 57),
        }
    }

    /// The five suites used in the end-to-end evaluation (Table 5 order).
    #[must_use]
    pub fn all_e2e() -> Vec<Suite> {
        vec![
            Self::longbench_2wikimqa(),
            Self::longbench_triviaqa(),
            Self::droidtask_long(),
            Self::droidtask_clock(),
            Self::persona_chat(),
        ]
    }

    /// The three application categories of Figure 1, with a representative
    /// suite each.
    #[must_use]
    pub fn figure1_categories() -> Vec<Suite> {
        vec![
            Self::droidtask_clock(),
            Self::longbench_2wikimqa(),
            Self::persona_chat(),
        ]
    }

    /// Samples one request.
    #[must_use]
    pub fn sample(&self, rng: &mut impl Rng) -> WorkloadSample {
        WorkloadSample {
            prompt_len: rng.gen_range(self.prompt_range.0..=self.prompt_range.1),
            output_len: rng.gen_range(self.output_range.0..=self.output_range.1),
        }
    }

    /// Midpoint request (deterministic representative).
    #[must_use]
    pub fn midpoint(&self) -> WorkloadSample {
        WorkloadSample {
            prompt_len: (self.prompt_range.0 + self.prompt_range.1) / 2,
            output_len: (self.output_range.0 + self.output_range.1) / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_match_table5() {
        let s = Suite::longbench_2wikimqa();
        assert_eq!(s.prompt_range, (1451, 1672));
        assert_eq!(s.output_range, (2, 4));
        let p = Suite::persona_chat();
        assert_eq!(p.prompt_range, (488, 584));
        assert_eq!(p.output_range, (35, 57));
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for suite in Suite::all_e2e() {
            for _ in 0..50 {
                let s = suite.sample(&mut rng);
                assert!(s.prompt_len >= suite.prompt_range.0);
                assert!(s.prompt_len <= suite.prompt_range.1);
                assert!(s.output_len >= suite.output_range.0);
                assert!(s.output_len <= suite.output_range.1);
            }
        }
    }

    #[test]
    fn prompts_dwarf_outputs_except_persona() {
        // §2.1: prompts are long, outputs short — except chat summaries,
        // which are "relatively balanced".
        for suite in [
            Suite::longbench_2wikimqa(),
            Suite::longbench_triviaqa(),
            Suite::droidtask_clock(),
        ] {
            let m = suite.midpoint();
            assert!(m.prompt_len > 50 * m.output_len, "{}", suite.name);
        }
        let persona = Suite::persona_chat().midpoint();
        assert!(persona.prompt_len < 20 * persona.output_len);
    }

    #[test]
    fn figure1_covers_three_categories() {
        let cats: Vec<&str> = Suite::figure1_categories()
            .iter()
            .map(|s| s.category)
            .collect();
        assert_eq!(cats.len(), 3);
        assert!(cats.contains(&"UI Automation"));
        assert!(cats.contains(&"Context-aware QA"));
        assert!(cats.contains(&"Chat-Summary"));
    }

    #[test]
    fn midpoint_is_deterministic() {
        let a = Suite::droidtask_clock().midpoint();
        let b = Suite::droidtask_clock().midpoint();
        assert_eq!(a, b);
        assert_eq!(a.prompt_len, (505 + 645) / 2);
    }
}
