//! Synthetic workloads and the accuracy-proxy benchmark harness.
//!
//! The paper evaluates on datasets we cannot ship (DroidTask, LongBench,
//! Persona-Chat, LAMBADA, HellaSwag, WinoGrande, OpenBookQA, MMLU). Only
//! two properties of those datasets enter the experiments:
//!
//! 1. **Length statistics** — prompt and output token counts drive every
//!    latency/energy experiment. [`suites`] reproduces the ranges the
//!    paper reports (Table 5 headers, §2.1).
//! 2. **Arrival shapes** — the serving experiments additionally need to
//!    know *when* requests show up; [`traces`] provides seeded Poisson /
//!    uniform / burst arrival traces whose times feed the
//!    continuous-batching scheduler's release gates.
//! 3. **Accuracy sensitivity to quantization error** — [`accuracy`] builds
//!    synthetic multiple-choice tasks over a real (small) transformer whose
//!    label noise is calibrated so the FP32 reference scores near the
//!    paper's FP16 numbers; each quantization scheme is then evaluated with
//!    *real quantized forward passes*, so the accuracy ordering of Table 6
//!    emerges from the actual arithmetic rather than being hard-coded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod accuracy;
pub mod corpus;
pub mod suites;
pub mod traces;

pub use error::Error;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Deterministic random prompt of `len` tokens over a vocabulary.
#[must_use]
pub fn random_prompt(rng: &mut impl rand::Rng, len: usize, vocab: usize) -> Vec<u32> {
    (0..len).map(|_| rng.gen_range(0..vocab as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_prompt_is_seeded_and_bounded() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let pa = random_prompt(&mut a, 32, 64);
        let pb = random_prompt(&mut b, 32, 64);
        assert_eq!(pa, pb);
        assert_eq!(pa.len(), 32);
        assert!(pa.iter().all(|&t| t < 64));
    }
}
