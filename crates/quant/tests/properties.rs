//! Property-based tests over the quantization schemes' algebraic
//! invariants.

use proptest::prelude::*;

use llmnpu_quant::mixed::MixedLinear;
use llmnpu_quant::outlier::{calibrate_scale, extract_outliers, HotChannelPolicy, ShadowLinear};
use llmnpu_quant::per_tensor::{max_min_scale, QuantizedMatrix, QMAX};
use llmnpu_quant::smooth::{channel_abs_max, smoothing_factors};
use llmnpu_tensor::Tensor;

fn matrix(rows: usize, cols: usize, mag: f32) -> impl Strategy<Value = Tensor<f32>> {
    prop::collection::vec(-mag..mag, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, [rows, cols]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The max-min scale always maps the extreme element to exactly ±127.
    #[test]
    fn max_min_scale_saturates_extreme(values in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        prop_assume!(values.iter().any(|&v| v.abs() > 1e-3));
        let s = max_min_scale(&values);
        let extreme = values.iter().fold(0.0f32, |m, &v| if v.abs() > m.abs() { v } else { m });
        let q = (extreme / s).round();
        prop_assert!((q.abs() - QMAX).abs() < 1.0, "extreme maps to {q}");
    }

    /// Quantization is sign-preserving and monotone (up to rounding ties).
    #[test]
    fn quantization_preserves_order(a in -50.0f32..50.0, b in -50.0f32..50.0, s in 0.01f32..2.0) {
        use llmnpu_quant::per_tensor::quantize_value;
        if a < b {
            prop_assert!(quantize_value(a, s) <= quantize_value(b, s));
        }
        // Sign preserved whenever the value doesn't round to zero.
        if a.abs() > 0.6 * s {
            prop_assert_eq!(quantize_value(a, s).signum() as f32, a.signum());
        }
    }

    /// Dequantize∘quantize is idempotent: re-quantizing the dequantized
    /// tensor with the same scale reproduces the same integers.
    #[test]
    fn quantize_idempotent(x in matrix(4, 4, 30.0)) {
        let q1 = QuantizedMatrix::quantize(&x);
        let q2 = QuantizedMatrix::quantize_with_scale(&q1.dequantize(), q1.scale());
        prop_assert_eq!(q1.data().as_slice(), q2.data().as_slice());
    }

    /// Extraction is complete: after subtracting residuals, every channel
    /// of the activation is within the clipping range.
    #[test]
    fn extraction_is_complete(x in matrix(3, 8, 60.0), scale in 0.02f32..0.3) {
        let out = extract_outliers(&x, scale);
        let limit = QMAX * scale;
        let mut corrected = x.clone();
        for (j, &c) in out.channels.iter().enumerate() {
            for r in 0..3 {
                let v = corrected.row(r)[c] - out.residuals.row(r)[j];
                corrected.row_mut(r)[c] = v;
            }
        }
        for r in 0..3 {
            for c in 0..8 {
                prop_assert!(corrected.row(r)[c].abs() <= limit + 1e-4);
            }
        }
    }

    /// Shadow forward with shadow disabled equals the clipped NPU path:
    /// disabling never *adds* anything.
    #[test]
    fn disabled_shadow_is_subset(w in matrix(6, 4, 1.0), x in matrix(2, 6, 3.0)) {
        let scale = 0.01f32;
        let full = ShadowLinear::new(&w, scale);
        let pruned = ShadowLinear::new(&w, scale).with_shadow_disabled();
        let y_full = full.forward(&x).unwrap();
        let y_pruned = pruned.forward(&x).unwrap();
        prop_assert!(y_pruned.extracted_channels.is_empty());
        // If nothing was extracted in the full run, outputs are identical.
        if y_full.extracted_channels.is_empty() {
            prop_assert_eq!(y_full.output.as_slice(), y_pruned.output.as_slice());
        }
    }

    /// calibrate_scale is monotone in the quantile: a higher quantile can
    /// only widen the clipping range.
    #[test]
    fn calibration_monotone_in_quantile(x in matrix(4, 8, 20.0), q1 in 0.5f64..0.9) {
        let corpus = vec![x];
        let q2 = q1 + 0.09;
        let s1 = calibrate_scale(&corpus, q1).unwrap();
        let s2 = calibrate_scale(&corpus, q2).unwrap();
        prop_assert!(s2 + 1e-12 >= s1, "scale shrank: {s1} -> {s2}");
    }

    /// Hot-channel policies cover at least the requested fraction of
    /// outlier events with their resident set.
    #[test]
    fn hot_policy_covers_target(
        counts in prop::collection::vec(0u64..500, 4..64),
        coverage in 0.05f64..1.0,
    ) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let policy = HotChannelPolicy::from_counts(&counts, coverage).unwrap();
        let covered: u64 = (0..counts.len())
            .filter(|&c| policy.residency(c) == llmnpu_quant::outlier::WeightResidency::Memory)
            .map(|c| counts[c])
            .sum();
        let total: u64 = counts.iter().sum();
        prop_assert!(covered as f64 + 1e-9 >= total as f64 * coverage);
    }

    /// Smoothing factors are positive and scale-covariant: doubling the
    /// activation maxima scales factors by 2^alpha.
    #[test]
    fn smoothing_factors_covariant(
        act in prop::collection::vec(0.1f32..50.0, 1..16),
        wmax in prop::collection::vec(0.1f32..5.0, 1..16),
        alpha in 0.1f32..0.9,
    ) {
        prop_assume!(act.len() == wmax.len());
        let f1 = smoothing_factors(&act, &wmax, alpha).unwrap();
        prop_assert!(f1.iter().all(|&f| f > 0.0));
        let act2: Vec<f32> = act.iter().map(|&a| a * 2.0).collect();
        let f2 = smoothing_factors(&act2, &wmax, alpha).unwrap();
        let expect = 2.0f32.powf(alpha);
        for (a, b) in f1.iter().zip(&f2) {
            prop_assert!((b / a - expect).abs() < 1e-3);
        }
    }

    /// channel_abs_max is invariant to row permutation.
    #[test]
    fn channel_abs_max_permutation_invariant(x in matrix(4, 6, 10.0)) {
        let m1 = channel_abs_max(&x);
        // Reverse the rows.
        let mut data = Vec::new();
        for r in (0..4).rev() {
            data.extend_from_slice(x.row(r));
        }
        let reversed = Tensor::from_vec(data, [4, 6]).unwrap();
        let m2 = channel_abs_max(&reversed);
        prop_assert_eq!(m1, m2);
    }

    /// MixedLinear detects exactly the columns that exceed the threshold.
    #[test]
    fn mixed_outlier_detection_exact(
        x in matrix(2, 6, 4.0),
        threshold in 4.5f32..8.0,
        spike in 10.0f32..50.0,
        col in 0usize..6,
    ) {
        let w = Tensor::full(0.1f32, [6, 3]);
        let layer = MixedLinear::new(&w, threshold);
        prop_assert!(layer.outlier_columns(&x).is_empty());
        let mut spiked = x.clone();
        spiked.row_mut(1)[col] = spike;
        let cols = layer.outlier_columns(&spiked);
        prop_assert_eq!(cols, vec![col]);
    }
}

// ---------------------------------------------------------------------------
// Zero-repack invariant: after construction, no linear layer's forward
// pass performs any B-operand (weight) packing. The counter is
// thread-local and the kernels pack B on the calling thread, so this
// observes exactly the packing done by the calls below.
// ---------------------------------------------------------------------------

#[test]
fn forward_passes_never_repack_weights() {
    use llmnpu_quant::per_group::GroupedLinear;
    use llmnpu_quant::per_tensor::QuantizedLinear;
    use llmnpu_quant::smooth::SmoothedLinear;
    use llmnpu_tensor::kernel::pack::pack_b_calls;

    let w = Tensor::from_vec(
        (0..64 * 48)
            .map(|i| (((i * 31 + 7) % 101) as f32 / 101.0 - 0.5) * 0.8)
            .collect::<Vec<f32>>(),
        [64, 48],
    )
    .unwrap();
    let cal = Tensor::from_vec(
        (0..2 * 64)
            .map(|i| ((i % 13) as f32 - 6.0) / 6.0)
            .collect::<Vec<f32>>(),
        [2, 64],
    )
    .unwrap();
    let scale = max_min_scale(cal.as_slice());

    // Construction is allowed (and expected) to pack, exactly once per
    // weight slab set.
    let per_tensor = QuantizedLinear::new(&w, scale);
    let shadow = ShadowLinear::new(&w, scale);
    let grouped = GroupedLinear::new(&w, 16).unwrap();
    let mixed = MixedLinear::new(&w, 6.0);
    let smoothed = SmoothedLinear::new(&w, &cal, 0.5).unwrap();

    // Decode-shaped (m = 1) and prefill-shaped (m = 8) activations: both
    // the GEMV and the tiled prepacked paths must stay pack-free.
    for rows in [1usize, 8] {
        let x = Tensor::from_vec(
            (0..rows * 64)
                .map(|i| ((i % 17) as f32 - 8.0) / 9.0)
                .collect::<Vec<f32>>(),
            [rows, 64],
        )
        .unwrap();
        let before = pack_b_calls();
        per_tensor.forward(&x).unwrap();
        shadow.forward(&x).unwrap();
        grouped.forward(&x).unwrap();
        mixed.forward(&x).unwrap();
        smoothed.forward(&x).unwrap();
        assert_eq!(
            pack_b_calls(),
            before,
            "a forward pass packed weights (rows = {rows})"
        );
    }
}

// ---------------------------------------------------------------------------
// Prepacked forwards reproduce the per-call-packing pipelines bit-for-bit.
// ---------------------------------------------------------------------------

#[test]
fn prepacked_forwards_bit_match_per_call_drivers() {
    use llmnpu_quant::per_tensor::QuantizedLinear;
    use llmnpu_tensor::gemm;

    let w = Tensor::from_vec(
        (0..40 * 24)
            .map(|i| (((i * 13 + 5) % 89) as f32 / 89.0 - 0.5) * 0.6)
            .collect::<Vec<f32>>(),
        [40, 24],
    )
    .unwrap();
    for rows in [1usize, 2, 7] {
        let x = Tensor::from_vec(
            (0..rows * 40)
                .map(|i| ((i % 19) as f32 - 9.0) / 10.0)
                .collect::<Vec<f32>>(),
            [rows, 40],
        )
        .unwrap();
        let scale = max_min_scale(x.as_slice());
        let layer = QuantizedLinear::new(&w, scale);
        let y = layer.forward(&x).unwrap();
        // The per-call-packing pipeline on the same quantized operands.
        let xq = QuantizedMatrix::quantize_with_scale(&x, scale);
        let want = gemm::matmul_i8_scaled_threaded(
            xq.data(),
            layer.weight().data(),
            scale,
            layer.weight().scale(),
            llmnpu_tensor::kernel::parallel::default_threads(),
        )
        .unwrap();
        assert_eq!(y.as_slice(), want.as_slice(), "rows = {rows}");
    }
}
