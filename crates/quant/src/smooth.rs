//! SmoothQuant-style difficulty migration.
//!
//! SmoothQuant keeps per-tensor granularity (so it *is* NPU-friendly,
//! Table 4) by dividing each activation channel by a smoothing factor and
//! multiplying the matching weight row by the same factor, shifting the
//! quantization difficulty from activations to weights. The paper observes
//! that this costs accuracy on hard outliers (3.9% / 8.4% HellaSwag drops,
//! §2.3) — with static smoothing, channels that spike beyond their
//! calibration profile still get clipped. The implementation below
//! reproduces that behaviour with real arithmetic.

use llmnpu_tensor::{gemm, PackedMatrixI8, Tensor};

use crate::per_tensor::{max_min_scale, quantize_value, QuantizedMatrix};
use crate::{Error, Result};

/// Per-channel smoothing factors `s_j = max|X_j|^α / max|W_j|^(1-α)`.
///
/// `alpha` is the migration strength (0.5 in the SmoothQuant paper).
///
/// # Errors
///
/// Returns [`Error::InvalidCalibration`] if the calibration stats are empty
/// or the channel counts disagree.
pub fn smoothing_factors(
    act_abs_max: &[f32],
    weight_abs_max: &[f32],
    alpha: f32,
) -> Result<Vec<f32>> {
    if act_abs_max.is_empty() || act_abs_max.len() != weight_abs_max.len() {
        return Err(Error::InvalidCalibration {
            what: format!(
                "channel stats lengths {} vs {}",
                act_abs_max.len(),
                weight_abs_max.len()
            ),
        });
    }
    Ok(act_abs_max
        .iter()
        .zip(weight_abs_max)
        .map(|(&a, &w)| {
            let a = a.max(1e-5);
            let w = w.max(1e-5);
            (a.powf(alpha) / w.powf(1.0 - alpha)).max(1e-5)
        })
        .collect())
}

/// Per-channel absolute maxima of a calibration batch (columns of the
/// matrix view).
#[must_use]
pub fn channel_abs_max(x: &Tensor<f32>) -> Vec<f32> {
    let (rows, cols) = x.matrix_dims();
    let mut maxima = vec![0.0_f32; cols];
    for r in 0..rows {
        for (c, &v) in x.row(r).iter().enumerate() {
            maxima[c] = maxima[c].max(v.abs());
        }
    }
    maxima
}

/// A SmoothQuant linear layer: smoothed weights quantized per-tensor, with
/// the inverse smoothing folded into activation preprocessing.
#[derive(Debug, Clone)]
pub struct SmoothedLinear {
    weight: QuantizedMatrix,
    /// Smoothed, quantized weight packed once into the kernel's
    /// persistent layout at construction time.
    packed: PackedMatrixI8,
    /// Per-input-channel division factors applied to activations.
    factors: Vec<f32>,
    /// Static activation scale calibrated on *smoothed* activations.
    act_scale: f32,
}

impl SmoothedLinear {
    /// Builds a smoothed linear layer.
    ///
    /// `calibration` is a representative activation batch `[rows, in]` used
    /// both for smoothing factors and for the static activation scale —
    /// static calibration is exactly what makes SmoothQuant fragile when
    /// runtime activations exceed the profile.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes disagree or calibration is empty.
    pub fn new(weight: &Tensor<f32>, calibration: &Tensor<f32>, alpha: f32) -> Result<Self> {
        let (k, _n) = weight.matrix_dims();
        let (_, cal_cols) = calibration.matrix_dims();
        if cal_cols != k {
            return Err(Error::InvalidCalibration {
                what: format!("calibration width {cal_cols} != weight input dim {k}"),
            });
        }
        let act_max = channel_abs_max(calibration);
        // Weight per-input-channel maxima are row maxima of [in, out].
        let mut w_max = vec![0.0_f32; k];
        for (r, wm) in w_max.iter_mut().enumerate() {
            *wm = weight.row(r).iter().fold(0.0_f32, |m, &v| m.max(v.abs()));
        }
        let factors = smoothing_factors(&act_max, &w_max, alpha)?;

        // Migrate difficulty into the weights: w'[r][c] = w[r][c] * s_r.
        let (_, n) = weight.matrix_dims();
        let mut smoothed_w = Tensor::zeros([k, n]);
        for (r, &f) in factors.iter().enumerate() {
            let src = weight.row(r);
            let dst = smoothed_w.row_mut(r);
            for c in 0..n {
                dst[c] = src[c] * f;
            }
        }

        // Static activation scale from the smoothed calibration batch.
        let mut smoothed_cal = calibration.clone();
        smooth_activations_inplace(&mut smoothed_cal, &factors);
        let act_scale = max_min_scale(smoothed_cal.as_slice());

        let weight = QuantizedMatrix::quantize(&smoothed_w);
        let packed = PackedMatrixI8::from_tensor(weight.data());
        Ok(SmoothedLinear {
            weight,
            packed,
            factors,
            act_scale,
        })
    }

    /// The smoothing factors (one per input channel).
    #[must_use]
    pub fn factors(&self) -> &[f32] {
        &self.factors
    }

    /// The static activation scale.
    #[must_use]
    pub fn act_scale(&self) -> f32 {
        self.act_scale
    }

    /// Forward pass: smooth activations, then one per-tensor W8A8 MatMul
    /// with the dequantization fused into the kernel epilogue.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let (_, cols) = x.matrix_dims();
        if cols != self.factors.len() {
            return Err(Error::Tensor(llmnpu_tensor::Error::ShapeMismatch {
                op: "smoothed_forward",
                lhs: x.shape().dims().to_vec(),
                rhs: vec![self.factors.len()],
            }));
        }
        let mut xs = x.clone();
        smooth_activations_inplace(&mut xs, &self.factors);
        let xq = xs.map(|v| quantize_value(v, self.act_scale));
        Ok(gemm::matmul_i8_scaled_prepacked(
            &xq,
            &self.packed,
            self.act_scale,
            self.weight.scale(),
            llmnpu_tensor::kernel::parallel::default_threads(),
        )?)
    }

    /// Float reference with the same (smoothed, quantized) weights.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward_float(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let mut xs = x.clone();
        smooth_activations_inplace(&mut xs, &self.factors);
        Ok(gemm::matmul_f32(&xs, &self.weight.dequantize())?)
    }
}

fn smooth_activations_inplace(x: &mut Tensor<f32>, factors: &[f32]) {
    let (rows, cols) = x.matrix_dims();
    debug_assert_eq!(cols, factors.len());
    for r in 0..rows {
        let row = x.row_mut(r);
        for c in 0..cols {
            row[c] /= factors[c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(k: usize, n: usize, amp: f32) -> Tensor<f32> {
        Tensor::from_vec(
            (0..k * n)
                .map(|i| amp * (((i * 17 + 3) % 97) as f32 / 97.0 - 0.5))
                .collect(),
            [k, n],
        )
        .unwrap()
    }

    #[test]
    fn factors_balance_act_and_weight() {
        let f = smoothing_factors(&[8.0], &[2.0], 0.5).unwrap();
        assert!((f[0] - 2.0).abs() < 1e-6); // sqrt(8)/sqrt(2) = 2
    }

    #[test]
    fn factors_validate_inputs() {
        assert!(smoothing_factors(&[], &[], 0.5).is_err());
        assert!(smoothing_factors(&[1.0], &[1.0, 2.0], 0.5).is_err());
    }

    #[test]
    fn channel_abs_max_per_column() {
        let x = Tensor::from_vec(vec![1.0_f32, -5.0, 2.0, 3.0], [2, 2]).unwrap();
        assert_eq!(channel_abs_max(&x), vec![2.0, 5.0]);
    }

    #[test]
    fn smoothing_is_mathematically_neutral_in_float() {
        // x/s × (s·w) == x × w — smoothing must not change the float result.
        let w = ramp(8, 4, 1.0);
        let x = ramp(2, 8, 2.0);
        let layer = SmoothedLinear::new(&w, &x, 0.5).unwrap();
        let y_smoothed = layer.forward_float(&x).unwrap();
        // Compare against plain float matmul with *unsmoothed* quantized
        // weights is not meaningful; instead check the algebraic identity on
        // unquantized smoothed weights.
        let mut smoothed_w = w.clone();
        for r in 0..8 {
            let f = layer.factors()[r];
            for v in smoothed_w.row_mut(r) {
                *v *= f;
            }
        }
        // y_smoothed uses quantized weights, so allow quantization noise.
        let mut xs = x.clone();
        smooth_activations_inplace(&mut xs, layer.factors());
        let y_exact = gemm::matmul_f32(&xs, &smoothed_w).unwrap();
        assert!(y_smoothed.mse(&y_exact).unwrap() < 1e-3);
    }

    #[test]
    fn smooth_quant_tames_calibrated_outliers() {
        use crate::per_tensor::QuantizedLinear;
        // A persistent outlier channel that the calibration batch captures:
        // SmoothQuant should beat naive per-tensor quantization here.
        let w = ramp(16, 8, 0.5);
        let mut cal_v = vec![0.05_f32; 2 * 16];
        cal_v[1] = 30.0;
        cal_v[16 + 1] = 28.0;
        let cal = Tensor::from_vec(cal_v, [2, 16]).unwrap();

        let layer = SmoothedLinear::new(&w, &cal, 0.5).unwrap();
        let x = {
            let mut v = vec![0.04_f32; 16];
            v[1] = 25.0;
            Tensor::from_vec(v, [1, 16]).unwrap()
        };
        let y = layer.forward(&x).unwrap();
        let y_ref = gemm::matmul_f32(&x, &w).unwrap();
        let err_smooth = y.mse(&y_ref).unwrap();

        let naive = QuantizedLinear::new(&w, max_min_scale(x.as_slice()));
        let err_naive = naive.forward(&x).unwrap().mse(&y_ref).unwrap();
        assert!(
            err_smooth < err_naive,
            "smooth {err_smooth} should beat naive {err_naive}"
        );
    }

    #[test]
    fn smooth_quant_fails_on_uncalibrated_spikes() {
        // A channel that was quiet during calibration spikes at runtime:
        // static smoothing cannot help, and the static activation scale
        // clips the spike — the accuracy loss reported in §2.3.
        let w = ramp(16, 8, 0.5);
        let cal = Tensor::from_vec(vec![0.05_f32; 2 * 16], [2, 16]).unwrap();
        let layer = SmoothedLinear::new(&w, &cal, 0.5).unwrap();

        let mut xv = vec![0.04_f32; 16];
        xv[7] = 60.0; // unseen outlier
        let x = Tensor::from_vec(xv, [1, 16]).unwrap();
        let y = layer.forward(&x).unwrap();
        let y_ref = gemm::matmul_f32(&x, &w).unwrap();
        let rel_err = (y.mse(&y_ref).unwrap()).sqrt() / y_ref.abs_max().max(1e-6);
        assert!(
            rel_err > 0.05,
            "expected large clipping error, got rel_err = {rel_err}"
        );
    }

    #[test]
    fn rejects_mismatched_calibration() {
        let w = ramp(8, 4, 1.0);
        let cal = ramp(2, 6, 1.0);
        assert!(SmoothedLinear::new(&w, &cal, 0.5).is_err());
    }
}
