use std::fmt;

/// Error type for quantization operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying tensor kernel failed.
    Tensor(llmnpu_tensor::Error),
    /// A granularity argument was invalid (e.g. group size 0 or not dividing
    /// the reduction dimension).
    InvalidGranularity {
        /// Description of the constraint that failed.
        what: String,
    },
    /// A profile/calibration input was empty or malformed.
    InvalidCalibration {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "tensor kernel failed: {e}"),
            Error::InvalidGranularity { what } => write!(f, "invalid granularity: {what}"),
            Error::InvalidCalibration { what } => write!(f, "invalid calibration: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<llmnpu_tensor::Error> for Error {
    fn from(e: llmnpu_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        use std::error::Error as _;
        let inner = llmnpu_tensor::Error::LengthMismatch {
            expected: 1,
            actual: 2,
        };
        let err = Error::from(inner);
        assert!(err.source().is_some());
        assert!(err.to_string().contains("tensor kernel"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
