//! Symmetric per-tensor W8A8 quantization.
//!
//! One scale for an entire tensor is the only granularity mobile NPUs
//! execute as a single INT8 MatMul (paper Figure 3(a), Table 2). llm.npu's
//! enhanced algorithm starts from exactly this scheme — "simple max-min
//! symmetry quantization" (§3.3) — and recovers accuracy through shadow
//! outlier execution rather than finer granularity.

use llmnpu_tensor::{gemm, PackedMatrixI8, Tensor};

use crate::Result;

/// The quantized integer range: symmetric `[-127, 127]`.
pub const QMAX: f32 = 127.0;

/// Derives the symmetric max-min scale for a float slice.
///
/// Returns a scale `s` such that `x / s` maps the largest-magnitude element
/// to ±127. Empty or all-zero inputs produce `s = 1.0` so that quantization
/// stays well-defined.
#[must_use]
pub fn max_min_scale(values: &[f32]) -> f32 {
    let abs_max = values.iter().fold(0.0_f32, |m, &v| m.max(v.abs()));
    if abs_max == 0.0 {
        1.0
    } else {
        abs_max / QMAX
    }
}

/// Quantizes one float to `i8` with the given scale (round-to-nearest,
/// saturating at ±127).
#[must_use]
pub fn quantize_value(x: f32, scale: f32) -> i8 {
    (x / scale).round().clamp(-QMAX, QMAX) as i8
}

/// A per-tensor quantized matrix: `i8` payload plus one float scale.
///
/// # Example
///
/// ```
/// use llmnpu_quant::per_tensor::QuantizedMatrix;
/// use llmnpu_tensor::Tensor;
///
/// # fn main() -> Result<(), llmnpu_quant::Error> {
/// let w = Tensor::from_vec(vec![1.0_f32, -2.0, 0.5, 0.25], [2, 2])?;
/// let q = QuantizedMatrix::quantize(&w);
/// assert!(q.scale() > 0.0);
/// assert!((w.mse(&q.dequantize())? as f64) < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    data: Tensor<i8>,
    scale: f32,
}

impl QuantizedMatrix {
    /// Quantizes a float tensor with its own max-min scale.
    #[must_use]
    pub fn quantize(x: &Tensor<f32>) -> Self {
        let scale = max_min_scale(x.as_slice());
        Self::quantize_with_scale(x, scale)
    }

    /// Quantizes a float tensor with an externally chosen scale (used by
    /// calibrated activation quantization, where the scale comes from
    /// offline profiling rather than the current tensor).
    #[must_use]
    pub fn quantize_with_scale(x: &Tensor<f32>, scale: f32) -> Self {
        QuantizedMatrix {
            data: x.map(|v| quantize_value(v, scale)),
            scale,
        }
    }

    /// The integer payload.
    #[must_use]
    pub fn data(&self) -> &Tensor<i8> {
        &self.data
    }

    /// The quantization scale.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Reconstructs the float tensor.
    #[must_use]
    pub fn dequantize(&self) -> Tensor<f32> {
        let scale = self.scale;
        self.data.map(|v| f32::from(v) * scale)
    }

    /// Bytes occupied by the integer payload.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }
}

/// A weight matrix quantized with one scale per **output channel**
/// (column). Per-column weight scales are NPU-compatible: they fold into
/// the post-MatMul rescale, so the integer MatMul stays a single
/// per-tensor operation (unlike per-*group* scales along the reduction
/// dimension, which split the MatMul — §2.3). "Per-tensor quantization"
/// in the paper refers to the *activation* granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelQuantizedMatrix {
    data: Tensor<i8>,
    scales: Vec<f32>,
    /// Kernel-ready weight layout, built once here so forward passes
    /// never repack (llm.npu's fixed prepared-graph weight residency).
    packed: PackedMatrixI8,
}

impl ChannelQuantizedMatrix {
    /// Quantizes a `[k, n]` float matrix with per-column scales and packs
    /// the payload once into the kernel's persistent weight layout.
    #[must_use]
    pub fn quantize(w: &Tensor<f32>) -> Self {
        let (k, n) = w.matrix_dims();
        let mut scales = vec![1.0_f32; n];
        for (c, sc) in scales.iter_mut().enumerate() {
            let mut abs_max = 0.0_f32;
            for r in 0..k {
                abs_max = abs_max.max(w.row(r)[c].abs());
            }
            *sc = if abs_max == 0.0 { 1.0 } else { abs_max / QMAX };
        }
        let mut data = Tensor::zeros([k, n]);
        for r in 0..k {
            let src = w.row(r);
            let dst = data.row_mut(r);
            for c in 0..n {
                dst[c] = quantize_value(src[c], scales[c]);
            }
        }
        let packed = PackedMatrixI8::from_tensor(&data);
        ChannelQuantizedMatrix {
            data,
            scales,
            packed,
        }
    }

    /// The integer payload.
    #[must_use]
    pub fn data(&self) -> &Tensor<i8> {
        &self.data
    }

    /// The persistent kernel layout (packed once at quantization time).
    #[must_use]
    pub fn packed(&self) -> &PackedMatrixI8 {
        &self.packed
    }

    /// Per-output-channel scales.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the float matrix.
    #[must_use]
    pub fn dequantize(&self) -> Tensor<f32> {
        let (k, n) = self.data.matrix_dims();
        let mut out = Tensor::zeros([k, n]);
        for r in 0..k {
            let src = self.data.row(r);
            let dst = out.row_mut(r);
            for c in 0..n {
                dst[c] = f32::from(src[c]) * self.scales[c];
            }
        }
        out
    }
}

/// A quantized linear layer `y = x W` with per-tensor W8A8 execution.
///
/// This is the exact dataflow of Figure 5's blue path: quantize the
/// activation, integer MatMul, dequantize.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    weight: QuantizedMatrix,
    /// Weight payload packed once at construction into the kernel's
    /// persistent layout; forward passes never repack.
    packed: PackedMatrixI8,
    /// Activation scale fixed at calibration time (`s` in Equation 1).
    act_scale: f32,
}

impl QuantizedLinear {
    /// Builds a quantized linear layer from float weights `[in, out]` and a
    /// calibrated activation scale. The quantized weight is packed into the
    /// kernel's persistent layout here, exactly once.
    #[must_use]
    pub fn new(weight: &Tensor<f32>, act_scale: f32) -> Self {
        let weight = QuantizedMatrix::quantize(weight);
        let packed = PackedMatrixI8::from_tensor(weight.data());
        QuantizedLinear {
            weight,
            packed,
            act_scale,
        }
    }

    /// The quantized weight matrix.
    #[must_use]
    pub fn weight(&self) -> &QuantizedMatrix {
        &self.weight
    }

    /// The persistent kernel layout of the weight.
    #[must_use]
    pub fn packed(&self) -> &PackedMatrixI8 {
        &self.packed
    }

    /// The calibrated activation scale.
    #[must_use]
    pub fn act_scale(&self) -> f32 {
        self.act_scale
    }

    /// Runs the W8A8 forward pass: quantize `x`, then one blocked integer
    /// MatMul against the prepacked weight with the dequantization fused
    /// into the kernel epilogue (the `MatMul → Dequantize` pair of
    /// Figure 5 in a single pass). No weight packing happens here.
    ///
    /// # Errors
    ///
    /// Returns an error if `x`'s inner dimension does not match the weight.
    pub fn forward(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let xq = QuantizedMatrix::quantize_with_scale(x, self.act_scale);
        let y = gemm::matmul_i8_scaled_prepacked(
            xq.data(),
            &self.packed,
            self.act_scale,
            self.weight.scale(),
            llmnpu_tensor::kernel::parallel::default_threads(),
        )?;
        Ok(y)
    }

    /// The float reference `y = x W_dequant` (what an FP16 engine computes
    /// with the same quantized weights).
    ///
    /// # Errors
    ///
    /// Returns an error if `x`'s inner dimension does not match the weight.
    pub fn forward_float(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        Ok(gemm::matmul_f32(x, &self.weight.dequantize())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_maps_abs_max_to_127() {
        let s = max_min_scale(&[0.5, -2.54, 1.0]);
        assert!((s - 2.54 / 127.0).abs() < 1e-7);
        assert_eq!(quantize_value(-2.54, s), -127);
    }

    #[test]
    fn zero_tensor_has_unit_scale() {
        assert_eq!(max_min_scale(&[0.0, 0.0]), 1.0);
        assert_eq!(max_min_scale(&[]), 1.0);
    }

    #[test]
    fn quantize_value_saturates() {
        assert_eq!(quantize_value(100.0, 0.1), 127);
        assert_eq!(quantize_value(-100.0, 0.1), -127);
    }

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let x = Tensor::from_vec(
            (0..64)
                .map(|i| ((i * 37 % 29) as f32 - 14.0) / 3.0)
                .collect(),
            [8, 8],
        )
        .unwrap();
        let q = QuantizedMatrix::quantize(&x);
        let back = q.dequantize();
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
        }
    }

    #[test]
    fn linear_forward_close_to_float_reference() {
        let w =
            Tensor::from_vec((0..16).map(|i| ((i as f32) - 8.0) / 10.0).collect(), [4, 4]).unwrap();
        let x =
            Tensor::from_vec((0..8).map(|i| ((i as f32) - 4.0) / 5.0).collect(), [2, 4]).unwrap();
        let act_scale = max_min_scale(x.as_slice());
        let layer = QuantizedLinear::new(&w, act_scale);
        let y_q = layer.forward(&x).unwrap();
        let y_f = layer.forward_float(&x).unwrap();
        // Without outliers, per-tensor W8A8 should track the float reference
        // to within a few quantization steps.
        let mse = y_q.mse(&y_f).unwrap();
        assert!(mse < 1e-4, "mse = {mse}");
    }

    #[test]
    fn linear_suffers_from_outliers() {
        // Inject a single huge activation channel: the per-tensor scale
        // explodes and the normal channels lose all precision. This is the
        // failure mode that motivates §3.3.
        let w = Tensor::from_vec(vec![0.1_f32; 16], [4, 4]).unwrap();
        let mut xv = vec![0.01_f32; 4];
        xv[2] = 50.0; // outlier channel
        let x = Tensor::from_vec(xv, [1, 4]).unwrap();
        let act_scale = max_min_scale(x.as_slice());
        let layer = QuantizedLinear::new(&w, act_scale);
        let y_q = layer.forward(&x).unwrap();
        let y_f = layer.forward_float(&x).unwrap();
        // The three normal channels each contribute 0.001 to every output;
        // quantized, they contribute 0 (they round to zero at scale ~0.39).
        let err = (y_q.as_slice()[0] - y_f.as_slice()[0]).abs();
        assert!(err > 1e-4, "expected visible outlier-induced error");
    }

    #[test]
    fn payload_bytes_counts_elements() {
        let q = QuantizedMatrix::quantize(&Tensor::<f32>::zeros([3, 5]));
        assert_eq!(q.payload_bytes(), 15);
    }
}
