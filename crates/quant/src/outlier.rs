//! Shadow outlier execution (§3.3) and the outlier analyses of
//! Figures 10–12.
//!
//! llm.npu keeps the NPU on a plain per-tensor W8A8 MatMul and recovers the
//! accuracy lost to activation outliers by splitting the product according
//! to Equation 1:
//!
//! ```text
//! (x/s) ⊙ w =  clip(x/s, -127, 127) ⊙ w        — dense INT8, on the NPU
//!            + extract(residual(x/s)) ⊙ w       — compact float, on the CPU
//! ```
//!
//! The residual is non-zero only on *outlier channels* (columns of the
//! activation whose magnitude exceeds the calibrated clipping range), so the
//! CPU-side MatMul is tiny (0.1–0.3% of channels, Figure 10) and its latency
//! hides behind the NPU's dense MatMul.
//!
//! This module provides:
//!
//! * [`ShadowLinear`] — the decomposed linear layer (real arithmetic on
//!   both halves, bit-identical merge),
//! * [`OutlierProfiler`] — corpus-level channel statistics: outlier counts
//!   per layer (Figure 10), per-channel frequency skew / hot channels
//!   (Figure 11),
//! * [`layer_importance`] — the max-outlier/scale importance score used to
//!   prune the top-85% least important layers' outliers (Figure 12),
//! * [`HotChannelPolicy`] — the memory policy that keeps only hot-channel
//!   float weights resident (34.3% shadow-memory saving, §3.3).

use llmnpu_tensor::{gemm, Tensor};

use crate::per_tensor::{max_min_scale, ChannelQuantizedMatrix, QuantizedMatrix, QMAX};
use crate::{Error, Result};

/// Outlier channels of one activation batch, compacted into a dense tensor
/// (the `extract`/`compress` step of Figure 9).
#[derive(Debug, Clone, PartialEq)]
pub struct CompactOutliers {
    /// Indices of the extracted channels (columns of the activation).
    pub channels: Vec<usize>,
    /// Residual values `[rows, channels.len()]`, in the *float* domain
    /// (already multiplied by nothing — these are `x - clip(x)` values).
    pub residuals: Tensor<f32>,
}

impl CompactOutliers {
    /// An empty extraction (no outliers).
    #[must_use]
    pub fn empty(rows: usize) -> Self {
        CompactOutliers {
            channels: Vec::new(),
            residuals: Tensor::zeros([rows, 0]),
        }
    }

    /// Number of extracted channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Whether nothing was extracted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }
}

/// Splits an activation into its clipped (NPU) part and compact outlier
/// residuals (CPU part), per Equation 1.
///
/// A channel is extracted when any of its values exceeds the clipping range
/// `±(QMAX · scale)`. The residual carried to the CPU is `x - clip(x)` so
/// that `clip(x) ⊙ w + residual ⊙ w = x ⊙ w` exactly on outlier channels.
///
/// Detection and residual extraction happen in **one row-major pass**
/// over `x` (the tensor's storage order): out-of-range values are
/// recorded as sparse `(row, channel, residual)` hits as they stream by,
/// then scattered into the compact `[rows, |channels|]` tensor. The seed
/// walked the row-major storage column-major for detection and then
/// re-read every row a second time; for in-range values the residual
/// `v - clamp(v)` is exactly `0.0`, so the sparse scatter reproduces the
/// dense two-pass output bit-for-bit.
#[must_use]
pub fn extract_outliers(x: &Tensor<f32>, scale: f32) -> CompactOutliers {
    let (rows, cols) = x.matrix_dims();
    let limit = QMAX * scale;
    let mut is_outlier = vec![false; cols];
    let mut hits: Vec<(usize, usize, f32)> = Vec::new();
    // NaN values don't trigger extraction (`NaN > limit` is false, as in
    // the seed), but if their channel is extracted anyway, their residual
    // is `NaN - clamp(NaN) = NaN` and must propagate; they are collected
    // separately (as the raw NaN — clamping against a possibly-NaN limit
    // would panic, and `NaN - anything` is NaN regardless) and scattered
    // only for channels that turn out to be outliers.
    let mut nan_hits: Vec<(usize, usize, f32)> = Vec::new();
    for r in 0..rows {
        for (c, &v) in x.row(r).iter().enumerate() {
            if v.abs() > limit {
                is_outlier[c] = true;
                hits.push((r, c, v - v.clamp(-limit, limit)));
            } else if v.is_nan() {
                nan_hits.push((r, c, v));
            }
        }
    }
    if hits.is_empty() {
        return CompactOutliers::empty(rows);
    }
    let channels: Vec<usize> = is_outlier
        .iter()
        .enumerate()
        .filter_map(|(c, &o)| o.then_some(c))
        .collect();
    // Channel -> compact column index (only valid for outlier channels).
    let mut compact_col = vec![0usize; cols];
    for (j, &c) in channels.iter().enumerate() {
        compact_col[c] = j;
    }
    let mut residuals = Tensor::zeros([rows, channels.len()]);
    for (r, c, resid) in hits {
        residuals.row_mut(r)[compact_col[c]] = resid;
    }
    for (r, c, resid) in nan_hits {
        if is_outlier[c] {
            residuals.row_mut(r)[compact_col[c]] = resid;
        }
    }
    CompactOutliers {
        channels,
        residuals,
    }
}

/// Where the float weights needed for a shadow MatMul currently live —
/// the unified-memory/disk hierarchy of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightResidency {
    /// Hot channel: float weight row resident in CPU memory.
    Memory,
    /// Cold channel: must be fetched from disk (overlapped with NPU work).
    Disk,
}

/// Memory policy for shadow-execution weights: keep only the rows of the
/// weight matrix belonging to *hot* outlier channels resident, fetch the
/// rest from disk on demand (§3.3).
#[derive(Debug, Clone)]
pub struct HotChannelPolicy {
    hot: std::collections::HashSet<usize>,
    total_channels: usize,
}

impl HotChannelPolicy {
    /// Builds a policy from profiled per-channel outlier counts, keeping the
    /// smallest set of channels that covers `coverage` (e.g. 0.8 = 80%) of
    /// all observed outliers — the "<3% of channels produce >80% of
    /// outliers" skew of Figure 11.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCalibration`] if `coverage` is outside
    /// `(0, 1]` or `counts` is empty.
    pub fn from_counts(counts: &[u64], coverage: f64) -> Result<Self> {
        if counts.is_empty() {
            return Err(Error::InvalidCalibration {
                what: "empty channel counts".to_owned(),
            });
        }
        if !(coverage > 0.0 && coverage <= 1.0) {
            return Err(Error::InvalidCalibration {
                what: format!("coverage {coverage} must be in (0, 1]"),
            });
        }
        let total: u64 = counts.iter().sum();
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
        let mut hot = std::collections::HashSet::new();
        let mut covered = 0u64;
        let target = (total as f64 * coverage).ceil() as u64;
        for c in order {
            if covered >= target || counts[c] == 0 {
                break;
            }
            covered += counts[c];
            hot.insert(c);
        }
        Ok(HotChannelPolicy {
            hot,
            total_channels: counts.len(),
        })
    }

    /// Residency of a channel's float weights.
    #[must_use]
    pub fn residency(&self, channel: usize) -> WeightResidency {
        if self.hot.contains(&channel) {
            WeightResidency::Memory
        } else {
            WeightResidency::Disk
        }
    }

    /// Number of hot channels kept in memory.
    #[must_use]
    pub fn hot_count(&self) -> usize {
        self.hot.len()
    }

    /// Fraction of channels resident in memory.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        if self.total_channels == 0 {
            0.0
        } else {
            self.hot.len() as f64 / self.total_channels as f64
        }
    }
}

/// A linear layer executing the shadow outlier decomposition.
///
/// # Example
///
/// ```
/// use llmnpu_quant::outlier::ShadowLinear;
/// use llmnpu_tensor::Tensor;
///
/// # fn main() -> Result<(), llmnpu_quant::Error> {
/// let w = Tensor::from_vec(vec![0.2_f32; 16], [4, 4])?;
/// // Calibrated scale covers |x| <= 1.27; anything larger is an outlier.
/// let layer = ShadowLinear::new(&w, 0.01);
/// let x = Tensor::from_vec(vec![0.5_f32, 9.0, -0.3, 0.1], [1, 4])?;
/// let out = layer.forward(&x)?;
/// assert_eq!(out.extracted_channels, vec![1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShadowLinear {
    weight: ChannelQuantizedMatrix,
    /// Calibrated activation scale (`s` in Equation 1) from offline
    /// profiling; outliers are values beyond `±127·s`.
    act_scale: f32,
    /// When `false`, the CPU shadow path is skipped entirely (the layer was
    /// pruned as unimportant, Figure 12 right).
    shadow_enabled: bool,
}

/// Output of a shadow forward pass, with the bookkeeping the scheduler and
/// the memory model need.
#[derive(Debug, Clone)]
pub struct ShadowOutput {
    /// The merged result (NPU dense part + CPU shadow part).
    pub output: Tensor<f32>,
    /// Channels that were extracted and shadow-executed.
    pub extracted_channels: Vec<usize>,
}

impl ShadowLinear {
    /// Builds a shadow linear layer from float weights `[in, out]` and a
    /// calibrated activation scale.
    #[must_use]
    pub fn new(weight: &Tensor<f32>, act_scale: f32) -> Self {
        ShadowLinear {
            weight: ChannelQuantizedMatrix::quantize(weight),
            act_scale,
            shadow_enabled: true,
        }
    }

    /// Disables the shadow path (outlier pruning for unimportant layers).
    #[must_use]
    pub fn with_shadow_disabled(mut self) -> Self {
        self.shadow_enabled = false;
        self
    }

    /// Whether the shadow path is active.
    #[must_use]
    pub fn shadow_enabled(&self) -> bool {
        self.shadow_enabled
    }

    /// The calibrated activation scale.
    #[must_use]
    pub fn act_scale(&self) -> f32 {
        self.act_scale
    }

    /// The quantized weight (per-output-channel scales).
    #[must_use]
    pub fn weight(&self) -> &ChannelQuantizedMatrix {
        &self.weight
    }

    /// Runs the decomposed forward pass of Equation 1.
    ///
    /// Composed of [`ShadowLinear::forward_main`] and
    /// [`ShadowLinear::forward_shadow`] plus the accumulate merge, so the
    /// fused call is bit-identical to executing the two halves on
    /// separate threads and merging — the invariant that lets the prefill
    /// executor genuinely overlap the shadow MatMul with the quantized
    /// main path.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward(&self, x: &Tensor<f32>) -> Result<ShadowOutput> {
        let mut y = self.forward_main(x)?;
        let mut extracted = Vec::new();
        if let Some((shadow, channels)) = self.forward_shadow(x)? {
            gemm::accumulate(&mut y, &shadow)?;
            extracted = channels;
        }
        Ok(ShadowOutput {
            output: y,
            extracted_channels: extracted,
        })
    }

    /// The NPU half alone: clip to the calibrated range and run dense
    /// W8A8 with the per-channel dequantization fused into the kernel
    /// epilogue. The full result is `main + forward_shadow` (elementwise
    /// accumulate), in that order.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward_main(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let limit = QMAX * self.act_scale;
        let clipped = x.map(|v| v.clamp(-limit, limit));
        let xq = QuantizedMatrix::quantize_with_scale(&clipped, self.act_scale);
        Ok(gemm::matmul_i8_per_channel_prepacked(
            xq.data(),
            self.weight.packed(),
            self.act_scale,
            self.weight.scales(),
            llmnpu_tensor::kernel::parallel::default_threads(),
        )?)
    }

    /// The CPU shadow half alone: compact outlier residuals × the same
    /// weights, in float. Returns `None` when the shadow path is pruned
    /// or the input has no outliers (the merge is then a no-op, exactly
    /// as in the fused [`ShadowLinear::forward`]).
    ///
    /// # Errors
    ///
    /// Returns an error if an extracted channel is out of range.
    pub fn forward_shadow(&self, x: &Tensor<f32>) -> Result<Option<(Tensor<f32>, Vec<usize>)>> {
        if !self.shadow_enabled {
            return Ok(None);
        }
        let outliers = extract_outliers(x, self.act_scale);
        if outliers.is_empty() {
            return Ok(None);
        }
        let shadow = self.shadow_matmul(&outliers)?;
        Ok(Some((shadow, outliers.channels)))
    }

    /// The compact CPU-side MatMul: residuals `[m, |C|]` × the selected
    /// dequantized weight rows `[|C|, n]`.
    ///
    /// # Errors
    ///
    /// Returns an error if an extracted channel is out of range for the
    /// weight matrix.
    pub fn shadow_matmul(&self, outliers: &CompactOutliers) -> Result<Tensor<f32>> {
        let (k, n) = self.weight.data().matrix_dims();
        let (m, _) = outliers.residuals.matrix_dims();
        let mut out = Tensor::zeros([m, n]);
        let w_scales = self.weight.scales();
        for (j, &c) in outliers.channels.iter().enumerate() {
            if c >= k {
                return Err(Error::InvalidCalibration {
                    what: format!("outlier channel {c} out of range for weight rows {k}"),
                });
            }
            let w_row = self.weight.data().row(c);
            for r in 0..m {
                let v = outliers.residuals.row(r)[j];
                if v == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(r);
                for (col, &wq) in w_row.iter().enumerate() {
                    out_row[col] += v * f32::from(wq) * w_scales[col];
                }
            }
        }
        Ok(out)
    }

    /// Float reference against the dequantized weights.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward_float(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        Ok(gemm::matmul_f32(x, &self.weight.dequantize())?)
    }
}

/// Corpus-level outlier statistics for one linear layer (Figures 10–12).
#[derive(Debug, Clone)]
pub struct OutlierProfile {
    /// Per-channel outlier occurrence counts across the corpus.
    pub channel_counts: Vec<u64>,
    /// Number of inference batches profiled.
    pub batches: u64,
    /// Total outlier events observed.
    pub total_outliers: u64,
    /// Largest `|x| / (127·s)` ratio seen (the importance numerator).
    pub max_ratio: f32,
}

impl OutlierProfile {
    /// Average number of distinct outlier channels per batch (Figure 10 left).
    #[must_use]
    pub fn mean_outliers_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.total_outliers as f64 / self.batches as f64
        }
    }

    /// Fraction of channels that ever produced an outlier.
    #[must_use]
    pub fn active_channel_fraction(&self) -> f64 {
        if self.channel_counts.is_empty() {
            return 0.0;
        }
        let active = self.channel_counts.iter().filter(|&&c| c > 0).count();
        active as f64 / self.channel_counts.len() as f64
    }

    /// Smallest fraction of channels that covers `coverage` of all outlier
    /// events (Figure 11's skew metric).
    #[must_use]
    pub fn channel_fraction_for_coverage(&self, coverage: f64) -> f64 {
        let total: u64 = self.channel_counts.iter().sum();
        if total == 0 || self.channel_counts.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<u64> = self.channel_counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let target = (total as f64 * coverage).ceil() as u64;
        let mut covered = 0u64;
        let mut used = 0usize;
        for c in sorted {
            if covered >= target {
                break;
            }
            covered += c;
            used += 1;
        }
        used as f64 / self.channel_counts.len() as f64
    }
}

/// Streaming profiler that accumulates [`OutlierProfile`]s over a corpus.
#[derive(Debug, Clone)]
pub struct OutlierProfiler {
    scale: f32,
    profile: OutlierProfile,
}

impl OutlierProfiler {
    /// Creates a profiler for a layer with `channels` input channels and a
    /// calibrated activation scale.
    #[must_use]
    pub fn new(channels: usize, scale: f32) -> Self {
        OutlierProfiler {
            scale,
            profile: OutlierProfile {
                channel_counts: vec![0; channels],
                batches: 0,
                total_outliers: 0,
                max_ratio: 0.0,
            },
        }
    }

    /// Records one activation batch.
    pub fn record(&mut self, x: &Tensor<f32>) {
        let limit = QMAX * self.scale;
        let (rows, cols) = x.matrix_dims();
        let cols = cols.min(self.profile.channel_counts.len());
        self.profile.batches += 1;
        for c in 0..cols {
            let mut hit = false;
            for r in 0..rows {
                let v = x.row(r)[c].abs();
                if v > limit {
                    hit = true;
                    let ratio = v / limit;
                    if ratio > self.profile.max_ratio {
                        self.profile.max_ratio = ratio;
                    }
                }
            }
            if hit {
                self.profile.channel_counts[c] += 1;
                self.profile.total_outliers += 1;
            }
        }
    }

    /// Finishes profiling and returns the accumulated statistics.
    #[must_use]
    pub fn finish(self) -> OutlierProfile {
        self.profile
    }
}

/// Importance of a layer's outliers: the ratio between the largest observed
/// outlier magnitude and the quantization clipping range (§3.3 — "the ratio
/// between the largest outlier and the quantization scale"). Layers with
/// ratios near 1 lose almost nothing when their outliers are pruned.
#[must_use]
pub fn layer_importance(profile: &OutlierProfile) -> f32 {
    profile.max_ratio
}

/// Selects which layers keep their shadow path given a pruning rate:
/// the `(1 - pruning_rate)` most important layers survive.
///
/// Returns a boolean mask aligned with `importances` (true = keep shadow).
///
/// # Errors
///
/// Returns [`Error::InvalidCalibration`] if `pruning_rate` is outside
/// `[0, 1]`.
pub fn prune_layers(importances: &[f32], pruning_rate: f64) -> Result<Vec<bool>> {
    if !(0.0..=1.0).contains(&pruning_rate) {
        return Err(Error::InvalidCalibration {
            what: format!("pruning rate {pruning_rate} must be in [0, 1]"),
        });
    }
    let n = importances.len();
    let keep = n - (n as f64 * pruning_rate).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        importances[b]
            .partial_cmp(&importances[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut mask = vec![false; n];
    for &idx in order.iter().take(keep) {
        mask[idx] = true;
    }
    Ok(mask)
}

/// Picks a clipping scale from a calibration corpus so that roughly
/// `quantile` of all activation magnitudes fall inside `±127·s`
/// (the offline threshold profiling of §3.3).
///
/// # Errors
///
/// Returns [`Error::InvalidCalibration`] if the corpus is empty or the
/// quantile is outside `(0, 1]`.
pub fn calibrate_scale(corpus: &[Tensor<f32>], quantile: f64) -> Result<f32> {
    if corpus.is_empty() || corpus.iter().all(|t| t.is_empty()) {
        return Err(Error::InvalidCalibration {
            what: "empty calibration corpus".to_owned(),
        });
    }
    if !(quantile > 0.0 && quantile <= 1.0) {
        return Err(Error::InvalidCalibration {
            what: format!("quantile {quantile} must be in (0, 1]"),
        });
    }
    let mut magnitudes: Vec<f32> = corpus
        .iter()
        .flat_map(|t| t.as_slice().iter().map(|v| v.abs()))
        .collect();
    magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((magnitudes.len() as f64 * quantile).ceil() as usize).clamp(1, magnitudes.len()) - 1;
    let bound = magnitudes[idx].max(1e-8);
    Ok(bound / QMAX)
}

/// Convenience: calibrated scale using plain max-min over the corpus
/// (quantile = 1.0, i.e. no clipping — every value is inlier).
///
/// # Errors
///
/// Returns [`Error::InvalidCalibration`] on an empty corpus.
pub fn max_min_corpus_scale(corpus: &[Tensor<f32>]) -> Result<f32> {
    if corpus.is_empty() {
        return Err(Error::InvalidCalibration {
            what: "empty calibration corpus".to_owned(),
        });
    }
    let all: Vec<f32> = corpus
        .iter()
        .flat_map(|t| t.as_slice().iter().copied())
        .collect();
    Ok(max_min_scale(&all))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(k: usize, n: usize, amp: f32) -> Tensor<f32> {
        Tensor::from_vec(
            (0..k * n)
                .map(|i| amp * (((i * 23 + 11) % 83) as f32 / 83.0 - 0.5))
                .collect(),
            [k, n],
        )
        .unwrap()
    }

    #[test]
    fn extract_finds_only_out_of_range_channels() {
        // scale 0.01 → limit 1.27
        let x = Tensor::from_vec(vec![0.5_f32, 2.0, -3.0, 1.0], [1, 4]).unwrap();
        let out = extract_outliers(&x, 0.01);
        assert_eq!(out.channels, vec![1, 2]);
        assert!((out.residuals.row(0)[0] - (2.0 - 1.27)).abs() < 1e-6);
        assert!((out.residuals.row(0)[1] - (-3.0 + 1.27)).abs() < 1e-6);
    }

    #[test]
    fn extract_empty_when_all_in_range() {
        let x = ramp(2, 4, 0.5);
        let out = extract_outliers(&x, 1.0);
        assert!(out.is_empty());
        assert_eq!(out.channel_count(), 0);
    }

    #[test]
    fn extract_with_nan_scale_returns_empty() {
        // A NaN calibration scale means no value compares above the
        // limit, so nothing is extracted — and nothing panics (the seed
        // behaved the same way).
        let x = Tensor::from_vec(vec![f32::NAN, 0.5, 100.0, -3.0], [1, 4]).unwrap();
        let out = extract_outliers(&x, f32::NAN);
        assert!(out.is_empty());
    }

    #[test]
    fn extract_propagates_nan_in_outlier_channels_only() {
        // scale 0.01 → limit 1.27. Channel 1 is an outlier (row 0) and
        // also carries a NaN (row 1): the NaN residual must propagate.
        // Channel 3 carries a NaN but no over-limit value: NaN alone
        // does not trigger extraction (NaN > limit is false), matching
        // the seed's detection behavior.
        let x = Tensor::from_vec(
            vec![0.5_f32, 2.0, 0.1, 0.2, 0.3, f32::NAN, 0.1, f32::NAN],
            [2, 4],
        )
        .unwrap();
        let out = extract_outliers(&x, 0.01);
        assert_eq!(out.channels, vec![1]);
        assert!((out.residuals.row(0)[0] - (2.0 - 1.27)).abs() < 1e-6);
        assert!(out.residuals.row(1)[0].is_nan());
    }

    #[test]
    fn shadow_decomposition_recovers_outlier_contribution() {
        let w = ramp(16, 8, 0.5);
        let mut xv = vec![0.04_f32; 16];
        xv[5] = 45.0;
        let x = Tensor::from_vec(xv, [1, 16]).unwrap();
        // Calibrate scale on outlier-free data: big value becomes an outlier.
        let scale = 0.08 / QMAX;
        let layer = ShadowLinear::new(&w, scale);
        let out = layer.forward(&x).unwrap();
        assert_eq!(out.extracted_channels, vec![5]);
        let y_ref = layer.forward_float(&x).unwrap();
        let rel = out.output.mse(&y_ref).unwrap().sqrt() / y_ref.abs_max().max(1e-6);
        assert!(rel < 0.02, "rel err {rel}");
    }

    #[test]
    fn split_halves_bit_match_fused_forward() {
        // The overlap invariant: running main and shadow separately and
        // merging must equal the fused forward bit-for-bit (the executor
        // runs the halves on different lanes).
        let w = ramp(16, 8, 0.5);
        let mut xv = vec![0.04_f32; 32];
        xv[5] = 45.0;
        xv[16 + 9] = -30.0;
        let x = Tensor::from_vec(xv, [2, 16]).unwrap();
        let scale = 0.08 / QMAX;
        let layer = ShadowLinear::new(&w, scale);

        let fused = layer.forward(&x).unwrap();
        let mut merged = layer.forward_main(&x).unwrap();
        let (shadow, channels) = layer.forward_shadow(&x).unwrap().expect("outliers present");
        gemm::accumulate(&mut merged, &shadow).unwrap();
        assert_eq!(fused.output.as_slice(), merged.as_slice());
        assert_eq!(fused.extracted_channels, channels);

        // Pruned/clean inputs report no shadow half at all.
        let clean = Tensor::from_vec(vec![0.01_f32; 16], [1, 16]).unwrap();
        assert!(layer.forward_shadow(&clean).unwrap().is_none());
        let pruned = ShadowLinear::new(&w, scale).with_shadow_disabled();
        assert!(pruned.forward_shadow(&x).unwrap().is_none());
        assert_eq!(
            pruned.forward(&x).unwrap().output.as_slice(),
            pruned.forward_main(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn pruned_shadow_loses_outlier_contribution() {
        let w = ramp(16, 8, 0.5);
        let mut xv = vec![0.04_f32; 16];
        xv[5] = 45.0;
        let x = Tensor::from_vec(xv, [1, 16]).unwrap();
        let scale = 0.08 / QMAX;
        let kept = ShadowLinear::new(&w, scale);
        let pruned = ShadowLinear::new(&w, scale).with_shadow_disabled();
        assert!(!pruned.shadow_enabled());
        let y_ref = kept.forward_float(&x).unwrap();
        let err_kept = kept.forward(&x).unwrap().output.mse(&y_ref).unwrap();
        let err_pruned = pruned.forward(&x).unwrap().output.mse(&y_ref).unwrap();
        assert!(err_pruned > err_kept * 10.0);
    }

    #[test]
    fn shadow_without_outliers_is_pure_integer_path() {
        use crate::per_tensor::QuantizedLinear;
        let w = ramp(8, 4, 1.0);
        let x = ramp(2, 8, 1.0);
        let scale = max_min_scale(x.as_slice());
        let shadow = ShadowLinear::new(&w, scale);
        let y_s = shadow.forward(&x).unwrap();
        // Nothing extracted: the whole result came from the NPU path.
        assert!(y_s.extracted_channels.is_empty());
        // Per-channel weight scales track the float reference at least as
        // well as the per-tensor-weight baseline.
        let y_ref = shadow.forward_float(&x).unwrap();
        let err_shadow = y_s.output.mse(&y_ref).unwrap();
        let plain = QuantizedLinear::new(&w, scale);
        let err_plain = plain
            .forward(&x)
            .unwrap()
            .mse(&plain.forward_float(&x).unwrap())
            .unwrap();
        assert!(err_shadow <= err_plain * 1.5 + 1e-9);
    }

    #[test]
    fn per_channel_weights_improve_on_per_tensor_weights() {
        // A weight matrix whose columns have wildly different magnitudes:
        // per-column scales preserve the small columns that a single
        // tensor-wide scale would crush.
        let mut w = ramp(8, 4, 1.0);
        for r in 0..8 {
            w.row_mut(r)[0] *= 100.0; // column 0 dominates
            w.row_mut(r)[3] *= 0.01; // column 3 is tiny
        }
        let x = ramp(2, 8, 1.0);
        let scale = max_min_scale(x.as_slice());
        let shadow = ShadowLinear::new(&w, scale);
        let y_s = shadow.forward(&x).unwrap();

        use crate::per_tensor::QuantizedLinear;
        let plain = QuantizedLinear::new(&w, scale);
        let y_p = plain.forward(&x).unwrap();

        // Both schemes judged against the *true* float weights.
        let y_true = gemm::matmul_f32(&x, &w).unwrap();
        let col_err = |y: &Tensor<f32>| -> f32 {
            let mut e = 0.0;
            for row in 0..2 {
                e += (y.row(row)[3] - y_true.row(row)[3]).abs();
            }
            e
        };
        let e_channel = col_err(&y_s.output);
        let e_tensor = col_err(&y_p);
        assert!(
            e_channel < e_tensor,
            "per-channel {e_channel} should beat per-tensor {e_tensor} on small columns"
        );
    }

    #[test]
    fn profiler_counts_channels_and_batches() {
        let mut prof = OutlierProfiler::new(4, 0.01); // limit 1.27
        let a = Tensor::from_vec(vec![0.5_f32, 2.0, 0.3, 0.1], [1, 4]).unwrap();
        let b = Tensor::from_vec(vec![0.5_f32, 3.0, 0.3, 5.0], [1, 4]).unwrap();
        prof.record(&a);
        prof.record(&b);
        let p = prof.finish();
        assert_eq!(p.batches, 2);
        assert_eq!(p.channel_counts, vec![0, 2, 0, 1]);
        assert_eq!(p.total_outliers, 3);
        assert!((p.mean_outliers_per_batch() - 1.5).abs() < 1e-9);
        assert!((p.active_channel_fraction() - 0.5).abs() < 1e-9);
        assert!(p.max_ratio > 1.0);
    }

    #[test]
    fn coverage_fraction_reflects_skew() {
        let p = OutlierProfile {
            channel_counts: vec![80, 10, 5, 3, 1, 1, 0, 0, 0, 0],
            batches: 100,
            total_outliers: 100,
            max_ratio: 2.0,
        };
        // One channel (10% of 10) already covers 80%.
        assert!((p.channel_fraction_for_coverage(0.8) - 0.1).abs() < 1e-9);
        // All six active channels needed for 100%.
        assert!((p.channel_fraction_for_coverage(1.0) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn hot_channel_policy_keeps_heavy_hitters() {
        let counts = vec![80u64, 10, 5, 3, 1, 1, 0, 0];
        let policy = HotChannelPolicy::from_counts(&counts, 0.8).unwrap();
        assert_eq!(policy.residency(0), WeightResidency::Memory);
        assert_eq!(policy.residency(7), WeightResidency::Disk);
        assert_eq!(policy.hot_count(), 1);
        assert!((policy.memory_fraction() - 1.0 / 8.0).abs() < 1e-9);
        assert!(HotChannelPolicy::from_counts(&[], 0.8).is_err());
        assert!(HotChannelPolicy::from_counts(&counts, 1.5).is_err());
    }

    #[test]
    fn prune_layers_keeps_most_important() {
        let imp = vec![1.0_f32, 9.0, 2.0, 8.0];
        let mask = prune_layers(&imp, 0.5).unwrap();
        assert_eq!(mask, vec![false, true, false, true]);
        assert_eq!(prune_layers(&imp, 0.0).unwrap(), vec![true; 4]);
        assert_eq!(prune_layers(&imp, 1.0).unwrap(), vec![false; 4]);
        assert!(prune_layers(&imp, 1.2).is_err());
    }

    #[test]
    fn calibrate_scale_quantile() {
        let corpus = vec![Tensor::from_vec(vec![0.1_f32, 0.2, 0.3, 100.0], [1, 4]).unwrap()];
        // At the 75th percentile the bound excludes the 100.0 outlier.
        let s = calibrate_scale(&corpus, 0.75).unwrap();
        assert!(s < 1.0 / QMAX);
        // At quantile 1.0 everything is inlier.
        let s_full = calibrate_scale(&corpus, 1.0).unwrap();
        assert!((s_full - 100.0 / QMAX).abs() < 1e-5);
        assert!(calibrate_scale(&[], 0.9).is_err());
        assert!(calibrate_scale(&corpus, 0.0).is_err());
    }

    #[test]
    fn shadow_matmul_rejects_out_of_range_channel() {
        let w = ramp(4, 2, 1.0);
        let layer = ShadowLinear::new(&w, 0.01);
        let bad = CompactOutliers {
            channels: vec![9],
            residuals: Tensor::zeros([1, 1]),
        };
        assert!(layer.shadow_matmul(&bad).is_err());
    }
}
