//! Per-group quantization (K-Quant / AWQ granularity).
//!
//! Activations and weights are partitioned into groups along the reduction
//! dimension, each with an independent scale (paper Figure 3(b)). On an NPU
//! this forces the MatMul to be split into `G` group-sized sub-MatMuls whose
//! `i32` partial results must be dequantized and summed in floating point —
//! the extra float work and lost utilization behind Figure 4's 8.1–10.7×
//! slowdown. The [`GroupedLinear::forward`] here performs exactly that
//! decomposition (real sub-MatMuls, real float reductions), and reports how
//! many sub-MatMuls / float adds the NPU would have to schedule.

use llmnpu_tensor::{gemm, PackedMatrixI8, Tensor};

use crate::per_tensor::{max_min_scale, quantize_value};
use crate::{Error, Result};

/// A matrix quantized with an independent scale per `group_size`-wide slice
/// of the reduction (row) dimension.
#[derive(Debug, Clone)]
pub struct GroupQuantizedMatrix {
    /// `i8` payload, same layout as the float original `[k, n]`.
    data: Tensor<i8>,
    /// One scale per group (group `g` covers rows `g*group_size..(g+1)*group_size`).
    scales: Vec<f32>,
    group_size: usize,
}

impl GroupQuantizedMatrix {
    /// Quantizes `w` (`[k, n]` matrix view) with per-group scales along `k`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGranularity`] if `group_size` is zero or does
    /// not divide `k`.
    pub fn quantize(w: &Tensor<f32>, group_size: usize) -> Result<Self> {
        let (k, n) = w.matrix_dims();
        check_group("GroupQuantizedMatrix::quantize", k, group_size)?;
        let groups = k / group_size;
        let mut data = Tensor::zeros([k, n]);
        let mut scales = Vec::with_capacity(groups);
        for g in 0..groups {
            let rows = g * group_size..(g + 1) * group_size;
            let flat: Vec<f32> = rows
                .clone()
                .flat_map(|r| w.row(r).iter().copied())
                .collect();
            let scale = max_min_scale(&flat);
            scales.push(scale);
            for r in rows {
                let src = w.row(r);
                let dst = data.row_mut(r);
                for c in 0..n {
                    dst[c] = quantize_value(src[c], scale);
                }
            }
        }
        Ok(GroupQuantizedMatrix {
            data,
            scales,
            group_size,
        })
    }

    /// Number of groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.scales.len()
    }

    /// Group width along the reduction dimension.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Per-group scales.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the float matrix.
    #[must_use]
    pub fn dequantize(&self) -> Tensor<f32> {
        let (k, n) = self.data.matrix_dims();
        let mut out = Tensor::zeros([k, n]);
        for r in 0..k {
            let scale = self.scales[r / self.group_size];
            let src = self.data.row(r);
            let dst = out.row_mut(r);
            for c in 0..n {
                dst[c] = f32::from(src[c]) * scale;
            }
        }
        out
    }
}

/// Execution statistics for one grouped forward pass — the quantities that
/// determine NPU overhead in §2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupExecStats {
    /// Number of group-sized integer sub-MatMuls executed.
    pub sub_matmuls: usize,
    /// Number of float additions performed to reduce partial results.
    pub float_adds: usize,
}

/// A linear layer with per-group W8A8 quantization of both operands.
#[derive(Debug, Clone)]
pub struct GroupedLinear {
    weight: GroupQuantizedMatrix,
    /// One persistent kernel layout per weight group (`[group_size, n]`),
    /// sliced and packed once at construction — the per-call `wg` copy
    /// the seed made on every forward is gone.
    group_packed: Vec<PackedMatrixI8>,
}

impl GroupedLinear {
    /// Builds a grouped linear layer from float weights `[in, out]`,
    /// pre-slicing and pre-packing every weight group.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGranularity`] if the group size is invalid.
    pub fn new(weight: &Tensor<f32>, group_size: usize) -> Result<Self> {
        let weight = GroupQuantizedMatrix::quantize(weight, group_size)?;
        let (_, n) = weight.data.matrix_dims();
        let gs = weight.group_size;
        // A group's rows are contiguous in the row-major payload, so each
        // [gs, n] slice packs directly.
        let group_packed = weight
            .data
            .as_slice()
            .chunks_exact(gs * n)
            .map(|group| PackedMatrixI8::pack(group, gs, n))
            .collect();
        Ok(GroupedLinear {
            weight,
            group_packed,
        })
    }

    /// The quantized weight.
    #[must_use]
    pub fn weight(&self) -> &GroupQuantizedMatrix {
        &self.weight
    }

    /// Runs the grouped forward pass, returning the output and the
    /// sub-MatMul / float-reduction counts an NPU would incur.
    ///
    /// Each activation group is quantized with its own max-min scale
    /// (dynamic activation quantization, as K-Quant does), multiplied
    /// against the matching weight group in `i8`, dequantized, and summed in
    /// float.
    ///
    /// # Errors
    ///
    /// Returns an error if `x`'s inner dimension does not match the weight's
    /// reduction dimension.
    pub fn forward(&self, x: &Tensor<f32>) -> Result<(Tensor<f32>, GroupExecStats)> {
        let (m, k) = x.matrix_dims();
        let (wk, n) = self.weight.data.matrix_dims();
        if k != wk {
            return Err(Error::Tensor(llmnpu_tensor::Error::ShapeMismatch {
                op: "grouped_forward",
                lhs: vec![m, k],
                rhs: vec![wk, n],
            }));
        }
        let gs = self.weight.group_size;
        let groups = self.weight.group_count();
        let mut out = Tensor::zeros([m, n]);
        let mut stats = GroupExecStats::default();

        for g in 0..groups {
            let cols = g * gs..(g + 1) * gs;
            // Slice the activation group [m, gs] (activations change per
            // call — only the weight side is pre-sliced and pre-packed).
            let mut xg = Tensor::zeros([m, gs]);
            for r in 0..m {
                let src = &x.row(r)[cols.clone()];
                xg.row_mut(r).copy_from_slice(src);
            }
            let a_scale = max_min_scale(xg.as_slice());
            let xq = xg.map(|v| quantize_value(v, a_scale));

            // Fused dequantize-and-accumulate epilogue against the
            // group's prepacked weight slice: the i32 partial sums fold
            // straight into the float total without materializing a
            // per-group tensor, and no weight bytes are copied or packed
            // here. Results are identical to the two-pass
            // `matmul_i8_scaled` + `accumulate` pipeline.
            gemm::matmul_i8_scaled_into_prepacked(
                &mut out,
                &xq,
                &self.group_packed[g],
                a_scale,
                self.weight.scales[g],
            )?;
            stats.sub_matmuls += 1;
            stats.float_adds += out.len();
        }
        Ok((out, stats))
    }

    /// Float reference using dequantized weights.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward_float(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        Ok(gemm::matmul_f32(x, &self.weight.dequantize())?)
    }
}

fn check_group(op: &'static str, k: usize, group_size: usize) -> Result<()> {
    if group_size == 0 || !k.is_multiple_of(group_size) {
        return Err(Error::InvalidGranularity {
            what: format!("{op}: group size {group_size} must divide reduction dim {k}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(k: usize, n: usize, amp: f32) -> Tensor<f32> {
        Tensor::from_vec(
            (0..k * n)
                .map(|i| amp * (((i * 31 + 7) % 101) as f32 / 101.0 - 0.5))
                .collect(),
            [k, n],
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_group_size() {
        let w = ramp(8, 4, 1.0);
        assert!(GroupQuantizedMatrix::quantize(&w, 0).is_err());
        assert!(GroupQuantizedMatrix::quantize(&w, 3).is_err());
        assert!(GroupQuantizedMatrix::quantize(&w, 4).is_ok());
    }

    #[test]
    fn group_count_and_scales() {
        let w = ramp(8, 4, 1.0);
        let q = GroupQuantizedMatrix::quantize(&w, 2).unwrap();
        assert_eq!(q.group_count(), 4);
        assert_eq!(q.scales().len(), 4);
        assert_eq!(q.group_size(), 2);
    }

    #[test]
    fn forward_counts_sub_matmuls() {
        let w = ramp(8, 4, 1.0);
        let x = ramp(2, 8, 1.0);
        let layer = GroupedLinear::new(&w, 2).unwrap();
        let (_, stats) = layer.forward(&x).unwrap();
        assert_eq!(stats.sub_matmuls, 4);
        assert_eq!(stats.float_adds, 4 * 2 * 4);
    }

    #[test]
    fn grouped_tracks_float_reference() {
        let w = ramp(16, 8, 0.8);
        let x = ramp(3, 16, 1.2);
        let layer = GroupedLinear::new(&w, 4).unwrap();
        let (y, _) = layer.forward(&x).unwrap();
        let y_f = layer.forward_float(&x).unwrap();
        assert!(y.mse(&y_f).unwrap() < 1e-3);
    }

    #[test]
    fn grouped_beats_per_tensor_on_outliers() {
        use crate::per_tensor::QuantizedLinear;
        // One group carries a huge outlier; per-group confines the damage to
        // that group while per-tensor destroys every channel's precision.
        let w = ramp(16, 8, 0.5);
        let mut xv = vec![0.02_f32; 16];
        xv[1] = 40.0;
        let x = Tensor::from_vec(xv, [1, 16]).unwrap();

        let grouped = GroupedLinear::new(&w, 4).unwrap();
        let (y_g, _) = grouped.forward(&x).unwrap();
        let reference = grouped.forward_float(&x).unwrap();
        let err_grouped = y_g.mse(&reference).unwrap();

        let per_tensor = QuantizedLinear::new(&w, max_min_scale(x.as_slice()));
        let y_t = per_tensor.forward(&x).unwrap();
        let reference_t = per_tensor.forward_float(&x).unwrap();
        let err_tensor = y_t.mse(&reference_t).unwrap();

        assert!(
            err_grouped < err_tensor,
            "grouped {err_grouped} should beat per-tensor {err_tensor}"
        );
    }

    #[test]
    fn dequantize_round_trip_bounded() {
        let w = ramp(8, 8, 2.0);
        let q = GroupQuantizedMatrix::quantize(&w, 4).unwrap();
        let back = q.dequantize();
        for (g, chunk) in back.as_slice().chunks(4 * 8).enumerate() {
            let scale = q.scales()[g];
            for (a, b) in chunk.iter().zip(&w.as_slice()[g * 32..(g + 1) * 32]) {
                assert!((a - b).abs() <= scale * 0.5 + 1e-6);
            }
        }
    }
}
