//! LLM.int8()-style mixed-precision decomposition.
//!
//! The state-of-the-art float-outlier baseline the paper compares against
//! in Table 6. Activation columns whose magnitude exceeds a threshold are
//! computed in floating point against float weight rows; the remaining
//! columns go through vector-wise (per-row activation scale × per-column
//! weight scale) INT8 MatMul. Accuracy is near-FP16, but the decomposition
//! is *not* NPU-native: the integer part needs per-row/per-column rescales
//! and the float part runs on every layer, which is why llm.npu keeps the
//! same accuracy idea but restructures it as shadow execution (§3.3).
//!
//! The integer part executes as a single blocked W8A8 MatMul with the
//! vector-wise rescale fused into the kernel epilogue
//! (`gemm::matmul_i8_per_row`), replacing the seed's scalar per-product
//! dequantization loop.

use llmnpu_tensor::{gemm, PackedMatrixI8, Tensor};

use crate::per_tensor::quantize_value;
use crate::Result;

/// A linear layer with LLM.int8()-style execution.
#[derive(Debug, Clone)]
pub struct MixedLinear {
    /// Float weights `[in, out]` (kept for outlier rows and reference).
    weight_f: Tensor<f32>,
    /// Per-column (output channel) weight scales.
    w_scales: Vec<f32>,
    /// Quantized weights, packed once into the kernel's persistent layout
    /// (the integer MatMul never sees the row-major payload again).
    packed: PackedMatrixI8,
    /// Activation magnitude above which a column is treated as an outlier.
    threshold: f32,
}

impl MixedLinear {
    /// Builds a mixed-precision linear layer from float weights `[in, out]`.
    ///
    /// `threshold` is the outlier detection cut-off on activation magnitude
    /// (6.0 in the LLM.int8() paper; callers calibrate it per model).
    #[must_use]
    pub fn new(weight: &Tensor<f32>, threshold: f32) -> Self {
        let (k, n) = weight.matrix_dims();
        // Per-output-channel symmetric scales.
        let mut w_scales = vec![1.0_f32; n];
        for (c, ws) in w_scales.iter_mut().enumerate() {
            let mut abs_max = 0.0_f32;
            for r in 0..k {
                abs_max = abs_max.max(weight.row(r)[c].abs());
            }
            *ws = if abs_max == 0.0 { 1.0 } else { abs_max / 127.0 };
        }
        let mut weight_q = Tensor::zeros([k, n]);
        for r in 0..k {
            let src = weight.row(r);
            let dst = weight_q.row_mut(r);
            for c in 0..n {
                dst[c] = quantize_value(src[c], w_scales[c]);
            }
        }
        MixedLinear {
            weight_f: weight.clone(),
            w_scales,
            packed: PackedMatrixI8::from_tensor(&weight_q),
            threshold,
        }
    }

    /// The outlier threshold.
    #[must_use]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Identifies outlier columns of `x`: any column containing a value of
    /// magnitude ≥ threshold.
    #[must_use]
    pub fn outlier_columns(&self, x: &Tensor<f32>) -> Vec<usize> {
        let (rows, cols) = x.matrix_dims();
        let mut is_outlier = vec![false; cols];
        for r in 0..rows {
            for (c, &v) in x.row(r).iter().enumerate() {
                if v.abs() >= self.threshold {
                    is_outlier[c] = true;
                }
            }
        }
        is_outlier
            .iter()
            .enumerate()
            .filter_map(|(c, &o)| o.then_some(c))
            .collect()
    }

    /// Forward pass with the mixed decomposition. Returns the output and the
    /// number of outlier columns handled in float.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward(&self, x: &Tensor<f32>) -> Result<(Tensor<f32>, usize)> {
        let (m, k) = x.matrix_dims();
        let outliers = self.outlier_columns(x);
        let outlier_set: std::collections::HashSet<usize> = outliers.iter().copied().collect();

        // Integer part: zero out outlier columns, per-row activation
        // scales, then one vector-wise W8A8 MatMul with the
        // `acc · row_scale · w_scale[j]` dequantization fused into the
        // kernel epilogue. Accumulating the full dot product in i32 before
        // the single rescale is exact, where the seed's per-product float
        // adds rounded at every step.
        let mut xq = Tensor::zeros([m, k]);
        let mut row_scales = vec![1.0_f32; m];
        for (r, rs) in row_scales.iter_mut().enumerate() {
            let row = x.row(r);
            let mut abs_max = 0.0_f32;
            for (c, &v) in row.iter().enumerate() {
                if !outlier_set.contains(&c) {
                    abs_max = abs_max.max(v.abs());
                }
            }
            let a_scale = if abs_max == 0.0 { 1.0 } else { abs_max / 127.0 };
            *rs = a_scale;
            let dst = xq.row_mut(r);
            for (c, &v) in row.iter().enumerate() {
                dst[c] = if outlier_set.contains(&c) {
                    0
                } else {
                    quantize_value(v, a_scale)
                };
            }
        }
        let mut y = gemm::matmul_i8_per_row_prepacked(
            &xq,
            &self.packed,
            &row_scales,
            &self.w_scales,
            llmnpu_tensor::kernel::parallel::default_threads(),
        )?;

        // Float part: outlier columns against float weight rows.
        for &c in &outliers {
            if c >= k {
                break;
            }
            let w_row = self.weight_f.row(c);
            for r in 0..m {
                let xv = x.row(r)[c];
                if xv == 0.0 {
                    continue;
                }
                let out_row = y.row_mut(r);
                for (j, &wv) in w_row.iter().enumerate() {
                    out_row[j] += xv * wv;
                }
            }
        }
        Ok((y, outliers.len()))
    }

    /// Float reference `y = x W`.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward_float(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        Ok(gemm::matmul_f32(x, &self.weight_f)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(k: usize, n: usize, amp: f32) -> Tensor<f32> {
        Tensor::from_vec(
            (0..k * n)
                .map(|i| amp * (((i * 13 + 5) % 89) as f32 / 89.0 - 0.5))
                .collect(),
            [k, n],
        )
        .unwrap()
    }

    #[test]
    fn detects_outlier_columns() {
        let w = ramp(4, 2, 1.0);
        let layer = MixedLinear::new(&w, 6.0);
        let x = Tensor::from_vec(vec![0.1_f32, 7.0, -0.2, 0.3], [1, 4]).unwrap();
        assert_eq!(layer.outlier_columns(&x), vec![1]);
    }

    #[test]
    fn no_outliers_means_pure_integer_path() {
        let w = ramp(8, 4, 1.0);
        let layer = MixedLinear::new(&w, 6.0);
        let x = ramp(2, 8, 1.0);
        let (y, n_out) = layer.forward(&x).unwrap();
        assert_eq!(n_out, 0);
        assert!(y.mse(&layer.forward_float(&x).unwrap()).unwrap() < 1e-3);
    }

    #[test]
    fn outliers_handled_in_float_stay_accurate() {
        let w = ramp(16, 8, 0.5);
        let layer = MixedLinear::new(&w, 6.0);
        let mut xv = vec![0.04_f32; 16];
        xv[3] = 55.0;
        let x = Tensor::from_vec(xv, [1, 16]).unwrap();
        let (y, n_out) = layer.forward(&x).unwrap();
        assert_eq!(n_out, 1);
        let y_ref = layer.forward_float(&x).unwrap();
        let rel = y.mse(&y_ref).unwrap().sqrt() / y_ref.abs_max().max(1e-6);
        assert!(rel < 0.01, "rel err {rel} too large");
    }

    #[test]
    fn mixed_beats_per_tensor_on_outliers() {
        use crate::per_tensor::{max_min_scale, QuantizedLinear};
        let w = ramp(16, 8, 0.5);
        let mut xv = vec![0.04_f32; 16];
        xv[3] = 55.0;
        let x = Tensor::from_vec(xv.clone(), [1, 16]).unwrap();

        let mixed = MixedLinear::new(&w, 6.0);
        let (y_m, _) = mixed.forward(&x).unwrap();
        let y_ref = mixed.forward_float(&x).unwrap();
        let err_mixed = y_m.mse(&y_ref).unwrap();

        let naive = QuantizedLinear::new(&w, max_min_scale(&xv));
        let err_naive = naive.forward(&x).unwrap().mse(&y_ref).unwrap();
        assert!(err_mixed < err_naive / 10.0);
    }

    #[test]
    fn multi_row_batches_detect_union_of_outliers() {
        let w = ramp(4, 2, 1.0);
        let layer = MixedLinear::new(&w, 6.0);
        let x = Tensor::from_vec(vec![0.1_f32, 7.0, 0.0, 0.0, 8.0, 0.1, 0.0, 0.0], [2, 4]).unwrap();
        assert_eq!(layer.outlier_columns(&x), vec![0, 1]);
    }
}
