//! Sub-8-bit weight quantization through the tensor plane's
//! table-lookup formats: int4 / int2 codes with per-group f32 scales.
//!
//! Where [`per_group`](crate::per_group) splits one MatMul into `G`
//! NPU sub-MatMuls (the 8.1–10.7× slowdown of Figure 4), the LUT
//! formats keep the whole reduction in one kernel pass: weights are
//! quantized to 4- or 2-bit codes at construction, packed once into
//! the transposed split-plane layout of
//! [`PackedMatrixI4`] / [`PackedMatrixI2`], and every forward runs the
//! in-register table-lookup drivers against the same packed bytes —
//! one-half (int4) or one-quarter (int2) the weight traffic of the i8
//! path, which is what a bandwidth-bound decode step actually pays
//! for. Activations stay f32 at the API boundary; the driver
//! quantizes each row with its own dynamic max-min scale, so batched
//! rows are bit-identical to solo rows.

use llmnpu_tensor::{gemm, PackedMatrixI2, PackedMatrixI4, Tensor};

use crate::{Error, Result};

/// Packed sub-8-bit weights behind one dispatch point.
#[derive(Debug, Clone)]
enum LutWeights {
    I4(PackedMatrixI4),
    I2(PackedMatrixI2),
}

/// A linear layer whose weights live permanently in a packed LUT
/// format — quantize-and-pack once at construction, stream the packed
/// codes on every call (the pack-once discipline of
/// [`GroupedLinear`](crate::per_group::GroupedLinear), at a quarter to
/// an eighth of its weight bytes).
#[derive(Debug, Clone)]
pub struct LutLinear {
    weights: LutWeights,
    group_size: usize,
}

impl LutLinear {
    /// Quantizes float weights `[in, out]` to int4 codes with one f32
    /// scale per `group_size` reduction elements, packing them once.
    ///
    /// Unlike the per-group i8 scheme, the reduction dim does **not**
    /// have to be a multiple of `group_size` — the packed format
    /// carries a ragged tail group.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGranularity`] if `group_size` is not a
    /// positive multiple of 4 (the packed planes split a group into
    /// quarters).
    pub fn int4(weight: &Tensor<f32>, group_size: usize) -> Result<Self> {
        check_lut_group("lut_int4", group_size)?;
        Ok(LutLinear {
            weights: LutWeights::I4(PackedMatrixI4::from_tensor(weight, group_size)),
            group_size,
        })
    }

    /// Quantizes float weights `[in, out]` to int2 (ternary) codes;
    /// otherwise identical to [`LutLinear::int4`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGranularity`] if `group_size` is not a
    /// positive multiple of 4.
    pub fn int2(weight: &Tensor<f32>, group_size: usize) -> Result<Self> {
        check_lut_group("lut_int2", group_size)?;
        Ok(LutLinear {
            weights: LutWeights::I2(PackedMatrixI2::from_tensor(weight, group_size)),
            group_size,
        })
    }

    /// Weight bits per element (4 or 2).
    #[must_use]
    pub fn bits(&self) -> u32 {
        match &self.weights {
            LutWeights::I4(_) => 4,
            LutWeights::I2(_) => 2,
        }
    }

    /// Quantization group width along the reduction dim.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Reduction dimension of the packed weight.
    #[must_use]
    pub fn k(&self) -> usize {
        match &self.weights {
            LutWeights::I4(p) => p.k(),
            LutWeights::I2(p) => p.k(),
        }
    }

    /// Output dimension of the packed weight.
    #[must_use]
    pub fn n(&self) -> usize {
        match &self.weights {
            LutWeights::I4(p) => p.n(),
            LutWeights::I2(p) => p.n(),
        }
    }

    /// Bytes the forward pass streams per call: packed codes plus
    /// per-group scales. The weight-memory column of the experiment
    /// tables.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        match &self.weights {
            LutWeights::I4(p) => p.packed_bytes(),
            LutWeights::I2(p) => p.packed_bytes(),
        }
    }

    /// Runs `x · W` through the optimized in-register LUT drivers.
    /// Bit-exact vs [`LutLinear::forward_reference`] for any thread
    /// count, and row-wise: each output row depends only on its own
    /// input row.
    ///
    /// # Errors
    ///
    /// Returns an error if `x`'s inner dimension differs from the
    /// weight's reduction dim.
    pub fn forward(&self, x: &Tensor<f32>, threads: usize) -> Result<Tensor<f32>> {
        match &self.weights {
            LutWeights::I4(p) => Ok(gemm::matmul_i4_prepacked(x, p, threads)?),
            LutWeights::I2(p) => Ok(gemm::matmul_i2_prepacked(x, p, threads)?),
        }
    }

    /// Batched-decode forward over B scattered activation rows (one
    /// weight stream per cohort). Row `i` is bit-identical to
    /// [`LutLinear::forward`] on that row alone.
    ///
    /// # Errors
    ///
    /// Returns an error on an empty batch or a row-length mismatch.
    pub fn forward_rows(&self, rows: &[&[f32]], threads: usize) -> Result<Tensor<f32>> {
        match &self.weights {
            LutWeights::I4(p) => Ok(gemm::matmul_i4_rows_prepacked(rows, p, threads)?),
            LutWeights::I2(p) => Ok(gemm::matmul_i2_rows_prepacked(rows, p, threads)?),
        }
    }

    /// The scalar materialized-table reference (builds real lookup
    /// tables per activation row; the semantic definition the
    /// optimized drivers are pinned against).
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward_reference(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        match &self.weights {
            LutWeights::I4(p) => Ok(gemm::matmul_i4_reference(x, p)?),
            LutWeights::I2(p) => Ok(gemm::matmul_i2_reference(x, p)?),
        }
    }

    /// Float matmul against the dequantized weights — the accuracy
    /// yardstick (quantization error only, no activation rounding).
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn forward_float(&self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        Ok(gemm::matmul_f32(x, &self.dequantize())?)
    }

    /// Dequantizes the packed codes back to a float `[k, n]` tensor.
    #[must_use]
    pub fn dequantize(&self) -> Tensor<f32> {
        let (k, n, data) = match &self.weights {
            LutWeights::I4(p) => (p.k(), p.n(), p.dequantize()),
            LutWeights::I2(p) => (p.k(), p.n(), p.dequantize()),
        };
        // lint: allow(panic) — dequantize always yields exactly k·n elements
        Tensor::from_vec(data, [k, n]).expect("packed dims are consistent")
    }
}

/// Mirrors the tensor plane's group constraint as a recoverable error
/// (the kernel layer asserts; the quant API reports).
fn check_lut_group(op: &'static str, group_size: usize) -> Result<()> {
    if group_size == 0 || !group_size.is_multiple_of(4) {
        return Err(Error::InvalidGranularity {
            what: format!("{op}: LUT group size {group_size} must be a positive multiple of 4"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize, amp: f32) -> Tensor<f32> {
        Tensor::from_vec(
            (0..rows * cols)
                .map(|i| amp * (((i * 37 + 11) % 127) as f32 / 127.0 - 0.5))
                .collect(),
            [rows, cols],
        )
        .unwrap()
    }

    #[test]
    fn int4_forward_matches_reference_bit_exact() {
        let w = ramp(40, 17, 0.8); // ragged k and n
        let lin = LutLinear::int4(&w, 16).unwrap();
        let x = ramp(3, 40, 1.0);
        for threads in [1, 2, 4] {
            let fast = lin.forward(&x, threads).unwrap();
            let reference = lin.forward_reference(&x).unwrap();
            assert_eq!(fast.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn int2_forward_matches_reference_bit_exact() {
        let w = ramp(40, 17, 0.8);
        let lin = LutLinear::int2(&w, 8).unwrap();
        let x = ramp(2, 40, 1.0);
        let fast = lin.forward(&x, 2).unwrap();
        let reference = lin.forward_reference(&x).unwrap();
        assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn forward_rows_matches_solo_rows() {
        let w = ramp(32, 9, 0.7);
        let lin = LutLinear::int4(&w, 8).unwrap();
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|i| ramp(1, 32, 1.0 + i as f32).into_vec())
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        let stacked = lin.forward_rows(&refs, 2).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let solo = lin
                .forward(&Tensor::from_vec(row.clone(), [1, 32]).unwrap(), 1)
                .unwrap();
            assert_eq!(solo.row(0), stacked.row(i));
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        let w = ramp(64, 24, 1.0);
        let i4 = LutLinear::int4(&w, 16).unwrap();
        let i2 = LutLinear::int2(&w, 16).unwrap();
        let mse4 = w.mse(&i4.dequantize()).unwrap();
        let mse2 = w.mse(&i2.dequantize()).unwrap();
        assert!(mse4 < 5e-3, "int4 mse {mse4}");
        // Ternary codes are coarse but must still track the signal.
        assert!(mse2 < 5e-2, "int2 mse {mse2}");
        assert!(mse4 < mse2, "more bits must not hurt");
    }

    #[test]
    fn weight_bytes_shrink_with_bits() {
        let w = ramp(128, 32, 0.5);
        let i4 = LutLinear::int4(&w, 32).unwrap();
        let i2 = LutLinear::int2(&w, 32).unwrap();
        let f32_bytes = 128 * 32 * 4;
        assert!(i4.weight_bytes() * 6 < f32_bytes, "int4 ≈ f32/8 + scales");
        assert!(i2.weight_bytes() < i4.weight_bytes());
        assert_eq!((i4.bits(), i2.bits()), (4, 2));
        assert_eq!((i4.k(), i4.n()), (128, 32));
    }

    #[test]
    fn invalid_group_sizes_are_rejected() {
        let w = ramp(16, 4, 0.5);
        for gs in [0, 2, 6] {
            assert!(matches!(
                LutLinear::int4(&w, gs),
                Err(Error::InvalidGranularity { .. })
            ));
            assert!(matches!(
                LutLinear::int2(&w, gs),
                Err(Error::InvalidGranularity { .. })
            ));
        }
    }
}
