//! Quantization algorithms and outlier machinery for the llm.npu
//! reproduction.
//!
//! The paper's central tension (§2.3) is that mobile NPUs only run
//! *per-tensor* INT8 MatMul at full speed, while accurate LLM quantization
//! needs finer granularity because of activation outliers. This crate
//! implements every scheme the paper evaluates, with real arithmetic:
//!
//! * [`per_tensor`] — symmetric max-min per-tensor W8A8 (the NPU-native
//!   scheme, and the base of llm.npu's enhanced algorithm),
//! * [`per_group`] — per-group quantization in the style of K-Quant / AWQ
//!   (accurate, but splits one MatMul into `G` sub-MatMuls plus float
//!   reductions — the 8.1–10.7× NPU slowdown of Figure 4),
//! * [`smooth`] — SmoothQuant-style difficulty migration (per-tensor
//!   friendly, but loses accuracy on hard outliers),
//! * [`mixed`] — LLM.int8()-style mixed-precision decomposition (float
//!   outlier columns; the accuracy gold-standard among INT8 schemes),
//! * [`outlier`] — llm.npu's **shadow outlier execution** (§3.3,
//!   Equation 1): per-tensor NPU MatMul within scale, plus a compact float
//!   MatMul over extracted outlier channels on the CPU, plus the
//!   hot-channel and importance-pruning analyses of Figures 10–12,
//! * [`lut`] — sub-8-bit (int4/int2) grouped weights through the tensor
//!   plane's table-lookup kernels: pack once at construction, stream
//!   half/quarter the weight bytes per decode step.
//!
//! # Example
//!
//! ```
//! use llmnpu_quant::per_tensor::QuantizedMatrix;
//! use llmnpu_tensor::Tensor;
//!
//! # fn main() -> Result<(), llmnpu_quant::Error> {
//! let w = Tensor::from_vec(vec![0.5_f32, -1.0, 0.25, 0.75], [2, 2])?;
//! let q = QuantizedMatrix::quantize(&w);
//! let back = q.dequantize();
//! assert!(w.mse(&back)? < 1e-4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod lut;
pub mod mixed;
pub mod outlier;
pub mod per_group;
pub mod per_tensor;
pub mod smooth;

pub use error::Error;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// The quantization scheme taxonomy used across experiments (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Scheme {
    /// FP16/FP32 reference (no quantization).
    Float,
    /// Symmetric per-tensor W8A8 without outlier handling.
    PerTensor,
    /// Per-group W8A8 (K-Quant / AWQ granularity).
    PerGroup {
        /// Number of elements per quantization group along the reduction dim.
        group_size: usize,
    },
    /// SmoothQuant: per-tensor after offline difficulty migration.
    SmoothQuant,
    /// LLM.int8(): per-row/per-column scales with float outlier columns.
    LlmInt8,
    /// llm.npu: per-tensor with shadow outlier execution (§3.3).
    ShadowOutlier,
    /// 4-bit grouped weights through the table-lookup kernels
    /// ([`lut::LutLinear`]): half the i8 weight bytes, CPU LUT MatMul.
    Int4Lut {
        /// Number of reduction elements per quantization group.
        group_size: usize,
    },
    /// 2-bit (ternary) grouped weights through the table-lookup kernels.
    Int2Lut {
        /// Number of reduction elements per quantization group.
        group_size: usize,
    },
}

impl Scheme {
    /// Short identifier used in experiment output tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Float => "FP16",
            Scheme::PerTensor => "PerTensor",
            Scheme::PerGroup { .. } => "K-Quant",
            Scheme::SmoothQuant => "SmoothQuant",
            Scheme::LlmInt8 => "LLM.int8()",
            Scheme::ShadowOutlier => "Ours",
            Scheme::Int4Lut { .. } => "W4-LUT",
            Scheme::Int2Lut { .. } => "W2-LUT",
        }
    }

    /// Whether a mobile NPU can execute this scheme's MatMul as a single
    /// per-tensor INT8 operation (Table 2 / §2.3). The LUT schemes are
    /// deliberately **not** NPU-native: their win is weight bandwidth on
    /// the CPU lane, not integer MatMul shape.
    #[must_use]
    pub fn npu_native(&self) -> bool {
        matches!(
            self,
            Scheme::PerTensor | Scheme::SmoothQuant | Scheme::ShadowOutlier
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let schemes = [
            Scheme::Float,
            Scheme::PerTensor,
            Scheme::PerGroup { group_size: 64 },
            Scheme::SmoothQuant,
            Scheme::LlmInt8,
            Scheme::ShadowOutlier,
            Scheme::Int4Lut { group_size: 128 },
            Scheme::Int2Lut { group_size: 128 },
        ];
        let mut labels: Vec<_> = schemes.iter().map(Scheme::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), schemes.len());
    }

    #[test]
    fn npu_native_matches_paper_table2() {
        assert!(Scheme::PerTensor.npu_native());
        assert!(Scheme::SmoothQuant.npu_native());
        assert!(Scheme::ShadowOutlier.npu_native());
        assert!(!Scheme::PerGroup { group_size: 32 }.npu_native());
        assert!(!Scheme::LlmInt8.npu_native());
        assert!(!Scheme::Float.npu_native());
        assert!(!Scheme::Int4Lut { group_size: 128 }.npu_native());
        assert!(!Scheme::Int2Lut { group_size: 128 }.npu_native());
    }
}
