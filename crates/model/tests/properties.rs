//! Property-based tests for the model crate: the chunk-equivalence
//! invariant and architectural consistency across random configurations.

use proptest::prelude::*;

use llmnpu_model::backend::FloatBackend;
use llmnpu_model::config::ModelConfig;
use llmnpu_model::forward::Transformer;
use llmnpu_model::kv::KvCache;
use llmnpu_model::weights::{synthesize, OutlierSpec};

fn arbitrary_mini() -> impl Strategy<Value = (ModelConfig, u64)> {
    (0usize..5, 1usize..3, any::<u64>()).prop_map(|(which, layers, seed)| {
        let base = match which {
            0 => ModelConfig::qwen15_18b(),
            1 => ModelConfig::gemma_2b(),
            2 => ModelConfig::phi2_27b(),
            3 => ModelConfig::llama2_7b(),
            _ => ModelConfig::mistral_7b(),
        };
        let cfg = base.scaled_down(32, layers, 64).unwrap();
        (cfg, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chunked prefill is numerically identical to whole-prompt prefill
    /// for every architecture, chunk size, and seed — the §3.2 invariant
    /// as a universal property.
    #[test]
    fn chunk_equivalence_universal(
        (cfg, seed) in arbitrary_mini(),
        chunk_len in 1usize..8,
        prompt_len in 2usize..14,
    ) {
        let w = synthesize(&cfg, seed, OutlierSpec::default()).unwrap();
        let be = FloatBackend::new(w.clone());
        let t = Transformer::new(&w, &be);
        let toks: Vec<u32> = (0..prompt_len as u32).map(|i| (i * 7 + seed as u32) % 64).collect();

        let mut c1 = KvCache::new(cfg.layers);
        let whole = t.prefill(&toks, &mut c1).unwrap();
        let mut c2 = KvCache::new(cfg.layers);
        let chunked = t.prefill_chunked(&toks, chunk_len, &mut c2).unwrap();
        prop_assert!(whole.mse(&chunked).unwrap() < 1e-8);
        prop_assert_eq!(c1.seq_len(), c2.seq_len());
    }

    /// Hidden states stay finite for any seed (no NaN blowups from the
    /// synthetic outlier structure).
    #[test]
    fn forward_is_finite((cfg, seed) in arbitrary_mini()) {
        let w = synthesize(&cfg, seed, OutlierSpec::default()).unwrap();
        let be = FloatBackend::new(w.clone());
        let t = Transformer::new(&w, &be);
        let toks: Vec<u32> = (0..8u32).map(|i| (i * 11 + 3) % 64).collect();
        let h = t.last_hidden(&toks, None).unwrap();
        prop_assert!(h.iter().all(|v| v.is_finite()));
        let logits = {
            let mut cache = KvCache::new(cfg.layers);
            t.prefill(&toks, &mut cache).unwrap();
            t.decode_step(1, &mut cache).unwrap()
        };
        prop_assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Scaled-down configs always validate and preserve the GQA ratio.
    #[test]
    fn scaled_down_always_valid(
        which in 0usize..5,
        hidden_mult in 1usize..5,
        layers in 1usize..6,
    ) {
        let base = match which {
            0 => ModelConfig::qwen15_18b(),
            1 => ModelConfig::gemma_2b(),
            2 => ModelConfig::phi2_27b(),
            3 => ModelConfig::llama2_7b(),
            _ => ModelConfig::mistral_7b(),
        };
        let hidden = 32 * hidden_mult;
        let cfg = base.scaled_down(hidden, layers, 64).unwrap();
        cfg.validate().unwrap();
        prop_assert_eq!(cfg.hidden, hidden);
        prop_assert_eq!(cfg.layers, layers);
        prop_assert_eq!(
            cfg.heads / cfg.kv_heads,
            (base.heads / base.kv_heads).max(1)
        );
        // FFN width divisible by 16 (for per-group quantization).
        prop_assert_eq!(cfg.ffn_hidden % 16, 0);
    }

    /// Parameter counts are consistent: per-token linear FLOPs equal
    /// twice the decoder linear parameters.
    #[test]
    fn flops_match_params(which in 0usize..5) {
        let cfg = match which {
            0 => ModelConfig::qwen15_18b(),
            1 => ModelConfig::gemma_2b(),
            2 => ModelConfig::phi2_27b(),
            3 => ModelConfig::llama2_7b(),
            _ => ModelConfig::mistral_7b(),
        };
        let linear_params: u64 = cfg
            .layer_linear_shapes()
            .iter()
            .map(|&(k, n)| (k * n) as u64)
            .sum::<u64>()
            * cfg.layers as u64;
        prop_assert_eq!(cfg.linear_flops_per_token(), 2 * linear_params);
        // Embeddings + per-layer norms make total params exceed linears.
        prop_assert!(cfg.param_count() > linear_params);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Paged attention over an arbitrary page size is bit-identical to
    /// the contiguous path for every architecture, prompt, and seed —
    /// the invariant the paged KV pool's gather-free read path stands
    /// on, as a universal property.
    #[test]
    fn paged_prefill_equals_contiguous_universal(
        (cfg, seed) in arbitrary_mini(),
        block_tokens in 1usize..9,
        prompt_len in 2usize..14,
    ) {
        use llmnpu_kv::{BlockPool, PoolConfig};
        use llmnpu_model::kv::PagedKvCache;
        use std::sync::Arc;

        let w = synthesize(&cfg, seed, OutlierSpec::default()).unwrap();
        let be = FloatBackend::new(w.clone());
        let t = Transformer::new(&w, &be);
        let toks: Vec<u32> = (0..prompt_len as u32).map(|i| (i * 11 + seed as u32) % 64).collect();

        let mut contiguous = KvCache::new(cfg.layers);
        let reference = t.prefill(&toks, &mut contiguous).unwrap();

        let pool = Arc::new(BlockPool::new(PoolConfig {
            layers: cfg.layers,
            kv_dim: cfg.kv_dim(),
            block_tokens,
            blocks: prompt_len.div_ceil(block_tokens) + 1,
        }).unwrap());
        let mut paged = PagedKvCache::reserve(&pool, toks.len()).unwrap();
        let h = t.prefill_paged(&toks, 0, &mut paged).unwrap();

        prop_assert_eq!(h.as_slice(), reference.as_slice());
        paged.release().unwrap();
        prop_assert_eq!(pool.used_blocks(), 0);
    }
}
