//! Architecture descriptions of the paper's five evaluation models, plus
//! scaled-down variants for the numeric plane.

use crate::{Error, Result};

/// Normalization operator used by the architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormKind {
    /// RMSNorm (LLaMA family, Qwen, Gemma, Mistral).
    Rms,
    /// Classic LayerNorm (Phi-2, GPT-family).
    Layer,
}

/// FFN activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// SiLU with a gated FFN (LLaMA, Qwen, Mistral).
    SiluGated,
    /// GELU with a gated FFN (Gemma).
    GeluGated,
    /// Plain GELU FFN without gate (Phi-2).
    Gelu,
}

impl ActKind {
    /// Whether the FFN has a separate gate projection.
    #[must_use]
    pub fn gated(&self) -> bool {
        matches!(self, ActKind::SiluGated | ActKind::GeluGated)
    }
}

/// A decoder-only transformer architecture.
///
/// Shapes follow the models' published configurations; the `param_count`
/// derived from them lands within a few percent of the advertised sizes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Display name, e.g. `"Qwen1.5-1.8B"`.
    pub name: &'static str,
    /// Hidden (embedding) width.
    pub hidden: usize,
    /// Number of decoder layers.
    pub layers: usize,
    /// Query head count.
    pub heads: usize,
    /// Key/value head count (< `heads` for GQA/MQA).
    pub kv_heads: usize,
    /// Per-head width.
    pub head_dim: usize,
    /// FFN intermediate width.
    pub ffn_hidden: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum context length (Table 1).
    pub max_context: usize,
    /// Normalization operator.
    pub norm: NormKind,
    /// FFN activation.
    pub act: ActKind,
}

impl ModelConfig {
    /// Qwen1.5-1.8B (32K context, Table 1).
    #[must_use]
    pub fn qwen15_18b() -> Self {
        ModelConfig {
            name: "Qwen1.5-1.8B",
            hidden: 2048,
            layers: 24,
            heads: 16,
            kv_heads: 16,
            head_dim: 128,
            ffn_hidden: 5504,
            vocab: 151_936,
            max_context: 32_768,
            norm: NormKind::Rms,
            act: ActKind::SiluGated,
        }
    }

    /// Gemma-2B (8K context, multi-query attention, huge FFN).
    #[must_use]
    pub fn gemma_2b() -> Self {
        ModelConfig {
            name: "Gemma-2B",
            hidden: 2048,
            layers: 18,
            heads: 8,
            kv_heads: 1,
            head_dim: 256,
            ffn_hidden: 16_384,
            vocab: 256_000,
            max_context: 8_192,
            norm: NormKind::Rms,
            act: ActKind::GeluGated,
        }
    }

    /// Phi-2-2.7B (2K context, LayerNorm, ungated GELU FFN).
    #[must_use]
    pub fn phi2_27b() -> Self {
        ModelConfig {
            name: "Phi-2-2.7B",
            hidden: 2560,
            layers: 32,
            heads: 32,
            kv_heads: 32,
            head_dim: 80,
            ffn_hidden: 10_240,
            vocab: 51_200,
            max_context: 2_048,
            norm: NormKind::Layer,
            act: ActKind::Gelu,
        }
    }

    /// LLaMA-2-7B (4K context).
    #[must_use]
    pub fn llama2_7b() -> Self {
        ModelConfig {
            name: "LLaMA-2-7B",
            hidden: 4096,
            layers: 32,
            heads: 32,
            kv_heads: 32,
            head_dim: 128,
            ffn_hidden: 11_008,
            vocab: 32_000,
            max_context: 4_096,
            norm: NormKind::Rms,
            act: ActKind::SiluGated,
        }
    }

    /// Mistral-7B (grouped-query attention, 32K window).
    #[must_use]
    pub fn mistral_7b() -> Self {
        ModelConfig {
            name: "Mistral-7B",
            hidden: 4096,
            layers: 32,
            heads: 32,
            kv_heads: 8,
            head_dim: 128,
            ffn_hidden: 14_336,
            vocab: 32_000,
            max_context: 32_768,
            norm: NormKind::Rms,
            act: ActKind::SiluGated,
        }
    }

    /// All five evaluation models, in the paper's order.
    #[must_use]
    pub fn all_evaluated() -> Vec<ModelConfig> {
        vec![
            Self::qwen15_18b(),
            Self::gemma_2b(),
            Self::phi2_27b(),
            Self::llama2_7b(),
            Self::mistral_7b(),
        ]
    }

    /// A small numeric-plane config with the same *structure* (norm,
    /// activation, head grouping ratio) but laptop-friendly dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the scaled dimensions would be
    /// degenerate.
    pub fn scaled_down(&self, hidden: usize, layers: usize, vocab: usize) -> Result<ModelConfig> {
        let kv_ratio = (self.heads / self.kv_heads).max(1);
        // Aim for ~16-wide heads while keeping the GQA grouping ratio and
        // dividing the hidden width evenly.
        let mut heads = ((hidden / 16).max(1) / kv_ratio).max(1) * kv_ratio;
        while !hidden.is_multiple_of(heads) || !(hidden / heads).is_multiple_of(2) {
            heads += kv_ratio;
            if heads > hidden {
                return Err(Error::InvalidConfig {
                    what: format!(
                        "cannot scale {} down to hidden {hidden} with kv ratio {kv_ratio}",
                        self.name
                    ),
                });
            }
        }
        let kv_heads = heads / kv_ratio;
        let head_dim = hidden / heads;
        // Round the FFN width to a multiple of 16 so per-group quantization
        // (group sizes 8/16/32) always divides it on mini models.
        let ffn_ratio = self.ffn_hidden as f64 / self.hidden as f64;
        let ffn_hidden = (((ffn_ratio * hidden as f64) / 16.0).round() as usize).max(1) * 16;
        let cfg = ModelConfig {
            name: self.name,
            hidden,
            layers,
            heads,
            kv_heads,
            head_dim,
            ffn_hidden: ffn_hidden.max(hidden),
            vocab,
            max_context: 1024,
            norm: self.norm,
            act: self.act,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// A generic tiny config for unit tests.
    #[must_use]
    pub fn tiny() -> ModelConfig {
        ModelConfig {
            name: "tiny",
            hidden: 32,
            layers: 2,
            heads: 4,
            kv_heads: 2,
            head_dim: 8,
            ffn_hidden: 64,
            vocab: 64,
            max_context: 128,
            norm: NormKind::Rms,
            act: ActKind::SiluGated,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if head layout or dimensions are
    /// inconsistent.
    pub fn validate(&self) -> Result<()> {
        if self.heads == 0 || self.kv_heads == 0 || self.layers == 0 {
            return Err(Error::InvalidConfig {
                what: "heads, kv_heads and layers must be non-zero".to_owned(),
            });
        }
        if !self.heads.is_multiple_of(self.kv_heads) {
            return Err(Error::InvalidConfig {
                what: format!(
                    "query heads {} must be a multiple of kv heads {}",
                    self.heads, self.kv_heads
                ),
            });
        }
        if !self.head_dim.is_multiple_of(2) {
            return Err(Error::InvalidConfig {
                what: format!("head_dim {} must be even for RoPE", self.head_dim),
            });
        }
        Ok(())
    }

    /// Width of the fused query projection output.
    #[must_use]
    pub fn q_dim(&self) -> usize {
        self.heads * self.head_dim
    }

    /// Width of each key/value projection output.
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    /// Parameter count (embeddings + decoder stack; LM head assumed tied).
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        let per_layer = h * self.q_dim() as u64            // Wq
            + 2 * h * self.kv_dim() as u64                 // Wk, Wv
            + self.q_dim() as u64 * h                      // Wo
            + if self.act.gated() { 3 } else { 2 } * h * self.ffn_hidden as u64
            + 2 * h; // norm parameters
        self.vocab as u64 * h + per_layer * self.layers as u64
    }

    /// INT8 weight bytes of the decoder stack plus embeddings.
    #[must_use]
    pub fn weight_bytes_int8(&self) -> u64 {
        self.param_count()
    }

    /// Linear-layer FLOPs per token for prefill (the compute-bound part
    /// that llm.npu pushes onto the NPU).
    #[must_use]
    pub fn linear_flops_per_token(&self) -> u64 {
        let h = self.hidden as u64;
        let per_layer = 2
            * (h * self.q_dim() as u64
                + 2 * h * self.kv_dim() as u64
                + self.q_dim() as u64 * h
                + if self.act.gated() { 3 } else { 2 } * h * self.ffn_hidden as u64);
        per_layer * self.layers as u64
    }

    /// Per-layer weighted-operator shapes `(k, n)` in graph order — the
    /// shapes that become NPU linear subgraphs.
    #[must_use]
    pub fn layer_linear_shapes(&self) -> Vec<(usize, usize)> {
        let mut v = vec![
            (self.hidden, self.q_dim()),
            (self.hidden, self.kv_dim()),
            (self.hidden, self.kv_dim()),
            (self.q_dim(), self.hidden),
        ];
        if self.act.gated() {
            v.push((self.hidden, self.ffn_hidden)); // gate
        }
        v.push((self.hidden, self.ffn_hidden)); // up
        v.push((self.ffn_hidden, self.hidden)); // down
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in ModelConfig::all_evaluated() {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
        ModelConfig::tiny().validate().unwrap();
    }

    #[test]
    fn param_counts_match_advertised_sizes() {
        // Within ~20% of the billions in the model names.
        let cases: [(ModelConfig, f64); 5] = [
            (ModelConfig::qwen15_18b(), 1.8e9),
            (ModelConfig::gemma_2b(), 2.5e9), // Gemma-2B is actually ~2.5B
            (ModelConfig::phi2_27b(), 2.7e9),
            (ModelConfig::llama2_7b(), 6.7e9),
            (ModelConfig::mistral_7b(), 7.2e9),
        ];
        for (cfg, expected) in cases {
            let p = cfg.param_count() as f64;
            let ratio = p / expected;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "{}: {p:.2e} vs expected {expected:.2e}",
                cfg.name
            );
        }
    }

    #[test]
    fn context_lengths_match_table1() {
        assert_eq!(ModelConfig::qwen15_18b().max_context, 32_768);
        assert_eq!(ModelConfig::gemma_2b().max_context, 8_192);
        assert_eq!(ModelConfig::phi2_27b().max_context, 2_048);
    }

    #[test]
    fn gemma_is_mqa_mistral_is_gqa() {
        assert_eq!(ModelConfig::gemma_2b().kv_heads, 1);
        let mistral = ModelConfig::mistral_7b();
        assert!(mistral.kv_heads < mistral.heads);
        assert_eq!(mistral.heads % mistral.kv_heads, 0);
    }

    #[test]
    fn scaled_down_preserves_structure() {
        let mini = ModelConfig::mistral_7b().scaled_down(64, 2, 128).unwrap();
        assert_eq!(mini.hidden, 64);
        assert_eq!(mini.heads / mini.kv_heads, 4); // GQA ratio preserved
        assert_eq!(mini.act, ActKind::SiluGated);
        mini.validate().unwrap();
        // FFN ratio preserved: Mistral ffn/hidden = 3.5.
        assert_eq!(mini.ffn_hidden, 224);
    }

    #[test]
    fn validate_rejects_bad_heads() {
        let mut cfg = ModelConfig::tiny();
        cfg.kv_heads = 3;
        assert!(cfg.validate().is_err());
        cfg.kv_heads = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn linear_shapes_cover_all_projections() {
        let cfg = ModelConfig::qwen15_18b();
        let shapes = cfg.layer_linear_shapes();
        assert_eq!(shapes.len(), 7); // q, k, v, o, gate, up, down
        let phi = ModelConfig::phi2_27b();
        assert_eq!(phi.layer_linear_shapes().len(), 6); // ungated
    }

    #[test]
    fn flops_per_token_scales_with_model_size() {
        let small = ModelConfig::qwen15_18b().linear_flops_per_token();
        let big = ModelConfig::llama2_7b().linear_flops_per_token();
        assert!(big > 3 * small);
        // Qwen: ~2.4 GFLOP/token.
        assert!((small as f64) > 1.5e9 && (small as f64) < 3.5e9);
    }
}
