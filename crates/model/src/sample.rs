//! Token sampling for the numeric generation loop.
//!
//! The paper's decode stage "is compatible with any decoding engine"
//! (§4); this module is the decoding engine of this reproduction. A
//! [`Sampler`] turns one logits row into one token id under the usual
//! strategies — greedy argmax, temperature scaling, top-k truncation,
//! and top-p (nucleus) filtering — driven by a **seeded** RNG so every
//! stream is reproducible: the same [`SamplerConfig`] over the same
//! logits sequence always yields the same tokens, which is what lets the
//! continuous-batching scheduler in `llmnpu-core` assert bit-identical
//! per-request outputs no matter how requests interleave on the pool.
//!
//! Determinism contract: greedy sampling consumes no randomness at all;
//! every non-greedy step consumes exactly **one** `f64` draw, so the RNG
//! stream position after `n` steps depends only on `n` — never on the
//! logit values or on what other requests are doing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Error, Result};

/// Sampling strategy knobs for one generation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Softmax temperature. `<= 0` means greedy argmax (no randomness).
    pub temperature: f32,
    /// Keep only the `k` highest-logit candidates before sampling.
    pub top_k: Option<usize>,
    /// Keep the smallest candidate prefix whose probability mass reaches
    /// `p` (nucleus sampling). Applied after `top_k`.
    pub top_p: Option<f32>,
    /// RNG seed; equal seeds give equal streams.
    pub seed: u64,
}

impl SamplerConfig {
    /// Greedy decoding (deterministic argmax, ties to the lowest id).
    #[must_use]
    pub fn greedy() -> Self {
        SamplerConfig {
            temperature: 0.0,
            top_k: None,
            top_p: None,
            seed: 0,
        }
    }

    /// Plain temperature sampling over the full vocabulary.
    #[must_use]
    pub fn temperature(temperature: f32, seed: u64) -> Self {
        SamplerConfig {
            temperature,
            top_k: None,
            top_p: None,
            seed,
        }
    }

    /// Top-k sampling at a temperature.
    #[must_use]
    pub fn top_k(k: usize, temperature: f32, seed: u64) -> Self {
        SamplerConfig {
            temperature,
            top_k: Some(k),
            top_p: None,
            seed,
        }
    }

    /// Top-p (nucleus) sampling at a temperature.
    #[must_use]
    pub fn top_p(p: f32, temperature: f32, seed: u64) -> Self {
        SamplerConfig {
            temperature,
            top_k: None,
            top_p: Some(p),
            seed,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.top_k == Some(0) {
            return Err(Error::InvalidConfig {
                what: "top_k must be at least 1".to_owned(),
            });
        }
        if let Some(p) = self.top_p {
            if !(p > 0.0 && p <= 1.0) {
                return Err(Error::InvalidConfig {
                    what: format!("top_p {p} must be in (0, 1]"),
                });
            }
        }
        Ok(())
    }
}

/// A seeded sampling stream: one [`Sampler`] per generation request.
#[derive(Debug, Clone)]
pub struct Sampler {
    cfg: SamplerConfig,
    rng: StdRng,
}

impl Sampler {
    /// Creates a sampler from a config (seeding the RNG).
    ///
    /// # Errors
    ///
    /// Returns an error for `top_k == 0` or `top_p` outside `(0, 1]`.
    pub fn new(cfg: &SamplerConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Sampler {
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(cfg.seed),
        })
    }

    /// The configuration this stream was built from.
    #[must_use]
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// Samples one token id from a logits row.
    ///
    /// # Errors
    ///
    /// Returns an error on an empty logits row.
    pub fn sample(&mut self, logits: &[f32]) -> Result<u32> {
        if logits.is_empty() {
            return Err(Error::InvalidConfig {
                what: "cannot sample from empty logits".to_owned(),
            });
        }
        if self.cfg.temperature <= 0.0 {
            return Ok(argmax(logits));
        }
        // Exactly one draw per non-greedy step, taken up front so the
        // stream-position contract holds on every path below (including
        // the degenerate-logits fallback).
        let u01: f64 = self.rng.gen();

        // Candidate ids ordered by logit descending, index ascending on
        // ties (a total order, so the candidate list is deterministic).
        // With top-k, partition the k best first so only k entries are
        // sorted — this runs once per decoded token over the full
        // vocabulary, and V log V sorting would dwarf the sampling work.
        let desc = |&a: &usize, &b: &usize| cmp_logit(logits[b], logits[a]).then_with(|| a.cmp(&b));
        let mut order: Vec<usize> = (0..logits.len()).collect();
        match self.cfg.top_k {
            Some(k) if k < order.len() => {
                let k = k.max(1);
                order.select_nth_unstable_by(k - 1, desc);
                order.truncate(k);
                order.sort_by(desc);
            }
            _ => order.sort_by(desc),
        }

        // Max-subtracted softmax at the configured temperature.
        let t = self.cfg.temperature;
        let top = logits[order[0]];
        let mut probs: Vec<f64> = order
            .iter()
            .map(|&i| f64::from(((logits[i] - top) / t).exp()))
            .collect();
        let mut mass: f64 = probs.iter().sum();
        if !mass.is_finite() || mass <= 0.0 {
            // Degenerate logits (all -inf / NaN): fall back to argmax.
            // The draw above already happened, so stream position stays
            // data-independent.
            return Ok(argmax(logits));
        }

        if let Some(p) = self.cfg.top_p {
            let target = f64::from(p) * mass;
            let mut cum = 0.0;
            let mut keep = probs.len();
            for (i, &pr) in probs.iter().enumerate() {
                cum += pr;
                if cum >= target {
                    keep = i + 1;
                    break;
                }
            }
            probs.truncate(keep);
            order.truncate(keep);
            mass = probs.iter().sum();
        }

        let u: f64 = u01 * mass;
        let mut cum = 0.0;
        for (i, &pr) in probs.iter().enumerate() {
            cum += pr;
            if u < cum {
                return Ok(order[i] as u32);
            }
        }
        // Floating-point round-off on the last bucket.
        Ok(*order.last().expect("non-empty candidates") as u32)
    }
}

/// Argmax with lowest-index tie-breaking; NaN logits lose to everything.
fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if cmp_logit(v, logits[best]) == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best as u32
}

/// Total order on logit values: NaN sorts below every real value.
fn cmp_logit(a: f32, b: f32) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.partial_cmp(&b).expect("non-NaN logits"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Vec<f32> {
        vec![0.1, 2.5, -1.0, 2.5, 0.7, -3.0]
    }

    #[test]
    fn greedy_is_argmax_with_low_index_ties() {
        let mut s = Sampler::new(&SamplerConfig::greedy()).unwrap();
        // Indices 1 and 3 tie at 2.5; the lower id wins.
        assert_eq!(s.sample(&logits()).unwrap(), 1);
        assert_eq!(s.sample(&[f32::NAN, 0.0, -1.0]).unwrap(), 1);
    }

    #[test]
    fn equal_seeds_give_equal_streams() {
        let cfg = SamplerConfig::top_k(3, 0.8, 42);
        let mut a = Sampler::new(&cfg).unwrap();
        let mut b = Sampler::new(&cfg).unwrap();
        for _ in 0..64 {
            assert_eq!(a.sample(&logits()).unwrap(), b.sample(&logits()).unwrap());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Sampler::new(&SamplerConfig::temperature(1.0, 1)).unwrap();
        let mut b = Sampler::new(&SamplerConfig::temperature(1.0, 2)).unwrap();
        let sa: Vec<u32> = (0..32).map(|_| a.sample(&logits()).unwrap()).collect();
        let sb: Vec<u32> = (0..32).map(|_| b.sample(&logits()).unwrap()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn top_k_restricts_support() {
        let mut s = Sampler::new(&SamplerConfig::top_k(2, 1.0, 7)).unwrap();
        for _ in 0..128 {
            let t = s.sample(&logits()).unwrap();
            // Top-2 candidates are ids 1 and 3 (both 2.5).
            assert!(t == 1 || t == 3, "token {t} outside top-2");
        }
    }

    #[test]
    fn top_p_restricts_support() {
        // One dominant logit: a small nucleus keeps only it.
        let l = vec![0.0, 10.0, 0.0, 0.0];
        let mut s = Sampler::new(&SamplerConfig::top_p(0.5, 1.0, 9)).unwrap();
        for _ in 0..64 {
            assert_eq!(s.sample(&l).unwrap(), 1);
        }
    }

    #[test]
    fn temperature_flattens_distribution() {
        // At very low temperature, sampling collapses onto the (untied)
        // argmax.
        let peaked = vec![0.1, 2.5, -1.0, 1.5, 0.7, -3.0];
        let mut cold = Sampler::new(&SamplerConfig::temperature(0.05, 3)).unwrap();
        for _ in 0..64 {
            assert_eq!(cold.sample(&peaked).unwrap(), 1);
        }
        // At high temperature, low-logit tokens appear too.
        let mut hot = Sampler::new(&SamplerConfig::temperature(50.0, 3)).unwrap();
        let seen: std::collections::HashSet<u32> =
            (0..256).map(|_| hot.sample(&logits()).unwrap()).collect();
        assert!(seen.len() >= 4, "only saw {seen:?}");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Sampler::new(&SamplerConfig::top_k(0, 1.0, 0)).is_err());
        assert!(Sampler::new(&SamplerConfig::top_p(0.0, 1.0, 0)).is_err());
        assert!(Sampler::new(&SamplerConfig::top_p(1.5, 1.0, 0)).is_err());
        let mut s = Sampler::new(&SamplerConfig::greedy()).unwrap();
        assert!(s.sample(&[]).is_err());
    }

    #[test]
    fn degenerate_logits_consume_exactly_one_draw() {
        // The stream-position contract must hold even on the
        // argmax fallback for all-(-inf) logits: one draw, like any
        // other sampled step.
        let cfg = SamplerConfig::temperature(1.0, 21);
        let mut reference = Sampler::new(&cfg).unwrap();
        let _ = reference.sample(&logits()).unwrap();
        let second = reference.sample(&logits()).unwrap();

        let mut mixed = Sampler::new(&cfg).unwrap();
        let degenerate = vec![f32::NEG_INFINITY; 6];
        assert_eq!(mixed.sample(&degenerate).unwrap(), 0);
        assert_eq!(
            mixed.sample(&logits()).unwrap(),
            second,
            "degenerate step must advance the stream by exactly one draw"
        );
    }

    #[test]
    fn top_k_partition_matches_masked_full_sort() {
        // The select-then-sort fast path (k < vocab) must produce the
        // same distribution as sampling the full vocabulary with
        // everything outside the top-k masked to -inf: same seed, same
        // stream.
        let l = logits();
        // Top-2 of `logits()` are ids 1 and 3 (both 2.5).
        let mut masked_logits = vec![f32::NEG_INFINITY; l.len()];
        masked_logits[1] = l[1];
        masked_logits[3] = l[3];
        let mut partitioned = Sampler::new(&SamplerConfig::top_k(2, 1.0, 31)).unwrap();
        let mut masked = Sampler::new(&SamplerConfig::temperature(1.0, 31)).unwrap();
        for _ in 0..64 {
            assert_eq!(
                partitioned.sample(&l).unwrap(),
                masked.sample(&masked_logits).unwrap()
            );
        }
    }

    #[test]
    fn greedy_consumes_no_randomness() {
        // A greedy stream interleaved with sampling must not perturb the
        // sampling stream: greedy draws nothing from the RNG.
        let cfg = SamplerConfig::temperature(1.0, 11);
        let mut pure = Sampler::new(&cfg).unwrap();
        let expected: Vec<u32> = (0..16).map(|_| pure.sample(&logits()).unwrap()).collect();

        let mut mixed = Sampler::new(&cfg).unwrap();
        let mut greedy = Sampler::new(&SamplerConfig::greedy()).unwrap();
        let got: Vec<u32> = (0..16)
            .map(|_| {
                let _ = greedy.sample(&logits()).unwrap();
                mixed.sample(&logits()).unwrap()
            })
            .collect();
        assert_eq!(expected, got);
    }
}
