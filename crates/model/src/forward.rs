//! The reference decoder-only transformer forward pass.
//!
//! This is the numeric-plane workhorse: a real (small-scale) transformer
//! whose linear layers are delegated to a [`LinearBackend`], and whose
//! prefill can run either whole-prompt or in fixed-size chunks. Chunked
//! prefill with the KV cache is bit-compatible with whole-prompt prefill —
//! the invariant that makes llm.npu's chunk-sharing graphs (§3.2) sound —
//! and the tests at the bottom pin that property down.

use llmnpu_tensor::{norm, ops, rope, Tensor};

use crate::backend::{CalibrationSet, LinearBackend, LinearKind};
use crate::config::{ActKind, ModelConfig, NormKind};
use crate::kv::{KvCache, PagedKvCache};
use crate::sample::{Sampler, SamplerConfig};
use crate::weights::ModelWeights;
use crate::{Error, Result};

/// Norm epsilon used throughout.
const EPS: f32 = 1e-5;

/// A runnable transformer: weights + a linear backend.
pub struct Transformer<'a> {
    weights: &'a ModelWeights,
    backend: &'a dyn LinearBackend,
    /// Cached all-zero beta for the RMS-normed LM head: `logits` runs
    /// once per decode step, so the decode hot loop must not re-allocate
    /// a zero vector per token.
    zero_beta: Vec<f32>,
}

impl<'a> Transformer<'a> {
    /// Binds weights to a backend.
    #[must_use]
    pub fn new(weights: &'a ModelWeights, backend: &'a dyn LinearBackend) -> Self {
        let zero_beta = vec![0.0; weights.config.hidden];
        Transformer {
            weights,
            backend,
            zero_beta,
        }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.weights.config
    }

    /// Whether the bound backend computes each activation row
    /// independently of its batchmates (see
    /// [`LinearBackend::row_wise`]). Batched decode and prefix sharing
    /// are bit-transparent only for row-wise backends.
    #[must_use]
    pub fn backend_row_wise(&self) -> bool {
        self.backend.row_wise()
    }

    /// Embeds a token sequence into `[seq, hidden]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TokenOutOfRange`] for ids outside the vocabulary.
    pub fn embed(&self, tokens: &[u32]) -> Result<Tensor<f32>> {
        let vocab = self.config().vocab;
        let h = self.config().hidden;
        let mut data = Vec::with_capacity(tokens.len() * h);
        for &t in tokens {
            if t as usize >= vocab {
                return Err(Error::TokenOutOfRange { token: t, vocab });
            }
            data.extend_from_slice(self.weights.embedding.row(t as usize));
        }
        Ok(Tensor::from_vec(data, [tokens.len(), h])?)
    }

    /// Prefills `tokens` in one pass, appending K/V to `cache`.
    /// Returns the final hidden states `[seq, hidden]`.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid tokens or backend failures.
    pub fn prefill(&self, tokens: &[u32], cache: &mut KvCache) -> Result<Tensor<f32>> {
        let start = cache.seq_len();
        let x = self.embed(tokens)?;
        self.forward_hidden(x, start, cache, None)
    }

    /// Prefills `tokens` in fixed-size chunks, processed causally
    /// (§3.2's chunk-wise prefill). Produces the same final hidden states
    /// as [`Transformer::prefill`].
    ///
    /// # Errors
    ///
    /// Returns an error on invalid tokens, a zero chunk length, or backend
    /// failures.
    pub fn prefill_chunked(
        &self,
        tokens: &[u32],
        chunk_len: usize,
        cache: &mut KvCache,
    ) -> Result<Tensor<f32>> {
        if chunk_len == 0 {
            return Err(Error::InvalidConfig {
                what: "chunk length must be non-zero".to_owned(),
            });
        }
        let h = self.config().hidden;
        let mut out = Vec::with_capacity(tokens.len() * h);
        for chunk in tokens.chunks(chunk_len) {
            let hidden = self.prefill(chunk, cache)?;
            out.extend_from_slice(hidden.as_slice());
        }
        Ok(Tensor::from_vec(out, [tokens.len(), h])?)
    }

    /// Runs one decode step for `token`, returning logits `[1, vocab]`.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid tokens or backend failures.
    pub fn decode_step(&self, token: u32, cache: &mut KvCache) -> Result<Tensor<f32>> {
        let hidden = self.prefill(&[token], cache)?;
        self.logits(&hidden)
    }

    /// Prefills `tokens` starting at absolute position `start_pos`,
    /// writing K/V into a **paged** cache and reading attention through
    /// its block table. The composition of stage functions is identical
    /// to [`Transformer::prefill`], and the paged attention read is
    /// bit-identical to the contiguous one, so for any backend this
    /// produces the same hidden states as the contiguous path with the
    /// same chunking.
    ///
    /// A non-zero `start_pos` resumes after an already-populated prefix
    /// (prefix sharing: `kv`'s leading blocks hold another request's
    /// identical prompt prefix).
    ///
    /// # Errors
    ///
    /// Returns an error on invalid tokens, backend failures, or if the
    /// paged cache's reserved capacity cannot hold
    /// `start_pos + tokens.len()` positions.
    pub fn prefill_paged(
        &self,
        tokens: &[u32],
        start_pos: usize,
        kv: &mut PagedKvCache,
    ) -> Result<Tensor<f32>> {
        let seq = tokens.len();
        let layers = self.config().layers;
        let mut h = self.embed(tokens)?;
        for layer in 0..layers {
            let a_in = self.stage_attn_pre(layer, &h)?;
            let (q, k, v) = self.stage_qkv(layer, &a_in, start_pos)?;
            for r in 0..seq {
                kv.write_position(layer, start_pos + r, k.row(r), v.row(r))?;
            }
            let attn = self.stage_attention_paged(layer, &q, kv, start_pos + seq, start_pos)?;
            h = self.stage_attn_out(layer, &h, &attn)?;
            let f_in = self.stage_ffn_pre(layer, &h)?;
            let ffn_mid = self.stage_ffn_mid(layer, &f_in)?;
            h = self.stage_ffn_down(layer, &h, &ffn_mid)?;
        }
        Ok(h)
    }

    /// One decode step for a **batch** of concurrent requests: embeds
    /// the B previous tokens as one `[B, hidden]` activation so every
    /// linear site runs a single `m = B` GEMM instead of B separate
    /// GEMVs, while RoPE, the KV append, and attention stay per-request
    /// (each entry rotates at its own absolute position and attends over
    /// its own paged history).
    ///
    /// For a **row-wise** backend (see [`LinearBackend::row_wise`]) row
    /// `i` of the result is bit-identical to running entry `i`'s decode
    /// step alone — stacking rows into one GEMM never changes a float of
    /// any row. Returns the `[B, hidden]` post-forward hidden states
    /// (the LM-head inputs for the *next* sampling step).
    ///
    /// # Errors
    ///
    /// Returns an error on an empty batch, invalid tokens, backend
    /// failures, or paged-cache addressing failures.
    pub fn decode_forward_batch(
        &self,
        entries: &mut [PagedDecodeEntry<'_>],
    ) -> Result<Tensor<f32>> {
        if entries.is_empty() {
            return Err(Error::InvalidConfig {
                what: "batched decode needs at least one entry".to_owned(),
            });
        }
        let cfg = self.config();
        let (layers, heads, kv_heads, hd) = (cfg.layers, cfg.heads, cfg.kv_heads, cfg.head_dim);
        let tokens: Vec<u32> = entries.iter().map(|e| e.token).collect();
        let positions: Vec<usize> = entries.iter().map(|e| e.pos).collect();
        let mut h = self.embed(&tokens)?;
        for layer in 0..layers {
            let a_in = self.stage_attn_pre(layer, &h)?;
            let mains = self.stage_qkv_main(layer, &a_in)?;
            let shadows = self.stage_qkv_shadow(layer, &a_in)?;
            let (mut q, mut k, v) = self.stage_qkv_merge(mains, shadows)?;
            rope_rows(&mut q, heads, hd, &positions)?;
            rope_rows(&mut k, kv_heads, hd, &positions)?;
            let mut attn = Tensor::zeros([entries.len(), heads * hd]);
            for (i, e) in entries.iter_mut().enumerate() {
                e.kv.write_position(layer, e.pos, k.row(i), v.row(i))?;
                let q_i = Tensor::from_vec(q.row(i).to_vec(), [1, heads * hd])?;
                let a_i = self.stage_attention_paged(layer, &q_i, e.kv, e.pos + 1, e.pos)?;
                attn.row_mut(i).copy_from_slice(a_i.row(0));
            }
            h = self.stage_attn_out(layer, &h, &attn)?;
            let f_in = self.stage_ffn_pre(layer, &h)?;
            let ffn_mid = self.stage_ffn_mid(layer, &f_in)?;
            h = self.stage_ffn_down(layer, &h, &ffn_mid)?;
        }
        Ok(h)
    }

    /// Autoregressive generation: prefills `prompt` (chunked when
    /// `chunk_len` is given), then samples `max_new_tokens` tokens with a
    /// fresh seeded [`Sampler`], forwarding each sampled token through
    /// the decode path to extend the KV cache.
    ///
    /// This is the single-stream reference the continuous-batching
    /// scheduler in `llmnpu-core` is held bit-identical to: it performs
    /// exactly one LM-head projection + sample per emitted token and one
    /// decode forward per *consumed* token (the final sampled token is
    /// never forwarded), in program order.
    ///
    /// # Errors
    ///
    /// Returns an error on an empty prompt, invalid tokens, an invalid
    /// sampler configuration, or backend failures.
    pub fn generate(
        &self,
        prompt: &[u32],
        chunk_len: Option<usize>,
        max_new_tokens: usize,
        sampler_cfg: &SamplerConfig,
    ) -> Result<Vec<u32>> {
        if prompt.is_empty() {
            return Err(Error::InvalidConfig {
                what: "cannot generate from an empty prompt".to_owned(),
            });
        }
        let mut cache = KvCache::new(self.config().layers);
        let hidden = match chunk_len {
            Some(c) => self.prefill_chunked(prompt, c, &mut cache)?,
            None => self.prefill(prompt, &mut cache)?,
        };
        let (rows, h) = hidden.matrix_dims();
        let mut last = Tensor::from_vec(hidden.row(rows - 1).to_vec(), [1, h])?;
        let mut sampler = Sampler::new(sampler_cfg)?;
        let mut out = Vec::with_capacity(max_new_tokens);
        for step in 0..max_new_tokens {
            let logits = self.logits(&last)?;
            let token = sampler.sample(logits.row(0))?;
            out.push(token);
            if step + 1 < max_new_tokens {
                last = self.prefill(&[token], &mut cache)?;
            }
        }
        Ok(out)
    }

    /// Projects hidden states to logits through the LM head.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn logits(&self, hidden: &Tensor<f32>) -> Result<Tensor<f32>> {
        let normed = self.apply_norm(hidden, &self.weights.final_norm_gamma, &self.zero_beta)?;
        // The LM head is the single largest f32 GEMM in the numeric plane
        // ([seq, hidden] × [hidden, vocab]); run it on the row-partitioned
        // blocked kernel. Thread count never changes the bits produced.
        Ok(llmnpu_tensor::gemm::matmul_f32_threaded(
            &normed,
            &self.weights.head,
            crate::backend::host_threads(),
        )?)
    }

    /// Final hidden state of the last token after a prefill (the features
    /// the accuracy proxy tasks read).
    ///
    /// # Errors
    ///
    /// Returns an error on empty input or any forward failure.
    pub fn last_hidden(&self, tokens: &[u32], chunk_len: Option<usize>) -> Result<Vec<f32>> {
        if tokens.is_empty() {
            return Err(Error::InvalidConfig {
                what: "empty token sequence".to_owned(),
            });
        }
        let mut cache = KvCache::new(self.config().layers);
        let hidden = match chunk_len {
            Some(c) => self.prefill_chunked(tokens, c, &mut cache)?,
            None => self.prefill(tokens, &mut cache)?,
        };
        let (rows, _) = hidden.matrix_dims();
        Ok(hidden.row(rows - 1).to_vec())
    }

    fn apply_norm(&self, x: &Tensor<f32>, gamma: &[f32], beta: &[f32]) -> Result<Tensor<f32>> {
        Ok(match self.config().norm {
            NormKind::Rms => norm::rms_norm(x, gamma, EPS)?,
            NormKind::Layer => norm::layer_norm(x, gamma, beta, EPS)?,
        })
    }

    /// Core forward over already-embedded hidden states.
    ///
    /// `recorder`, when present, captures the input activation of every
    /// linear site — the calibration hook used to build quantized backends.
    ///
    /// The body is a straight-line composition of the public `stage_*`
    /// functions below — the same closures the out-of-order prefill
    /// executor dispatches — so the sequential and DAG-executed paths can
    /// never numerically drift: they *are* the same code.
    fn forward_hidden(
        &self,
        mut h: Tensor<f32>,
        start_pos: usize,
        cache: &mut KvCache,
        mut recorder: Option<&mut CalibrationSet>,
    ) -> Result<Tensor<f32>> {
        let layers = self.config().layers;
        for layer in 0..layers {
            // --- Attention block ---
            let a_in = self.stage_attn_pre(layer, &h)?;
            if let Some(rec) = recorder.as_deref_mut() {
                for kind in [LinearKind::Q, LinearKind::K, LinearKind::V] {
                    rec.entry((layer, kind)).or_default().push(a_in.clone());
                }
            }
            let (q, k, v) = self.stage_qkv(layer, &a_in, start_pos)?;

            cache.layer_mut(layer)?.append(&k, &v)?;
            let layer_kv = cache.layer(layer)?;
            let keys = layer_kv.keys_tensor()?;
            let values = layer_kv.values_tensor()?;

            let attn = self.stage_attention(&q, keys, values, start_pos)?;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.entry((layer, LinearKind::O))
                    .or_default()
                    .push(attn.clone());
            }
            h = self.stage_attn_out(layer, &h, &attn)?;

            // --- FFN block ---
            let f_in = self.stage_ffn_pre(layer, &h)?;
            if let Some(rec) = recorder.as_deref_mut() {
                if self.weights.layers[layer].w_gate.is_some() {
                    rec.entry((layer, LinearKind::Gate))
                        .or_default()
                        .push(f_in.clone());
                }
                rec.entry((layer, LinearKind::Up))
                    .or_default()
                    .push(f_in.clone());
            }
            let ffn_mid = self.stage_ffn_mid(layer, &f_in)?;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.entry((layer, LinearKind::Down))
                    .or_default()
                    .push(ffn_mid.clone());
            }
            h = self.stage_ffn_down(layer, &h, &ffn_mid)?;
        }
        Ok(h)
    }

    // --- Schedulable stage functions -----------------------------------
    //
    // One public function per prefill-DAG stage (llmnpu-graph's six-stage
    // decomposition, collapsed to the numeric boundaries): the sequential
    // `forward_hidden` composes them in program order, and the
    // out-of-order executor in `llmnpu-sched` wraps each in a task
    // closure and dispatches them as dependencies resolve. Shadow-host
    // stages additionally split into `_main` / `_shadow` / finish parts
    // so the quantized main path and the float shadow path can run on
    // different lanes; each fused stage is *defined as* that composition,
    // so split and fused execution are bit-identical by construction.

    /// `AttnPre`: the pre-attention norm.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn stage_attn_pre(&self, layer: usize, h: &Tensor<f32>) -> Result<Tensor<f32>> {
        let lw = &self.weights.layers[layer];
        self.apply_norm(h, &lw.attn_norm_gamma, &lw.attn_norm_beta)
    }

    /// `QkvLinear` + RoPE, fused: full Q/K/V projections at the chunk's
    /// absolute positions, ready for the cache and attention.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or backend failure.
    pub fn stage_qkv(
        &self,
        layer: usize,
        a_in: &Tensor<f32>,
        start_pos: usize,
    ) -> Result<(Tensor<f32>, Tensor<f32>, Tensor<f32>)> {
        let mains = self.stage_qkv_main(layer, a_in)?;
        let shadows = self.stage_qkv_shadow(layer, a_in)?;
        self.stage_qkv_finish(mains, shadows, start_pos)
    }

    /// The main (quantized-lane) halves of the Q/K/V projections.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or backend failure.
    pub fn stage_qkv_main(&self, layer: usize, a_in: &Tensor<f32>) -> Result<QkvMains> {
        Ok(QkvMains {
            q: self.backend.linear_main(layer, LinearKind::Q, a_in)?,
            k: self.backend.linear_main(layer, LinearKind::K, a_in)?,
            v: self.backend.linear_main(layer, LinearKind::V, a_in)?,
        })
    }

    /// The shadow (float-lane) halves of the Q/K/V projections — `None`
    /// per site when there is nothing to merge.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn stage_qkv_shadow(&self, layer: usize, a_in: &Tensor<f32>) -> Result<QkvShadows> {
        Ok(QkvShadows {
            q: self.backend.linear_shadow(layer, LinearKind::Q, a_in)?,
            k: self.backend.linear_shadow(layer, LinearKind::K, a_in)?,
            v: self.backend.linear_shadow(layer, LinearKind::V, a_in)?,
        })
    }

    /// Merges the QKV halves (the §3.3 CPU→NPU merge) **without** the
    /// position encoding — the pre-RoPE half of
    /// [`Transformer::stage_qkv_finish`], split out so batched decode
    /// can rotate each row at its own absolute position.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn stage_qkv_merge(
        &self,
        mains: QkvMains,
        shadows: QkvShadows,
    ) -> Result<(Tensor<f32>, Tensor<f32>, Tensor<f32>)> {
        let QkvMains {
            mut q,
            mut k,
            mut v,
        } = mains;
        if let Some(s) = &shadows.q {
            crate::backend::merge_linear(&mut q, s)?;
        }
        if let Some(s) = &shadows.k {
            crate::backend::merge_linear(&mut k, s)?;
        }
        if let Some(s) = &shadows.v {
            crate::backend::merge_linear(&mut v, s)?;
        }
        Ok((q, k, v))
    }

    /// Merges the QKV halves and applies RoPE — the §3.3 CPU→NPU merge
    /// followed by the position encoding.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn stage_qkv_finish(
        &self,
        mains: QkvMains,
        shadows: QkvShadows,
        start_pos: usize,
    ) -> Result<(Tensor<f32>, Tensor<f32>, Tensor<f32>)> {
        let cfg = self.config();
        let (q, k, v) = self.stage_qkv_merge(mains, shadows)?;
        let (seq, _) = q.matrix_dims();
        let q = rope_heads(&q, seq, cfg.heads, cfg.head_dim, start_pos)?;
        let k = rope_heads(&k, seq, cfg.kv_heads, cfg.head_dim, start_pos)?;
        Ok((q, k, v))
    }

    /// `Attention`: scores, causal mask, softmax, A·V over the cached
    /// keys/values visible to this chunk.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn stage_attention(
        &self,
        q: &Tensor<f32>,
        keys: &Tensor<f32>,
        values: &Tensor<f32>,
        start_pos: usize,
    ) -> Result<Tensor<f32>> {
        attention(q, keys, values, self.config(), start_pos)
    }

    /// [`Transformer::stage_attention`] reading K/V **through a block
    /// table**: the first `visible_rows` positions of `kv`'s layer
    /// `layer`, walked page by page — no per-row gather, and
    /// bit-identical to the contiguous path by construction (both run
    /// [`attention_over_pages`]).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or if `visible_rows` exceeds
    /// the table's reserved capacity.
    pub fn stage_attention_paged(
        &self,
        layer: usize,
        q: &Tensor<f32>,
        kv: &PagedKvCache,
        visible_rows: usize,
        start_pos: usize,
    ) -> Result<Tensor<f32>> {
        kv.view(layer, visible_rows, |pages_k, pages_v| {
            attention_over_pages(q, pages_k, pages_v, self.config(), start_pos)
        })?
    }

    /// [`Transformer::stage_attention_paged`] over a detached
    /// [`crate::kv::PagedKvReader`] snapshot — the executor's read path, so a long
    /// attention walk never holds the lock that owns the request's
    /// cache (concurrent stage tasks of the same request would
    /// serialize on it otherwise).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or if `visible_rows` exceeds
    /// the snapshot's reserved capacity.
    pub fn stage_attention_reader(
        &self,
        layer: usize,
        q: &Tensor<f32>,
        kv: &crate::kv::PagedKvReader,
        visible_rows: usize,
        start_pos: usize,
    ) -> Result<Tensor<f32>> {
        kv.view(layer, visible_rows, |pages_k, pages_v| {
            attention_over_pages(q, pages_k, pages_v, self.config(), start_pos)
        })?
    }

    /// `OProj`: output projection plus residual add.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or backend failure.
    pub fn stage_attn_out(
        &self,
        layer: usize,
        h: &Tensor<f32>,
        attn: &Tensor<f32>,
    ) -> Result<Tensor<f32>> {
        let attn_out = self.backend.linear(layer, LinearKind::O, attn)?;
        Ok(ops::add(h, &attn_out)?)
    }

    /// `FfnPre`: the post-attention norm.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn stage_ffn_pre(&self, layer: usize, h: &Tensor<f32>) -> Result<Tensor<f32>> {
        let lw = &self.weights.layers[layer];
        self.apply_norm(h, &lw.ffn_norm_gamma, &lw.ffn_norm_beta)
    }

    /// The FFN mid section (gate/up projections + activation), fused.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or backend failure.
    pub fn stage_ffn_mid(&self, layer: usize, f_in: &Tensor<f32>) -> Result<Tensor<f32>> {
        let mains = self.stage_ffn_mid_main(layer, f_in)?;
        let shadows = self.stage_ffn_mid_shadow(layer, f_in)?;
        self.stage_ffn_mid_finish(mains, shadows)
    }

    /// The main halves of the FFN gate/up projections.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or backend failure.
    pub fn stage_ffn_mid_main(&self, layer: usize, f_in: &Tensor<f32>) -> Result<FfnMains> {
        let gate = if self.config().act.gated() {
            Some(self.backend.linear_main(layer, LinearKind::Gate, f_in)?)
        } else {
            None
        };
        Ok(FfnMains {
            gate,
            up: self.backend.linear_main(layer, LinearKind::Up, f_in)?,
        })
    }

    /// The shadow halves of the FFN gate/up projections.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn stage_ffn_mid_shadow(&self, layer: usize, f_in: &Tensor<f32>) -> Result<FfnShadows> {
        let gate = if self.config().act.gated() {
            self.backend.linear_shadow(layer, LinearKind::Gate, f_in)?
        } else {
            None
        };
        Ok(FfnShadows {
            gate,
            up: self.backend.linear_shadow(layer, LinearKind::Up, f_in)?,
        })
    }

    /// Merges the FFN halves and applies the activation.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn stage_ffn_mid_finish(
        &self,
        mains: FfnMains,
        shadows: FfnShadows,
    ) -> Result<Tensor<f32>> {
        let FfnMains { gate, mut up } = mains;
        let mut gate = gate;
        if let (Some(g), Some(s)) = (gate.as_mut(), &shadows.gate) {
            crate::backend::merge_linear(g, s)?;
        }
        if let Some(s) = &shadows.up {
            crate::backend::merge_linear(&mut up, s)?;
        }
        Ok(match self.config().act {
            ActKind::SiluGated => {
                let gate = gate.ok_or(Error::InvalidConfig {
                    what: "gated activation without gate projection".to_owned(),
                })?;
                ops::mul(&ops::silu(&gate), &up)?
            }
            ActKind::GeluGated => {
                let gate = gate.ok_or(Error::InvalidConfig {
                    what: "gated activation without gate projection".to_owned(),
                })?;
                ops::mul(&ops::gelu(&gate), &up)?
            }
            ActKind::Gelu => ops::gelu(&up),
        })
    }

    /// The FFN down projection plus residual add (the tail of the `Ffn`
    /// stage).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or backend failure.
    pub fn stage_ffn_down(
        &self,
        layer: usize,
        h: &Tensor<f32>,
        ffn_mid: &Tensor<f32>,
    ) -> Result<Tensor<f32>> {
        let ffn_out = self.backend.linear(layer, LinearKind::Down, ffn_mid)?;
        Ok(ops::add(h, &ffn_out)?)
    }

    /// Runs a calibration pass: prefills every prompt with this backend and
    /// records the input activation of every linear site.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid tokens or backend failures.
    pub fn calibrate(&self, prompts: &[Vec<u32>]) -> Result<CalibrationSet> {
        let mut set = CalibrationSet::new();
        for prompt in prompts {
            let mut cache = KvCache::new(self.config().layers);
            let x = self.embed(prompt)?;
            self.forward_hidden(x, 0, &mut cache, Some(&mut set))?;
        }
        Ok(set)
    }
}

/// The pre-merge main (quantized-lane) halves of a QKV stage.
#[derive(Debug, Clone)]
pub struct QkvMains {
    /// Query projection main half.
    pub q: Tensor<f32>,
    /// Key projection main half.
    pub k: Tensor<f32>,
    /// Value projection main half.
    pub v: Tensor<f32>,
}

/// The optional shadow (float-lane) halves of a QKV stage.
#[derive(Debug, Clone, Default)]
pub struct QkvShadows {
    /// Query shadow correction, if any.
    pub q: Option<Tensor<f32>>,
    /// Key shadow correction, if any.
    pub k: Option<Tensor<f32>>,
    /// Value shadow correction, if any.
    pub v: Option<Tensor<f32>>,
}

/// The pre-merge main halves of an FFN mid section.
#[derive(Debug, Clone)]
pub struct FfnMains {
    /// Gate projection main half (`None` for ungated FFNs).
    pub gate: Option<Tensor<f32>>,
    /// Up projection main half.
    pub up: Tensor<f32>,
}

/// The optional shadow halves of an FFN mid section.
#[derive(Debug, Clone, Default)]
pub struct FfnShadows {
    /// Gate shadow correction, if any.
    pub gate: Option<Tensor<f32>>,
    /// Up shadow correction, if any.
    pub up: Option<Tensor<f32>>,
}

/// One request's slot in a batched decode step: the token to forward,
/// the absolute position it occupies (the request's KV length before
/// this step), and the request's paged cache.
#[derive(Debug)]
pub struct PagedDecodeEntry<'a> {
    /// Previously sampled token to run through the decode forward.
    pub token: u32,
    /// Absolute position `token` lands at (= tokens cached so far).
    pub pos: usize,
    /// The request's paged KV cache.
    pub kv: &'a mut PagedKvCache,
}

/// Applies RoPE to `[batch, heads*head_dim]` where row `r` rotates at
/// its own absolute position `positions[r]` — the batched-decode
/// counterpart of [`rope_heads`] (which rotates consecutive rows of one
/// sequence). Row `r` gets exactly the floats `rope_heads` would give a
/// single-row tensor at `start_pos = positions[r]`.
fn rope_rows(
    x: &mut Tensor<f32>,
    heads: usize,
    head_dim: usize,
    positions: &[usize],
) -> Result<()> {
    // One scratch for every (row, head) — this runs per decode step,
    // which must not allocate per head (cf. `zero_beta`).
    let mut scratch = Tensor::zeros([1, head_dim]);
    for (r, &pos) in positions.iter().enumerate() {
        for head in 0..heads {
            scratch
                .row_mut(0)
                .copy_from_slice(&x.row(r)[head * head_dim..(head + 1) * head_dim]);
            rope::apply_rope_inplace(&mut scratch, pos, rope::DEFAULT_THETA)?;
            x.row_mut(r)[head * head_dim..(head + 1) * head_dim].copy_from_slice(scratch.row(0));
        }
    }
    Ok(())
}

/// Applies RoPE to `[seq, heads*head_dim]` per head slice.
fn rope_heads(
    x: &Tensor<f32>,
    seq: usize,
    heads: usize,
    head_dim: usize,
    start_pos: usize,
) -> Result<Tensor<f32>> {
    let mut out = x.clone();
    for head in 0..heads {
        let mut slice = Tensor::zeros([seq, head_dim]);
        for r in 0..seq {
            let src = &x.row(r)[head * head_dim..(head + 1) * head_dim];
            slice.row_mut(r).copy_from_slice(src);
        }
        rope::apply_rope_inplace(&mut slice, start_pos, rope::DEFAULT_THETA)?;
        for r in 0..seq {
            out.row_mut(r)[head * head_dim..(head + 1) * head_dim].copy_from_slice(slice.row(r));
        }
    }
    Ok(out)
}

/// Multi-head attention with GQA/MQA head sharing and chunk-offset causal
/// masking. `q` is `[seq, heads*head_dim]`; `keys`/`values` are
/// `[kv_len, kv_heads*head_dim]` from the cache. A contiguous cache is
/// just the single-page case of [`attention_over_pages`].
fn attention(
    q: &Tensor<f32>,
    keys: &Tensor<f32>,
    values: &Tensor<f32>,
    cfg: &ModelConfig,
    start_pos: usize,
) -> Result<Tensor<f32>> {
    attention_over_pages(q, &[keys.as_slice()], &[values.as_slice()], cfg, start_pos)
}

/// Multi-head attention over **paged** K/V storage: `pages_k[i]` /
/// `pages_v[i]` each hold a whole page of `rows_i × kv_dim` contiguous
/// elements (`kv_dim = kv_heads × head_dim`), covering cache positions in
/// order. The inner loops walk each page with unit stride — no per-row
/// gather — and visit positions in exactly the order the contiguous path
/// does, so a contiguous cache (one big page) and any paging of the same
/// rows produce **bit-identical** outputs: same dots, same adds, same
/// order.
///
/// # Errors
///
/// Returns an error if the page widths are inconsistent with `cfg`.
pub fn attention_over_pages(
    q: &Tensor<f32>,
    pages_k: &[&[f32]],
    pages_v: &[&[f32]],
    cfg: &ModelConfig,
    start_pos: usize,
) -> Result<Tensor<f32>> {
    let (seq, _) = q.matrix_dims();
    let hd = cfg.head_dim;
    let kv_dim = cfg.kv_heads * hd;
    let group = cfg.heads / cfg.kv_heads;
    let scale = 1.0 / (hd as f32).sqrt();

    let mut kv_len = 0usize;
    for (pk, pv) in pages_k.iter().zip(pages_v) {
        if pk.len() != pv.len() || pk.len() % kv_dim != 0 {
            return Err(Error::Tensor(llmnpu_tensor::Error::InvalidDimension {
                op: "attention_over_pages",
                what: format!(
                    "page of {} / {} elements not a multiple of kv_dim {kv_dim}",
                    pk.len(),
                    pv.len()
                ),
            }));
        }
        kv_len += pk.len() / kv_dim;
    }

    let mut out = Tensor::zeros([seq, cfg.heads * hd]);
    for head in 0..cfg.heads {
        let kv_head = head / group;
        let col0 = kv_head * hd;
        // Scores [seq, kv_len], filled page by page.
        let mut scores = Tensor::zeros([seq, kv_len]);
        for r in 0..seq {
            let q_slice = &q.row(r)[head * hd..(head + 1) * hd];
            let s_row = scores.row_mut(r);
            let mut c = 0;
            for page in pages_k {
                for k_row in page.chunks_exact(kv_dim) {
                    s_row[c] = ops::dot(q_slice, &k_row[col0..col0 + hd]) * scale;
                    c += 1;
                }
            }
        }
        ops::causal_mask_inplace(&mut scores, start_pos);
        let probs = ops::softmax(&scores);
        for r in 0..seq {
            let p_row = probs.row(r);
            let o_slice = &mut out.row_mut(r)[head * hd..(head + 1) * hd];
            let mut c = 0;
            for page in pages_v {
                for v_row in page.chunks_exact(kv_dim) {
                    let p = p_row[c];
                    c += 1;
                    if p == 0.0 {
                        continue;
                    }
                    for (o, &vv) in o_slice.iter_mut().zip(&v_row[col0..col0 + hd]) {
                        *o += p * vv;
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FloatBackend;
    use crate::config::ModelConfig;
    use crate::weights::{synthesize, OutlierSpec};

    fn setup() -> (ModelWeights, FloatBackend) {
        let w = synthesize(&ModelConfig::tiny(), 42, OutlierSpec::default()).unwrap();
        (w.clone(), FloatBackend::new(w))
    }

    fn tokens(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| (i * 7 + 3) % 64).collect()
    }

    #[test]
    fn embed_validates_tokens() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        assert!(t.embed(&[0, 5, 63]).is_ok());
        assert!(matches!(
            t.embed(&[64]),
            Err(Error::TokenOutOfRange { token: 64, .. })
        ));
    }

    #[test]
    fn prefill_fills_cache() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let mut cache = KvCache::new(t.config().layers);
        let h = t.prefill(&tokens(6), &mut cache).unwrap();
        assert_eq!(h.shape().dims(), &[6, 32]);
        assert_eq!(cache.seq_len(), 6);
    }

    #[test]
    fn chunked_prefill_equals_whole_prefill() {
        // The central §3.2 invariant: chunked causal prefill is numerically
        // identical to whole-prompt prefill.
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let toks = tokens(10);

        let mut cache_whole = KvCache::new(t.config().layers);
        let whole = t.prefill(&toks, &mut cache_whole).unwrap();

        for chunk_len in [1usize, 3, 4, 5, 10, 16] {
            let mut cache_chunked = KvCache::new(t.config().layers);
            let chunked = t
                .prefill_chunked(&toks, chunk_len, &mut cache_chunked)
                .unwrap();
            let mse = whole.mse(&chunked).unwrap();
            assert!(mse < 1e-9, "chunk_len {chunk_len}: mse {mse} should be ~0");
            assert_eq!(cache_chunked.seq_len(), toks.len());
        }
    }

    #[test]
    fn chunked_prefill_rejects_zero_chunk() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let mut cache = KvCache::new(t.config().layers);
        assert!(t.prefill_chunked(&tokens(4), 0, &mut cache).is_err());
    }

    #[test]
    fn decode_extends_cache_and_yields_logits() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let mut cache = KvCache::new(t.config().layers);
        t.prefill(&tokens(5), &mut cache).unwrap();
        let logits = t.decode_step(9, &mut cache).unwrap();
        assert_eq!(logits.shape().dims(), &[1, 64]);
        assert_eq!(cache.seq_len(), 6);
    }

    #[test]
    fn generate_is_deterministic_and_chunking_invariant() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let prompt = tokens(7);
        let cfg = SamplerConfig::top_k(8, 0.9, 1234);
        let a = t.generate(&prompt, Some(3), 6, &cfg).unwrap();
        let b = t.generate(&prompt, Some(3), 6, &cfg).unwrap();
        assert_eq!(a, b, "same seed must reproduce the stream");
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&tk| (tk as usize) < t.config().vocab));
        // FloatBackend is row-wise, so whole-prompt and chunked prefill
        // are bit-identical — and therefore so is the sampled stream.
        let whole = t.generate(&prompt, None, 6, &cfg).unwrap();
        assert_eq!(a, whole);
        // A different seed must eventually diverge under sampling.
        let mut other = cfg.clone();
        other.seed = 99;
        let c = t.generate(&prompt, Some(3), 6, &other).unwrap();
        assert!(a != c || a.len() < 2, "seeds 1234 and 99 coincided");
    }

    #[test]
    fn generate_greedy_matches_manual_decode_loop() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let prompt = tokens(5);
        let generated = t
            .generate(&prompt, None, 4, &SamplerConfig::greedy())
            .unwrap();

        // Manual loop: prefill, then argmax over logits per step.
        let mut cache = KvCache::new(t.config().layers);
        let hidden = t.prefill(&prompt, &mut cache).unwrap();
        let (rows, h) = hidden.matrix_dims();
        let mut last = Tensor::from_vec(hidden.row(rows - 1).to_vec(), [1, h]).unwrap();
        let mut manual = Vec::new();
        for _ in 0..4 {
            let logits = t.logits(&last).unwrap();
            let row = logits.row(0);
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            manual.push(best as u32);
            last = t.prefill(&[best as u32], &mut cache).unwrap();
        }
        assert_eq!(generated, manual);
    }

    #[test]
    fn generate_rejects_empty_prompt() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        assert!(t.generate(&[], None, 4, &SamplerConfig::greedy()).is_err());
    }

    #[test]
    fn causality_first_token_ignores_suffix() {
        // Changing later tokens must not change the first token's hidden
        // state — the property that makes causal chunking possible at all.
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);

        let mut c1 = KvCache::new(t.config().layers);
        let h1 = t.prefill(&[1, 2, 3, 4], &mut c1).unwrap();
        let mut c2 = KvCache::new(t.config().layers);
        let h2 = t.prefill(&[1, 60, 61, 62], &mut c2).unwrap();
        for (a, b) in h1.row(0).iter().zip(h2.row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gqa_and_mqa_configs_run() {
        for cfg in [
            ModelConfig::gemma_2b().scaled_down(32, 2, 64).unwrap(),
            ModelConfig::mistral_7b().scaled_down(32, 2, 64).unwrap(),
            ModelConfig::phi2_27b().scaled_down(40, 2, 64).unwrap(),
        ] {
            let w = synthesize(&cfg, 9, OutlierSpec::default()).unwrap();
            let be = FloatBackend::new(w.clone());
            let t = Transformer::new(&w, &be);
            let mut cache = KvCache::new(cfg.layers);
            let h = t.prefill(&tokens(6), &mut cache).unwrap();
            assert_eq!(h.shape().dims(), &[6, cfg.hidden]);
            assert!(h.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn calibration_records_every_site() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let cal = t.calibrate(&[tokens(4), tokens(6)]).unwrap();
        let sites = crate::backend::model_sites(&w);
        for site in &sites {
            let recs = cal.get(site).unwrap_or_else(|| panic!("missing {site:?}"));
            assert_eq!(recs.len(), 2, "one recording per prompt");
        }
    }

    #[test]
    fn last_hidden_matches_prefill_row() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let toks = tokens(7);
        let mut cache = KvCache::new(t.config().layers);
        let h = t.prefill(&toks, &mut cache).unwrap();
        let last = t.last_hidden(&toks, None).unwrap();
        assert_eq!(h.row(6), last.as_slice());
        let last_chunked = t.last_hidden(&toks, Some(3)).unwrap();
        for (a, b) in last.iter().zip(&last_chunked) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn paged_prefill_bit_identical_to_contiguous_at_any_page_size() {
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let toks = tokens(10);
        let mut contiguous = KvCache::new(t.config().layers);
        let whole = t.prefill(&toks, &mut contiguous).unwrap();
        let kv_dim = t.config().kv_dim();

        for block_tokens in [1usize, 3, 4, 16] {
            let pool = std::sync::Arc::new(
                llmnpu_kv::BlockPool::new(llmnpu_kv::PoolConfig {
                    layers: t.config().layers,
                    kv_dim,
                    block_tokens,
                    blocks: toks.len().div_ceil(block_tokens) + 2,
                })
                .unwrap(),
            );
            let mut paged = PagedKvCache::reserve(&pool, toks.len()).unwrap();
            let h = t.prefill_paged(&toks, 0, &mut paged).unwrap();
            assert_eq!(
                h.as_slice(),
                whole.as_slice(),
                "hidden states diverged at page size {block_tokens}"
            );
            // The cached rows themselves are identical, page layout aside.
            for layer in 0..t.config().layers {
                let keys = contiguous.layer(layer).unwrap().keys_tensor().unwrap();
                paged
                    .view(layer, toks.len(), |pages_k, _| {
                        let flat: Vec<f32> =
                            pages_k.iter().flat_map(|p| p.iter().copied()).collect();
                        assert_eq!(flat.as_slice(), keys.as_slice());
                    })
                    .unwrap();
            }
            paged.release().unwrap();
            assert_eq!(pool.used_blocks(), 0, "pages leaked");
        }
    }

    #[test]
    fn paged_chunked_prefill_matches_contiguous_chunked() {
        // Chunk-at-a-time paged prefill (what the serving executor runs)
        // against the contiguous chunked reference.
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let toks = tokens(11);
        let mut contiguous = KvCache::new(t.config().layers);
        let reference = t.prefill_chunked(&toks, 4, &mut contiguous).unwrap();

        let pool = std::sync::Arc::new(
            llmnpu_kv::BlockPool::new(llmnpu_kv::PoolConfig {
                layers: t.config().layers,
                kv_dim: t.config().kv_dim(),
                block_tokens: 3,
                blocks: 8,
            })
            .unwrap(),
        );
        let mut paged = PagedKvCache::reserve(&pool, toks.len()).unwrap();
        let mut hidden = Vec::new();
        let mut pos = 0;
        for chunk in toks.chunks(4) {
            let h = t.prefill_paged(chunk, pos, &mut paged).unwrap();
            hidden.extend_from_slice(h.as_slice());
            pos += chunk.len();
        }
        assert_eq!(hidden.as_slice(), reference.as_slice());
        paged.release().unwrap();
    }

    #[test]
    fn batched_decode_rows_match_solo_generate_streams() {
        // Two concurrent greedy streams decoded through one m=B forward
        // per step must emit exactly their solo `generate` tokens.
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let prompts = [tokens(6), tokens(4)];
        let max_new = 5usize;
        let solo: Vec<Vec<u32>> = prompts
            .iter()
            .map(|p| {
                t.generate(p, None, max_new, &SamplerConfig::greedy())
                    .unwrap()
            })
            .collect();

        let pool = std::sync::Arc::new(
            llmnpu_kv::BlockPool::new(llmnpu_kv::PoolConfig {
                layers: t.config().layers,
                kv_dim: t.config().kv_dim(),
                block_tokens: 4,
                blocks: 16,
            })
            .unwrap(),
        );
        let mut caches: Vec<PagedKvCache> = prompts
            .iter()
            .map(|p| PagedKvCache::reserve(&pool, p.len() + max_new).unwrap())
            .collect();
        let mut last: Vec<Tensor<f32>> = Vec::new();
        for (p, kv) in prompts.iter().zip(&mut caches) {
            let h = t.prefill_paged(p, 0, kv).unwrap();
            let (rows, hd) = h.matrix_dims();
            last.push(Tensor::from_vec(h.row(rows - 1).to_vec(), [1, hd]).unwrap());
        }
        let mut streams: Vec<Vec<u32>> = vec![Vec::new(); prompts.len()];
        for step in 0..max_new {
            // Sample each stream from its current last-hidden row.
            for i in 0..prompts.len() {
                let logits = t.logits(&last[i]).unwrap();
                let row = logits.row(0);
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                streams[i].push(best as u32);
            }
            if step + 1 == max_new {
                break;
            }
            // One batched forward advances both caches.
            let mut iter = caches.iter_mut();
            let mut entries: Vec<PagedDecodeEntry<'_>> = Vec::new();
            for (i, kv) in iter.by_ref().enumerate() {
                entries.push(PagedDecodeEntry {
                    token: *streams[i].last().unwrap(),
                    pos: prompts[i].len() + step,
                    kv,
                });
            }
            let h = t.decode_forward_batch(&mut entries).unwrap();
            let (_, hd) = h.matrix_dims();
            for (i, l) in last.iter_mut().enumerate() {
                *l = Tensor::from_vec(h.row(i).to_vec(), [1, hd]).unwrap();
            }
        }
        assert_eq!(streams, solo, "batched decode diverged from solo streams");
        for kv in &mut caches {
            kv.release().unwrap();
        }
        assert_eq!(pool.used_blocks(), 0);
    }

    #[test]
    fn hot_channels_produce_activation_outliers() {
        // The synthetic weights must actually generate the outlier pattern
        // the paper measures: linear inputs with a few extreme channels.
        let (w, be) = setup();
        let t = Transformer::new(&w, &be);
        let cal = t.calibrate(&[tokens(8)]).unwrap();
        // Look at the Q input of layer 1 (post-norm activation).
        let acts = &cal[&(1, LinearKind::Q)][0];
        let mut channel_max = vec![0.0_f32; 32];
        let (rows, _cols) = acts.matrix_dims();
        for r in 0..rows {
            for (cm, &v) in channel_max.iter_mut().zip(acts.row(r)) {
                *cm = cm.max(v.abs());
            }
        }
        let mut sorted = channel_max.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Top channel should dwarf the median channel.
        let median = sorted[16];
        assert!(
            sorted[0] > 4.0 * median,
            "top {} vs median {median}",
            sorted[0]
        );
    }
}
