//! Pluggable linear-layer execution backends.
//!
//! The transformer forward pass in [`crate::forward`] routes every weighted
//! projection through a [`LinearBackend`]. Swapping the backend swaps the
//! quantization scheme without touching the rest of the model — the same
//! factoring the paper uses when it compares FP16, SmoothQuant, LLM.int8(),
//! K-Quant, and llm.npu on identical checkpoints (Table 6).

use std::collections::HashMap;

use llmnpu_quant::lut::LutLinear;
use llmnpu_quant::mixed::MixedLinear;
use llmnpu_quant::outlier::{calibrate_scale, prune_layers, ShadowLinear};
use llmnpu_quant::per_group::GroupedLinear;
use llmnpu_quant::per_tensor::QuantizedLinear;
use llmnpu_quant::smooth::SmoothedLinear;
use llmnpu_tensor::{gemm, PackedMatrixF32, Tensor};

use crate::weights::ModelWeights;
use crate::{Error, Result};

/// Which projection a linear call belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinearKind {
    /// Query projection.
    Q,
    /// Key projection.
    K,
    /// Value projection.
    V,
    /// Attention output projection.
    O,
    /// FFN gate projection.
    Gate,
    /// FFN up projection.
    Up,
    /// FFN down projection.
    Down,
}

impl LinearKind {
    /// All kinds in layer order.
    pub const ALL: [LinearKind; 7] = [
        LinearKind::Q,
        LinearKind::K,
        LinearKind::V,
        LinearKind::O,
        LinearKind::Gate,
        LinearKind::Up,
        LinearKind::Down,
    ];

    /// Short label (matches the paper's `q_proj` / `o_proj` / `up_proj` /
    /// `down_proj` naming in Figures 10–11).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            LinearKind::Q => "q_proj",
            LinearKind::K => "k_proj",
            LinearKind::V => "v_proj",
            LinearKind::O => "o_proj",
            LinearKind::Gate => "gate_proj",
            LinearKind::Up => "up_proj",
            LinearKind::Down => "down_proj",
        }
    }
}

/// A layer/projection address.
pub type LinearSite = (usize, LinearKind);

/// Worker count for float projections on the host: the blocked GEMM
/// kernel's partitioned threading is bit-invisible (see
/// `llmnpu_tensor::kernel`), so this only trades wall-clock for cores.
/// When a persistent pool is installed on the calling thread
/// (`llmnpu_tensor::kernel::parallel::install_backend`), its worker
/// count is used — this is how backends "take the pool handle": the
/// engine installs the pool once, and every projection of every layer
/// dispatches its bands to it with zero thread spawns.
pub(crate) fn host_threads() -> usize {
    llmnpu_tensor::kernel::parallel::default_threads()
}

/// Executes one linear projection for a given layer.
///
/// `Send + Sync` because the prefill executor runs projections from
/// pool worker threads; every implementation owns immutable quantized
/// weights, so sharing is free.
///
/// Backends with a genuinely separable correction path (the
/// shadow-outlier scheme, §3.3) additionally expose it through
/// [`LinearBackend::linear_main`] / [`LinearBackend::linear_shadow`]:
/// the contract is that `linear(x)` is **bit-identical** to
/// `linear_main(x)` followed by [`merge_linear`] with
/// `linear_shadow(x)` — the invariant that lets the out-of-order
/// executor run the two halves on different lanes and merge.
pub trait LinearBackend: Send + Sync {
    /// Computes `x · W(layer, kind)`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or missing projections.
    fn linear(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>>;

    /// The main (quantized/NPU-lane) half of a projection. Defaults to
    /// the full [`LinearBackend::linear`] for backends without a
    /// separable correction path.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or missing projections.
    fn linear_main(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        self.linear(layer, kind, x)
    }

    /// The additive shadow (float-lane) half of a projection, or `None`
    /// when this site has nothing to overlap (no shadow path, pruned
    /// layer, or no outliers in `x`).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    fn linear_shadow(
        &self,
        layer: usize,
        kind: LinearKind,
        x: &Tensor<f32>,
    ) -> Result<Option<Tensor<f32>>> {
        let _ = (layer, kind, x);
        Ok(None)
    }

    /// Whether this site's shadow path is active (used to decide whether
    /// a split execution can ever produce a correction here).
    fn has_shadow(&self, layer: usize, kind: LinearKind) -> bool {
        let _ = (layer, kind);
        false
    }

    /// Whether every output row depends **only** on its own input row —
    /// i.e. `linear` applied to a stacked `[B, hidden]` batch produces,
    /// row for row, the exact bits of B separate single-row calls.
    ///
    /// True for static-weight float paths; false for backends that
    /// derive activation quantization parameters from the whole batch
    /// (per-tensor dynamic scales, LLM.int8() row-max decomposition over
    /// a shared threshold pass, …), where batch composition legitimately
    /// perturbs the last bits. Batched decode GEMMs and paged prefix
    /// sharing are bit-transparent only when this holds, so the serving
    /// scheduler consults it before stacking rows across requests.
    fn row_wise(&self) -> bool {
        false
    }

    /// Human-readable backend name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Merges a shadow half into a main half (elementwise accumulate — the
/// CPU→NPU shared-buffer merge of §3.3). The same op, in the same
/// order, that the fused `linear` paths use internally.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn merge_linear(main: &mut Tensor<f32>, shadow: &Tensor<f32>) -> Result<()> {
    gemm::accumulate(main, shadow)?;
    Ok(())
}

fn site_weight(weights: &ModelWeights, layer: usize, kind: LinearKind) -> Result<&Tensor<f32>> {
    let l = weights.layers.get(layer).ok_or(Error::LayerOutOfRange {
        layer,
        layers: weights.layers.len(),
    })?;
    let w = match kind {
        LinearKind::Q => &l.wq,
        LinearKind::K => &l.wk,
        LinearKind::V => &l.wv,
        LinearKind::O => &l.wo,
        LinearKind::Gate => l.w_gate.as_ref().ok_or(Error::InvalidConfig {
            what: "model has no gate projection".to_owned(),
        })?,
        LinearKind::Up => &l.w_up,
        LinearKind::Down => &l.w_down,
    };
    Ok(w)
}

/// Sites present in a model (skips `Gate` for ungated FFNs).
#[must_use]
pub fn model_sites(weights: &ModelWeights) -> Vec<LinearSite> {
    let mut sites = Vec::new();
    for layer in 0..weights.layers.len() {
        for kind in LinearKind::ALL {
            if kind == LinearKind::Gate && weights.layers[layer].w_gate.is_none() {
                continue;
            }
            sites.push((layer, kind));
        }
    }
    sites
}

/// FP32 reference backend (the paper's FP16 row, with extra precision).
///
/// Every projection weight is packed **once** at construction into the
/// kernel's persistent layout ([`PackedMatrixF32`]); `linear` calls then
/// run the prepacked driver — bit-identical to the per-call-packing
/// path, with zero weight packing per call.
#[derive(Debug, Clone)]
pub struct FloatBackend {
    weights: ModelWeights,
    packed: HashMap<LinearSite, PackedMatrixF32>,
}

impl FloatBackend {
    /// Wraps model weights, packing every projection once.
    #[must_use]
    pub fn new(weights: ModelWeights) -> Self {
        let packed = model_sites(&weights)
            .into_iter()
            .map(|site| {
                let w = site_weight(&weights, site.0, site.1)
                    .expect("model_sites only yields present sites");
                (site, PackedMatrixF32::from_tensor(w))
            })
            .collect();
        FloatBackend { weights, packed }
    }

    /// The wrapped weights.
    #[must_use]
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }
}

impl LinearBackend for FloatBackend {
    fn linear(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        if let Some(packed) = self.packed.get(&(layer, kind)) {
            return Ok(gemm::matmul_f32_prepacked(x, packed, host_threads())?);
        }
        // Out-of-range layers / absent projections fall through for the
        // original diagnostics.
        let w = site_weight(&self.weights, layer, kind)?;
        Ok(gemm::matmul_f32_threaded(x, w, host_threads())?)
    }

    fn row_wise(&self) -> bool {
        // Static float weights, row-partitioned GEMM: each output row is
        // a function of its input row alone, bit-for-bit.
        true
    }

    fn name(&self) -> &'static str {
        "FP16"
    }
}

/// Per-(layer, kind) calibration activations recorded from a float run.
pub type CalibrationSet = HashMap<LinearSite, Vec<Tensor<f32>>>;

/// Builds per-site activation scales from a calibration set using the
/// clipping quantile (llm.npu profiles thresholds offline, §3.3).
///
/// # Errors
///
/// Returns an error if a site has no calibration data.
pub fn site_scales(
    weights: &ModelWeights,
    calibration: &CalibrationSet,
    quantile: f64,
) -> Result<HashMap<LinearSite, f32>> {
    let mut scales = HashMap::new();
    for site in model_sites(weights) {
        let acts = calibration.get(&site).ok_or(Error::InvalidConfig {
            what: format!("no calibration activations for site {site:?}"),
        })?;
        let scale = calibrate_scale(acts, quantile)?;
        scales.insert(site, scale);
    }
    Ok(scales)
}

/// Naive per-tensor W8A8 backend (max-min scales, no outlier handling).
pub struct PerTensorBackend {
    layers: HashMap<LinearSite, QuantizedLinear>,
}

impl PerTensorBackend {
    /// Quantizes every projection with per-tensor scales calibrated at
    /// quantile 1.0 (max-min over the corpus).
    ///
    /// # Errors
    ///
    /// Returns an error if calibration data is missing.
    pub fn new(weights: &ModelWeights, calibration: &CalibrationSet) -> Result<Self> {
        let scales = site_scales(weights, calibration, 1.0)?;
        let mut layers = HashMap::new();
        for site in model_sites(weights) {
            let w = site_weight(weights, site.0, site.1)?;
            layers.insert(site, QuantizedLinear::new(w, scales[&site]));
        }
        Ok(PerTensorBackend { layers })
    }
}

impl LinearBackend for PerTensorBackend {
    fn linear(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let lin = self
            .layers
            .get(&(layer, kind))
            .ok_or(Error::InvalidConfig {
                what: format!("no quantized site ({layer}, {kind:?})"),
            })?;
        Ok(lin.forward(x)?)
    }

    fn name(&self) -> &'static str {
        "PerTensor"
    }
}

/// Per-group backend (K-Quant/AWQ-style).
pub struct PerGroupBackend {
    layers: HashMap<LinearSite, GroupedLinear>,
}

impl PerGroupBackend {
    /// Quantizes every projection with per-group scales.
    ///
    /// # Errors
    ///
    /// Returns an error if `group_size` does not divide every reduction dim.
    pub fn new(weights: &ModelWeights, group_size: usize) -> Result<Self> {
        let mut layers = HashMap::new();
        for site in model_sites(weights) {
            let w = site_weight(weights, site.0, site.1)?;
            layers.insert(site, GroupedLinear::new(w, group_size)?);
        }
        Ok(PerGroupBackend { layers })
    }
}

impl LinearBackend for PerGroupBackend {
    fn linear(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let lin = self
            .layers
            .get(&(layer, kind))
            .ok_or(Error::InvalidConfig {
                what: format!("no grouped site ({layer}, {kind:?})"),
            })?;
        Ok(lin.forward(x)?.0)
    }

    fn name(&self) -> &'static str {
        "K-Quant"
    }
}

/// SmoothQuant backend.
pub struct SmoothQuantBackend {
    layers: HashMap<LinearSite, SmoothedLinear>,
}

impl SmoothQuantBackend {
    /// Builds smoothed layers from calibration activations.
    ///
    /// # Errors
    ///
    /// Returns an error if calibration data is missing for any site.
    pub fn new(weights: &ModelWeights, calibration: &CalibrationSet, alpha: f32) -> Result<Self> {
        let mut layers = HashMap::new();
        for site in model_sites(weights) {
            let w = site_weight(weights, site.0, site.1)?;
            let acts = calibration.get(&site).ok_or(Error::InvalidConfig {
                what: format!("no calibration activations for site {site:?}"),
            })?;
            let cal = concat_rows(acts)?;
            layers.insert(site, SmoothedLinear::new(w, &cal, alpha)?);
        }
        Ok(SmoothQuantBackend { layers })
    }
}

impl LinearBackend for SmoothQuantBackend {
    fn linear(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let lin = self
            .layers
            .get(&(layer, kind))
            .ok_or(Error::InvalidConfig {
                what: format!("no smoothed site ({layer}, {kind:?})"),
            })?;
        Ok(lin.forward(x)?)
    }

    fn name(&self) -> &'static str {
        "SmoothQuant"
    }
}

/// LLM.int8() backend.
pub struct LlmInt8Backend {
    layers: HashMap<LinearSite, MixedLinear>,
}

impl LlmInt8Backend {
    /// Builds mixed-precision layers with a fixed outlier threshold.
    ///
    /// # Errors
    ///
    /// Returns an error if the model weights are malformed.
    pub fn new(weights: &ModelWeights, threshold: f32) -> Result<Self> {
        let mut layers = HashMap::new();
        for site in model_sites(weights) {
            let w = site_weight(weights, site.0, site.1)?;
            layers.insert(site, MixedLinear::new(w, threshold));
        }
        Ok(LlmInt8Backend { layers })
    }
}

impl LinearBackend for LlmInt8Backend {
    fn linear(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let lin = self
            .layers
            .get(&(layer, kind))
            .ok_or(Error::InvalidConfig {
                what: format!("no mixed site ({layer}, {kind:?})"),
            })?;
        Ok(lin.forward(x)?.0)
    }

    fn name(&self) -> &'static str {
        "LLM.int8()"
    }
}

/// llm.npu shadow-outlier backend (§3.3), with optional layer-level
/// outlier pruning.
pub struct ShadowBackend {
    layers: HashMap<LinearSite, ShadowLinear>,
    /// Sites whose shadow path survived pruning.
    kept_sites: Vec<LinearSite>,
}

impl ShadowBackend {
    /// Builds shadow layers with clipping scales at `quantile` and prunes
    /// the outlier paths of the `pruning_rate` least-important sites
    /// (importance = max observed outlier ratio per site, Figure 12).
    ///
    /// # Errors
    ///
    /// Returns an error if calibration data is missing.
    pub fn new(
        weights: &ModelWeights,
        calibration: &CalibrationSet,
        quantile: f64,
        pruning_rate: f64,
    ) -> Result<Self> {
        let scales = site_scales(weights, calibration, quantile)?;
        let sites = model_sites(weights);

        // Importance per site: largest |x| / clipping-range ratio over the
        // calibration corpus.
        let mut importances = Vec::with_capacity(sites.len());
        for site in &sites {
            let acts = &calibration[site];
            let limit = scales[site] * llmnpu_quant::per_tensor::QMAX;
            let max_abs = acts.iter().map(Tensor::abs_max).fold(0.0_f32, f32::max);
            importances.push(max_abs / limit.max(1e-9));
        }
        let keep_mask = prune_layers(&importances, pruning_rate)?;

        let mut layers = HashMap::new();
        let mut kept_sites = Vec::new();
        for (i, site) in sites.iter().enumerate() {
            let w = site_weight(weights, site.0, site.1)?;
            let mut lin = ShadowLinear::new(w, scales[site]);
            if keep_mask[i] {
                kept_sites.push(*site);
            } else {
                lin = lin.with_shadow_disabled();
            }
            layers.insert(*site, lin);
        }
        Ok(ShadowBackend { layers, kept_sites })
    }

    /// Sites whose shadow path is still active.
    #[must_use]
    pub fn kept_sites(&self) -> &[LinearSite] {
        &self.kept_sites
    }
}

impl ShadowBackend {
    fn site(&self, layer: usize, kind: LinearKind) -> Result<&ShadowLinear> {
        self.layers.get(&(layer, kind)).ok_or(Error::InvalidConfig {
            what: format!("no shadow site ({layer}, {kind:?})"),
        })
    }
}

impl LinearBackend for ShadowBackend {
    fn linear(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        Ok(self.site(layer, kind)?.forward(x)?.output)
    }

    fn linear_main(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        Ok(self.site(layer, kind)?.forward_main(x)?)
    }

    fn linear_shadow(
        &self,
        layer: usize,
        kind: LinearKind,
        x: &Tensor<f32>,
    ) -> Result<Option<Tensor<f32>>> {
        Ok(self
            .site(layer, kind)?
            .forward_shadow(x)?
            .map(|(shadow, _channels)| shadow))
    }

    fn has_shadow(&self, layer: usize, kind: LinearKind) -> bool {
        self.layers
            .get(&(layer, kind))
            .is_some_and(ShadowLinear::shadow_enabled)
    }

    fn name(&self) -> &'static str {
        "Ours"
    }
}

/// Sub-8-bit backend: every projection's weights live in a packed
/// table-lookup format ([`LutLinear`]), quantized and packed **once**
/// at construction. `linear` calls stream one-half (int4) or
/// one-quarter (int2) of the i8 weight bytes through the in-register
/// LUT drivers — the whole point of the format for bandwidth-bound
/// decode.
pub struct LutBackend {
    layers: HashMap<LinearSite, LutLinear>,
    name: &'static str,
}

impl LutBackend {
    /// Quantizes every projection to int4 codes with `group_size`-wide
    /// per-group scales.
    ///
    /// # Errors
    ///
    /// Returns an error if `group_size` is rejected by the LUT format.
    pub fn int4(weights: &ModelWeights, group_size: usize) -> Result<Self> {
        Self::build(weights, group_size, LutLinear::int4, "W4-LUT")
    }

    /// Quantizes every projection to int2 (ternary) codes.
    ///
    /// # Errors
    ///
    /// Returns an error if `group_size` is rejected by the LUT format.
    pub fn int2(weights: &ModelWeights, group_size: usize) -> Result<Self> {
        Self::build(weights, group_size, LutLinear::int2, "W2-LUT")
    }

    fn build(
        weights: &ModelWeights,
        group_size: usize,
        quantize: impl Fn(&Tensor<f32>, usize) -> llmnpu_quant::Result<LutLinear>,
        name: &'static str,
    ) -> Result<Self> {
        let mut layers = HashMap::new();
        for site in model_sites(weights) {
            let w = site_weight(weights, site.0, site.1)?;
            layers.insert(site, quantize(w, group_size)?);
        }
        Ok(LutBackend { layers, name })
    }

    /// Total packed weight bytes a decode step streams (codes plus
    /// group scales across every site).
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.layers.values().map(LutLinear::weight_bytes).sum()
    }
}

impl LinearBackend for LutBackend {
    fn linear(&self, layer: usize, kind: LinearKind, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let lin = self
            .layers
            .get(&(layer, kind))
            .ok_or(Error::InvalidConfig {
                what: format!("no LUT site ({layer}, {kind:?})"),
            })?;
        Ok(lin.forward(x, host_threads())?)
    }

    fn row_wise(&self) -> bool {
        // The LUT drivers quantize each activation row with its own
        // max-min scale and accumulate per row in a fixed order, so a
        // stacked [B, hidden] call reproduces B solo calls bit-for-bit
        // — batched decode and prefix sharing stay stream-transparent.
        true
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

fn concat_rows(tensors: &[Tensor<f32>]) -> Result<Tensor<f32>> {
    let mut width = 0usize;
    let mut rows = 0usize;
    for t in tensors {
        let (r, c) = t.matrix_dims();
        rows += r;
        width = c;
    }
    if rows == 0 {
        return Err(Error::InvalidConfig {
            what: "empty calibration set".to_owned(),
        });
    }
    let mut data = Vec::with_capacity(rows * width);
    for t in tensors {
        data.extend_from_slice(t.as_slice());
    }
    Ok(Tensor::from_vec(data, [rows, width])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::weights::{synthesize, OutlierSpec};

    fn tiny_weights() -> ModelWeights {
        synthesize(&ModelConfig::tiny(), 42, OutlierSpec::default()).unwrap()
    }

    fn fake_calibration(weights: &ModelWeights) -> CalibrationSet {
        let mut cal = CalibrationSet::new();
        for site in model_sites(weights) {
            let w = site_weight(weights, site.0, site.1).unwrap();
            let (k, _) = w.matrix_dims();
            let acts = vec![Tensor::from_vec(
                (0..2 * k).map(|i| ((i % 13) as f32 - 6.0) / 6.0).collect(),
                [2, k],
            )
            .unwrap()];
            cal.insert(site, acts);
        }
        cal
    }

    #[test]
    fn float_backend_matches_direct_matmul() {
        let w = tiny_weights();
        let be = FloatBackend::new(w.clone());
        let x = Tensor::from_vec(vec![0.1_f32; 32], [1, 32]).unwrap();
        let y = be.linear(0, LinearKind::Q, &x).unwrap();
        let direct = gemm::matmul_f32(&x, &w.layers[0].wq).unwrap();
        assert_eq!(y.as_slice(), direct.as_slice());
        assert_eq!(be.name(), "FP16");
    }

    #[test]
    fn sites_skip_missing_gate() {
        let cfg = ModelConfig::phi2_27b().scaled_down(40, 2, 64).unwrap();
        let w = synthesize(&cfg, 1, OutlierSpec::default()).unwrap();
        let sites = model_sites(&w);
        assert!(sites.iter().all(|(_, k)| *k != LinearKind::Gate));
        assert_eq!(sites.len(), 2 * 6);
    }

    #[test]
    fn quantized_backends_construct_and_run() {
        let w = tiny_weights();
        let cal = fake_calibration(&w);
        let x = Tensor::from_vec(vec![0.05_f32; 32], [1, 32]).unwrap();

        let pt = PerTensorBackend::new(&w, &cal).unwrap();
        let pg = PerGroupBackend::new(&w, 8).unwrap();
        let sq = SmoothQuantBackend::new(&w, &cal, 0.5).unwrap();
        let mx = LlmInt8Backend::new(&w, 6.0).unwrap();
        let sh = ShadowBackend::new(&w, &cal, 0.999, 0.0).unwrap();
        let l4 = LutBackend::int4(&w, 8).unwrap();
        let l2 = LutBackend::int2(&w, 8).unwrap();

        let reference = FloatBackend::new(w.clone())
            .linear(0, LinearKind::Q, &x)
            .unwrap();
        for be in [&pt as &dyn LinearBackend, &pg, &sq, &mx, &sh, &l4, &l2] {
            let y = be.linear(0, LinearKind::Q, &x).unwrap();
            let mse = y.mse(&reference).unwrap();
            assert!(mse < 0.5, "{}: mse {mse}", be.name());
        }
        assert!(l4.weight_bytes() > l2.weight_bytes());
        assert!(l4.row_wise() && l2.row_wise());
    }

    #[test]
    fn shadow_pruning_controls_kept_sites() {
        let w = tiny_weights();
        let cal = fake_calibration(&w);
        let all = ShadowBackend::new(&w, &cal, 0.999, 0.0).unwrap();
        let none = ShadowBackend::new(&w, &cal, 0.999, 1.0).unwrap();
        let half = ShadowBackend::new(&w, &cal, 0.999, 0.5).unwrap();
        let total = model_sites(&w).len();
        assert_eq!(all.kept_sites().len(), total);
        assert_eq!(none.kept_sites().len(), 0);
        assert_eq!(half.kept_sites().len(), total - total / 2);
    }

    #[test]
    fn split_execution_bit_matches_fused_linear() {
        // The executor's overlap invariant: linear == linear_main ⊕
        // linear_shadow, bit-for-bit, for every backend.
        let w = tiny_weights();
        let cal = fake_calibration(&w);
        let sh = ShadowBackend::new(&w, &cal, 0.9, 0.0).unwrap();
        let float = FloatBackend::new(w.clone());
        // A spiky activation so the shadow half actually fires.
        let mut xv = vec![0.02_f32; 2 * 32];
        xv[7] = 9.0;
        xv[32 + 19] = -11.0;
        let x = Tensor::from_vec(xv, [2, 32]).unwrap();

        let mut shadow_fired = false;
        for be in [&sh as &dyn LinearBackend, &float] {
            // Hidden-width sites (Down takes ffn_hidden-width inputs).
            for kind in [LinearKind::Q, LinearKind::V, LinearKind::Up] {
                let fused = be.linear(1, kind, &x).unwrap();
                let mut merged = be.linear_main(1, kind, &x).unwrap();
                if let Some(shadow) = be.linear_shadow(1, kind, &x).unwrap() {
                    assert!(be.has_shadow(1, kind));
                    merge_linear(&mut merged, &shadow).unwrap();
                    shadow_fired = true;
                }
                assert_eq!(
                    fused.as_slice(),
                    merged.as_slice(),
                    "{} {kind:?}",
                    be.name()
                );
            }
        }
        assert!(shadow_fired, "spiky input must exercise a shadow path");
        assert!(!float.has_shadow(1, LinearKind::Q));

        // Fully pruned backends never produce a shadow half.
        let pruned = ShadowBackend::new(&w, &cal, 0.9, 1.0).unwrap();
        assert!(!pruned.has_shadow(1, LinearKind::Q));
        assert!(pruned
            .linear_shadow(1, LinearKind::Q, &x)
            .unwrap()
            .is_none());
    }

    #[test]
    fn missing_layer_is_reported() {
        let w = tiny_weights();
        let be = FloatBackend::new(w);
        let x = Tensor::from_vec(vec![0.0_f32; 32], [1, 32]).unwrap();
        assert!(matches!(
            be.linear(99, LinearKind::Q, &x),
            Err(Error::LayerOutOfRange { .. })
        ));
    }

    #[test]
    fn linear_kind_labels_match_paper_naming() {
        assert_eq!(LinearKind::Q.label(), "q_proj");
        assert_eq!(LinearKind::O.label(), "o_proj");
        assert_eq!(LinearKind::Up.label(), "up_proj");
        assert_eq!(LinearKind::Down.label(), "down_proj");
    }
}
