//! Seeded synthetic weight generation with realistic activation-outlier
//! structure.
//!
//! Real LLM weights are unavailable here, so the numeric plane synthesizes
//! small transformers whose *activation statistics* match what the paper
//! measured (Figures 10–12):
//!
//! * a small set of **hot channels** (~2–3% of the hidden width) whose
//!   normalization gain is boosted by a heavy-tailed factor, so they
//!   produce the bulk of activation outliers,
//! * layer-position-dependent outlier magnitude — "layers near the inputs
//!   and outputs have a higher importance" (§3.3) — implemented as a
//!   U-shaped boost profile over depth,
//! * everything else i.i.d. Gaussian with standard 1/√fan-in scaling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use llmnpu_tensor::Tensor;

use crate::config::{ActKind, ModelConfig};
use crate::Result;

/// Weights of one decoder layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection `[hidden, q_dim]`.
    pub wq: Tensor<f32>,
    /// Key projection `[hidden, kv_dim]`.
    pub wk: Tensor<f32>,
    /// Value projection `[hidden, kv_dim]`.
    pub wv: Tensor<f32>,
    /// Output projection `[q_dim, hidden]`.
    pub wo: Tensor<f32>,
    /// FFN gate projection `[hidden, ffn]` (gated architectures only).
    pub w_gate: Option<Tensor<f32>>,
    /// FFN up projection `[hidden, ffn]`.
    pub w_up: Tensor<f32>,
    /// FFN down projection `[ffn, hidden]`.
    pub w_down: Tensor<f32>,
    /// Attention-block norm gain.
    pub attn_norm_gamma: Vec<f32>,
    /// Attention-block norm bias (LayerNorm only; zeros for RMSNorm).
    pub attn_norm_beta: Vec<f32>,
    /// FFN-block norm gain.
    pub ffn_norm_gamma: Vec<f32>,
    /// FFN-block norm bias.
    pub ffn_norm_beta: Vec<f32>,
}

/// A complete synthetic model.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// The architecture these weights realize.
    pub config: ModelConfig,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Token embedding table `[vocab, hidden]`.
    pub embedding: Tensor<f32>,
    /// Final norm gain.
    pub final_norm_gamma: Vec<f32>,
    /// LM head `[hidden, vocab]`.
    pub head: Tensor<f32>,
    /// The hot outlier channels chosen at generation time (for test
    /// introspection; real systems discover these by profiling).
    pub hot_channels: Vec<usize>,
}

/// Controls for the synthetic outlier structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierSpec {
    /// Fraction of hidden channels designated hot (Figure 11: <3%).
    pub hot_fraction: f64,
    /// Norm-gain multiplier applied to hot channels at the model's edge
    /// layers (first/last).
    pub hot_gain: f32,
    /// Ratio between edge-layer and middle-layer hot gain. Importance is
    /// U-shaped over depth (Figure 12 left): edge layers produce severe
    /// outliers, middle layers' outliers barely exceed the clipping range
    /// — which is exactly why pruning 85% of layers' outliers is nearly
    /// free (§3.3).
    pub edge_boost: f32,
}

impl Default for OutlierSpec {
    fn default() -> Self {
        OutlierSpec {
            hot_fraction: 0.025,
            hot_gain: 12.0,
            edge_boost: 6.0,
        }
    }
}

/// Generates a seeded synthetic model.
///
/// # Errors
///
/// Returns an error if the config is invalid.
pub fn synthesize(config: &ModelConfig, seed: u64, outliers: OutlierSpec) -> Result<ModelWeights> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let h = config.hidden;

    // Pick hot channels once for the whole model: outliers recur at the
    // same positions across layers (Figure 11's skew).
    let hot_count = ((h as f64 * outliers.hot_fraction).ceil() as usize).max(1);
    let mut hot_channels: Vec<usize> = Vec::with_capacity(hot_count);
    while hot_channels.len() < hot_count {
        let c = rng.gen_range(0..h);
        if !hot_channels.contains(&c) {
            hot_channels.push(c);
        }
    }
    hot_channels.sort_unstable();

    let mut layers = Vec::with_capacity(config.layers);
    for layer_idx in 0..config.layers {
        layers.push(synth_layer(
            config,
            &mut rng,
            &hot_channels,
            outliers,
            layer_idx,
        ));
    }

    let embedding = gaussian(&mut rng, config.vocab, h, 1.0);
    let head = gaussian(&mut rng, h, config.vocab, (1.0 / h as f32).sqrt());

    Ok(ModelWeights {
        config: config.clone(),
        layers,
        embedding,
        final_norm_gamma: vec![1.0; h],
        head,
        hot_channels,
    })
}

fn synth_layer(
    config: &ModelConfig,
    rng: &mut StdRng,
    hot: &[usize],
    outliers: OutlierSpec,
    layer_idx: usize,
) -> LayerWeights {
    let h = config.hidden;
    let scale_in = (1.0 / h as f32).sqrt();
    let scale_ffn = (1.0 / config.ffn_hidden as f32).sqrt();

    // U-shaped gain over depth: full strength at the first and last
    // layers, damped by `edge_boost` in the middle (mild middle-layer
    // outliers are what make importance pruning nearly free, §3.3).
    let depth = if config.layers <= 1 {
        0.0
    } else {
        layer_idx as f32 / (config.layers - 1) as f32
    };
    let u = (2.0 * depth - 1.0).powi(2); // 1 at edges, 0 in the middle
    let middle_floor = 1.0 / outliers.edge_boost.max(1.0);
    let gain = outliers.hot_gain * (middle_floor + (1.0 - middle_floor) * u);

    let mut attn_gamma = vec![1.0_f32; h];
    let mut ffn_gamma = vec![1.0_f32; h];
    for &c in hot {
        // Heavy-tailed per-channel gain: some hot channels are much hotter.
        let tail: f32 = rng.gen_range(0.4_f32..1.6).powi(3);
        attn_gamma[c] = gain * tail.max(0.2);
        ffn_gamma[c] = gain * tail.max(0.2) * rng.gen_range(0.6..1.4);
    }

    LayerWeights {
        wq: gaussian(rng, h, config.q_dim(), scale_in),
        wk: gaussian(rng, h, config.kv_dim(), scale_in),
        wv: gaussian(rng, h, config.kv_dim(), scale_in),
        wo: gaussian(rng, config.q_dim(), h, scale_in),
        w_gate: match config.act {
            ActKind::SiluGated | ActKind::GeluGated => {
                Some(gaussian(rng, h, config.ffn_hidden, scale_in))
            }
            ActKind::Gelu => None,
        },
        w_up: gaussian(rng, h, config.ffn_hidden, scale_in),
        w_down: gaussian(rng, config.ffn_hidden, h, scale_ffn),
        attn_norm_gamma: attn_gamma,
        attn_norm_beta: vec![0.0; h],
        ffn_norm_gamma: ffn_gamma,
        ffn_norm_beta: vec![0.0; h],
    }
}

fn gaussian(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Tensor<f32> {
    // Box-Muller from uniform samples keeps us dependency-light and seeded.
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.gen_range(1e-7_f32..1.0);
        let u2: f32 = rng.gen_range(0.0_f32..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, [rows, cols]).expect("sized by construction")
}

/// Total float weight bytes of a synthesized model (for memory tests).
#[must_use]
pub fn float_weight_bytes(w: &ModelWeights) -> u64 {
    let mut elems = w.embedding.len() + w.head.len() + w.final_norm_gamma.len();
    for l in &w.layers {
        elems += l.wq.len() + l.wk.len() + l.wv.len() + l.wo.len();
        elems += l.w_gate.as_ref().map_or(0, Tensor::len);
        elems += l.w_up.len() + l.w_down.len();
        elems += l.attn_norm_gamma.len() * 2 + l.ffn_norm_gamma.len() * 2;
    }
    (elems * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = ModelConfig::tiny();
        let a = synthesize(&cfg, 42, OutlierSpec::default()).unwrap();
        let b = synthesize(&cfg, 42, OutlierSpec::default()).unwrap();
        assert_eq!(a.layers[0].wq.as_slice(), b.layers[0].wq.as_slice());
        assert_eq!(a.hot_channels, b.hot_channels);
        let c = synthesize(&cfg, 43, OutlierSpec::default()).unwrap();
        assert_ne!(a.layers[0].wq.as_slice(), c.layers[0].wq.as_slice());
    }

    #[test]
    fn hot_channels_are_sparse_and_boosted() {
        let cfg = ModelConfig::tiny();
        let w = synthesize(&cfg, 7, OutlierSpec::default()).unwrap();
        assert!(!w.hot_channels.is_empty());
        assert!(w.hot_channels.len() <= cfg.hidden / 10);
        let layer = &w.layers[0];
        let hot = w.hot_channels[0];
        // Hot channel gain dominates the typical gain of 1.0.
        assert!(layer.attn_norm_gamma[hot] > 3.0);
        let cold_gamma: f32 = layer
            .attn_norm_gamma
            .iter()
            .enumerate()
            .filter(|(c, _)| !w.hot_channels.contains(c))
            .map(|(_, &g)| g)
            .sum::<f32>()
            / (cfg.hidden - w.hot_channels.len()) as f32;
        assert!((cold_gamma - 1.0).abs() < 1e-6);
    }

    #[test]
    fn edge_layers_have_stronger_outliers() {
        let mut cfg = ModelConfig::tiny();
        cfg.layers = 5;
        let w = synthesize(&cfg, 11, OutlierSpec::default()).unwrap();
        let hot = w.hot_channels[0];
        let first = w.layers[0].attn_norm_gamma[hot];
        let mid = w.layers[2].attn_norm_gamma[hot];
        let last = w.layers[4].attn_norm_gamma[hot];
        // The U-shape multiplier is deterministic per layer; the random
        // tail factor differs per layer, so compare against the mid layer
        // with slack.
        assert!(
            first + last > 1.5 * mid,
            "first {first} mid {mid} last {last}"
        );
    }

    #[test]
    fn gaussian_stats_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = gaussian(&mut rng, 64, 64, 0.5);
        let mean: f32 = t.as_slice().iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t
            .as_slice()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn ungated_models_have_no_gate() {
        let cfg = ModelConfig::phi2_27b().scaled_down(40, 2, 64).unwrap();
        let w = synthesize(&cfg, 3, OutlierSpec::default()).unwrap();
        assert!(w.layers[0].w_gate.is_none());
        let gated = synthesize(&ModelConfig::tiny(), 3, OutlierSpec::default()).unwrap();
        assert!(gated.layers[0].w_gate.is_some());
    }

    #[test]
    fn weight_bytes_counts_everything() {
        let cfg = ModelConfig::tiny();
        let w = synthesize(&cfg, 5, OutlierSpec::default()).unwrap();
        let bytes = float_weight_bytes(&w);
        // At least embeddings + head.
        let floor = ((cfg.vocab * cfg.hidden * 2) * 4) as u64;
        assert!(bytes > floor);
    }
}
