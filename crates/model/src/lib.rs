//! Mobile LLM architectures, synthetic models, and the reference forward
//! pass for the llm.npu reproduction.
//!
//! Two roles:
//!
//! 1. **Timing plane** — [`config::ModelConfig`] describes the exact
//!    architectures of the five models the paper evaluates (Qwen1.5-1.8B,
//!    Gemma-2B, Phi-2-2.7B, LLaMA-2-7B, Mistral-7B): layer shapes, head
//!    layouts, FFN widths. Latency/energy/memory experiments need only
//!    these shapes.
//! 2. **Numeric plane** — [`weights`] synthesizes *small* transformers with
//!    realistic activation-outlier structure (seeded, reproducible), and
//!    [`forward::Transformer`] runs a real FP32 decoder forward pass over
//!    them. The linear layers are routed through a pluggable
//!    [`backend::LinearBackend`], so the same transformer can execute in
//!    FP32, naive per-tensor INT8, per-group, SmoothQuant, LLM.int8(), or
//!    llm.npu's shadow-outlier mode — which is how the accuracy experiments
//!    (Table 6, Figures 4/12/16) are run. [`sample`] supplies the seeded
//!    decoding strategies (greedy / temperature / top-k / top-p) that
//!    [`forward::Transformer::generate`] and the continuous-batching
//!    serving loop in `llmnpu-core` drive token generation with.
//!
//! # Example
//!
//! ```
//! use llmnpu_model::config::ModelConfig;
//!
//! let qwen = ModelConfig::qwen15_18b();
//! assert_eq!(qwen.hidden, 2048);
//! assert_eq!(qwen.layers, 24);
//! // ~1.8 B parameters (embedding included).
//! assert!(qwen.param_count() > 1_500_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod backend;
pub mod config;
pub mod forward;
pub mod kv;
pub mod sample;
pub mod weights;

pub use error::Error;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
