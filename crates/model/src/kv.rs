//! Per-layer key/value cache.
//!
//! The KV cache is one of the custom operators llm.npu implements on top of
//! QNN (§4). Its semantic role in this reproduction is the chunk-level
//! causal dependency of §3.2: chunk *i*'s attention reads the keys/values
//! appended by chunks `0..i`, which is exactly the cross-chunk dependency
//! the scheduler must respect (Equation 2).

use std::sync::Arc;

use llmnpu_kv::{BlockPool, BlockTable};
use llmnpu_tensor::Tensor;

use crate::{Error, Result};

/// Key/value storage for one layer: rows are token positions, columns are
/// the `kv_dim` feature width.
///
/// Keys and values live in **flat contiguous** `[len, kv_dim]` tensors
/// that grow in place (amortized, no per-position heap allocation — the
/// seed held one `Vec` per token position and re-materialized the full
/// history on every attention call). [`LayerKv::keys_tensor`] /
/// [`LayerKv::values_tensor`] are zero-copy borrows of that storage.
#[derive(Debug, Clone)]
pub struct LayerKv {
    keys: Tensor<f32>,
    values: Tensor<f32>,
}

impl Default for LayerKv {
    fn default() -> Self {
        LayerKv {
            keys: Tensor::zeros([0, 0]),
            values: Tensor::zeros([0, 0]),
        }
    }
}

/// Extends a flat `[rows, width]` tensor with `new_rows` more rows.
fn grow(t: &mut Tensor<f32>, src: &Tensor<f32>, rows: usize, new_rows: usize, width: usize) {
    let grown = std::mem::replace(t, Tensor::zeros([0, 0]));
    let mut data = grown.into_vec();
    data.extend_from_slice(src.as_slice());
    *t = Tensor::from_vec(data, [rows + new_rows, width]).expect("kv growth arithmetic");
}

impl LayerKv {
    /// Number of cached positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.matrix_dims().0
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `rows` new positions from `[rows, kv_dim]` tensors.
    ///
    /// # Errors
    ///
    /// Returns an error if key/value shapes disagree, or if the feature
    /// width differs from previously appended positions.
    pub fn append(&mut self, k: &Tensor<f32>, v: &Tensor<f32>) -> Result<()> {
        if k.shape() != v.shape() {
            return Err(Error::Tensor(llmnpu_tensor::Error::ShapeMismatch {
                op: "kv_append",
                lhs: k.shape().dims().to_vec(),
                rhs: v.shape().dims().to_vec(),
            }));
        }
        let (rows, width) = k.matrix_dims();
        let (cur, cur_width) = self.keys.matrix_dims();
        if cur > 0 && width != cur_width {
            return Err(Error::Tensor(llmnpu_tensor::Error::ShapeMismatch {
                op: "kv_append",
                lhs: vec![cur, cur_width],
                rhs: k.shape().dims().to_vec(),
            }));
        }
        grow(&mut self.keys, k, cur, rows, width);
        grow(&mut self.values, v, cur, rows, width);
        Ok(())
    }

    /// All cached keys as a `[len, kv_dim]` tensor — a zero-copy borrow
    /// of the flat storage.
    ///
    /// # Errors
    ///
    /// Returns an error only if the cache is empty (no width known).
    pub fn keys_tensor(&self) -> Result<&Tensor<f32>> {
        check_non_empty("kv_keys", &self.keys)
    }

    /// All cached values as a `[len, kv_dim]` tensor — a zero-copy borrow
    /// of the flat storage.
    ///
    /// # Errors
    ///
    /// Returns an error only if the cache is empty.
    pub fn values_tensor(&self) -> Result<&Tensor<f32>> {
        check_non_empty("kv_values", &self.values)
    }

    /// Elements held (keys + values).
    pub(crate) fn elements(&self) -> usize {
        self.keys.len() + self.values.len()
    }
}

fn check_non_empty<'a>(op: &'static str, t: &'a Tensor<f32>) -> Result<&'a Tensor<f32>> {
    if t.is_empty() {
        return Err(Error::Tensor(llmnpu_tensor::Error::InvalidDimension {
            op,
            what: "empty kv cache".to_owned(),
        }));
    }
    Ok(t)
}

/// KV caches for every layer of a model.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    layers: Vec<LayerKv>,
}

impl KvCache {
    /// Creates an empty cache for `layers` layers.
    #[must_use]
    pub fn new(layers: usize) -> Self {
        KvCache {
            layers: vec![LayerKv::default(); layers],
        }
    }

    /// Number of layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Cached sequence length (positions in layer 0).
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKv::len)
    }

    /// Access one layer's cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LayerOutOfRange`] for a bad index.
    pub fn layer(&self, idx: usize) -> Result<&LayerKv> {
        self.layers.get(idx).ok_or(Error::LayerOutOfRange {
            layer: idx,
            layers: self.layers.len(),
        })
    }

    /// Mutable access to one layer's cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LayerOutOfRange`] for a bad index.
    pub fn layer_mut(&mut self, idx: usize) -> Result<&mut LayerKv> {
        let layers = self.layers.len();
        self.layers
            .get_mut(idx)
            .ok_or(Error::LayerOutOfRange { layer: idx, layers })
    }

    /// Bytes held by the cache assuming `dtype_bytes` per element.
    #[must_use]
    pub fn bytes(&self, dtype_bytes: usize) -> u64 {
        let elems: usize = self.layers.iter().map(LayerKv::elements).sum();
        (elems * dtype_bytes) as u64
    }
}

/// A request's KV cache backed by the shared paged [`BlockPool`]
/// (`llmnpu-kv`): block-table addressing instead of private contiguous
/// growth.
///
/// This is the serving-side sibling of [`KvCache`]: same per-layer
/// `[len, kv_dim]` semantics, but rows live in fixed pool pages named by
/// a per-request [`BlockTable`], so
///
/// * capacity is **reserved** against the pool (admission by free
///   pages),
/// * a common prompt prefix can be **shared** with another request's
///   cache (ref-counted blocks, copy-on-write on divergence), and
/// * eviction is `release()` — pages go back to the pool and the
///   request can be recomputed later.
///
/// Positions are absolute and writes are position-addressed, matching
/// the out-of-order prefill executor's invariant. Attention reads go
/// through [`PagedKvCache::view`] as whole-page slices — the gather-free
/// loop `forward::attention_over_pages` consumes, bit-identical to the
/// contiguous path.
#[derive(Debug)]
pub struct PagedKvCache {
    pool: Arc<BlockPool>,
    table: BlockTable,
}

impl PagedKvCache {
    /// Reserves pool capacity for `tokens` positions (every block
    /// fresh).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Kv`] if the pool cannot supply the pages.
    pub fn reserve(pool: &Arc<BlockPool>, tokens: usize) -> Result<Self> {
        Ok(PagedKvCache {
            pool: Arc::clone(pool),
            table: BlockTable::reserve(pool, tokens)?,
        })
    }

    /// Reserves capacity for `total_tokens`, sharing the first
    /// `shared_tokens` (block-aligned) with `donor`'s table — the
    /// shared system-prompt blocks are retained, not re-allocated.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Kv`] on misalignment or pool exhaustion.
    pub fn reserve_shared(
        pool: &Arc<BlockPool>,
        donor: &PagedKvCache,
        shared_tokens: usize,
        total_tokens: usize,
    ) -> Result<Self> {
        Ok(PagedKvCache {
            pool: Arc::clone(pool),
            table: BlockTable::reserve_shared(pool, &donor.table, shared_tokens, total_tokens)?,
        })
    }

    /// Reserves capacity for `total_tokens` on top of already-resident
    /// **cached** prefix blocks (a hit in the global radix prefix cache,
    /// `llmnpu_kv::prefix`): the cached blocks are retained by id — no
    /// live donor cache required — and the remainder allocated fresh.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Kv`] if any prefix block is invalid or free, or
    /// on pool exhaustion (the retain is rolled back).
    pub fn reserve_with_prefix(
        pool: &Arc<BlockPool>,
        prefix_blocks: &[llmnpu_kv::BlockId],
        total_tokens: usize,
    ) -> Result<Self> {
        Ok(PagedKvCache {
            pool: Arc::clone(pool),
            table: BlockTable::reserve_with_prefix(pool, prefix_blocks, total_tokens)?,
        })
    }

    /// The backing pool.
    #[must_use]
    pub fn pool(&self) -> &Arc<BlockPool> {
        &self.pool
    }

    /// The request's block table.
    #[must_use]
    pub fn table(&self) -> &BlockTable {
        &self.table
    }

    /// Reserved token capacity.
    #[must_use]
    pub fn capacity_tokens(&self) -> usize {
        self.table.capacity_tokens()
    }

    /// Writes one position's K/V rows in one layer (copy-on-write if the
    /// position's block is shared).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Kv`] on bad addressing or width.
    pub fn write_position(
        &mut self,
        layer: usize,
        pos: usize,
        k_row: &[f32],
        v_row: &[f32],
    ) -> Result<()> {
        self.table.write_row(&self.pool, layer, pos, k_row, v_row)?;
        Ok(())
    }

    /// Runs `f` over the first `visible_rows` cached positions of one
    /// layer as whole-page K/V slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Kv`] if `visible_rows` exceeds capacity.
    pub fn view<R>(
        &self,
        layer: usize,
        visible_rows: usize,
        f: impl FnOnce(&[&[f32]], &[&[f32]]) -> R,
    ) -> Result<R> {
        Ok(self.table.with_pages(&self.pool, layer, visible_rows, f)?)
    }

    /// Returns every page to the pool (eviction / request completion).
    /// Returns the number of blocks that became free.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Kv`] on a double release.
    pub fn release(&mut self) -> Result<usize> {
        Ok(self.table.release(&self.pool)?)
    }

    /// A read-only snapshot of this cache (shared pool handle + a copy
    /// of the block list, **no** refcount change), so a reader can drop
    /// whatever lock owns the cache before the page walk — long
    /// attention reads must not serialize against the owner's lock.
    ///
    /// Sound only while the owning cache is alive and not released:
    /// the serving executor's dependency edges guarantee a request's
    /// eviction/release never overlaps its own attention tasks, and
    /// prefix-shared blocks are never rewritten (appends land in fresh
    /// blocks, so the owner's concurrent copy-on-write can't swap a
    /// snapshot block out from under a reader).
    #[must_use]
    pub fn reader(&self) -> PagedKvReader {
        PagedKvReader {
            pool: Arc::clone(&self.pool),
            table: self.table.clone(),
        }
    }
}

/// A detached read-only view of a [`PagedKvCache`] — see
/// [`PagedKvCache::reader`] for the validity contract.
#[derive(Debug, Clone)]
pub struct PagedKvReader {
    pool: Arc<BlockPool>,
    table: BlockTable,
}

impl PagedKvReader {
    /// Runs `f` over the first `visible_rows` cached positions of one
    /// layer as whole-page K/V slices (the same walk as
    /// [`PagedKvCache::view`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Kv`] if `visible_rows` exceeds capacity.
    pub fn view<R>(
        &self,
        layer: usize,
        visible_rows: usize,
        f: impl FnOnce(&[&[f32]], &[&[f32]]) -> R,
    ) -> Result<R> {
        Ok(self.table.with_pages(&self.pool, layer, visible_rows, f)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_pair(rows: usize, width: usize, base: f32) -> (Tensor<f32>, Tensor<f32>) {
        let k = Tensor::from_vec(
            (0..rows * width).map(|i| base + i as f32).collect(),
            [rows, width],
        )
        .unwrap();
        let v = Tensor::from_vec(
            (0..rows * width).map(|i| -(base + i as f32)).collect(),
            [rows, width],
        )
        .unwrap();
        (k, v)
    }

    #[test]
    fn append_accumulates_positions() {
        let mut cache = KvCache::new(2);
        let (k, v) = kv_pair(3, 4, 0.0);
        cache.layer_mut(0).unwrap().append(&k, &v).unwrap();
        assert_eq!(cache.seq_len(), 3);
        let (k2, v2) = kv_pair(2, 4, 100.0);
        cache.layer_mut(0).unwrap().append(&k2, &v2).unwrap();
        assert_eq!(cache.layer(0).unwrap().len(), 5);
        // Layer 1 untouched.
        assert!(cache.layer(1).unwrap().is_empty());
    }

    #[test]
    fn tensors_round_trip() {
        let mut cache = KvCache::new(1);
        let (k, v) = kv_pair(2, 3, 1.0);
        cache.layer_mut(0).unwrap().append(&k, &v).unwrap();
        let kt = cache.layer(0).unwrap().keys_tensor().unwrap();
        assert_eq!(kt.shape().dims(), &[2, 3]);
        assert_eq!(kt.as_slice(), k.as_slice());
        let vt = cache.layer(0).unwrap().values_tensor().unwrap();
        assert_eq!(vt.as_slice(), v.as_slice());
    }

    #[test]
    fn chunked_appends_equal_one_big_append() {
        // The §3.2 invariant at the cache level.
        let (k, v) = kv_pair(6, 4, 0.0);
        let mut whole = LayerKv::default();
        whole.append(&k, &v).unwrap();

        let mut chunked = LayerKv::default();
        for chunk in 0..3 {
            let rows: Vec<f32> = (chunk * 2 * 4..(chunk + 1) * 2 * 4)
                .map(|i| i as f32)
                .collect();
            let kc = Tensor::from_vec(rows.clone(), [2, 4]).unwrap();
            let vc = Tensor::from_vec(rows.iter().map(|&x| -x).collect(), [2, 4]).unwrap();
            chunked.append(&kc, &vc).unwrap();
        }
        assert_eq!(
            whole.keys_tensor().unwrap().as_slice(),
            chunked.keys_tensor().unwrap().as_slice()
        );
    }

    #[test]
    fn mismatched_kv_shapes_rejected() {
        let mut cache = LayerKv::default();
        let (k, _) = kv_pair(2, 3, 0.0);
        let (_, v) = kv_pair(2, 4, 0.0);
        assert!(cache.append(&k, &v).is_err());
    }

    #[test]
    fn empty_cache_errors_on_tensor_view() {
        let cache = LayerKv::default();
        assert!(cache.keys_tensor().is_err());
    }

    #[test]
    fn inconsistent_widths_across_appends_rejected() {
        let mut cache = LayerKv::default();
        let (k, v) = kv_pair(2, 3, 0.0);
        cache.append(&k, &v).unwrap();
        let (k2, v2) = kv_pair(2, 4, 0.0);
        assert!(cache.append(&k2, &v2).is_err());
        // The failed append must not have corrupted the cache.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.keys_tensor().unwrap().shape().dims(), &[2, 3]);
    }

    #[test]
    fn layer_bounds_checked() {
        let mut cache = KvCache::new(2);
        assert!(cache.layer(2).is_err());
        assert!(cache.layer_mut(5).is_err());
    }

    #[test]
    fn bytes_accounts_keys_and_values() {
        let mut cache = KvCache::new(1);
        let (k, v) = kv_pair(4, 8, 0.0);
        cache.layer_mut(0).unwrap().append(&k, &v).unwrap();
        assert_eq!(cache.bytes(2), (4 * 8 * 2 * 2) as u64);
    }
}
