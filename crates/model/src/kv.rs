//! Per-layer key/value cache.
//!
//! The KV cache is one of the custom operators llm.npu implements on top of
//! QNN (§4). Its semantic role in this reproduction is the chunk-level
//! causal dependency of §3.2: chunk *i*'s attention reads the keys/values
//! appended by chunks `0..i`, which is exactly the cross-chunk dependency
//! the scheduler must respect (Equation 2).

use llmnpu_tensor::Tensor;

use crate::{Error, Result};

/// Key/value storage for one layer: rows are token positions, columns are
/// the `kv_dim` feature width.
///
/// Keys and values live in **flat contiguous** `[len, kv_dim]` tensors
/// that grow in place (amortized, no per-position heap allocation — the
/// seed held one `Vec` per token position and re-materialized the full
/// history on every attention call). [`LayerKv::keys_tensor`] /
/// [`LayerKv::values_tensor`] are zero-copy borrows of that storage.
#[derive(Debug, Clone)]
pub struct LayerKv {
    keys: Tensor<f32>,
    values: Tensor<f32>,
}

impl Default for LayerKv {
    fn default() -> Self {
        LayerKv {
            keys: Tensor::zeros([0, 0]),
            values: Tensor::zeros([0, 0]),
        }
    }
}

/// Extends a flat `[rows, width]` tensor with `new_rows` more rows.
fn grow(t: &mut Tensor<f32>, src: &Tensor<f32>, rows: usize, new_rows: usize, width: usize) {
    let grown = std::mem::replace(t, Tensor::zeros([0, 0]));
    let mut data = grown.into_vec();
    data.extend_from_slice(src.as_slice());
    *t = Tensor::from_vec(data, [rows + new_rows, width]).expect("kv growth arithmetic");
}

impl LayerKv {
    /// Number of cached positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.matrix_dims().0
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `rows` new positions from `[rows, kv_dim]` tensors.
    ///
    /// # Errors
    ///
    /// Returns an error if key/value shapes disagree, or if the feature
    /// width differs from previously appended positions.
    pub fn append(&mut self, k: &Tensor<f32>, v: &Tensor<f32>) -> Result<()> {
        if k.shape() != v.shape() {
            return Err(Error::Tensor(llmnpu_tensor::Error::ShapeMismatch {
                op: "kv_append",
                lhs: k.shape().dims().to_vec(),
                rhs: v.shape().dims().to_vec(),
            }));
        }
        let (rows, width) = k.matrix_dims();
        let (cur, cur_width) = self.keys.matrix_dims();
        if cur > 0 && width != cur_width {
            return Err(Error::Tensor(llmnpu_tensor::Error::ShapeMismatch {
                op: "kv_append",
                lhs: vec![cur, cur_width],
                rhs: k.shape().dims().to_vec(),
            }));
        }
        grow(&mut self.keys, k, cur, rows, width);
        grow(&mut self.values, v, cur, rows, width);
        Ok(())
    }

    /// All cached keys as a `[len, kv_dim]` tensor — a zero-copy borrow
    /// of the flat storage.
    ///
    /// # Errors
    ///
    /// Returns an error only if the cache is empty (no width known).
    pub fn keys_tensor(&self) -> Result<&Tensor<f32>> {
        check_non_empty("kv_keys", &self.keys)
    }

    /// All cached values as a `[len, kv_dim]` tensor — a zero-copy borrow
    /// of the flat storage.
    ///
    /// # Errors
    ///
    /// Returns an error only if the cache is empty.
    pub fn values_tensor(&self) -> Result<&Tensor<f32>> {
        check_non_empty("kv_values", &self.values)
    }

    /// Elements held (keys + values).
    pub(crate) fn elements(&self) -> usize {
        self.keys.len() + self.values.len()
    }
}

fn check_non_empty<'a>(op: &'static str, t: &'a Tensor<f32>) -> Result<&'a Tensor<f32>> {
    if t.is_empty() {
        return Err(Error::Tensor(llmnpu_tensor::Error::InvalidDimension {
            op,
            what: "empty kv cache".to_owned(),
        }));
    }
    Ok(t)
}

/// KV caches for every layer of a model.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    layers: Vec<LayerKv>,
}

impl KvCache {
    /// Creates an empty cache for `layers` layers.
    #[must_use]
    pub fn new(layers: usize) -> Self {
        KvCache {
            layers: vec![LayerKv::default(); layers],
        }
    }

    /// Number of layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Cached sequence length (positions in layer 0).
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKv::len)
    }

    /// Access one layer's cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LayerOutOfRange`] for a bad index.
    pub fn layer(&self, idx: usize) -> Result<&LayerKv> {
        self.layers.get(idx).ok_or(Error::LayerOutOfRange {
            layer: idx,
            layers: self.layers.len(),
        })
    }

    /// Mutable access to one layer's cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LayerOutOfRange`] for a bad index.
    pub fn layer_mut(&mut self, idx: usize) -> Result<&mut LayerKv> {
        let layers = self.layers.len();
        self.layers
            .get_mut(idx)
            .ok_or(Error::LayerOutOfRange { layer: idx, layers })
    }

    /// Bytes held by the cache assuming `dtype_bytes` per element.
    #[must_use]
    pub fn bytes(&self, dtype_bytes: usize) -> u64 {
        let elems: usize = self.layers.iter().map(LayerKv::elements).sum();
        (elems * dtype_bytes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_pair(rows: usize, width: usize, base: f32) -> (Tensor<f32>, Tensor<f32>) {
        let k = Tensor::from_vec(
            (0..rows * width).map(|i| base + i as f32).collect(),
            [rows, width],
        )
        .unwrap();
        let v = Tensor::from_vec(
            (0..rows * width).map(|i| -(base + i as f32)).collect(),
            [rows, width],
        )
        .unwrap();
        (k, v)
    }

    #[test]
    fn append_accumulates_positions() {
        let mut cache = KvCache::new(2);
        let (k, v) = kv_pair(3, 4, 0.0);
        cache.layer_mut(0).unwrap().append(&k, &v).unwrap();
        assert_eq!(cache.seq_len(), 3);
        let (k2, v2) = kv_pair(2, 4, 100.0);
        cache.layer_mut(0).unwrap().append(&k2, &v2).unwrap();
        assert_eq!(cache.layer(0).unwrap().len(), 5);
        // Layer 1 untouched.
        assert!(cache.layer(1).unwrap().is_empty());
    }

    #[test]
    fn tensors_round_trip() {
        let mut cache = KvCache::new(1);
        let (k, v) = kv_pair(2, 3, 1.0);
        cache.layer_mut(0).unwrap().append(&k, &v).unwrap();
        let kt = cache.layer(0).unwrap().keys_tensor().unwrap();
        assert_eq!(kt.shape().dims(), &[2, 3]);
        assert_eq!(kt.as_slice(), k.as_slice());
        let vt = cache.layer(0).unwrap().values_tensor().unwrap();
        assert_eq!(vt.as_slice(), v.as_slice());
    }

    #[test]
    fn chunked_appends_equal_one_big_append() {
        // The §3.2 invariant at the cache level.
        let (k, v) = kv_pair(6, 4, 0.0);
        let mut whole = LayerKv::default();
        whole.append(&k, &v).unwrap();

        let mut chunked = LayerKv::default();
        for chunk in 0..3 {
            let rows: Vec<f32> = (chunk * 2 * 4..(chunk + 1) * 2 * 4)
                .map(|i| i as f32)
                .collect();
            let kc = Tensor::from_vec(rows.clone(), [2, 4]).unwrap();
            let vc = Tensor::from_vec(rows.iter().map(|&x| -x).collect(), [2, 4]).unwrap();
            chunked.append(&kc, &vc).unwrap();
        }
        assert_eq!(
            whole.keys_tensor().unwrap().as_slice(),
            chunked.keys_tensor().unwrap().as_slice()
        );
    }

    #[test]
    fn mismatched_kv_shapes_rejected() {
        let mut cache = LayerKv::default();
        let (k, _) = kv_pair(2, 3, 0.0);
        let (_, v) = kv_pair(2, 4, 0.0);
        assert!(cache.append(&k, &v).is_err());
    }

    #[test]
    fn empty_cache_errors_on_tensor_view() {
        let cache = LayerKv::default();
        assert!(cache.keys_tensor().is_err());
    }

    #[test]
    fn inconsistent_widths_across_appends_rejected() {
        let mut cache = LayerKv::default();
        let (k, v) = kv_pair(2, 3, 0.0);
        cache.append(&k, &v).unwrap();
        let (k2, v2) = kv_pair(2, 4, 0.0);
        assert!(cache.append(&k2, &v2).is_err());
        // The failed append must not have corrupted the cache.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.keys_tensor().unwrap().shape().dims(), &[2, 3]);
    }

    #[test]
    fn layer_bounds_checked() {
        let mut cache = KvCache::new(2);
        assert!(cache.layer(2).is_err());
        assert!(cache.layer_mut(5).is_err());
    }

    #[test]
    fn bytes_accounts_keys_and_values() {
        let mut cache = KvCache::new(1);
        let (k, v) = kv_pair(4, 8, 0.0);
        cache.layer_mut(0).unwrap().append(&k, &v).unwrap();
        assert_eq!(cache.bytes(2), (4 * 8 * 2 * 2) as u64);
    }
}
