//! Per-layer key/value cache.
//!
//! The KV cache is one of the custom operators llm.npu implements on top of
//! QNN (§4). Its semantic role in this reproduction is the chunk-level
//! causal dependency of §3.2: chunk *i*'s attention reads the keys/values
//! appended by chunks `0..i`, which is exactly the cross-chunk dependency
//! the scheduler must respect (Equation 2).

use llmnpu_tensor::Tensor;

use crate::{Error, Result};

/// Key/value storage for one layer: rows are token positions, columns are
/// the `kv_dim` feature width.
#[derive(Debug, Clone, Default)]
pub struct LayerKv {
    keys: Vec<Vec<f32>>,
    values: Vec<Vec<f32>>,
}

impl LayerKv {
    /// Number of cached positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Appends `rows` new positions from `[rows, kv_dim]` tensors.
    ///
    /// # Errors
    ///
    /// Returns an error if key/value shapes disagree.
    pub fn append(&mut self, k: &Tensor<f32>, v: &Tensor<f32>) -> Result<()> {
        if k.shape() != v.shape() {
            return Err(Error::Tensor(llmnpu_tensor::Error::ShapeMismatch {
                op: "kv_append",
                lhs: k.shape().dims().to_vec(),
                rhs: v.shape().dims().to_vec(),
            }));
        }
        let (rows, _) = k.matrix_dims();
        for r in 0..rows {
            self.keys.push(k.row(r).to_vec());
            self.values.push(v.row(r).to_vec());
        }
        Ok(())
    }

    /// All cached keys as a `[len, kv_dim]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error only if the cache is empty (no width known).
    pub fn keys_tensor(&self) -> Result<Tensor<f32>> {
        stack("kv_keys", &self.keys)
    }

    /// All cached values as a `[len, kv_dim]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error only if the cache is empty.
    pub fn values_tensor(&self) -> Result<Tensor<f32>> {
        stack("kv_values", &self.values)
    }
}

fn stack(op: &'static str, rows: &[Vec<f32>]) -> Result<Tensor<f32>> {
    let n = rows.len();
    if n == 0 {
        return Err(Error::Tensor(llmnpu_tensor::Error::InvalidDimension {
            op,
            what: "empty kv cache".to_owned(),
        }));
    }
    let w = rows[0].len();
    let mut data = Vec::with_capacity(n * w);
    for r in rows {
        data.extend_from_slice(r);
    }
    Ok(Tensor::from_vec(data, [n, w])?)
}

/// KV caches for every layer of a model.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    layers: Vec<LayerKv>,
}

impl KvCache {
    /// Creates an empty cache for `layers` layers.
    #[must_use]
    pub fn new(layers: usize) -> Self {
        KvCache {
            layers: vec![LayerKv::default(); layers],
        }
    }

    /// Number of layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Cached sequence length (positions in layer 0).
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKv::len)
    }

    /// Access one layer's cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LayerOutOfRange`] for a bad index.
    pub fn layer(&self, idx: usize) -> Result<&LayerKv> {
        self.layers.get(idx).ok_or(Error::LayerOutOfRange {
            layer: idx,
            layers: self.layers.len(),
        })
    }

    /// Mutable access to one layer's cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LayerOutOfRange`] for a bad index.
    pub fn layer_mut(&mut self, idx: usize) -> Result<&mut LayerKv> {
        let layers = self.layers.len();
        self.layers
            .get_mut(idx)
            .ok_or(Error::LayerOutOfRange { layer: idx, layers })
    }

    /// Bytes held by the cache assuming `dtype_bytes` per element.
    #[must_use]
    pub fn bytes(&self, dtype_bytes: usize) -> u64 {
        let mut elems = 0usize;
        for l in &self.layers {
            for k in &l.keys {
                elems += k.len() * 2; // key + value rows are same width
            }
        }
        (elems * dtype_bytes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_pair(rows: usize, width: usize, base: f32) -> (Tensor<f32>, Tensor<f32>) {
        let k = Tensor::from_vec(
            (0..rows * width).map(|i| base + i as f32).collect(),
            [rows, width],
        )
        .unwrap();
        let v = Tensor::from_vec(
            (0..rows * width).map(|i| -(base + i as f32)).collect(),
            [rows, width],
        )
        .unwrap();
        (k, v)
    }

    #[test]
    fn append_accumulates_positions() {
        let mut cache = KvCache::new(2);
        let (k, v) = kv_pair(3, 4, 0.0);
        cache.layer_mut(0).unwrap().append(&k, &v).unwrap();
        assert_eq!(cache.seq_len(), 3);
        let (k2, v2) = kv_pair(2, 4, 100.0);
        cache.layer_mut(0).unwrap().append(&k2, &v2).unwrap();
        assert_eq!(cache.layer(0).unwrap().len(), 5);
        // Layer 1 untouched.
        assert!(cache.layer(1).unwrap().is_empty());
    }

    #[test]
    fn tensors_round_trip() {
        let mut cache = KvCache::new(1);
        let (k, v) = kv_pair(2, 3, 1.0);
        cache.layer_mut(0).unwrap().append(&k, &v).unwrap();
        let kt = cache.layer(0).unwrap().keys_tensor().unwrap();
        assert_eq!(kt.shape().dims(), &[2, 3]);
        assert_eq!(kt.as_slice(), k.as_slice());
        let vt = cache.layer(0).unwrap().values_tensor().unwrap();
        assert_eq!(vt.as_slice(), v.as_slice());
    }

    #[test]
    fn chunked_appends_equal_one_big_append() {
        // The §3.2 invariant at the cache level.
        let (k, v) = kv_pair(6, 4, 0.0);
        let mut whole = LayerKv::default();
        whole.append(&k, &v).unwrap();

        let mut chunked = LayerKv::default();
        for chunk in 0..3 {
            let rows: Vec<f32> = (chunk * 2 * 4..(chunk + 1) * 2 * 4)
                .map(|i| i as f32)
                .collect();
            let kc = Tensor::from_vec(rows.clone(), [2, 4]).unwrap();
            let vc = Tensor::from_vec(rows.iter().map(|&x| -x).collect(), [2, 4]).unwrap();
            chunked.append(&kc, &vc).unwrap();
        }
        assert_eq!(
            whole.keys_tensor().unwrap().as_slice(),
            chunked.keys_tensor().unwrap().as_slice()
        );
    }

    #[test]
    fn mismatched_kv_shapes_rejected() {
        let mut cache = LayerKv::default();
        let (k, _) = kv_pair(2, 3, 0.0);
        let (_, v) = kv_pair(2, 4, 0.0);
        assert!(cache.append(&k, &v).is_err());
    }

    #[test]
    fn empty_cache_errors_on_tensor_view() {
        let cache = LayerKv::default();
        assert!(cache.keys_tensor().is_err());
    }

    #[test]
    fn layer_bounds_checked() {
        let mut cache = KvCache::new(2);
        assert!(cache.layer(2).is_err());
        assert!(cache.layer_mut(5).is_err());
    }

    #[test]
    fn bytes_accounts_keys_and_values() {
        let mut cache = KvCache::new(1);
        let (k, v) = kv_pair(4, 8, 0.0);
        cache.layer_mut(0).unwrap().append(&k, &v).unwrap();
        assert_eq!(cache.bytes(2), (4 * 8 * 2 * 2) as u64);
    }
}
