use std::fmt;

/// Error type for model construction and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying tensor kernel failed.
    Tensor(llmnpu_tensor::Error),
    /// An underlying quantization step failed.
    Quant(llmnpu_quant::Error),
    /// A paged KV-cache operation failed.
    Kv(llmnpu_kv::Error),
    /// A model configuration was internally inconsistent.
    InvalidConfig {
        /// Description of the inconsistency.
        what: String,
    },
    /// A token id fell outside the synthetic vocabulary.
    TokenOutOfRange {
        /// The offending token id.
        token: u32,
        /// The vocabulary size.
        vocab: usize,
    },
    /// A layer index was out of range for the model.
    LayerOutOfRange {
        /// The offending layer index.
        layer: usize,
        /// The model's layer count.
        layers: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "tensor kernel failed: {e}"),
            Error::Quant(e) => write!(f, "quantization failed: {e}"),
            Error::Kv(e) => write!(f, "paged kv cache failed: {e}"),
            Error::InvalidConfig { what } => write!(f, "invalid model config: {what}"),
            Error::TokenOutOfRange { token, vocab } => {
                write!(f, "token {token} out of range for vocab {vocab}")
            }
            Error::LayerOutOfRange { layer, layers } => {
                write!(f, "layer {layer} out of range for {layers}-layer model")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            Error::Quant(e) => Some(e),
            Error::Kv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<llmnpu_tensor::Error> for Error {
    fn from(e: llmnpu_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}

impl From<llmnpu_quant::Error> for Error {
    fn from(e: llmnpu_quant::Error) -> Self {
        Error::Quant(e)
    }
}

impl From<llmnpu_kv::Error> for Error {
    fn from(e: llmnpu_kv::Error) -> Self {
        Error::Kv(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = Error::TokenOutOfRange {
            token: 300,
            vocab: 256,
        };
        assert!(e.to_string().contains("300"));
        let e = Error::LayerOutOfRange {
            layer: 5,
            layers: 4,
        };
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
