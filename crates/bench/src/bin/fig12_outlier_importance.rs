//! Figure 12: (left) outlier importance of the linear layers over depth;
//! (right) accuracy vs the number of importance-pruned layers.
//!
//! Paper reference: importance (largest outlier / quantization scale) is
//! highest near the model's inputs and outputs; pruning the 85% least
//! important layers' outliers costs almost no accuracy, after which the
//! curve falls off.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_model::backend::{model_sites, FloatBackend, ShadowBackend};
use llmnpu_model::config::ModelConfig;
use llmnpu_model::forward::Transformer;
use llmnpu_model::weights::{synthesize, OutlierSpec};
use llmnpu_quant::outlier::calibrate_scale;
use llmnpu_quant::per_tensor::QMAX;
use llmnpu_tensor::Tensor;
use llmnpu_workloads::accuracy::{generate, BenchmarkSpec};
use llmnpu_workloads::random_prompt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ImportanceRow {
    layer: usize,
    mean_importance: f64,
}

#[derive(Debug, Serialize)]
struct PruningRow {
    pruning_rate: f64,
    accuracy_pct: f64,
}

#[derive(Debug, Serialize)]
struct Rows {
    importance: Vec<ImportanceRow>,
    pruning: Vec<PruningRow>,
    reference_accuracy_pct: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let cfg = ModelConfig::qwen15_18b().scaled_down(64, 8, 96)?;
    let weights = synthesize(&cfg, seed, OutlierSpec::default())?;
    let float_be = FloatBackend::new(weights.clone());
    let model = Transformer::new(&weights, &float_be);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x99);
    let prompts: Vec<Vec<u32>> = (0..8)
        .map(|_| random_prompt(&mut rng, 16, cfg.vocab))
        .collect();
    let cal = model.calibrate(&prompts)?;

    // --- Left panel: importance per layer (mean over the layer's sites) ---
    header("Figure 12 (left): outlier importance over depth");
    let mut importance = Vec::new();
    for layer in 0..cfg.layers {
        let mut vals = Vec::new();
        for (l, kind) in model_sites(&weights) {
            if l != layer {
                continue;
            }
            let acts = &cal[&(l, kind)];
            let scale = calibrate_scale(acts, 0.997)?;
            let limit = scale * QMAX;
            let max_abs = acts.iter().map(Tensor::abs_max).fold(0.0_f32, f32::max);
            vals.push(f64::from(max_abs / limit.max(1e-9)));
        }
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        println!("layer {layer:>2}: importance {mean:>7.2} {}", bar(mean));
        importance.push(ImportanceRow {
            layer,
            mean_importance: mean,
        });
    }
    let first = importance.first().map(|r| r.mean_importance).unwrap_or(0.0);
    let last = importance.last().map(|r| r.mean_importance).unwrap_or(0.0);
    let mid = importance[cfg.layers / 2].mean_importance;
    println!(
        "edges vs middle: first {first:.2}, middle {mid:.2}, last {last:.2} — the\n\
         paper's U-shape (input/output layers matter most)"
    );

    // --- Right panel: accuracy vs pruning rate ---
    header("Figure 12 (right): accuracy vs pruned layers");
    let spec = BenchmarkSpec {
        name: "HellaSwag-proxy",
        choices: 4,
        prompt_len: 14,
    };
    let bench = generate(&weights, &float_be, spec, 150, 0.62, seed ^ 0x4242)?;
    println!(
        "{:>14} {:>12}  (float reference {:.1}%)",
        "pruning rate",
        "accuracy",
        bench.reference_accuracy * 100.0
    );
    let mut pruning = Vec::new();
    for rate in [0.0, 0.25, 0.5, 0.75, 0.85, 0.95, 1.0] {
        let backend = ShadowBackend::new(&weights, &cal, 0.997, rate)?;
        let acc = bench.evaluate(&weights, &backend)?;
        println!("{:>13.0}% {:>11.1}%", rate * 100.0, acc * 100.0);
        pruning.push(PruningRow {
            pruning_rate: rate,
            accuracy_pct: acc * 100.0,
        });
    }
    println!(
        "\nPaper: accuracy is flat until ~85% pruning (the default), then\n\
         degrades as important outliers start being dropped."
    );
    let path = ExperimentRecord {
        id: "fig12_outlier_importance",
        description: "Outlier importance and pruning-accuracy curves (Figure 12)",
        seed,
        rows: Rows {
            importance,
            pruning,
            reference_accuracy_pct: bench.reference_accuracy * 100.0,
        },
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}

fn bar(v: f64) -> String {
    let n = (v * 4.0).clamp(0.0, 60.0) as usize;
    "#".repeat(n)
}
