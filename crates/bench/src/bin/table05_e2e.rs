//! Table 5: end-to-end latency (prefill + decode) across five datasets ×
//! five models × all applicable engines, on the Redmi K70 Pro.
//!
//! Paper reference (Qwen1.5-1.8B on LongBench 2wikimqa): MLC 45.6 s,
//! llama.cpp 26.7 s, MNN 10.6 s, ours 1.7 s; geometric-mean speedups at
//! the bottom of each dataset block (e.g. 34.7x over MLC, 21.8x over
//! llama.cpp, 4.8x over MNN, 1.7x over TFLite for 2wikimqa).

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_core::baselines::{applicable_baselines, Engine, LlmNpuAsEngine};
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::spec::SocSpec;
use llmnpu_workloads::suites::Suite;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    dataset: &'static str,
    model: &'static str,
    engine: String,
    total_s: f64,
    prefill_s: f64,
    decode_s: f64,
    speedup_vs_ours: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let soc = SocSpec::snapdragon_8gen3();
    let mut rows = Vec::new();

    for suite in Suite::all_e2e() {
        header(&format!(
            "Table 5: {} (prompt {}..{}, output {}..{})",
            suite.name,
            suite.prompt_range.0,
            suite.prompt_range.1,
            suite.output_range.0,
            suite.output_range.1
        ));
        let sample = suite.midpoint();

        // Per-engine geometric mean of speedups across models.
        let mut geo: std::collections::BTreeMap<String, (f64, usize)> =
            std::collections::BTreeMap::new();

        for model in ModelConfig::all_evaluated() {
            let ours = LlmNpuAsEngine::with_defaults(model.clone(), soc.clone())?;
            let our_r = ours.e2e(&sample)?;
            println!("\n  {}:", model.name);
            println!(
                "    {:<20} {:>9} {:>10} {:>9} {:>9}",
                "engine", "total s", "prefill s", "decode s", "speedup"
            );
            println!(
                "    {:<20} {:>9.2} {:>10.2} {:>9.2} {:>9}",
                ours.name(),
                our_r.total_ms() / 1e3,
                our_r.prefill_ms / 1e3,
                our_r.decode_ms / 1e3,
                "-"
            );
            rows.push(Row {
                dataset: suite.name,
                model: model.name,
                engine: ours.name().to_owned(),
                total_s: our_r.total_ms() / 1e3,
                prefill_s: our_r.prefill_ms / 1e3,
                decode_s: our_r.decode_ms / 1e3,
                speedup_vs_ours: 1.0,
            });
            for engine in applicable_baselines(&model, &soc) {
                let r = engine.e2e(&sample)?;
                let speedup = r.total_ms() / our_r.total_ms();
                println!(
                    "    {:<20} {:>9.2} {:>10.2} {:>9.2} {:>8.1}x",
                    engine.name(),
                    r.total_ms() / 1e3,
                    r.prefill_ms / 1e3,
                    r.decode_ms / 1e3,
                    speedup
                );
                let entry = geo.entry(engine.name().to_owned()).or_insert((0.0, 0));
                entry.0 += speedup.ln();
                entry.1 += 1;
                rows.push(Row {
                    dataset: suite.name,
                    model: model.name,
                    engine: engine.name().to_owned(),
                    total_s: r.total_ms() / 1e3,
                    prefill_s: r.prefill_ms / 1e3,
                    decode_s: r.decode_ms / 1e3,
                    speedup_vs_ours: speedup,
                });
            }
        }
        println!("\n  geometric-mean speedup of ours over each baseline:");
        for (name, (log_sum, n)) in geo {
            println!("    {:<20} {:>6.1}x", name, (log_sum / n as f64).exp());
        }
    }
    let path = ExperimentRecord {
        id: "table05_e2e",
        description: "End-to-end latency across datasets/models/engines (Table 5)",
        seed,
        rows,
    }
    .save()?;
    println!("\nsaved {}", path.display());
    Ok(())
}
