//! Figure 19: the ablation ladder — CPU, naive NPU offload, then each of
//! llm.npu's three techniques added in turn — for Qwen1.5-1.8B, Gemma-2B,
//! and LLaMA-2-7B at a 512-token prompt.
//!
//! Paper reference (tokens/s): Gemma 46 → 18 → 91 → 355 → 420;
//! Qwen 65 → 25 → 37 → 395 → 569; LLaMA 13 → 5 → 15 → 133 → 186.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_core::ablation::{run_ladder, AblationStep};
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::spec::SocSpec;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: &'static str,
    step: &'static str,
    tokens_per_s: f64,
    paper_tokens_per_s: f64,
}

fn paper_value(model: &str, step: AblationStep) -> f64 {
    let ladder: [f64; 5] = match model {
        "Qwen1.5-1.8B" => [65.0, 25.0, 37.0, 395.0, 569.0],
        "Gemma-2B" => [46.0, 18.0, 91.0, 355.0, 420.0],
        "LLaMA-2-7B" => [13.0, 5.0, 15.0, 133.0, 186.0],
        _ => [f64::NAN; 5],
    };
    let idx = AblationStep::LADDER
        .iter()
        .position(|&s| s == step)
        .unwrap_or(0);
    ladder[idx]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let soc = SocSpec::snapdragon_8gen3();
    let mut rows = Vec::new();

    for model in [
        ModelConfig::gemma_2b(),
        ModelConfig::qwen15_18b(),
        ModelConfig::llama2_7b(),
    ] {
        header(&format!("Figure 19: {} (prompt 512)", model.name));
        println!(
            "{:<32} {:>12} {:>12}",
            "configuration", "tok/s", "paper tok/s"
        );
        for (step, speed) in run_ladder(&model, &soc, 512)? {
            let paper = paper_value(model.name, step);
            println!("{:<32} {:>12.0} {:>12.0}", step.label(), speed, paper);
            rows.push(Row {
                model: model.name,
                step: step.label(),
                tokens_per_s: speed,
                paper_tokens_per_s: paper,
            });
        }
    }
    println!(
        "\nShape to check against the paper: naive NPU offload *loses* to the\n\
         CPU; chunk-sharing recovers part of it; shadow outlier execution is\n\
         the order-of-magnitude jump; OOE adds the final 18-44%."
    );
    let path = ExperimentRecord {
        id: "fig19_ablation",
        description: "Technique ablation ladder (Figure 19)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
