//! Figure 17: memory consumption of INT8-weight engines at a 512-token
//! prompt, for Gemma-2B and Phi-2-2.7B.
//!
//! Paper reference (Gemma-2B): llama.cpp-CPU 2.8 GB, TFLite-GPU 3.1 GB,
//! TFLite-CPU 3.1 GB, Ours 3.7 GB (up to 1.32x llama.cpp, because MLLM +
//! QNN allocate per-operator activation buffers); the shadow-outlier
//! float weights are only 0.6-1% of the total.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_core::memory::figure17_rows;
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::spec::SocSpec;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: &'static str,
    engine: &'static str,
    total_gib: f64,
    weights_gib: f64,
    activations_gib: f64,
    shadow_mib: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let soc = SocSpec::snapdragon_8gen2(); // K60 Pro, as in the paper
    let mut rows = Vec::new();

    for model in [ModelConfig::gemma_2b(), ModelConfig::phi2_27b()] {
        header(&format!("Figure 17: {} (prompt 512)", model.name));
        println!(
            "{:<16} {:>10} {:>10} {:>12} {:>12}",
            "engine", "total GiB", "weights", "activations", "shadow MiB"
        );
        let comparison = figure17_rows(&model, &soc, 512)?;
        let llamacpp_total = comparison[0].report.total_gib();
        for c in &comparison {
            let r = &c.report;
            println!(
                "{:<16} {:>10.2} {:>10.2} {:>12.2} {:>12.1}",
                c.engine,
                r.total_gib(),
                r.weight_bytes as f64 / (1u64 << 30) as f64,
                (r.activation_bytes + r.kv_bytes) as f64 / (1u64 << 30) as f64,
                r.shadow_bytes as f64 / (1u64 << 20) as f64,
            );
            rows.push(Row {
                model: model.name,
                engine: c.engine,
                total_gib: r.total_gib(),
                weights_gib: r.weight_bytes as f64 / (1u64 << 30) as f64,
                activations_gib: (r.activation_bytes + r.kv_bytes) as f64 / (1u64 << 30) as f64,
                shadow_mib: r.shadow_bytes as f64 / (1u64 << 20) as f64,
            });
        }
        let ours_total = comparison[3].report.total_gib();
        println!(
            "ours / llama.cpp = {:.2}x (paper: up to 1.32x)",
            ours_total / llamacpp_total
        );
    }
    let path = ExperimentRecord {
        id: "fig17_memory",
        description: "Engine memory footprints at prompt 512 (Figure 17)",
        seed,
        rows,
    }
    .save()?;
    println!("\nsaved {}", path.display());
    Ok(())
}
