//! Table 6: LLM benchmark accuracy for five quantization schemes across
//! five models.
//!
//! The paper's FP16 accuracies anchor the proxy benchmarks: each
//! (benchmark, model) pair is calibrated so the FP32 reference scores the
//! paper's FP16 number, and every scheme is then evaluated with *real*
//! quantized forward passes on scaled-down synthetic models. The quantity
//! to compare against the paper is the per-scheme **degradation** row
//! ordering: ours ≈ LLM.int8() ≈ FP16, K-Quant slightly behind,
//! SmoothQuant and naive per-tensor clearly behind.
//!
//! This is the heaviest experiment binary; run it with `--release`.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_model::backend::{
    FloatBackend, LinearBackend, LlmInt8Backend, PerGroupBackend, PerTensorBackend, ShadowBackend,
    SmoothQuantBackend,
};
use llmnpu_model::config::ModelConfig;
use llmnpu_model::forward::Transformer;
use llmnpu_model::weights::{synthesize, OutlierSpec};
use llmnpu_workloads::accuracy::{generate, BenchmarkSpec};
use llmnpu_workloads::random_prompt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

const TASKS: usize = 60;

#[derive(Debug, Serialize)]
struct Row {
    benchmark: &'static str,
    model: &'static str,
    scheme: &'static str,
    accuracy_pct: f64,
    fp16_anchor_pct: f64,
}

/// The paper's Table 6 FP16 column, used as calibration anchors.
fn fp16_anchor(benchmark: &str, model: &str) -> f64 {
    match (benchmark, model) {
        ("LAMBADA", "Qwen1.5-1.8B") => 0.711,
        ("LAMBADA", "Gemma-2B") => 0.596,
        ("LAMBADA", "Phi-2-2.7B") => 0.722,
        ("LAMBADA", "LLaMA-2-7B") => 0.875,
        ("LAMBADA", "Mistral-7B") => 0.848,
        ("HellaSwag", "Qwen1.5-1.8B") => 0.438,
        ("HellaSwag", "Gemma-2B") => 0.465,
        ("HellaSwag", "Phi-2-2.7B") => 0.482,
        ("HellaSwag", "LLaMA-2-7B") => 0.528,
        ("HellaSwag", "Mistral-7B") => 0.574,
        ("WinoGrande", "Qwen1.5-1.8B") => 0.583,
        ("WinoGrande", "Gemma-2B") => 0.583,
        ("WinoGrande", "Phi-2-2.7B") => 0.722,
        ("WinoGrande", "LLaMA-2-7B") => 0.652,
        ("WinoGrande", "Mistral-7B") => 0.735,
        ("OpenBookQA", "Qwen1.5-1.8B") => 0.288,
        ("OpenBookQA", "Gemma-2B") => 0.337,
        ("OpenBookQA", "Phi-2-2.7B") => 0.410,
        ("OpenBookQA", "LLaMA-2-7B") => 0.327,
        ("OpenBookQA", "Mistral-7B") => 0.394,
        ("MMLU", "Qwen1.5-1.8B") => 0.297,
        ("MMLU", "Gemma-2B") => 0.357,
        ("MMLU", "Phi-2-2.7B") => 0.354,
        ("MMLU", "LLaMA-2-7B") => 0.378,
        ("MMLU", "Mistral-7B") => 0.421,
        _ => 0.5,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let mut rows = Vec::new();
    let schemes = ["FP16", "SmoothQuant", "LLM.int8()", "K-Quant", "Ours"];

    for bench_spec in BenchmarkSpec::all() {
        header(&format!("Table 6: {}", bench_spec.name));
        println!(
            "{:<14} {:>8} {:>12} {:>12} {:>9} {:>8}",
            "model", "FP16", "SmoothQuant", "LLM.int8()", "K-Quant", "Ours"
        );
        // Per-scheme degradation accumulators.
        let mut degradation = vec![0.0_f64; schemes.len()];

        for full_cfg in ModelConfig::all_evaluated() {
            let mini = full_cfg.scaled_down(48, 3, 96)?;
            let weights = synthesize(&mini, seed ^ hash(full_cfg.name), OutlierSpec::default())?;
            let float_be = FloatBackend::new(weights.clone());
            let reference = Transformer::new(&weights, &float_be);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7a ^ hash(bench_spec.name));
            let prompts: Vec<Vec<u32>> = (0..5)
                .map(|_| random_prompt(&mut rng, bench_spec.prompt_len, mini.vocab))
                .collect();
            let cal = reference.calibrate(&prompts)?;

            let anchor = fp16_anchor(bench_spec.name, full_cfg.name);
            let bench = generate(
                &weights,
                &float_be,
                bench_spec,
                TASKS,
                anchor,
                seed ^ hash(bench_spec.name) ^ hash(full_cfg.name),
            )?;

            let smooth = SmoothQuantBackend::new(&weights, &cal, 0.5)?;
            let int8 = LlmInt8Backend::new(&weights, 6.0)?;
            let kquant = PerGroupBackend::new(&weights, 16)?;
            let ours = ShadowBackend::new(&weights, &cal, 0.9995, 0.85)?;
            // Naive per-tensor shown in the JSON record for completeness.
            let per_tensor = PerTensorBackend::new(&weights, &cal)?;

            let accs: Vec<f64> = {
                let backends: [&dyn LinearBackend; 5] = [&float_be, &smooth, &int8, &kquant, &ours];
                backends
                    .iter()
                    .map(|b| bench.evaluate(&weights, *b))
                    .collect::<Result<_, _>>()?
            };
            let pt_acc = bench.evaluate(&weights, &per_tensor)?;

            println!(
                "{:<14} {:>7.1}% {:>11.1}% {:>11.1}% {:>8.1}% {:>7.1}%",
                full_cfg.name,
                accs[0] * 100.0,
                accs[1] * 100.0,
                accs[2] * 100.0,
                accs[3] * 100.0,
                accs[4] * 100.0
            );
            for (i, scheme) in schemes.iter().enumerate() {
                degradation[i] += accs[i] - accs[0];
                rows.push(Row {
                    benchmark: bench_spec.name,
                    model: full_cfg.name,
                    scheme,
                    accuracy_pct: accs[i] * 100.0,
                    fp16_anchor_pct: anchor * 100.0,
                });
            }
            rows.push(Row {
                benchmark: bench_spec.name,
                model: full_cfg.name,
                scheme: "PerTensor(naive)",
                accuracy_pct: pt_acc * 100.0,
                fp16_anchor_pct: anchor * 100.0,
            });
        }
        let n = ModelConfig::all_evaluated().len() as f64;
        println!(
            "{:<14} {:>7.1}% {:>11.1}% {:>11.1}% {:>8.1}% {:>7.1}%",
            "avg. degrad.",
            0.0,
            degradation[1] / n * 100.0,
            degradation[2] / n * 100.0,
            degradation[3] / n * 100.0,
            degradation[4] / n * 100.0
        );
    }
    println!(
        "\nPaper's ordering to check: ours and LLM.int8() stay within ~1% of\n\
         FP16 on average; K-Quant trails slightly; SmoothQuant degrades the\n\
         most (its static smoothing misses runtime outliers)."
    );
    let path = ExperimentRecord {
        id: "table06_accuracy",
        description: "Quantization accuracy proxy grid (Table 6)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}

fn hash(s: &str) -> u64 {
    s.bytes().fold(1469598103934665603_u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(1099511628211)
    })
}
