//! Table 3: MatMul latencies for the six LLM-typical shapes across
//! NPU-INT8, CPU-INT8, GPU-FP16, and NPU-FP16.
//!
//! The anchors reproduce the paper's measured numbers exactly (they are
//! the calibration set of the latency model); the `parametric` column
//! shows what the smooth fallback model predicts for the same shape, so
//! the calibration error off-anchor is visible.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_soc::latency::{LatencyModel, TABLE3_ANCHORS};
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::{DataType, Processor};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    m: usize,
    k: usize,
    n: usize,
    npu_int8_ms: f64,
    cpu_int8_ms: f64,
    gpu_fp16_ms: f64,
    npu_fp16_ms: f64,
    cpu_over_npu: f64,
    gpu_over_npu: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let lat = LatencyModel::new(&SocSpec::snapdragon_8gen3());
    let shapes: [(usize, usize, usize); 6] = [
        (64, 2048, 2048),
        (64, 2048, 8192),
        (64, 2048, 11008),
        (32, 4096, 4096),
        (32, 4096, 8192),
        (32, 4096, 11008),
    ];

    header("Table 3: MatMul latency (ms) on Redmi K70 Pro");
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>10} {:>9} {:>9}",
        "shape", "NPU INT8", "CPU INT8", "GPU FP16", "NPU FP16", "CPU/NPU", "GPU/NPU"
    );
    let mut rows = Vec::new();
    for (m, k, n) in shapes {
        let npu = lat.matmul_ms(Processor::Npu, DataType::Int8, m, k, n);
        let cpu = lat.matmul_ms(Processor::Cpu, DataType::Int8, m, k, n);
        let gpu = lat.matmul_ms(Processor::Gpu, DataType::Fp16, m, k, n);
        let npu_fp = lat.matmul_ms(Processor::Npu, DataType::Fp16, m, k, n);
        println!(
            "{:<18} {:>9.1} {:>9.1} {:>9.1} {:>10.0} {:>8.1}x {:>8.1}x",
            format!("{m}x{k} @ {k}x{n}"),
            npu,
            cpu,
            gpu,
            npu_fp,
            cpu / npu,
            gpu / npu
        );
        rows.push(Row {
            m,
            k,
            n,
            npu_int8_ms: npu,
            cpu_int8_ms: cpu,
            gpu_fp16_ms: gpu,
            npu_fp16_ms: npu_fp,
            cpu_over_npu: cpu / npu,
            gpu_over_npu: gpu / npu,
        });
    }

    header("Parametric fallback vs anchors (model calibration error)");
    println!(
        "{:<18} {:<10} {:>10} {:>12} {:>8}",
        "shape", "path", "anchor ms", "parametric", "ratio"
    );
    for a in TABLE3_ANCHORS {
        let est = lat.matmul_parametric_ms(a.processor, a.dtype, a.m, a.k, a.n);
        println!(
            "{:<18} {:<10} {:>10.1} {:>12.2} {:>7.2}x",
            format!("{}x{} @ {}x{}", a.m, a.k, a.k, a.n),
            format!("{}-{}", a.processor, a.dtype),
            a.latency_ms,
            est,
            est / a.latency_ms
        );
    }
    println!(
        "\nPaper's takeaways hold: NPU INT8 beats CPU INT8 by 4.5-5.8x and GPU\n\
         FP16 by 1.8-3.5x, while NPU FP16 is catastrophically slow."
    );
    let path = ExperimentRecord {
        id: "table03_matmul",
        description: "MatMul microbenchmark grid (Table 3)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
