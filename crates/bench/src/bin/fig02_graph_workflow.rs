//! Figure 2: the NPU graph lifecycle (setup / build / optimize / execute /
//! free) for Qwen1.5-1.8B and Gemma-2B chunk graphs.
//!
//! Paper reference values: setup ≈500 ms (once); Qwen build 450 ms,
//! optimize 3.30 s, execute 149 ms; Gemma build 360 ms, optimize 11.54 s,
//! execute 108 ms.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_graph::memory::graph_profile;
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::lifecycle::{lifecycle_cost, LifecycleParams};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: &'static str,
    setup_ms: f64,
    build_ms: f64,
    optimize_ms: f64,
    free_ms: f64,
    paper_build_ms: f64,
    paper_optimize_ms: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let params = LifecycleParams::default();
    let cases = [
        (ModelConfig::qwen15_18b(), 450.0, 3300.0),
        (ModelConfig::gemma_2b(), 360.0, 11540.0),
    ];

    header("Figure 2: NPU graph lifecycle costs (chunk length 256)");
    println!(
        "{:<14} {:>9} {:>9} {:>12} {:>8} {:>12} {:>14}",
        "model", "setup", "build", "optimize", "free", "paper build", "paper optimize"
    );
    let mut rows = Vec::new();
    for (cfg, paper_build, paper_opt) in cases {
        let profile = graph_profile(&cfg, 256);
        let cost = lifecycle_cost(&params, &profile);
        println!(
            "{:<14} {:>7.0}ms {:>7.0}ms {:>10.0}ms {:>6.0}ms {:>10.0}ms {:>12.0}ms",
            cfg.name,
            cost.setup_ms,
            cost.build_ms,
            cost.optimize_ms,
            cost.free_ms,
            paper_build,
            paper_opt
        );
        rows.push(Row {
            model: cfg.name,
            setup_ms: cost.setup_ms,
            build_ms: cost.build_ms,
            optimize_ms: cost.optimize_ms,
            free_ms: cost.free_ms,
            paper_build_ms: paper_build,
            paper_optimize_ms: paper_opt,
        });
    }
    println!(
        "\nThe §2.3 takeaway: preparation costs seconds per shape, so a naive\n\
         engine that rebuilds per prompt length cannot beat the CPU."
    );
    let path = ExperimentRecord {
        id: "fig02_graph_workflow",
        description: "QNN-like graph lifecycle latencies (Figure 2)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
