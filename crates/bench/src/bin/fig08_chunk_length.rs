//! Figure 8: per-token latency of the QKV linears and FFN under different
//! chunk lengths, for Qwen1.5-1.8B and Gemma-2B.
//!
//! Paper reference: the per-token curve falls steeply up to ~256 and then
//! flattens; llm.npu picks 256 on the Xiaomi-14-class device as the
//! latency-optimal chunk that minimizes intra-chunk padding.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_core::engine::{EngineConfig, LlmNpuEngine};
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::latency::LatencyModel;
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::{DataType, Processor};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: &'static str,
    chunk_len: usize,
    qkv_per_token_ms: f64,
    ffn_per_token_ms: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let soc = SocSpec::snapdragon_8gen3();
    let lat = LatencyModel::new(&soc);
    let chunks = [32usize, 64, 128, 256, 384, 512, 768, 1024];

    let mut rows = Vec::new();
    for cfg in [ModelConfig::qwen15_18b(), ModelConfig::gemma_2b()] {
        header(&format!("Figure 8: {}", cfg.name));
        println!(
            "{:>10} {:>18} {:>18}",
            "chunk", "QKV ms/token", "FFN ms/token"
        );
        for &c in &chunks {
            // QKV: q, k, v projections; FFN: gate/up/down.
            let qkv: f64 = [
                (cfg.hidden, cfg.q_dim()),
                (cfg.hidden, cfg.kv_dim()),
                (cfg.hidden, cfg.kv_dim()),
            ]
            .iter()
            .map(|&(k, n)| lat.matmul_ms(Processor::Npu, DataType::Int8, c, k, n))
            .sum::<f64>()
                / c as f64;
            let mut ffn_shapes = vec![(cfg.hidden, cfg.ffn_hidden), (cfg.ffn_hidden, cfg.hidden)];
            if cfg.act.gated() {
                ffn_shapes.push((cfg.hidden, cfg.ffn_hidden));
            }
            let ffn: f64 = ffn_shapes
                .iter()
                .map(|&(k, n)| lat.matmul_ms(Processor::Npu, DataType::Int8, c, k, n))
                .sum::<f64>()
                / c as f64;
            println!("{c:>10} {qkv:>18.4} {ffn:>18.4}");
            rows.push(Row {
                model: cfg.name,
                chunk_len: c,
                qkv_per_token_ms: qkv,
                ffn_per_token_ms: ffn,
            });
        }
        let engine = LlmNpuEngine::new(EngineConfig::llmnpu(cfg.clone(), soc.clone()))?;
        let picked = engine.select_chunk_len(&chunks);
        println!("chunk length selected: {picked}  (paper picks 256)");
    }
    let path = ExperimentRecord {
        id: "fig08_chunk_length",
        description: "Per-token QKV/FFN latency vs chunk length (Figure 8)",
        seed,
        rows,
    }
    .save()?;
    println!("\nsaved {}", path.display());
    Ok(())
}
