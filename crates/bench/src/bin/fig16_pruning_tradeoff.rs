//! Figure 16: the accuracy/speed frontier across outlier pruning rates
//! for Qwen1.5-1.8B and Gemma-2B.
//!
//! Paper reference: at 0% pruning the system is most accurate but
//! slowest (Qwen 156 tok/s); at 80% pruning speed rises to ~544 tok/s
//! with a visible accuracy drop; at 100% pruning speed peaks while
//! accuracy collapses (Qwen falls to 8.1%).
//!
//! Speed comes from the timing plane (shadow tasks + syncs load the CPU
//! and gate NPU successors); accuracy from real quantized forward passes
//! at matching pruning rates.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_core::engine::{EngineConfig, LlmNpuEngine};
use llmnpu_model::backend::{FloatBackend, ShadowBackend};
use llmnpu_model::config::ModelConfig;
use llmnpu_model::forward::Transformer;
use llmnpu_model::weights::{synthesize, OutlierSpec};
use llmnpu_soc::spec::SocSpec;
use llmnpu_workloads::accuracy::{generate, BenchmarkSpec};
use llmnpu_workloads::random_prompt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: &'static str,
    pruning_rate: f64,
    prefill_tokens_per_s: f64,
    accuracy_pct: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let soc = SocSpec::snapdragon_8gen3();
    let rates = [0.0, 0.2, 0.43, 0.6, 0.81, 0.85, 0.95, 1.0];
    let mut rows = Vec::new();

    for full_cfg in [ModelConfig::qwen15_18b(), ModelConfig::gemma_2b()] {
        header(&format!("Figure 16: {}", full_cfg.name));

        // Numeric plane setup for accuracy at each pruning rate.
        let mini = full_cfg.scaled_down(48, 4, 96)?;
        let weights = synthesize(&mini, seed, OutlierSpec::default())?;
        let float_be = FloatBackend::new(weights.clone());
        let reference = Transformer::new(&weights, &float_be);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf16);
        let prompts: Vec<Vec<u32>> = (0..6)
            .map(|_| random_prompt(&mut rng, 14, mini.vocab))
            .collect();
        let cal = reference.calibrate(&prompts)?;
        let bench = generate(
            &weights,
            &float_be,
            BenchmarkSpec {
                name: "LAMBADA-proxy",
                choices: 8,
                prompt_len: 14,
            },
            80,
            0.65,
            seed ^ 0xbeef,
        )?;

        println!(
            "{:>13} {:>16} {:>12}   (float reference {:.1}%)",
            "pruning rate",
            "prefill tok/s",
            "accuracy",
            bench.reference_accuracy * 100.0
        );
        for rate in rates {
            let mut cfg = EngineConfig::llmnpu(full_cfg.clone(), soc.clone());
            cfg.pruning_rate = rate;
            let engine = LlmNpuEngine::new(cfg)?;
            let speed = engine.prefill(512)?.tokens_per_s;

            let backend = ShadowBackend::new(&weights, &cal, 0.997, rate)?;
            let acc = bench.evaluate(&weights, &backend)?;
            println!(
                "{:>12.0}% {:>16.0} {:>11.1}%",
                rate * 100.0,
                speed,
                acc * 100.0
            );
            rows.push(Row {
                model: full_cfg.name,
                pruning_rate: rate,
                prefill_tokens_per_s: speed,
                accuracy_pct: acc * 100.0,
            });
        }
    }
    println!(
        "\nThe frontier's shape matches the paper: pruning trades accuracy for\n\
         speed; the default 85% sits at the knee (near-max speed, small loss)."
    );
    let path = ExperimentRecord {
        id: "fig16_pruning_tradeoff",
        description: "Pruning-rate speed/accuracy frontier (Figure 16)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
