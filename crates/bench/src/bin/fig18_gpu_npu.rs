//! Figure 18: CPU-NPU vs GPU-NPU coordination for Gemma-2B.
//!
//! Paper reference: (a) prefill speed is identical under either float
//! backend — the CPU/GPU work hides behind the NPU's critical path — but
//! (b) GPU-NPU cuts end-to-end latency by 80–90 ms on the LongBench
//! datasets thanks to faster GPU decoding.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_core::engine::{EngineConfig, LlmNpuEngine};
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::Processor;
use llmnpu_workloads::suites::Suite;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SpeedRow {
    prompt_len: usize,
    cpu_npu_tokens_per_s: f64,
    gpu_npu_tokens_per_s: f64,
}

#[derive(Debug, Serialize)]
struct E2eRow {
    suite: &'static str,
    cpu_npu_total_ms: f64,
    gpu_npu_total_ms: f64,
    saving_ms: f64,
}

#[derive(Debug, Serialize)]
struct Rows {
    prefill: Vec<SpeedRow>,
    e2e: Vec<E2eRow>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let soc = SocSpec::snapdragon_8gen3();
    let model = ModelConfig::gemma_2b();

    let cpu_npu = LlmNpuEngine::new(EngineConfig::llmnpu(model.clone(), soc.clone()))?;
    let mut gpu_cfg = EngineConfig::llmnpu(model, soc);
    gpu_cfg.float_processor = Processor::Gpu;
    gpu_cfg.decode_processor = Processor::Gpu;
    let gpu_npu = LlmNpuEngine::new(gpu_cfg)?;

    header("Figure 18(a): prefill speed, CPU-NPU vs GPU-NPU (Gemma-2B)");
    println!(
        "{:>8} {:>16} {:>16}",
        "prompt", "CPU-NPU tok/s", "GPU-NPU tok/s"
    );
    let mut prefill_rows = Vec::new();
    for p in [64usize, 256, 1024] {
        let a = cpu_npu.prefill(p)?.tokens_per_s;
        let b = gpu_npu.prefill(p)?.tokens_per_s;
        println!("{p:>8} {a:>16.0} {b:>16.0}");
        prefill_rows.push(SpeedRow {
            prompt_len: p,
            cpu_npu_tokens_per_s: a,
            gpu_npu_tokens_per_s: b,
        });
    }

    header("Figure 18(b): end-to-end latency on LongBench");
    println!(
        "{:<32} {:>12} {:>12} {:>10}",
        "suite", "CPU-NPU ms", "GPU-NPU ms", "saving"
    );
    let mut e2e_rows = Vec::new();
    for suite in [Suite::longbench_2wikimqa(), Suite::longbench_triviaqa()] {
        let sample = suite.midpoint();
        let a = cpu_npu.e2e(&sample)?.total_ms();
        let b = gpu_npu.e2e(&sample)?.total_ms();
        println!(
            "{:<32} {:>12.0} {:>12.0} {:>8.0}ms",
            suite.name,
            a,
            b,
            a - b
        );
        e2e_rows.push(E2eRow {
            suite: suite.name,
            cpu_npu_total_ms: a,
            gpu_npu_total_ms: b,
            saving_ms: a - b,
        });
    }
    println!(
        "\nPrefill parity + a decode-side saving (paper: 80-90 ms) — the float\n\
         backend choice \"is not essential\" for prefill because the NPU is\n\
         the critical path (§4.6)."
    );
    let path = ExperimentRecord {
        id: "fig18_gpu_npu",
        description: "CPU-NPU vs GPU-NPU coordination (Figure 18)",
        seed,
        rows: Rows {
            prefill: prefill_rows,
            e2e: e2e_rows,
        },
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
