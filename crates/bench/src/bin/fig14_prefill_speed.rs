//! Figure 14: prefill speed (tokens/s) for five models × prompt lengths
//! {64, 256, 1024} × engines × two devices.
//!
//! Paper reference (1024 tokens, Redmi K70 Pro): llm.npu is 18.2–38.4×
//! faster than llama.cpp-CPU, ~7.3× than MNN-CPU, 32.5–43.6× than
//! MLC-GPU, 1.27–2.34× than TFLite-GPU, and 3.28–5.32× than
//! PowerInfer-v2; >1,000 tokens/s on billion-scale models.

use llmnpu_bench::{header, ratio, seed_from_args, ExperimentRecord};
use llmnpu_core::baselines::{applicable_baselines, Engine, LlmNpuAsEngine};
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::spec::SocSpec;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    device: &'static str,
    model: &'static str,
    prompt_len: usize,
    engine: String,
    tokens_per_s: f64,
    latency_ms: f64,
    speedup_vs_ours: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let prompts = [64usize, 256, 1024];
    let mut rows = Vec::new();

    for soc in [SocSpec::snapdragon_8gen3(), SocSpec::snapdragon_8gen2()] {
        header(&format!("Figure 14: prefill speed on {}", soc.name));
        for model in ModelConfig::all_evaluated() {
            let ours = LlmNpuAsEngine::with_defaults(model.clone(), soc.clone())?;
            println!("\n--- {} ---", model.name);
            println!(
                "{:<20} {:>10} {:>10} {:>10}",
                "engine", "64 tok/s", "256 tok/s", "1024 tok/s"
            );
            let mut engines: Vec<Box<dyn Engine>> = applicable_baselines(&model, &soc);
            let our_speeds: Vec<f64> = prompts
                .iter()
                .map(|&p| ours.prefill(p).map(|r| r.tokens_per_s))
                .collect::<Result<_, _>>()?;
            // Ours first.
            println!(
                "{:<20} {:>10.0} {:>10.0} {:>10.0}",
                ours.name(),
                our_speeds[0],
                our_speeds[1],
                our_speeds[2]
            );
            for (i, &p) in prompts.iter().enumerate() {
                let r = ours.prefill(p)?;
                rows.push(Row {
                    device: soc.name,
                    model: model.name,
                    prompt_len: p,
                    engine: ours.name().to_owned(),
                    tokens_per_s: our_speeds[i],
                    latency_ms: r.latency_ms,
                    speedup_vs_ours: 1.0,
                });
            }
            for engine in engines.drain(..) {
                let mut speeds = Vec::new();
                for (i, &p) in prompts.iter().enumerate() {
                    let r = engine.prefill(p)?;
                    speeds.push(r.tokens_per_s);
                    rows.push(Row {
                        device: soc.name,
                        model: model.name,
                        prompt_len: p,
                        engine: engine.name().to_owned(),
                        tokens_per_s: r.tokens_per_s,
                        latency_ms: r.latency_ms,
                        speedup_vs_ours: our_speeds[i] / r.tokens_per_s,
                    });
                }
                println!(
                    "{:<20} {:>10.0} {:>10.0} {:>10.0}   (ours {} at 1024)",
                    engine.name(),
                    speeds[0],
                    speeds[1],
                    speeds[2],
                    ratio(speeds[2], our_speeds[2])
                );
            }
        }
    }
    println!(
        "\nHeadline check: billion-scale models exceed 1,000 tokens/s of\n\
         prefill at 1024 tokens on the 8gen3 (the paper's first-ever mark)."
    );
    let path = ExperimentRecord {
        id: "fig14_prefill_speed",
        description: "Prefill speed grid (Figure 14)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
