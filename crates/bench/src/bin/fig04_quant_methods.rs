//! Figure 4: prefill latency and accuracy of quantization algorithms on
//! the NPU, for LLaMA-2-7B and Qwen1.5-1.8B.
//!
//! Paper reference: per-group schemes (K-Quant, AWQ) cost 8.1–10.7× more
//! prefill latency than per-tensor on the NPU while keeping high accuracy;
//! SmoothQuant keeps per-tensor speed but drops accuracy (3.9% / 8.4%
//! HellaSwag loss for LLaMA / Qwen).
//!
//! Latency comes from the timing plane (per-group MatMul decomposition on
//! the simulated NPU); accuracy comes from the numeric plane (real
//! quantized forward passes on scaled-down models).

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, DagConfig};
use llmnpu_model::backend::{FloatBackend, PerGroupBackend, PerTensorBackend, SmoothQuantBackend};
use llmnpu_model::config::ModelConfig;
use llmnpu_model::forward::Transformer;
use llmnpu_model::weights::{synthesize, OutlierSpec};
use llmnpu_sched::{schedule, Policy};
use llmnpu_soc::latency::LatencyModel;
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::Processor;
use llmnpu_workloads::accuracy::{generate, BenchmarkSpec};
use llmnpu_workloads::random_prompt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: &'static str,
    scheme: &'static str,
    prefill_ms: f64,
    latency_vs_per_tensor: f64,
    accuracy_pct: f64,
}

fn prefill_ms(
    model: &ModelConfig,
    lat: &LatencyModel,
    group: Option<usize>,
) -> Result<f64, Box<dyn std::error::Error>> {
    let dag_cfg = DagConfig {
        plan: ChunkPlan::new(512, 256)?,
        float_processor: Processor::Cpu,
        shadow_fraction: 0.0,
        outlier_channels: 0,
        shape_optimized: true,
        npu_group_size: group,
    };
    let dag = build_prefill_dag(model, &dag_cfg, lat)?;
    Ok(schedule(&dag, Policy::OutOfOrder)?.makespan_ms)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let lat = LatencyModel::new(&SocSpec::snapdragon_8gen3());
    let schemes: [(&'static str, Option<usize>); 4] = [
        ("PerTensor", None),
        ("K-Quant", Some(64)),
        ("AWQ", Some(128)),
        ("SmoothQuant", None), // per-tensor granularity → per-tensor speed
    ];

    let mut rows = Vec::new();
    for full_cfg in [ModelConfig::llama2_7b(), ModelConfig::qwen15_18b()] {
        header(&format!("Figure 4: {} (prompt 512, 8gen3)", full_cfg.name));

        // --- Accuracy on the numeric plane (scaled-down model) ---
        let mini = full_cfg.scaled_down(48, 3, 96)?;
        let weights = synthesize(&mini, seed, OutlierSpec::default())?;
        let float_be = FloatBackend::new(weights.clone());
        let reference = Transformer::new(&weights, &float_be);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5f);
        let prompts: Vec<Vec<u32>> = (0..5)
            .map(|_| random_prompt(&mut rng, 14, mini.vocab))
            .collect();
        let cal = reference.calibrate(&prompts)?;
        let spec = BenchmarkSpec {
            name: "HellaSwag-proxy",
            choices: 4,
            prompt_len: 14,
        };
        let bench = generate(&weights, &float_be, spec, 80, 0.55, seed ^ 0xa1)?;

        let per_tensor_acc = {
            let be = PerTensorBackend::new(&weights, &cal)?;
            bench.evaluate(&weights, &be)?
        };
        let group_acc = {
            let be = PerGroupBackend::new(&weights, 16)?;
            bench.evaluate(&weights, &be)?
        };
        let smooth_acc = {
            let be = SmoothQuantBackend::new(&weights, &cal, 0.5)?;
            bench.evaluate(&weights, &be)?
        };

        // --- Latency on the timing plane ---
        let base_ms = prefill_ms(&full_cfg, &lat, None)?;
        println!(
            "{:<14} {:>12} {:>12} {:>10}",
            "scheme", "prefill ms", "vs per-tensor", "accuracy"
        );
        for (name, group) in schemes {
            let ms = prefill_ms(&full_cfg, &lat, group)?;
            let acc = match name {
                "PerTensor" => per_tensor_acc,
                "SmoothQuant" => smooth_acc,
                _ => group_acc,
            };
            println!(
                "{:<14} {:>12.0} {:>11.1}x {:>9.1}%",
                name,
                ms,
                ms / base_ms,
                acc * 100.0
            );
            rows.push(Row {
                model: full_cfg.name,
                scheme: name,
                prefill_ms: ms,
                latency_vs_per_tensor: ms / base_ms,
                accuracy_pct: acc * 100.0,
            });
        }
        println!(
            "reference accuracy (float): {:.1}%  | paper: per-group is 8.1-10.7x\n\
             slower on NPU; SmoothQuant is fast but least accurate",
            bench.reference_accuracy * 100.0
        );
    }
    let path = ExperimentRecord {
        id: "fig04_quant_methods",
        description: "Quantization scheme latency/accuracy on NPU (Figure 4)",
        seed,
        rows,
    }
    .save()?;
    println!("\nsaved {}", path.display());
    Ok(())
}
