//! Figure 10: the average number and percentage of activation-outlier
//! channels per layer, measured over a synthetic corpus on the numeric
//! plane (the paper profiles Qwen1.5-1.8B on wikitext over 2048
//! inferences).
//!
//! Paper reference: 5–15 outlier channels per inference, i.e. less than
//! 0.3% of channels have outliers during one inference, with q/o/up/down
//! projection inputs all behaving similarly.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_model::backend::{model_sites, FloatBackend, LinearKind};
use llmnpu_model::config::ModelConfig;
use llmnpu_model::forward::Transformer;
use llmnpu_model::weights::{synthesize, OutlierSpec};
use llmnpu_quant::outlier::{calibrate_scale, OutlierProfiler};
use llmnpu_workloads::corpus::{CorpusSampler, CorpusSpec};
use serde::Serialize;

const INFERENCES: usize = 48;

#[derive(Debug, Serialize)]
struct Row {
    layer: usize,
    site: &'static str,
    mean_outliers_per_inference: f64,
    outlier_channel_pct: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    // A wider small model so channel percentages are meaningful.
    let cfg = ModelConfig::qwen15_18b().scaled_down(128, 4, 128)?;
    let weights = synthesize(&cfg, seed, OutlierSpec::default())?;
    let float_be = FloatBackend::new(weights.clone());
    let model = Transformer::new(&weights, &float_be);

    // Calibration pass: collect per-site activations over the corpus.
    let mut sampler = CorpusSampler::new(
        CorpusSpec {
            vocab: cfg.vocab,
            ..CorpusSpec::default()
        },
        seed ^ 0x77,
    )?;
    let prompts = sampler.corpus(INFERENCES, (20, 28));
    let cal = model.calibrate(&prompts)?;

    header("Figure 10: outlier channels per layer (synthetic wikitext corpus)");
    println!(
        "{:<7} {:<10} {:>22} {:>18}",
        "layer", "site", "outliers/inference", "channel %"
    );
    let watched = [
        LinearKind::Q,
        LinearKind::O,
        LinearKind::Up,
        LinearKind::Down,
    ];
    let mut rows = Vec::new();
    for (layer, kind) in model_sites(&weights) {
        if !watched.contains(&kind) {
            continue;
        }
        let acts = &cal[&(layer, kind)];
        // The clipping scale from offline profiling (§3.3): a quantile
        // that treats the extreme tail as outliers.
        let scale = calibrate_scale(acts, 0.997)?;
        let channels = acts[0].matrix_dims().1;
        let mut profiler = OutlierProfiler::new(channels, scale);
        for a in acts {
            profiler.record(a);
        }
        let profile = profiler.finish();
        let mean = profile.mean_outliers_per_batch();
        let pct = 100.0 * mean / channels as f64;
        println!(
            "{:<7} {:<10} {:>22.1} {:>17.2}%",
            layer,
            kind.label(),
            mean,
            pct
        );
        rows.push(Row {
            layer,
            site: kind.label(),
            mean_outliers_per_inference: mean,
            outlier_channel_pct: pct,
        });
    }
    let overall: f64 = rows.iter().map(|r| r.outlier_channel_pct).sum::<f64>() / rows.len() as f64;
    println!(
        "\nmean outlier-channel share: {overall:.2}% (paper: 0.1%-0.3% of\n\
         channels per inference; sparsity is what makes shadow execution cheap)"
    );
    let path = ExperimentRecord {
        id: "fig10_outlier_stats",
        description: "Outlier channels per layer/site (Figure 10)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
