//! Figure 11: per-channel outlier frequency over the corpus — the skew
//! that justifies the hot-channel memory policy.
//!
//! Paper reference: outliers appear in a wide range of channel positions
//! over a long corpus (~78% of channels are hit at least once), but fewer
//! than 3% of channels produce more than 80% of all outlier events.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_model::backend::{model_sites, FloatBackend, LinearKind};
use llmnpu_model::config::ModelConfig;
use llmnpu_model::forward::Transformer;
use llmnpu_model::weights::{synthesize, OutlierSpec};
use llmnpu_quant::outlier::{calibrate_scale, HotChannelPolicy, OutlierProfiler};
use llmnpu_workloads::corpus::{CorpusSampler, CorpusSpec};
use serde::Serialize;

const INFERENCES: usize = 64;

#[derive(Debug, Serialize)]
struct Row {
    site: &'static str,
    active_channel_pct: f64,
    channels_for_80pct: f64,
    hot_memory_fraction: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let cfg = ModelConfig::qwen15_18b().scaled_down(128, 4, 128)?;
    let weights = synthesize(&cfg, seed, OutlierSpec::default())?;
    let float_be = FloatBackend::new(weights.clone());
    let model = Transformer::new(&weights, &float_be);

    let mut sampler = CorpusSampler::new(
        CorpusSpec {
            vocab: cfg.vocab,
            ..CorpusSpec::default()
        },
        seed ^ 0x1234,
    )?;
    let prompts = sampler.corpus(INFERENCES, (20, 28));
    let cal = model.calibrate(&prompts)?;

    header("Figure 11: per-channel outlier skew");
    println!(
        "{:<10} {:>16} {:>20} {:>20}",
        "site", "active channels", "channels for 80%", "hot-memory share"
    );
    let watched = [
        LinearKind::Q,
        LinearKind::O,
        LinearKind::Up,
        LinearKind::Down,
    ];
    let mut rows = Vec::new();
    // Aggregate each site kind across layers (Figure 11 plots per kind).
    for kind in watched {
        let mut counts_acc: Vec<u64> = Vec::new();
        let mut batches = 0u64;
        for (layer, k) in model_sites(&weights) {
            if k != kind {
                continue;
            }
            let acts = &cal[&(layer, kind)];
            let scale = calibrate_scale(acts, 0.997)?;
            let channels = acts[0].matrix_dims().1;
            if counts_acc.is_empty() {
                counts_acc = vec![0; channels];
            }
            let mut profiler = OutlierProfiler::new(channels, scale);
            for a in acts {
                profiler.record(a);
            }
            let p = profiler.finish();
            batches += p.batches;
            for (acc, c) in counts_acc.iter_mut().zip(&p.channel_counts) {
                *acc += c;
            }
        }
        let total: u64 = counts_acc.iter().sum();
        let active = counts_acc.iter().filter(|&&c| c > 0).count() as f64 / counts_acc.len() as f64;
        // Smallest channel fraction covering 80% of events.
        let mut sorted = counts_acc.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let target = (total as f64 * 0.8).ceil() as u64;
        let mut covered = 0u64;
        let mut used = 0usize;
        for c in &sorted {
            if covered >= target {
                break;
            }
            covered += c;
            used += 1;
        }
        let skew = used as f64 / counts_acc.len() as f64;
        let policy = HotChannelPolicy::from_counts(&counts_acc, 0.8)?;
        println!(
            "{:<10} {:>15.1}% {:>19.1}% {:>19.1}%",
            kind.label(),
            active * 100.0,
            skew * 100.0,
            policy.memory_fraction() * 100.0
        );
        rows.push(Row {
            site: kind.label(),
            active_channel_pct: active * 100.0,
            channels_for_80pct: skew * 100.0,
            hot_memory_fraction: policy.memory_fraction() * 100.0,
        });
        let _ = batches;
    }
    println!(
        "\nPaper: <3% of channels contribute >80% of outliers, so keeping only\n\
         hot-channel float weights in memory cuts shadow memory by 34.3%."
    );
    let path = ExperimentRecord {
        id: "fig11_outlier_channels",
        description: "Per-channel outlier frequency skew (Figure 11)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
