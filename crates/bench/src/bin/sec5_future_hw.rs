//! §5 "Future hardware design implications" — a what-if study of the
//! three NPU hardware changes the paper calls for, measured against the
//! shipping-hardware llm.npu baseline (Qwen1.5-1.8B, prompt 1024):
//!
//! 1. **Dynamic shape-aware optimization** — hardware/runtime that
//!    reconfigures for new input shapes without the multi-second
//!    build/optimize cycle. Evaluated as: what does the *naive* engine
//!    look like once rebuilds are free, and does chunking still matter?
//! 2. **Increased data cache size** — a weight cache large enough for
//!    LLM layers raises sustained INT8 throughput.
//! 3. **Mixed-precision operands** — FP16×INT8 compute units would let
//!    attention run on the NPU instead of shuttling to the CPU.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_core::baselines::{Engine, NaiveNpu};
use llmnpu_core::engine::{EngineConfig, LlmNpuEngine};
use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, DagConfig};
use llmnpu_model::config::ModelConfig;
use llmnpu_sched::{schedule, Policy};
use llmnpu_soc::latency::LatencyModel;
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::Processor;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    scenario: String,
    prefill_tokens_per_s: f64,
    speedup_vs_baseline: f64,
}

const PROMPT: usize = 1024;

fn llmnpu_speed(soc: &SocSpec) -> f64 {
    let engine = LlmNpuEngine::new(EngineConfig::llmnpu(ModelConfig::qwen15_18b(), soc.clone()))
        .expect("engine");
    engine.prefill(PROMPT).expect("prefill").tokens_per_s
}

/// llm.npu with float stages *on the NPU* — only sensible once
/// mixed-precision units exist, so it bypasses the engine's validation
/// and drives the graph/scheduler directly.
fn llmnpu_npu_float_speed(soc: &SocSpec) -> f64 {
    let lat = LatencyModel::new(soc);
    let dag_cfg = DagConfig {
        plan: ChunkPlan::new(PROMPT, 256).expect("plan"),
        float_processor: Processor::Npu,
        shadow_fraction: 0.15,
        outlier_channels: 10,
        shape_optimized: true,
        npu_group_size: None,
    };
    let dag = build_prefill_dag(&ModelConfig::qwen15_18b(), &dag_cfg, &lat).expect("dag");
    let outcome = schedule(&dag, Policy::OutOfOrder).expect("schedule");
    PROMPT as f64 / (outcome.makespan_ms / 1e3)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let base_soc = SocSpec::snapdragon_8gen3();
    let baseline = llmnpu_speed(&base_soc);
    let mut rows = Vec::new();
    let mut push = |scenario: String, speed: f64| {
        println!(
            "{:<52} {:>10.0} {:>9.2}x",
            scenario,
            speed,
            speed / baseline
        );
        rows.push(Row {
            scenario,
            prefill_tokens_per_s: speed,
            speedup_vs_baseline: speed / baseline,
        });
    };

    header("§5 hardware what-ifs (Qwen1.5-1.8B, prompt 1024, 8gen3 base)");
    println!("{:<52} {:>10} {:>10}", "scenario", "tok/s", "vs base");
    push("llm.npu on shipping hardware (baseline)".into(), baseline);

    // (1) Dynamic shape-aware optimization: rebuilds become free.
    let naive = NaiveNpu::new(ModelConfig::qwen15_18b(), base_soc.clone());
    let naive_report = naive.prefill(PROMPT)?;
    push(
        "naive engine, shipping hw (rebuild per prompt)".into(),
        naive_report.tokens_per_s,
    );
    let rebuild = naive.rebuild_ms(PROMPT);
    let naive_no_rebuild_ms = naive_report.latency_ms - rebuild;
    push(
        "naive engine + dynamic-shape hw (free rebuilds)".into(),
        PROMPT as f64 / (naive_no_rebuild_ms / 1e3),
    );

    // (2) Increased data cache: sustained INT8 throughput rises ~30%.
    let mut big_cache = base_soc.clone();
    big_cache.npu.gemm_ceiling *= 1.3;
    big_cache.table3_anchors = false; // no longer the measured silicon
    push(
        "llm.npu + 1.3x NPU data cache (higher ceiling)".into(),
        llmnpu_speed(&big_cache),
    );

    // (3) Mixed-precision operands: NPU FP16 at 1/4 of INT8 instead of
    // 1/650 — attention and norms can stay on the NPU.
    let mut mixed = base_soc.clone();
    mixed.npu_fp16_factor = 0.25;
    mixed.table3_anchors = false;
    push(
        "llm.npu + mixed-precision units, float on NPU".into(),
        llmnpu_npu_float_speed(&mixed),
    );
    push(
        "llm.npu + mixed-precision units, float on CPU".into(),
        llmnpu_speed(&mixed),
    );

    // All three together.
    let mut future = base_soc.clone();
    future.npu.gemm_ceiling *= 1.3;
    future.npu_fp16_factor = 0.25;
    future.table3_anchors = false;
    push(
        "all three combined (float on NPU)".into(),
        llmnpu_npu_float_speed(&future),
    );

    println!(
        "\nReadings: free rebuilds alone do NOT make the naive port win —\n\
         chunking/OOE still matter. A bigger weight cache lifts the NPU\n\
         ceiling directly. Mixed-precision units at 1/4 INT8 rate are NOT\n\
         enough to justify consolidating float ops onto the NPU: serializing\n\
         everything on one processor forfeits the CPU/NPU overlap that OOE\n\
         exploits — supporting the paper's §5 position that INT8 NPU compute\n\
         plus CPU/GPU float assist will stay the right architecture."
    );
    let path = ExperimentRecord {
        id: "sec5_future_hw",
        description: "What-if study of the paper's §5 hardware implications",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
