//! Figure 7: the three graph designs — whole-prompt graph, per-chunk
//! graphs, and the chunk-sharing graph — compared on preparation cost,
//! memory, and flexibility.
//!
//! Paper reference (§3.2): per-chunk graphs need 2–4× the LLM weights in
//! graph memory; sharing the 120 static subgraphs cuts that by up to 75%
//! (7.2 GB for Qwen at prompt 1024 / chunk 256). A whole-prompt graph is
//! cheapest in memory but must be rebuilt for every prompt length.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::memory::{graph_memory, graph_profile};
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::lifecycle::{lifecycle_cost, LifecycleParams};
use llmnpu_soc::Processor;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    design: &'static str,
    prepare_ms_per_new_prompt_len: f64,
    graph_memory_gib: f64,
    handles_any_length: bool,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let cfg = ModelConfig::qwen15_18b();
    let params = LifecycleParams::default();
    let plan = ChunkPlan::new(1024, 256)?;
    let gib = |b: u64| b as f64 / (1u64 << 30) as f64;

    // (a) Whole-prompt graph: rebuilt whenever the prompt length changes.
    let prompt_profile = graph_profile(&cfg, 1024);
    let prompt_cost = lifecycle_cost(&params, &prompt_profile);

    // (b) Per-chunk graphs: built once per chunk position, no sharing.
    let mem = graph_memory(&cfg, &plan, Processor::Cpu);
    let chunk_profile = graph_profile(&cfg, 256);
    let chunk_cost = lifecycle_cost(&params, &chunk_profile);

    // (c) Chunk-sharing graph: static subgraphs built once, dynamic
    // attention subgraphs per chunk (weightless, cheap to build).
    let rows = vec![
        Row {
            design: "prompt graph (Figure 7a)",
            prepare_ms_per_new_prompt_len: prompt_cost.prepare_ms(),
            graph_memory_gib: gib(mem.weight_bytes + mem.shared_buffer_bytes),
            handles_any_length: false,
        },
        Row {
            design: "chunk graphs (Figure 7b)",
            prepare_ms_per_new_prompt_len: 0.0, // pre-built offline
            graph_memory_gib: gib(mem.no_sharing_total()),
            handles_any_length: true,
        },
        Row {
            design: "chunk-sharing graph (Figure 7c)",
            prepare_ms_per_new_prompt_len: 0.0, // pre-built offline
            graph_memory_gib: gib(mem.sharing_total()),
            handles_any_length: true,
        },
    ];

    header("Figure 7: graph designs (Qwen1.5-1.8B, prompt 1024, chunk 256)");
    println!(
        "{:<34} {:>22} {:>12} {:>12}",
        "design", "prepare/new length (ms)", "memory GiB", "any length"
    );
    for r in &rows {
        println!(
            "{:<34} {:>22.0} {:>12.2} {:>12}",
            r.design, r.prepare_ms_per_new_prompt_len, r.graph_memory_gib, r.handles_any_length
        );
    }
    println!(
        "\noffline (one-time) preparation of the chunk-sharing graph: {:.1} s;\n\
         sharing saves {:.0}% of the per-chunk design's graph memory\n\
         (paper: up to 75% / 7.2 GB for this configuration).",
        chunk_cost.prepare_ms() / 1e3,
        mem.saving_fraction() * 100.0
    );
    let path = ExperimentRecord {
        id: "fig07_graph_designs",
        description: "Prompt vs chunk vs chunk-sharing graphs (Figure 7)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
