//! Figure 15: prefill energy consumption under different prompt lengths
//! on the Redmi K60 Pro (the rootable device the paper measured).
//!
//! Paper reference (1024 tokens): llm.npu saves 35.6–59.5× energy vs
//! llama.cpp-CPU, 35.2–59.3× vs MLC-GPU, and 1.85–4.32× vs TFLite-GPU;
//! at 64 tokens the savings shrink to ~10–18× and ~3.2–3.7×.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_core::baselines::{applicable_baselines, Engine, LlmNpuAsEngine};
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::spec::SocSpec;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: &'static str,
    prompt_len: usize,
    engine: String,
    energy_j: f64,
    savings_vs_engine: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let soc = SocSpec::snapdragon_8gen2(); // K60 Pro
    let prompts = [64usize, 256, 1024];
    let mut rows = Vec::new();

    header(&format!("Figure 15: prefill energy on {}", soc.name));
    for model in ModelConfig::all_evaluated() {
        let ours = LlmNpuAsEngine::with_defaults(model.clone(), soc.clone())?;
        println!("\n--- {} ---", model.name);
        println!(
            "{:<20} {:>10} {:>10} {:>10} {:>16}",
            "engine", "64 (J)", "256 (J)", "1024 (J)", "saving @1024"
        );
        let our_energy: Vec<f64> = prompts
            .iter()
            .map(|&p| ours.prefill(p).map(|r| r.energy_j))
            .collect::<Result<_, _>>()?;
        println!(
            "{:<20} {:>10.2} {:>10.2} {:>10.2} {:>16}",
            ours.name(),
            our_energy[0],
            our_energy[1],
            our_energy[2],
            "1.0x"
        );
        for (i, &p) in prompts.iter().enumerate() {
            rows.push(Row {
                model: model.name,
                prompt_len: p,
                engine: ours.name().to_owned(),
                energy_j: our_energy[i],
                savings_vs_engine: 1.0,
            });
        }
        for engine in applicable_baselines(&model, &soc) {
            let mut energies = Vec::new();
            for (i, &p) in prompts.iter().enumerate() {
                let r = engine.prefill(p)?;
                energies.push(r.energy_j);
                rows.push(Row {
                    model: model.name,
                    prompt_len: p,
                    engine: engine.name().to_owned(),
                    energy_j: r.energy_j,
                    savings_vs_engine: r.energy_j / our_energy[i],
                });
            }
            println!(
                "{:<20} {:>10.2} {:>10.2} {:>10.2} {:>15.1}x",
                engine.name(),
                energies[0],
                energies[1],
                energies[2],
                energies[2] / our_energy[2]
            );
        }
    }
    println!(
        "\nThe savings grow with prompt length: NPU power (~1.5 W) vs all-core\n\
         CPU prefill (~8 W) compounds with the latency gap."
    );
    let path = ExperimentRecord {
        id: "fig15_energy",
        description: "Prefill energy grid on the K60 Pro (Figure 15)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
