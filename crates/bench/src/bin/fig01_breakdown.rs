//! Figure 1: prefill vs decode share of end-to-end latency for the three
//! motivating application categories, on a CPU engine (llama.cpp-like)
//! and a GPU engine (TFLite-like).
//!
//! Paper reference values (prefill share): CPU — UI automation 98.8%,
//! context-aware QA 94.4%, chat summary 88.3%; GPU — 91.7%, 81.0%, 54.2%.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_core::baselines::{AnalyticEngine, BaselineKind, Engine};
use llmnpu_model::config::ModelConfig;
use llmnpu_soc::spec::SocSpec;
use llmnpu_workloads::suites::Suite;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    processor: &'static str,
    category: &'static str,
    prefill_pct: f64,
    decode_pct: f64,
    paper_prefill_pct: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let soc = SocSpec::snapdragon_8gen3();
    // CPU rows use llama.cpp + Qwen (as in §2.1); GPU rows use the
    // TFLite-like engine + Gemma (TFLite's supported model).
    let cpu = AnalyticEngine::new(
        BaselineKind::LlamaCppCpu,
        ModelConfig::qwen15_18b(),
        soc.clone(),
    );
    let gpu = AnalyticEngine::new(BaselineKind::TfliteGpu, ModelConfig::gemma_2b(), soc);

    let paper: &[(&str, f64, f64)] = &[
        ("UI Automation", 98.8, 91.7),
        ("Context-aware QA", 94.4, 81.0),
        ("Chat-Summary", 88.3, 54.2),
    ];

    let mut rows = Vec::new();
    header("Figure 1: prefill/decode breakdown");
    println!(
        "{:<6} {:<18} {:>12} {:>12} {:>14}",
        "proc", "category", "prefill %", "decode %", "paper prefill"
    );
    for suite in Suite::figure1_categories() {
        let sample = suite.midpoint();
        for (proc_name, engine) in [("CPU", &cpu as &dyn Engine), ("GPU", &gpu as &dyn Engine)] {
            let r = engine.e2e(&sample)?;
            let prefill_pct = r.prefill_fraction() * 100.0;
            let paper_ref = paper
                .iter()
                .find(|(c, _, _)| *c == suite.category)
                .map(|(_, c, g)| if proc_name == "CPU" { *c } else { *g })
                .unwrap_or(f64::NAN);
            println!(
                "{:<6} {:<18} {:>11.1}% {:>11.1}% {:>13.1}%",
                proc_name,
                suite.category,
                prefill_pct,
                100.0 - prefill_pct,
                paper_ref
            );
            rows.push(Row {
                processor: proc_name,
                category: suite.category,
                prefill_pct,
                decode_pct: 100.0 - prefill_pct,
                paper_prefill_pct: paper_ref,
            });
        }
    }
    let path = ExperimentRecord {
        id: "fig01_breakdown",
        description: "Prefill vs decode latency share per app category (Figure 1)",
        seed,
        rows,
    }
    .save()?;
    println!("\nsaved {}", path.display());
    Ok(())
}
