//! Figure 13: execution-bubble comparison between naive overlapping and
//! out-of-order subgraph execution.
//!
//! Paper reference: naive overlapping leaves a 37% bubble rate on the
//! NPU's critical path; out-of-order dispatch collapses it to 0.7%, and
//! the ablation (Figure 19) attributes an 18–44% prefill improvement to
//! this.

use llmnpu_bench::{header, seed_from_args, ExperimentRecord};
use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, DagConfig};
use llmnpu_model::config::ModelConfig;
use llmnpu_sched::{schedule, Policy};
use llmnpu_soc::latency::LatencyModel;
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::Processor;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: &'static str,
    prompt_len: usize,
    policy: &'static str,
    makespan_ms: f64,
    npu_bubble_rate_pct: f64,
    improvement_over_fifo_pct: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = seed_from_args();
    let lat = LatencyModel::new(&SocSpec::snapdragon_8gen3());
    let mut rows = Vec::new();

    for model in [ModelConfig::qwen15_18b(), ModelConfig::gemma_2b()] {
        for prompt in [512usize, 1024, 2048] {
            let dag_cfg = DagConfig {
                plan: ChunkPlan::new(prompt, 256)?,
                float_processor: Processor::Cpu,
                shadow_fraction: 0.15,
                outlier_channels: 10,
                shape_optimized: true,
                npu_group_size: None,
            };
            let dag = build_prefill_dag(&model, &dag_cfg, &lat)?;
            let fifo = schedule(&dag, Policy::FifoQueues)?;
            let ooo = schedule(&dag, Policy::OutOfOrder)?;

            header(&format!("Figure 13: {} @ {prompt} tokens", model.name));
            println!(
                "{:<16} {:>12} {:>14} {:>14}",
                "policy", "makespan ms", "NPU bubbles", "vs naive"
            );
            for (policy, outcome) in [("naive-overlap", &fifo), ("out-of-order", &ooo)] {
                let improvement = (1.0 - outcome.makespan_ms / fifo.makespan_ms) * 100.0;
                println!(
                    "{:<16} {:>12.0} {:>13.1}% {:>13.1}%",
                    policy,
                    outcome.makespan_ms,
                    outcome.npu_bubble_rate * 100.0,
                    improvement
                );
                rows.push(Row {
                    model: model.name,
                    prompt_len: prompt,
                    policy,
                    makespan_ms: outcome.makespan_ms,
                    npu_bubble_rate_pct: outcome.npu_bubble_rate * 100.0,
                    improvement_over_fifo_pct: improvement,
                });
            }
        }
    }
    println!(
        "\nPaper: 37% bubbles under naive overlapping vs 0.7% under OOE; the\n\
         makespan improvement lands in Figure 19's 18-44% OOE band."
    );
    let path = ExperimentRecord {
        id: "fig13_bubbles",
        description: "NPU bubble rates: naive overlap vs out-of-order (Figure 13)",
        seed,
        rows,
    }
    .save()?;
    println!("saved {}", path.display());
    Ok(())
}
