//! Shared helpers for the experiment binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure from the
//! paper: it prints an aligned text table with a `paper=` reference column
//! where the paper states a number, and writes a JSON record to
//! `target/experiments/<id>.json` for downstream analysis.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Where experiment JSON records are written.
#[must_use]
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// One experiment's machine-readable output.
#[derive(Debug, Serialize)]
pub struct ExperimentRecord<T: Serialize> {
    /// Experiment id, e.g. `"fig14_prefill_speed"`.
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Seed used for any stochastic generation.
    pub seed: u64,
    /// The result rows.
    pub rows: T,
}

impl<T: Serialize> ExperimentRecord<T> {
    /// Writes the record to `target/experiments/<id>.json`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory or file cannot be written.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = experiments_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self).map_err(std::io::Error::other)?;
        fs::write(&path, json)?;
        Ok(path)
    }
}

/// Default experiment seed (override with `--seed N`).
#[must_use]
pub fn seed_from_args() -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--seed" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    42
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a ratio as `"12.3x"`.
#[must_use]
pub fn ratio(ours: f64, theirs: f64) -> String {
    if ours <= 0.0 {
        return "-".to_owned();
    }
    format!("{:.1}x", theirs / ours)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_to_disk() {
        let rec = ExperimentRecord {
            id: "unit_test_record",
            description: "test",
            seed: 1,
            rows: vec![1, 2, 3],
        };
        let path = rec.save().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("unit_test_record"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(2.0, 10.0), "5.0x");
        assert_eq!(ratio(0.0, 10.0), "-");
    }
}
