//! Criterion microbenchmarks of the numeric-plane kernels, plus the
//! kernel-subsystem comparison that records `BENCH_kernels.json` at the
//! repository root: naive (scalar reference) vs blocked vs blocked+4-thread
//! GEMM at paper-relevant shapes (256/512/1024 square prefill GEMMs and the
//! 1×4096×4096 decode GEMV), with tokens-equivalent throughput so the perf
//! trajectory of the kernel layer is tracked across PRs.

use criterion::{criterion_group, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Instant;

use llmnpu_quant::outlier::{extract_outliers, ShadowLinear};
use llmnpu_quant::per_group::GroupedLinear;
use llmnpu_quant::per_tensor::{max_min_scale, QuantizedLinear, QuantizedMatrix};
use llmnpu_tensor::{gemm, Tensor};
use serde::Serialize;

fn ramp(rows: usize, cols: usize, amp: f32) -> Tensor<f32> {
    Tensor::from_vec(
        (0..rows * cols)
            .map(|i| amp * (((i * 37 + 11) % 127) as f32 / 127.0 - 0.5))
            .collect(),
        [rows, cols],
    )
    .unwrap()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let a_f = ramp(32, 256, 1.0);
    let b_f = ramp(256, 256, 1.0);
    group.bench_function("f32_naive_32x256x256", |b| {
        b.iter(|| gemm::matmul_f32_reference(black_box(&a_f), black_box(&b_f)).unwrap())
    });
    group.bench_function("f32_blocked_32x256x256", |b| {
        b.iter(|| gemm::matmul_f32(black_box(&a_f), black_box(&b_f)).unwrap())
    });
    let a_i = QuantizedMatrix::quantize(&a_f);
    let b_i = QuantizedMatrix::quantize(&b_f);
    group.bench_function("i8_naive_32x256x256", |b| {
        b.iter(|| gemm::matmul_i8_reference(black_box(a_i.data()), black_box(b_i.data())).unwrap())
    });
    group.bench_function("i8_blocked_32x256x256", |b| {
        b.iter(|| gemm::matmul_i8(black_box(a_i.data()), black_box(b_i.data())).unwrap())
    });
    group.bench_function("i8_fused_dequant_32x256x256", |b| {
        b.iter(|| {
            gemm::matmul_i8_scaled(
                black_box(a_i.data()),
                black_box(b_i.data()),
                a_i.scale(),
                b_i.scale(),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_quantized_linears(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_linear");
    let w = ramp(256, 256, 0.5);
    let mut xv = ramp(8, 256, 0.05).into_vec();
    xv[3] = 12.0; // one outlier channel
    let x = Tensor::from_vec(xv, [8, 256]).unwrap();
    let scale = max_min_scale(&[0.05_f32, -0.05]);

    let per_tensor = QuantizedLinear::new(&w, scale);
    group.bench_function("per_tensor_forward", |b| {
        b.iter(|| per_tensor.forward(black_box(&x)).unwrap())
    });

    let grouped = GroupedLinear::new(&w, 32).unwrap();
    group.bench_function("per_group_forward(g=32)", |b| {
        b.iter(|| grouped.forward(black_box(&x)).unwrap())
    });

    let shadow = ShadowLinear::new(&w, scale);
    group.bench_function("shadow_forward", |b| {
        b.iter(|| shadow.forward(black_box(&x)).unwrap())
    });
    group.finish();
}

fn bench_outlier_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("outlier");
    let mut xv = ramp(64, 1024, 0.05).into_vec();
    for i in 0..6 {
        xv[i * 997 + 13] = 20.0;
    }
    let x = Tensor::from_vec(xv, [64, 1024]).unwrap();
    group.bench_function("extract_64x1024_6ch", |b| {
        b.iter_batched(
            || x.clone(),
            |x| extract_outliers(black_box(&x), 0.01),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

// ---------------------------------------------------------------------------
// Kernel-subsystem comparison -> BENCH_kernels.json
// ---------------------------------------------------------------------------

/// Threads used for the threaded row in the JSON record (the acceptance
/// shape of the kernel-subsystem work).
const THREADS: usize = 4;

#[derive(Debug, Serialize)]
struct KernelRow {
    shape: String,
    m: usize,
    k: usize,
    n: usize,
    naive_ms: f64,
    blocked_ms: f64,
    threaded4_ms: f64,
    naive_gflops: f64,
    blocked_gflops: f64,
    threaded4_gflops: f64,
    speedup_blocked: f64,
    speedup_threaded4: f64,
    /// Rows of A pushed through the layer per second on the threaded
    /// kernel — "tokens-equivalent" throughput, since one token's hidden
    /// state is one activation row of a linear layer.
    tokens_equiv_per_s: f64,
    i8_naive_ms: f64,
    i8_blocked_ms: f64,
    i8_speedup: f64,
    i8_bit_exact: bool,
}

#[derive(Debug, Serialize)]
struct KernelRecord {
    id: &'static str,
    description: &'static str,
    /// Worker count requested for the threaded rows.
    threads_requested: usize,
    /// Worker count actually used after the host-core clamp — on a
    /// 1-core host the threaded rows are effectively single-threaded
    /// and should read ≈ the blocked rows.
    threads_effective: usize,
    host_cpus: usize,
    fma: bool,
    rows: Vec<KernelRow>,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn compare_shape(m: usize, k: usize, n: usize, reps: usize) -> KernelRow {
    let a = ramp(m, k, 1.0);
    let b = ramp(k, n, 1.0);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;

    let naive = best_of(reps, || gemm::matmul_f32_reference(&a, &b).unwrap());
    let blocked = best_of(reps, || gemm::matmul_f32(&a, &b).unwrap());
    let threaded = best_of(reps, || gemm::matmul_f32_threaded(&a, &b, THREADS).unwrap());

    let ai = a.map(|x| (x * 120.0) as i8);
    let bi = b.map(|x| (x * 120.0) as i8);
    let i8_naive = best_of(reps, || gemm::matmul_i8_reference(&ai, &bi).unwrap());
    let i8_blocked = best_of(reps, || gemm::matmul_i8(&ai, &bi).unwrap());
    let i8_bit_exact = gemm::matmul_i8(&ai, &bi).unwrap().as_slice()
        == gemm::matmul_i8_reference(&ai, &bi).unwrap().as_slice();

    let fastest = blocked.min(threaded);
    KernelRow {
        shape: format!("{m}x{k}x{n}"),
        m,
        k,
        n,
        naive_ms: naive * 1e3,
        blocked_ms: blocked * 1e3,
        threaded4_ms: threaded * 1e3,
        naive_gflops: flops / naive / 1e9,
        blocked_gflops: flops / blocked / 1e9,
        threaded4_gflops: flops / threaded / 1e9,
        speedup_blocked: naive / blocked,
        speedup_threaded4: naive / threaded,
        tokens_equiv_per_s: m as f64 / fastest,
        i8_naive_ms: i8_naive * 1e3,
        i8_blocked_ms: i8_blocked * 1e3,
        i8_speedup: i8_naive / i8_blocked,
        i8_bit_exact,
    }
}

fn kernel_comparison() {
    println!("\n=== kernel subsystem: naive vs blocked vs blocked+{THREADS}-thread ===");
    let shapes: [(usize, usize, usize, usize); 4] = [
        (256, 256, 256, 9),
        (512, 512, 512, 7),
        (1024, 1024, 1024, 3),
        (1, 4096, 4096, 9), // decode GEMV
    ];
    let rows: Vec<KernelRow> = shapes
        .iter()
        .map(|&(m, k, n, reps)| {
            let row = compare_shape(m, k, n, reps);
            println!(
                "{:<14} naive {:>8.2} ms | blocked {:>7.2} ms ({:>4.2}x) | {}t {:>7.2} ms ({:>4.2}x) | i8 {:>4.2}x exact={} | {:>9.0} tok-eq/s",
                row.shape,
                row.naive_ms,
                row.blocked_ms,
                row.speedup_blocked,
                THREADS,
                row.threaded4_ms,
                row.speedup_threaded4,
                row.i8_speedup,
                row.i8_bit_exact,
                row.tokens_equiv_per_s,
            );
            row
        })
        .collect();

    let record = KernelRecord {
        id: "kernels",
        description: "Blocked+packed+threaded GEMM vs scalar reference; \
                      tokens-equivalent = activation rows per second",
        threads_requested: THREADS,
        threads_effective: llmnpu_tensor::kernel::parallel::effective_threads(THREADS),
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        fma: cfg!(target_feature = "fma"),
        rows,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&record).expect("serialize kernel record");
    std::fs::write(path, json + "\n").expect("write BENCH_kernels.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    bench_gemm,
    bench_quantized_linears,
    bench_outlier_extraction
);

fn main() {
    benches();
    kernel_comparison();
}
