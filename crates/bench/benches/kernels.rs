//! Criterion microbenchmarks of the numeric-plane kernels: the real
//! arithmetic behind the accuracy experiments.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use llmnpu_quant::outlier::{extract_outliers, ShadowLinear};
use llmnpu_quant::per_group::GroupedLinear;
use llmnpu_quant::per_tensor::{max_min_scale, QuantizedLinear, QuantizedMatrix};
use llmnpu_tensor::{gemm, Tensor};

fn ramp(rows: usize, cols: usize, amp: f32) -> Tensor<f32> {
    Tensor::from_vec(
        (0..rows * cols)
            .map(|i| amp * (((i * 37 + 11) % 127) as f32 / 127.0 - 0.5))
            .collect(),
        [rows, cols],
    )
    .unwrap()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let a_f = ramp(32, 256, 1.0);
    let b_f = ramp(256, 256, 1.0);
    group.bench_function("f32_32x256x256", |b| {
        b.iter(|| gemm::matmul_f32(black_box(&a_f), black_box(&b_f)).unwrap())
    });
    let a_i = QuantizedMatrix::quantize(&a_f);
    let b_i = QuantizedMatrix::quantize(&b_f);
    group.bench_function("i8_32x256x256", |b| {
        b.iter(|| gemm::matmul_i8(black_box(a_i.data()), black_box(b_i.data())).unwrap())
    });
    group.finish();
}

fn bench_quantized_linears(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_linear");
    let w = ramp(256, 256, 0.5);
    let mut xv = ramp(8, 256, 0.05).into_vec();
    xv[3] = 12.0; // one outlier channel
    let x = Tensor::from_vec(xv, [8, 256]).unwrap();
    let scale = max_min_scale(&[0.05_f32, -0.05]);

    let per_tensor = QuantizedLinear::new(&w, scale);
    group.bench_function("per_tensor_forward", |b| {
        b.iter(|| per_tensor.forward(black_box(&x)).unwrap())
    });

    let grouped = GroupedLinear::new(&w, 32).unwrap();
    group.bench_function("per_group_forward(g=32)", |b| {
        b.iter(|| grouped.forward(black_box(&x)).unwrap())
    });

    let shadow = ShadowLinear::new(&w, scale);
    group.bench_function("shadow_forward", |b| {
        b.iter(|| shadow.forward(black_box(&x)).unwrap())
    });
    group.finish();
}

fn bench_outlier_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("outlier");
    let mut xv = ramp(64, 1024, 0.05).into_vec();
    for i in 0..6 {
        xv[i * 997 + 13] = 20.0;
    }
    let x = Tensor::from_vec(xv, [64, 1024]).unwrap();
    group.bench_function("extract_64x1024_6ch", |b| {
        b.iter_batched(
            || x.clone(),
            |x| extract_outliers(black_box(&x), 0.01),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_quantized_linears,
    bench_outlier_extraction
);
criterion_main!(benches);
