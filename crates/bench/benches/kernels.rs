//! Criterion microbenchmarks of the numeric-plane kernels, plus the
//! kernel-subsystem comparison that records `BENCH_kernels.json` at the
//! repository root: naive (scalar reference) vs blocked vs blocked+threaded
//! GEMM at paper-relevant prefill shapes, and a decode (`m ≤ 2`) section
//! comparing the streaming GEMV, a repack-weights-every-call strawman, and
//! the pack-once `PackedMatrix` fast path — with tokens-equivalent
//! throughput so the perf trajectory of the kernel layer is tracked across
//! PRs. Threaded columns are labeled with the *effective* worker count
//! after the host-core clamp, and the record carries an explicit
//! `thread_scaling_valid` flag (false on a 1-core host, where "threaded"
//! timings are a second single-threaded run, not thread scaling).

use criterion::{criterion_group, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Instant;

use llmnpu_quant::outlier::{extract_outliers, ShadowLinear};
use llmnpu_quant::per_group::GroupedLinear;
use llmnpu_quant::per_tensor::{max_min_scale, QuantizedLinear, QuantizedMatrix};
use llmnpu_tensor::{
    gemm, PackedMatrixF32, PackedMatrixI2, PackedMatrixI4, PackedMatrixI8, Tensor,
};
use serde::Serialize;

fn ramp(rows: usize, cols: usize, amp: f32) -> Tensor<f32> {
    Tensor::from_vec(
        (0..rows * cols)
            .map(|i| amp * (((i * 37 + 11) % 127) as f32 / 127.0 - 0.5))
            .collect(),
        [rows, cols],
    )
    .unwrap()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let a_f = ramp(32, 256, 1.0);
    let b_f = ramp(256, 256, 1.0);
    group.bench_function("f32_naive_32x256x256", |b| {
        b.iter(|| gemm::matmul_f32_reference(black_box(&a_f), black_box(&b_f)).unwrap())
    });
    group.bench_function("f32_blocked_32x256x256", |b| {
        b.iter(|| gemm::matmul_f32(black_box(&a_f), black_box(&b_f)).unwrap())
    });
    let a_i = QuantizedMatrix::quantize(&a_f);
    let b_i = QuantizedMatrix::quantize(&b_f);
    group.bench_function("i8_naive_32x256x256", |b| {
        b.iter(|| gemm::matmul_i8_reference(black_box(a_i.data()), black_box(b_i.data())).unwrap())
    });
    group.bench_function("i8_blocked_32x256x256", |b| {
        b.iter(|| gemm::matmul_i8(black_box(a_i.data()), black_box(b_i.data())).unwrap())
    });
    group.bench_function("i8_fused_dequant_32x256x256", |b| {
        b.iter(|| {
            gemm::matmul_i8_scaled(
                black_box(a_i.data()),
                black_box(b_i.data()),
                a_i.scale(),
                b_i.scale(),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_quantized_linears(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_linear");
    let w = ramp(256, 256, 0.5);
    let mut xv = ramp(8, 256, 0.05).into_vec();
    xv[3] = 12.0; // one outlier channel
    let x = Tensor::from_vec(xv, [8, 256]).unwrap();
    let scale = max_min_scale(&[0.05_f32, -0.05]);

    let per_tensor = QuantizedLinear::new(&w, scale);
    group.bench_function("per_tensor_forward", |b| {
        b.iter(|| per_tensor.forward(black_box(&x)).unwrap())
    });

    // Decode-shaped (m = 1) forward: the prepacked GEMV path.
    let x1 = ramp(1, 256, 0.05);
    group.bench_function("per_tensor_forward_decode", |b| {
        b.iter(|| per_tensor.forward(black_box(&x1)).unwrap())
    });

    let grouped = GroupedLinear::new(&w, 32).unwrap();
    group.bench_function("per_group_forward(g=32)", |b| {
        b.iter(|| grouped.forward(black_box(&x)).unwrap())
    });

    let shadow = ShadowLinear::new(&w, scale);
    group.bench_function("shadow_forward", |b| {
        b.iter(|| shadow.forward(black_box(&x)).unwrap())
    });
    group.finish();
}

fn bench_outlier_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("outlier");
    let mut xv = ramp(64, 1024, 0.05).into_vec();
    for i in 0..6 {
        xv[i * 997 + 13] = 20.0;
    }
    let x = Tensor::from_vec(xv, [64, 1024]).unwrap();
    group.bench_function("extract_64x1024_6ch", |b| {
        b.iter_batched(
            || x.clone(),
            |x| extract_outliers(black_box(&x), 0.01),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

// ---------------------------------------------------------------------------
// Kernel-subsystem comparison -> BENCH_kernels.json
// ---------------------------------------------------------------------------

/// Threads *requested* for the threaded rows in the JSON record; the
/// record labels its columns by the effective count after the host-core
/// clamp.
const THREADS: usize = 4;

#[derive(Debug, Serialize)]
struct KernelRow {
    shape: String,
    m: usize,
    k: usize,
    n: usize,
    naive_ms: f64,
    blocked_ms: f64,
    /// Blocked kernel with `threads_effective` workers (see the record
    /// header — NOT necessarily the requested count).
    threaded_ms: f64,
    /// Workers actually used for `threaded_ms` after the host-core clamp.
    threads_effective: usize,
    naive_gflops: f64,
    blocked_gflops: f64,
    threaded_gflops: f64,
    speedup_blocked: f64,
    speedup_threaded: f64,
    /// Rows of A pushed through the layer per second on the fastest
    /// kernel — "tokens-equivalent" throughput, since one token's hidden
    /// state is one activation row of a linear layer.
    tokens_equiv_per_s: f64,
    i8_naive_ms: f64,
    i8_blocked_ms: f64,
    i8_speedup: f64,
    i8_bit_exact: bool,
}

/// Decode (`m ≤ 2`) comparison: the streaming per-call GEMV, a
/// repack-the-weights-every-call strawman (what any driver without a
/// persistent weight cache must do to use a packed layout), and the
/// pack-once `PackedMatrix` fast path.
#[derive(Debug, Serialize)]
struct DecodeRow {
    shape: String,
    m: usize,
    k: usize,
    n: usize,
    f32_streaming_ms: f64,
    f32_repack_per_call_ms: f64,
    f32_prepacked_ms: f64,
    f32_speedup_vs_repack: f64,
    f32_speedup_vs_streaming: f64,
    /// Prepacked f32 GEMV bit-identical to the streaming driver.
    f32_bit_identical: bool,
    i8_streaming_ms: f64,
    i8_repack_per_call_ms: f64,
    i8_prepacked_ms: f64,
    i8_speedup_vs_repack: f64,
    i8_speedup_vs_streaming: f64,
    /// Prepacked i8 result bit-exact vs `matmul_i8_reference`.
    i8_bit_exact: bool,
    /// Acceptance: prepacked ≥ 2× the per-call-repacking path (both
    /// dtypes).
    meets_2x_vs_repack: bool,
}

/// Spawn-per-call scoped threads vs the persistent `WorkerPool` on the
/// same banded kernel call — the dispatch-overhead comparison behind
/// the pool refactor. Honors `thread_scaling_valid`: on a 1-core host
/// both paths timeshare one core, so the delta isolates dispatch
/// (spawn/join vs condvar broadcast) overhead only, not scaling.
#[derive(Debug, Serialize)]
struct PoolRow {
    shape: String,
    m: usize,
    k: usize,
    n: usize,
    /// Lanes used by both paths (requested band count).
    workers: usize,
    /// Banded kernel with per-call `std::thread::scope` spawning.
    scope_spawn_ms: f64,
    /// Same call dispatched to the persistent pool.
    pool_ms: f64,
    pool_speedup_vs_scope: f64,
    /// Threads spawned per call on the scoped path (measured).
    spawns_per_call_scope: u64,
    /// Threads spawned per call on the pool path (must be 0).
    spawns_per_call_pool: u64,
    /// Outputs bit-identical across the two dispatch paths.
    bit_identical: bool,
}

/// Batched-decode comparison: B concurrent requests' decode GEMVs run
/// one at a time (each streaming the full weight matrix) vs stacked
/// into a single m=B GEMM through the batched-decode driver
/// (`gemm::matmul_f32_rows_prepacked`). The acceptance bar for the
/// paged-KV serving PR: ≥ 1.3× aggregate decode tokens/s at B=8. The
/// win is memory-bandwidth arithmetic (weights stream once per batch,
/// not once per request), so it holds on a 1-core host too — but
/// `thread_scaling_valid` still labels the record's provenance.
#[derive(Debug, Serialize)]
struct BatchedDecodeRow {
    /// Requests decoding concurrently (the GEMM's m).
    batch: usize,
    k: usize,
    n: usize,
    /// Total time for B separate m=1 prepacked GEMVs.
    gemv_total_ms: f64,
    /// One m=B prepacked GEMM over the same B rows.
    batched_ms: f64,
    /// Aggregate decode throughput of the B-GEMV path (rows/s).
    gemv_tokens_per_s: f64,
    /// Aggregate decode throughput of the batched path (rows/s).
    batched_tokens_per_s: f64,
    speedup: f64,
    /// Row i of the batched GEMM bit-identical to its solo GEMV.
    bit_identical: bool,
    /// Acceptance: batched ≥ 1.3× the separate-GEMV aggregate.
    meets_1_3x: bool,
}

/// Sub-8-bit LUT decode comparison: the same decode-shaped product run
/// against f32, i8, int4, and int2 prepacked weights. Decode is
/// memory-bandwidth-bound, so the column to watch is bytes moved per
/// token — the packed int4/int2 streams are 1/8 and 1/16 of the f32
/// panels — and tok/s should track it. The acceptance bar for the LUT
/// PR: int4 decode GEMV ≥ 1.5× i8 tok/s on the same host. Bit-exactness
/// columns pin the optimized in-register drivers to the scalar LUT
/// reference, and `zero_warm_table_builds` pins the table-free hot path
/// (the LUT twin of the zero-repack invariant).
#[derive(Debug, Serialize)]
struct LutDecodeRow {
    shape: String,
    m: usize,
    k: usize,
    n: usize,
    /// Quantization group width of the int4/int2 formats.
    group_size: usize,
    /// Weight bytes streamed per decode step by each dtype's path
    /// (f32 panel slabs; i8 transposed copy; int4/int2 packed codes +
    /// group scales). At m > 1 the stream is shared by the whole
    /// cohort, so bytes per *token* are these divided by m.
    f32_bytes_per_token: usize,
    i8_bytes_per_token: usize,
    i4_bytes_per_token: usize,
    i2_bytes_per_token: usize,
    /// Warm timings: weights LLC-resident across reps. On a
    /// large-cache host this regime is compute-bound on the shared
    /// MAC count, so every format reads ≈ the same — it says nothing
    /// about the bytes-moved advantage and is reported only for
    /// transparency.
    f32_warm_ms: f64,
    i8_warm_ms: f64,
    i4_warm_ms: f64,
    i2_warm_ms: f64,
    /// Cold timings: the LLC is evicted before every rep so weights
    /// stream from DRAM. This is the regime a real decode step lives
    /// in — the model's full weight set is walked once per token and
    /// does not fit any cache, so each layer's matrix is gone again by
    /// the time the next token needs it. The tok/s and speedup columns
    /// below are computed from these.
    f32_cold_ms: f64,
    i8_cold_ms: f64,
    i4_cold_ms: f64,
    i2_cold_ms: f64,
    f32_tokens_per_s: f64,
    i8_tokens_per_s: f64,
    i4_tokens_per_s: f64,
    i2_tokens_per_s: f64,
    /// Cold int4-vs-i8 ratio. At m = 1 the weight stream dominates and
    /// the halved bytes show up directly; as m grows the stream is
    /// amortized over the cohort and the ratio converges back to the
    /// compute-bound warm parity.
    i4_vs_i8_speedup: f64,
    i2_vs_i8_speedup: f64,
    /// Optimized int4 driver bit-exact vs the scalar LUT reference.
    i4_bit_exact: bool,
    /// Optimized int2 driver bit-exact vs the scalar LUT reference.
    i2_bit_exact: bool,
    /// True for the solo decode GEMV row the ≥1.5× acceptance is
    /// evaluated on. Cohort rows (m > 1) share one weight stream
    /// across m tokens, so the per-token bytes advantage — and with it
    /// the expected ratio — shrinks by design.
    gate_row: bool,
    /// Acceptance: cold int4 ≥ 1.5× cold i8 tok/s at this shape.
    meets_1_5x_vs_i8: bool,
    /// Warm int4/int2 calls materialized zero partial-sum tables.
    zero_warm_table_builds: bool,
}

/// Paged-KV attention comparison: the same multi-head attention read
/// from one contiguous K/V slab vs walked page-by-page through a block
/// table (`attention_over_pages`). Measures the page-gather overhead —
/// the inner loop is whole-page unit-stride either way, so the tax
/// should be a few percent — and pins bit-identity between layouts.
#[derive(Debug, Serialize)]
struct PagedKvRow {
    /// Query rows (1 = decode step, >1 = prefill chunk).
    q_rows: usize,
    /// Cached positions attended over.
    kv_len: usize,
    /// Tokens per page (0 row = the contiguous baseline shape).
    block_tokens: usize,
    /// Pages the cache splits into.
    pages: usize,
    contiguous_ms: f64,
    paged_ms: f64,
    /// paged / contiguous (1.0 = free paging).
    overhead_ratio: f64,
    /// Paged output bit-identical to contiguous.
    bit_identical: bool,
}

/// Serving comparison: the same request queue served single-stream
/// (admission cap 1) vs continuously batched on the engine's pool —
/// aggregate tokens/s, mean TTFT, mean queue wait, and the interleave
/// witness. Wall-clock columns are dispatch-granularity measurements of
/// real GEMMs on a scaled-down model; on a 1-core host (see
/// `thread_scaling_valid`) batching cannot beat single-stream makespan,
/// but queue-wait and interleaving are still meaningful.
#[derive(Debug, Serialize)]
struct ServingRecord {
    requests: usize,
    total_tokens: usize,
    max_active: usize,
    pool_lanes: usize,
    single_stream_makespan_ms: f64,
    batched_makespan_ms: f64,
    single_stream_tokens_per_s: f64,
    batched_tokens_per_s: f64,
    single_stream_mean_ttft_ms: f64,
    batched_mean_ttft_ms: f64,
    single_stream_mean_queue_wait_ms: f64,
    batched_mean_queue_wait_ms: f64,
    /// Some decode step ran inside another request's prefill window in
    /// the batched run.
    decode_interleaved_with_prefill: bool,
    /// Per-request token streams identical between the two modes (they
    /// must always be — streams are seed-determined, not schedule-
    /// determined).
    streams_bit_identical: bool,
    /// Decode cohort width of the batched-decode serving run.
    decode_batch_width: usize,
    /// Aggregate tokens/s with same-position decode steps stacked into
    /// m=B GEMMs.
    batched_decode_tokens_per_s: f64,
    /// Streams of the batched-decode run identical to single-stream.
    batched_decode_streams_identical: bool,
}

#[derive(Debug, Serialize)]
struct KernelRecord {
    id: &'static str,
    description: &'static str,
    /// Worker count requested for the threaded rows.
    threads_requested: usize,
    /// Worker count actually used after the host-core clamp — on a
    /// 1-core host the threaded rows are effectively single-threaded
    /// and should read ≈ the blocked rows.
    threads_effective: usize,
    host_cpus: usize,
    /// False when `host_cpus == 1`: the `threaded_*` columns are then a
    /// second single-threaded run and say nothing about thread scaling.
    thread_scaling_valid: bool,
    fma: bool,
    rows: Vec<KernelRow>,
    decode: Vec<DecodeRow>,
    lut_decode: Vec<LutDecodeRow>,
    batched_decode: Vec<BatchedDecodeRow>,
    paged_kv: Vec<PagedKvRow>,
    pool_vs_scope: Vec<PoolRow>,
    serving: ServingRecord,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn compare_shape(m: usize, k: usize, n: usize, reps: usize) -> KernelRow {
    let a = ramp(m, k, 1.0);
    let b = ramp(k, n, 1.0);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let threads_effective = llmnpu_tensor::kernel::parallel::effective_threads(THREADS);

    let naive = best_of(reps, || gemm::matmul_f32_reference(&a, &b).unwrap());
    let blocked = best_of(reps, || gemm::matmul_f32(&a, &b).unwrap());
    let threaded = best_of(reps, || gemm::matmul_f32_threaded(&a, &b, THREADS).unwrap());

    let ai = a.map(|x| (x * 120.0) as i8);
    let bi = b.map(|x| (x * 120.0) as i8);
    let i8_naive = best_of(reps, || gemm::matmul_i8_reference(&ai, &bi).unwrap());
    let i8_blocked = best_of(reps, || gemm::matmul_i8(&ai, &bi).unwrap());
    let i8_bit_exact = gemm::matmul_i8(&ai, &bi).unwrap().as_slice()
        == gemm::matmul_i8_reference(&ai, &bi).unwrap().as_slice();

    let fastest = blocked.min(threaded);
    KernelRow {
        shape: format!("{m}x{k}x{n}"),
        m,
        k,
        n,
        naive_ms: naive * 1e3,
        blocked_ms: blocked * 1e3,
        threaded_ms: threaded * 1e3,
        threads_effective,
        naive_gflops: flops / naive / 1e9,
        blocked_gflops: flops / blocked / 1e9,
        threaded_gflops: flops / threaded / 1e9,
        speedup_blocked: naive / blocked,
        speedup_threaded: naive / threaded,
        tokens_equiv_per_s: m as f64 / fastest,
        i8_naive_ms: i8_naive * 1e3,
        i8_blocked_ms: i8_blocked * 1e3,
        i8_speedup: i8_naive / i8_blocked,
        i8_bit_exact,
    }
}

fn compare_decode(m: usize, k: usize, n: usize, reps: usize) -> DecodeRow {
    let a = ramp(m, k, 1.0);
    let b = ramp(k, n, 1.0);

    // f32: streaming per-call GEMV vs repack-every-call vs pack-once.
    let f32_streaming = best_of(reps, || gemm::matmul_f32_threaded(&a, &b, THREADS).unwrap());
    let f32_repack = best_of(reps, || {
        let packed = PackedMatrixF32::from_tensor(&b);
        gemm::matmul_f32_prepacked(&a, &packed, THREADS).unwrap()
    });
    let packed_f = PackedMatrixF32::from_tensor(&b);
    let f32_prepacked = best_of(reps, || {
        gemm::matmul_f32_prepacked(&a, &packed_f, THREADS).unwrap()
    });
    let f32_bit_identical = gemm::matmul_f32_prepacked(&a, &packed_f, THREADS)
        .unwrap()
        .as_slice()
        == gemm::matmul_f32_threaded(&a, &b, THREADS)
            .unwrap()
            .as_slice();

    // i8: same three paths, plus bit-exactness vs the scalar reference.
    let ai = a.map(|x| (x * 120.0) as i8);
    let bi = b.map(|x| (x * 120.0) as i8);
    let i8_streaming = best_of(reps, || {
        gemm::matmul_i8_threaded(&ai, &bi, THREADS).unwrap()
    });
    let i8_repack = best_of(reps, || {
        let packed = PackedMatrixI8::from_tensor(&bi);
        gemm::matmul_i8_prepacked(&ai, &packed, THREADS).unwrap()
    });
    let packed_i = PackedMatrixI8::from_tensor(&bi);
    let i8_prepacked = best_of(reps, || {
        gemm::matmul_i8_prepacked(&ai, &packed_i, THREADS).unwrap()
    });
    let i8_bit_exact = gemm::matmul_i8_prepacked(&ai, &packed_i, THREADS)
        .unwrap()
        .as_slice()
        == gemm::matmul_i8_reference(&ai, &bi).unwrap().as_slice();

    DecodeRow {
        shape: format!("{m}x{k}x{n}"),
        m,
        k,
        n,
        f32_streaming_ms: f32_streaming * 1e3,
        f32_repack_per_call_ms: f32_repack * 1e3,
        f32_prepacked_ms: f32_prepacked * 1e3,
        f32_speedup_vs_repack: f32_repack / f32_prepacked,
        f32_speedup_vs_streaming: f32_streaming / f32_prepacked,
        f32_bit_identical,
        i8_streaming_ms: i8_streaming * 1e3,
        i8_repack_per_call_ms: i8_repack * 1e3,
        i8_prepacked_ms: i8_prepacked * 1e3,
        i8_speedup_vs_repack: i8_repack / i8_prepacked,
        i8_speedup_vs_streaming: i8_streaming / i8_prepacked,
        i8_bit_exact,
        meets_2x_vs_repack: f32_repack / f32_prepacked >= 2.0 && i8_repack / i8_prepacked >= 2.0,
    }
}

fn compare_batched_decode(batch: usize, k: usize, n: usize, reps: usize) -> BatchedDecodeRow {
    let b = ramp(k, n, 1.0);
    let packed = PackedMatrixF32::from_tensor(&b);
    // B scattered activation rows, as per-request state would hold them.
    let rows: Vec<Vec<f32>> = (0..batch)
        .map(|i| ramp(1, k, 1.0 + i as f32 * 0.1).into_vec())
        .collect();
    let row_refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
    let row_tensors: Vec<Tensor<f32>> = rows
        .iter()
        .map(|r| Tensor::from_vec(r.clone(), [1, k]).unwrap())
        .collect();

    let gemv_total = best_of(reps, || {
        for a in &row_tensors {
            black_box(gemm::matmul_f32_prepacked(a, &packed, THREADS).unwrap());
        }
    });
    let batched = best_of(reps, || {
        gemm::matmul_f32_rows_prepacked(&row_refs, &packed, THREADS).unwrap()
    });

    let stacked = gemm::matmul_f32_rows_prepacked(&row_refs, &packed, THREADS).unwrap();
    let bit_identical = row_tensors.iter().enumerate().all(|(i, a)| {
        gemm::matmul_f32_prepacked(a, &packed, THREADS)
            .unwrap()
            .row(0)
            == stacked.row(i)
    });

    let speedup = gemv_total / batched;
    BatchedDecodeRow {
        batch,
        k,
        n,
        gemv_total_ms: gemv_total * 1e3,
        batched_ms: batched * 1e3,
        gemv_tokens_per_s: batch as f64 / gemv_total,
        batched_tokens_per_s: batch as f64 / batched,
        speedup,
        bit_identical,
        meets_1_3x: speedup >= 1.3,
    }
}

/// Bytes walked to displace every line of the last-level cache. Sized
/// well past this class of host (the largest LLC we run on is 260 MB);
/// on smaller machines the walk simply over-evicts, which is harmless.
const LLC_EVICT_BYTES: usize = 320 << 20;

/// Best-of timing with the LLC displaced before every rep, so the
/// measured kernel streams its weights from DRAM.
///
/// Why cold is the honest decode regime: a decode step runs one GEMV
/// against every layer's weights, and a model worth serving is far
/// larger than any cache — by the time token t+1 revisits a layer, its
/// matrix has been evicted by the layers after it. Plain `best_of`
/// re-runs one matrix back-to-back, which leaves it LLC-resident on a
/// big-cache host and turns the measurement compute-bound; that regime
/// hides exactly the weight-bytes advantage sub-8-bit formats exist
/// for. Evicting between reps restores the DRAM-streaming steady
/// state the decode loop actually runs in.
fn best_of_cold<R>(reps: usize, evict: &mut [u8], mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let mut displaced = 0u64;
        for line in evict.chunks(64) {
            displaced = displaced.wrapping_add(u64::from(line[0]));
        }
        black_box(displaced);
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn compare_lut_decode(
    m: usize,
    k: usize,
    n: usize,
    group_size: usize,
    reps: usize,
    gate_row: bool,
) -> LutDecodeRow {
    use llmnpu_tensor::kernel::lut;

    let a = ramp(m, k, 1.0);
    let b = ramp(k, n, 0.5);
    let mut evict = vec![1u8; LLC_EVICT_BYTES];

    let packed_f = PackedMatrixF32::from_tensor(&b);
    let f32_warm = best_of(reps, || {
        gemm::matmul_f32_prepacked(&a, &packed_f, THREADS).unwrap()
    });
    let f32_cold = best_of_cold(reps, &mut evict, || {
        gemm::matmul_f32_prepacked(&a, &packed_f, THREADS).unwrap()
    });

    let ai = a.map(|x| (x * 120.0) as i8);
    let bi = b.map(|x| (x * 120.0) as i8);
    let packed_i8 = PackedMatrixI8::from_tensor(&bi);
    let i8_warm = best_of(reps, || {
        gemm::matmul_i8_prepacked(&ai, &packed_i8, THREADS).unwrap()
    });
    let i8_cold = best_of_cold(reps, &mut evict, || {
        gemm::matmul_i8_prepacked(&ai, &packed_i8, THREADS).unwrap()
    });

    let packed_i4 = PackedMatrixI4::from_tensor(&b, group_size);
    let packed_i2 = PackedMatrixI2::from_tensor(&b, group_size);
    let builds0 = lut::lut_tables_built_global();
    let i4_warm = best_of(reps, || {
        gemm::matmul_i4_prepacked(&a, &packed_i4, THREADS).unwrap()
    });
    let i4_cold = best_of_cold(reps, &mut evict, || {
        gemm::matmul_i4_prepacked(&a, &packed_i4, THREADS).unwrap()
    });
    let i2_warm = best_of(reps, || {
        gemm::matmul_i2_prepacked(&a, &packed_i2, THREADS).unwrap()
    });
    let i2_cold = best_of_cold(reps, &mut evict, || {
        gemm::matmul_i2_prepacked(&a, &packed_i2, THREADS).unwrap()
    });
    let zero_warm_table_builds = lut::lut_tables_built_global() == builds0;

    let i4_bit_exact = gemm::matmul_i4_prepacked(&a, &packed_i4, THREADS)
        .unwrap()
        .as_slice()
        == gemm::matmul_i4_reference(&a, &packed_i4)
            .unwrap()
            .as_slice();
    let i2_bit_exact = gemm::matmul_i2_prepacked(&a, &packed_i2, THREADS)
        .unwrap()
        .as_slice()
        == gemm::matmul_i2_reference(&a, &packed_i2)
            .unwrap()
            .as_slice();

    let i4_vs_i8 = i8_cold / i4_cold;
    LutDecodeRow {
        shape: format!("{m}x{k}x{n}"),
        m,
        k,
        n,
        group_size,
        f32_bytes_per_token: k * n * std::mem::size_of::<f32>(),
        i8_bytes_per_token: k * n,
        i4_bytes_per_token: packed_i4.packed_bytes(),
        i2_bytes_per_token: packed_i2.packed_bytes(),
        f32_warm_ms: f32_warm * 1e3,
        i8_warm_ms: i8_warm * 1e3,
        i4_warm_ms: i4_warm * 1e3,
        i2_warm_ms: i2_warm * 1e3,
        f32_cold_ms: f32_cold * 1e3,
        i8_cold_ms: i8_cold * 1e3,
        i4_cold_ms: i4_cold * 1e3,
        i2_cold_ms: i2_cold * 1e3,
        f32_tokens_per_s: m as f64 / f32_cold,
        i8_tokens_per_s: m as f64 / i8_cold,
        i4_tokens_per_s: m as f64 / i4_cold,
        i2_tokens_per_s: m as f64 / i2_cold,
        i4_vs_i8_speedup: i4_vs_i8,
        i2_vs_i8_speedup: i8_cold / i2_cold,
        i4_bit_exact,
        i2_bit_exact,
        gate_row,
        meets_1_5x_vs_i8: i4_vs_i8 >= 1.5,
        zero_warm_table_builds,
    }
}

fn compare_paged_kv(q_rows: usize, kv_len: usize, block_tokens: usize, reps: usize) -> PagedKvRow {
    use llmnpu_model::config::ModelConfig;
    use llmnpu_model::forward::attention_over_pages;

    // A decode-scale attention shape: 8 heads × 64 dims over kv_len
    // cached positions (config fields beyond the head geometry are
    // irrelevant to the attention kernel).
    let mut cfg = ModelConfig::qwen15_18b();
    cfg.hidden = 512;
    cfg.heads = 8;
    cfg.kv_heads = 8;
    cfg.head_dim = 64;
    let kv_dim = cfg.kv_heads * cfg.head_dim;
    let q = ramp(q_rows, cfg.heads * cfg.head_dim, 1.0);
    let keys = ramp(kv_len, kv_dim, 0.7).into_vec();
    let values = ramp(kv_len, kv_dim, -0.6).into_vec();
    // Attention masks relative to the *end* of the cache.
    let start_pos = kv_len - q_rows;

    let contiguous = best_of(reps, || {
        attention_over_pages(&q, &[&keys], &[&values], &cfg, start_pos).unwrap()
    });
    let pages_k: Vec<&[f32]> = keys.chunks(block_tokens * kv_dim).collect();
    let pages_v: Vec<&[f32]> = values.chunks(block_tokens * kv_dim).collect();
    let paged = best_of(reps, || {
        attention_over_pages(&q, &pages_k, &pages_v, &cfg, start_pos).unwrap()
    });
    let bit_identical = attention_over_pages(&q, &pages_k, &pages_v, &cfg, start_pos)
        .unwrap()
        .as_slice()
        == attention_over_pages(&q, &[&keys], &[&values], &cfg, start_pos)
            .unwrap()
            .as_slice();

    PagedKvRow {
        q_rows,
        kv_len,
        block_tokens,
        pages: pages_k.len(),
        contiguous_ms: contiguous * 1e3,
        paged_ms: paged * 1e3,
        overhead_ratio: paged / contiguous,
        bit_identical,
    }
}

fn compare_pool_vs_scope(m: usize, k: usize, n: usize, reps: usize) -> PoolRow {
    use llmnpu_sched::WorkerPool;
    use llmnpu_tensor::kernel;
    use llmnpu_tensor::kernel::parallel;

    let a = ramp(m, k, 1.0).into_vec();
    let b = ramp(k, n, 1.0).into_vec();
    // The raw banded driver honors the requested band count exactly, so
    // both paths orchestrate the same `THREADS` bands even on a 1-core
    // host; only the dispatch mechanism differs.
    let run = |c: &mut [f32]| {
        c.fill(0.0);
        kernel::gemm_f32(m, k, n, &a, &b, c, THREADS);
    };

    let mut c_scope = vec![0.0f32; m * n];
    let spawns0 = parallel::thread_spawns();
    let scope_s = best_of(reps, || run(&mut c_scope));
    let scope_spawns = parallel::thread_spawns() - spawns0;

    let pool = std::sync::Arc::new(WorkerPool::new(THREADS));
    let mut c_pool = vec![0.0f32; m * n];
    let (pool_s, pool_spawns) = pool.install_scope(|| {
        // Warm the pool workers' scratch arenas, then measure.
        run(&mut c_pool);
        let spawns0 = parallel::thread_spawns();
        let t = best_of(reps, || run(&mut c_pool));
        (t, parallel::thread_spawns() - spawns0)
    });

    PoolRow {
        shape: format!("{m}x{k}x{n}"),
        m,
        k,
        n,
        workers: THREADS,
        scope_spawn_ms: scope_s * 1e3,
        pool_ms: pool_s * 1e3,
        pool_speedup_vs_scope: scope_s / pool_s,
        spawns_per_call_scope: scope_spawns / reps as u64,
        spawns_per_call_pool: pool_spawns / reps as u64,
        bit_identical: c_scope == c_pool,
    }
}

fn serving_comparison() -> ServingRecord {
    use llmnpu_core::engine::{EngineConfig, LlmNpuEngine};
    use llmnpu_core::serve::{GenerationRequest, ServeOptions, ServeReport};
    use llmnpu_model::backend::FloatBackend;
    use llmnpu_model::config::ModelConfig;
    use llmnpu_model::forward::Transformer;
    use llmnpu_model::weights::{synthesize, OutlierSpec};
    use llmnpu_soc::spec::SocSpec;

    let numeric_cfg = ModelConfig::qwen15_18b().scaled_down(48, 2, 96).unwrap();
    let weights = synthesize(&numeric_cfg, 7, OutlierSpec::default()).unwrap();
    let float = FloatBackend::new(weights.clone());
    let t = Transformer::new(&weights, &float);
    let mut cfg = EngineConfig::llmnpu(ModelConfig::qwen15_18b(), SocSpec::snapdragon_8gen3());
    cfg.chunk_len = 6;
    let engine = LlmNpuEngine::new(cfg).unwrap();

    let shapes: [(usize, usize); 4] = [(24, 5), (6, 8), (18, 4), (10, 6)];
    let requests: Vec<GenerationRequest> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(prompt_len, max_new))| {
            GenerationRequest::synthetic(i, prompt_len, max_new, numeric_cfg.vocab)
        })
        .collect();
    let max_active = requests.len();

    // Timing varies run to run; streams never do. Keep the best-makespan
    // run of each mode for the wall-clock columns.
    let best_run = |cap: usize, decode_batch: usize| -> ServeReport {
        let mut best: Option<ServeReport> = None;
        for _ in 0..3 {
            let r = engine
                .serve(
                    &t,
                    &requests,
                    &ServeOptions {
                        max_active: cap,
                        decode_batch,
                        ..ServeOptions::default()
                    },
                )
                .unwrap();
            if best
                .as_ref()
                .is_none_or(|b| r.makespan_ms() < b.makespan_ms())
            {
                best = Some(r);
            }
        }
        best.expect("at least one run")
    };
    let single = best_run(1, 1);
    let batched = best_run(max_active, 1);
    // Same queue with same-position decode steps stacked into m=B GEMMs.
    let decode_batched = best_run(max_active, max_active);
    let streams_bit_identical = single
        .requests
        .iter()
        .zip(&batched.requests)
        .all(|(a, b)| a.tokens == b.tokens);
    let batched_decode_streams_identical = single
        .requests
        .iter()
        .zip(&decode_batched.requests)
        .all(|(a, b)| a.tokens == b.tokens);

    ServingRecord {
        requests: requests.len(),
        total_tokens: batched.total_tokens(),
        max_active,
        pool_lanes: engine.pool().workers(),
        single_stream_makespan_ms: single.makespan_ms(),
        batched_makespan_ms: batched.makespan_ms(),
        single_stream_tokens_per_s: single.tokens_per_s(),
        batched_tokens_per_s: batched.tokens_per_s(),
        single_stream_mean_ttft_ms: single.mean_ttft_ms(),
        batched_mean_ttft_ms: batched.mean_ttft_ms(),
        single_stream_mean_queue_wait_ms: single.mean_queue_wait_ms(),
        batched_mean_queue_wait_ms: batched.mean_queue_wait_ms(),
        decode_interleaved_with_prefill: batched.timeline.decode_interleaved_with_prefill(),
        streams_bit_identical,
        decode_batch_width: max_active,
        batched_decode_tokens_per_s: decode_batched.tokens_per_s(),
        batched_decode_streams_identical,
    }
}

fn kernel_comparison() {
    let threads_effective = llmnpu_tensor::kernel::parallel::effective_threads(THREADS);
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\n=== kernel subsystem: naive vs blocked vs blocked+{threads_effective}-thread \
         (requested {THREADS}, host has {host_cpus} cpus) ==="
    );
    let shapes: [(usize, usize, usize, usize); 4] = [
        (256, 256, 256, 9),
        (512, 512, 512, 7),
        (1024, 1024, 1024, 3),
        (1, 4096, 4096, 9), // decode GEMV
    ];
    let rows: Vec<KernelRow> = shapes
        .iter()
        .map(|&(m, k, n, reps)| {
            let row = compare_shape(m, k, n, reps);
            println!(
                "{:<14} naive {:>8.2} ms | blocked {:>7.2} ms ({:>4.2}x) | {}t {:>7.2} ms ({:>4.2}x) | i8 {:>4.2}x exact={} | {:>9.0} tok-eq/s",
                row.shape,
                row.naive_ms,
                row.blocked_ms,
                row.speedup_blocked,
                row.threads_effective,
                row.threaded_ms,
                row.speedup_threaded,
                row.i8_speedup,
                row.i8_bit_exact,
                row.tokens_equiv_per_s,
            );
            row
        })
        .collect();

    println!("--- decode (m <= 2): streaming vs repack-per-call vs prepacked ---");
    let decode_shapes: [(usize, usize, usize, usize); 2] = [(1, 4096, 4096, 9), (2, 4096, 4096, 7)];
    let decode: Vec<DecodeRow> = decode_shapes
        .iter()
        .map(|&(m, k, n, reps)| {
            let row = compare_decode(m, k, n, reps);
            println!(
                "{:<14} f32 stream {:>6.2} ms | repack {:>7.2} ms | prepacked {:>6.2} ms ({:>5.2}x vs repack) | i8 prepacked {:>6.2} ms ({:>5.2}x vs repack) exact={} | 2x-target={}",
                row.shape,
                row.f32_streaming_ms,
                row.f32_repack_per_call_ms,
                row.f32_prepacked_ms,
                row.f32_speedup_vs_repack,
                row.i8_prepacked_ms,
                row.i8_speedup_vs_repack,
                row.i8_bit_exact,
                row.meets_2x_vs_repack,
            );
            row
        })
        .collect();

    println!(
        "--- lut decode: f32 vs i8 vs int4 vs int2 prepacked, cold-stream (bytes/token, tok/s) ---"
    );
    let lut_shapes: [(usize, usize, usize, usize, usize, bool); 4] = [
        (1, 4096, 4096, 256, 12, true), // solo decode GEMV — the 1.5x gate row
        (1, 4096, 4096, 128, 9, false), // solo decode, narrower groups
        (2, 4096, 4096, 128, 7, false), // widest GEMV cohort
        (8, 4096, 4096, 128, 5, false), // batched-decode cohort (m = B)
    ];
    let lut_decode: Vec<LutDecodeRow> = lut_shapes
        .iter()
        .map(|&(m, k, n, gs, reps, gate)| {
            let row = compare_lut_decode(m, k, n, gs, reps, gate);
            println!(
                "{:<14} gs={:<3} cold: f32 {:>6.2} ms ({:>5.1} MB) | i8 {:>6.2} ms ({:>5.1} MB) | i4 {:>6.2} ms ({:>5.1} MB, {:>4.2}x vs i8) | i2 {:>6.2} ms ({:>5.1} MB, {:>4.2}x) | warm: i8 {:>5.2} i4 {:>5.2} i2 {:>5.2} ms | exact i4={} i2={} | gate={} 1.5x={} zero-builds={}",
                row.shape,
                row.group_size,
                row.f32_cold_ms,
                row.f32_bytes_per_token as f64 / 1e6,
                row.i8_cold_ms,
                row.i8_bytes_per_token as f64 / 1e6,
                row.i4_cold_ms,
                row.i4_bytes_per_token as f64 / 1e6,
                row.i4_vs_i8_speedup,
                row.i2_cold_ms,
                row.i2_bytes_per_token as f64 / 1e6,
                row.i2_vs_i8_speedup,
                row.i8_warm_ms,
                row.i4_warm_ms,
                row.i2_warm_ms,
                row.i4_bit_exact,
                row.i2_bit_exact,
                row.gate_row,
                row.meets_1_5x_vs_i8,
                row.zero_warm_table_builds,
            );
            row
        })
        .collect();

    println!("--- batched decode: B separate m=1 GEMVs vs one m=B GEMM ---");
    let batched_shapes: [(usize, usize, usize, usize); 3] =
        [(2, 4096, 4096, 7), (4, 4096, 4096, 5), (8, 4096, 4096, 5)];
    let batched_decode: Vec<BatchedDecodeRow> = batched_shapes
        .iter()
        .map(|&(b, k, n, reps)| {
            let row = compare_batched_decode(b, k, n, reps);
            println!(
                "B={:<2} {:>5}x{:<5} gemv x{} {:>7.2} ms ({:>6.0} tok/s) | m={} gemm {:>6.2} ms ({:>6.0} tok/s) | {:>4.2}x | identical={} | 1.3x-target={}",
                row.batch,
                row.k,
                row.n,
                row.batch,
                row.gemv_total_ms,
                row.gemv_tokens_per_s,
                row.batch,
                row.batched_ms,
                row.batched_tokens_per_s,
                row.speedup,
                row.bit_identical,
                row.meets_1_3x,
            );
            row
        })
        .collect();

    println!("--- paged kv: contiguous attention vs whole-page block-table walk ---");
    let paged_shapes: [(usize, usize, usize, usize); 3] =
        [(1, 2048, 16, 9), (1, 2048, 64, 9), (32, 2048, 16, 5)];
    let paged_kv: Vec<PagedKvRow> = paged_shapes
        .iter()
        .map(|&(q, kv, bt, reps)| {
            let row = compare_paged_kv(q, kv, bt, reps);
            println!(
                "q={:<3} kv={:<5} pages of {:<3} ({:>3} pages): contiguous {:>6.2} ms | paged {:>6.2} ms | overhead {:>5.3}x | identical={}",
                row.q_rows,
                row.kv_len,
                row.block_tokens,
                row.pages,
                row.contiguous_ms,
                row.paged_ms,
                row.overhead_ratio,
                row.bit_identical,
            );
            row
        })
        .collect();

    println!("--- pool vs scope: spawn-per-call vs persistent WorkerPool dispatch ---");
    let pool_shapes: [(usize, usize, usize, usize); 2] = [(1, 4096, 4096, 9), (512, 512, 512, 7)];
    let pool_vs_scope: Vec<PoolRow> = pool_shapes
        .iter()
        .map(|&(m, k, n, reps)| {
            let row = compare_pool_vs_scope(m, k, n, reps);
            println!(
                "{:<14} scope {:>7.2} ms ({} spawns/call) | pool {:>7.2} ms ({} spawns/call) | {:>5.2}x | bit-identical={}",
                row.shape,
                row.scope_spawn_ms,
                row.spawns_per_call_scope,
                row.pool_ms,
                row.spawns_per_call_pool,
                row.pool_speedup_vs_scope,
                row.bit_identical,
            );
            row
        })
        .collect();

    println!("--- serving: single-stream vs continuous batching ---");
    let serving = serving_comparison();
    println!(
        "{} reqs ({} tokens) | single {:>7.1} ms ({:>6.1} tok/s, TTFT {:>6.1} ms, wait {:>6.1} ms) | batched {:>7.1} ms ({:>6.1} tok/s, TTFT {:>6.1} ms, wait {:>6.1} ms) | interleaved={} identical={}",
        serving.requests,
        serving.total_tokens,
        serving.single_stream_makespan_ms,
        serving.single_stream_tokens_per_s,
        serving.single_stream_mean_ttft_ms,
        serving.single_stream_mean_queue_wait_ms,
        serving.batched_makespan_ms,
        serving.batched_tokens_per_s,
        serving.batched_mean_ttft_ms,
        serving.batched_mean_queue_wait_ms,
        serving.decode_interleaved_with_prefill,
        serving.streams_bit_identical,
    );
    println!(
        "decode-batched (B={}): {:>6.1} tok/s | streams identical={}",
        serving.decode_batch_width,
        serving.batched_decode_tokens_per_s,
        serving.batched_decode_streams_identical,
    );

    let record = KernelRecord {
        id: "kernels",
        description: "Blocked+packed+threaded GEMM vs scalar reference; \
                      decode section compares streaming GEMV, repack-per-call, \
                      and pack-once PackedMatrix paths; lut_decode compares the \
                      decode GEMV across f32/i8/int4/int2 prepacked weights with \
                      bytes moved per token, timed cold (LLC evicted before each \
                      rep so weights stream from DRAM, the steady state of a \
                      real decode loop whose model exceeds any cache; warm \
                      rows are LLC-resident and compute-bound, reported for \
                      transparency) — acceptance: cold int4 >= 1.5x cold i8 \
                      tok/s on the gate row, optimized LUT drivers bit-exact vs \
                      the scalar LUT reference, zero warm table builds; \
                      batched_decode compares \
                      B separate m=1 decode GEMVs against one m=B GEMM through \
                      the batched-decode driver (acceptance: >=1.3x aggregate \
                      tokens/s); paged_kv compares contiguous attention against \
                      the whole-page block-table walk (gather overhead + bit \
                      identity); pool_vs_scope compares spawn-per-call scoped \
                      threads against the persistent WorkerPool on identical \
                      banded calls (dispatch overhead only when \
                      thread_scaling_valid is false); serving compares \
                      single-stream vs continuous-batched vs decode-batched \
                      request serving (tokens/s, TTFT, queue wait) on real \
                      GEMMs over the paged KV pool; tokens-equivalent = \
                      activation rows per second",
        threads_requested: THREADS,
        threads_effective,
        host_cpus,
        thread_scaling_valid: host_cpus > 1,
        fma: cfg!(target_feature = "fma"),
        rows,
        decode,
        lut_decode,
        batched_decode,
        paged_kv,
        pool_vs_scope,
        serving,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&record).expect("serialize kernel record");
    std::fs::write(path, json + "\n").expect("write BENCH_kernels.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    bench_gemm,
    bench_quantized_linears,
    bench_outlier_extraction
);

fn main() {
    benches();
    kernel_comparison();
}
