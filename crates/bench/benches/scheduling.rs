//! Criterion benchmarks of the timing-plane machinery: DAG construction
//! and the three scheduling policies. The paper claims the online
//! scheduler has "microsecond-level performance overhead" per decision —
//! `schedule/out_of_order` divided by the task count checks that claim.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use llmnpu_graph::chunk::ChunkPlan;
use llmnpu_graph::dag::{build_prefill_dag, DagConfig, PrefillDag};
use llmnpu_model::config::ModelConfig;
use llmnpu_sched::{schedule, Policy};
use llmnpu_soc::latency::LatencyModel;
use llmnpu_soc::spec::SocSpec;
use llmnpu_soc::Processor;

fn qwen_dag(prompt: usize) -> PrefillDag {
    let cfg = ModelConfig::qwen15_18b();
    let lat = LatencyModel::new(&SocSpec::snapdragon_8gen3());
    let dag_cfg = DagConfig {
        plan: ChunkPlan::new(prompt, 256).unwrap(),
        float_processor: Processor::Cpu,
        shadow_fraction: 0.15,
        outlier_channels: 10,
        shape_optimized: true,
        npu_group_size: None,
    };
    build_prefill_dag(&cfg, &dag_cfg, &lat).unwrap()
}

fn bench_dag_build(c: &mut Criterion) {
    let cfg = ModelConfig::qwen15_18b();
    let lat = LatencyModel::new(&SocSpec::snapdragon_8gen3());
    c.bench_function("dag_build_qwen_1024", |b| {
        b.iter(|| {
            let dag_cfg = DagConfig {
                plan: ChunkPlan::new(1024, 256).unwrap(),
                float_processor: Processor::Cpu,
                shadow_fraction: 0.15,
                outlier_channels: 10,
                shape_optimized: true,
                npu_group_size: None,
            };
            build_prefill_dag(black_box(&cfg), &dag_cfg, &lat).unwrap()
        })
    });
}

fn bench_policies(c: &mut Criterion) {
    let dag = qwen_dag(1024);
    let mut group = c.benchmark_group("schedule");
    group.bench_function("serial", |b| {
        b.iter(|| schedule(black_box(&dag), Policy::Serial).unwrap())
    });
    group.bench_function("fifo_queues", |b| {
        b.iter(|| schedule(black_box(&dag), Policy::FifoQueues).unwrap())
    });
    group.bench_function("out_of_order", |b| {
        b.iter(|| schedule(black_box(&dag), Policy::OutOfOrder).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dag_build, bench_policies);
criterion_main!(benches);
