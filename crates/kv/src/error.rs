use std::fmt;

/// Error type for the paged KV-cache subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A pool configuration value was invalid.
    InvalidConfig {
        /// Description of the constraint that failed.
        what: String,
    },
    /// The pool has fewer free blocks than an allocation needs.
    OutOfPages {
        /// Blocks requested.
        requested: usize,
        /// Blocks currently free.
        available: usize,
    },
    /// A block id, slot, or position was outside its valid range.
    OutOfRange {
        /// What was being addressed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
    /// A row write had the wrong feature width.
    WidthMismatch {
        /// Expected `kv_dim` elements.
        expected: usize,
        /// Elements actually supplied.
        got: usize,
    },
    /// An internal pool invariant failed to hold — bookkeeping the pool
    /// itself maintains went out of sync. Surfaced as a typed error so
    /// serving paths stay panic-free.
    Inconsistent {
        /// Description of the broken invariant.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { what } => write!(f, "invalid kv pool config: {what}"),
            Error::OutOfPages {
                requested,
                available,
            } => write!(
                f,
                "kv pool out of pages: requested {requested}, {available} free"
            ),
            Error::OutOfRange { what, index, bound } => {
                write!(f, "kv {what} {index} out of range (bound {bound})")
            }
            Error::WidthMismatch { expected, got } => {
                write!(f, "kv row width {got}, pool expects {expected}")
            }
            Error::Inconsistent { what } => {
                write!(f, "kv pool invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::OutOfPages {
            requested: 4,
            available: 1
        }
        .to_string()
        .contains("requested 4"));
        assert!(Error::WidthMismatch {
            expected: 8,
            got: 7
        }
        .to_string()
        .contains("expects 8"));
    }
}
